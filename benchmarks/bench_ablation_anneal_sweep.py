"""A3 (ablation): annealer schedule sweep — ground-state probability vs. effort.

Sweeps the number of Metropolis sweeps per read on the proof-of-concept Ising
problem.  Expected shape: the ground-state probability rises monotonically
(noise aside) with the number of sweeps and saturates near 1, while the mean
energy approaches the exact ground energy of -4.
"""

import pytest

from repro.simulators.anneal import BinaryQuadraticModel, ExactSolver, SimulatedAnnealingSampler


def cycle_bqm():
    return BinaryQuadraticModel.from_ising(
        [0, 0, 0, 0], {(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0, (3, 0): 1.0}
    )


@pytest.mark.parametrize("num_sweeps", [10, 100, 1000])
def test_anneal_sweep_count(benchmark, num_sweeps):
    sampler = SimulatedAnnealingSampler()
    bqm = cycle_bqm()

    def run():
        return sampler.sample(bqm, num_reads=500, num_sweeps=num_sweeps, seed=42)

    sampleset = benchmark(run)
    ground_probability = sampleset.ground_state_probability()
    if num_sweeps >= 100:
        assert ground_probability > 0.9
    benchmark.extra_info.update(
        {
            "num_sweeps": num_sweeps,
            "ground_state_probability": round(ground_probability, 4),
            "mean_energy": round(sampleset.mean_energy(), 4),
            "exact_ground_energy": ExactSolver().ground_energy(bqm),
        }
    )


def test_exact_enumeration_baseline(benchmark):
    """Brute-force baseline the annealer is compared against."""
    bqm = cycle_bqm()
    solver = ExactSolver()

    def run():
        return solver.ground_states(bqm)

    ground = benchmark(run)
    assert len(ground) == 2
    benchmark.extra_info.update({"ground_energy": float(ground.first.energy)})
