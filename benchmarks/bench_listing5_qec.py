"""E7 (Listing 5): the QEC context and its resource consequences.

Listing 5 attaches a distance-7 surface-code policy to the context while the
operator descriptors stay purely logical.  The benchmark plans the Max-Cut
QAOA bundle under distances 3-11 and checks the physical shape: physical-qubit
count grows quadratically with distance while the logical failure probability
falls steeply (below threshold).
"""

from repro.core import QECPolicy
from repro.services import QECService
from repro.workflows import build_qaoa_bundle


def test_listing5_qec_distance_sweep(benchmark, cycle4):
    bundle = build_qaoa_bundle(cycle4)
    service = QECService()
    distances = (3, 5, 7, 9, 11)

    def run():
        return service.compare_distances(bundle, distances, physical_error_rate=1e-3)

    plans = benchmark(run)

    physical = [p.total_physical_qubits for p in plans]
    failures = [p.failure_probability for p in plans]
    # Shape: monotone growth in physical qubits, monotone decay in failure rate.
    assert physical == sorted(physical)
    assert failures == sorted(failures, reverse=True)
    d7 = dict(zip(distances, plans))[7]
    assert d7.physical_qubits_per_logical == 97
    assert d7.total_physical_qubits == 4 * 97

    benchmark.extra_info.update(
        {
            "distances": list(distances),
            "total_physical_qubits": physical,
            "failure_probabilities": [f"{f:.2e}" for f in failures],
            "listing5_distance7_total_physical": d7.total_physical_qubits,
        }
    )


def test_listing5_same_program_with_and_without_qec(benchmark, cycle4):
    """The operator descriptors are byte-identical with and without the qec block."""
    service = QECService()

    def run():
        plain = build_qaoa_bundle(cycle4)
        protected = plain.with_context(
            plain.context.with_engine(plain.context.engine)
        )
        protected.context.qec = QECPolicy(code_family="surface", distance=7, allocator="auto")
        plan = service.plan(protected)
        return plain, protected, plan

    plain, protected, plan = benchmark(run)
    assert plain.operators.to_list() == protected.operators.to_list()
    assert plan.logical_qubits == 4
    benchmark.extra_info.update(
        {
            "operators_unchanged": True,
            "physical_qubits_under_qec": plan.total_physical_qubits,
            "execution_time_us": round(plan.execution_time_us, 1),
        }
    )
