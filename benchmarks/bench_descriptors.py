"""E5 (Listings 2-3): descriptor construction, validation and round-trip.

Times the pure middle-layer operations on the Listing 2 register and Listing 3
operator: building the descriptors, validating them against their JSON
Schemas, and the JSON round trip.  Checks that the library's QFT cost model
reproduces the figures quoted in Listing 3 (~45 two-qubit gates, depth ~100
for a width-10 exact QFT).
"""

import json

from repro import phase_register
from repro.core import QuantumDataType, QuantumOperatorDescriptor
from repro.oplib import qft_operator


def test_listing2_qdt_round_trip(benchmark):
    def round_trip():
        reg = phase_register("reg_phase", 10, name="phase", phase_scale="1/1024")
        doc = reg.to_dict()
        return QuantumDataType.from_dict(json.loads(json.dumps(doc)))

    reg = benchmark(round_trip)
    assert reg.width == 10
    benchmark.extra_info.update({"document": "QDT (Listing 2)"})


def test_listing3_qod_cost_hint(benchmark):
    reg = phase_register("reg_phase", 10, phase_scale="1/1024")

    def build():
        op = qft_operator(reg, approx_degree=0, do_swaps=True)
        return QuantumOperatorDescriptor.from_dict(op.to_dict())

    op = benchmark(build)
    # Listing 3: cost_hint {"twoq": 45, "depth": 100}.  Our estimator counts the
    # 45 controlled-phase gates plus the wire-reversal swaps and lands nearby.
    controlled_phase_count = 10 * 9 // 2
    assert controlled_phase_count == 45
    assert 45 <= op.cost_hint.twoq <= 60
    assert 90 <= op.cost_hint.depth <= 110
    benchmark.extra_info.update(
        {
            "paper_cost_hint": {"twoq": 45, "depth": 100},
            "our_cost_hint": op.cost_hint.to_dict(),
        }
    )
