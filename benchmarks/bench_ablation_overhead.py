"""A1 (ablation): what does the descriptor/packaging machinery cost?

The middle layer validates every descriptor against a JSON Schema and
re-verifies the whole bundle at packaging time.  This ablation measures that
overhead — packaging with full validation vs. packaging with validation
switched off vs. constructing the raw BQM directly — for growing problem
sizes.  The expected shape: validation costs a small constant factor
(milliseconds), negligible against any execution backend.
"""

import pytest

from repro.core import package
from repro.oplib import ising_problem_operator
from repro.problems import MaxCutProblem, random_graph
from repro.simulators.anneal import BinaryQuadraticModel
from repro.workflows import default_anneal_context, maxcut_register


def _problem(n):
    return MaxCutProblem(random_graph(n, 0.5, seed=n))


@pytest.mark.parametrize("nodes", [4, 8, 16])
def test_packaging_with_validation(benchmark, nodes):
    problem = _problem(nodes)
    context = default_anneal_context()

    def run():
        qdt = maxcut_register(problem)
        h, edges, weights, constant = problem.to_ising()
        op = ising_problem_operator(qdt, h=h, edges=edges, weights=weights, constant=constant)
        return package(qdt, [op], context, name=f"n{nodes}", validate=True)

    bundle = benchmark(run)
    assert bundle.verify().ok
    benchmark.extra_info.update({"nodes": nodes, "validated": True})


@pytest.mark.parametrize("nodes", [4, 8, 16])
def test_packaging_without_validation(benchmark, nodes):
    problem = _problem(nodes)
    context = default_anneal_context()

    def run():
        qdt = maxcut_register(problem)
        h, edges, weights, constant = problem.to_ising()
        op = ising_problem_operator(qdt, h=h, edges=edges, weights=weights, constant=constant)
        return package(qdt, [op], context, name=f"n{nodes}", validate=False)

    benchmark(run)
    benchmark.extra_info.update({"nodes": nodes, "validated": False})


@pytest.mark.parametrize("nodes", [4, 8, 16])
def test_direct_bqm_construction_baseline(benchmark, nodes):
    problem = _problem(nodes)

    def run():
        return BinaryQuadraticModel.from_graph(
            (u, v, d["weight"]) for u, v, d in problem.graph.edges(data=True)
        )

    benchmark(run)
    benchmark.extra_info.update({"nodes": nodes, "baseline": "raw BQM, no middle layer"})
