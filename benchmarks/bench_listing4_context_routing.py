"""E6 (Listing 4): the execution context's target block changes the realization.

Listing 4 constrains compilation to the {sx, rz, cx} basis and a linear
coupling map, "which forces realistic routing and basis decompositions";
omitting the block yields an ideal all-to-all device.  The benchmark transpiles
the width-10 QFT both ways and checks the expected shape: the constrained
target needs strictly more two-qubit gates and more depth.
"""

import pytest

from repro import package, phase_register
from repro.core import ContextDescriptor, ExecPolicy, TargetSpec
from repro.oplib import measurement, qft_operator
from repro.backends import GateBackend
from repro.simulators.gate.transpiler import transpile


def _build_circuit():
    reg = phase_register("reg_phase", 10, phase_scale="1/1024")
    bundle = package(
        reg,
        [qft_operator(reg), measurement(reg)],
        ContextDescriptor(exec=ExecPolicy(engine="gate.aer_simulator", samples=1)),
        name="qft",
    )
    circuit, _ = GateBackend().build_circuit(bundle)
    return circuit


LINEAR_COUPLING = [(i, i + 1) for i in range(9)]


def test_listing4_constrained_target(benchmark):
    circuit = _build_circuit()

    def run():
        return transpile(
            circuit,
            basis_gates=["sx", "rz", "cx"],
            coupling_map=LINEAR_COUPLING,
            optimization_level=2,
        )

    constrained = benchmark(run)
    unconstrained = transpile(circuit, basis_gates=["sx", "rz", "cx"], optimization_level=2)

    assert constrained.metrics["twoq"] > unconstrained.metrics["twoq"]
    assert constrained.metrics["depth"] > unconstrained.metrics["depth"]
    assert constrained.num_swaps_inserted > 0

    benchmark.extra_info.update(
        {
            "unconstrained_twoq": unconstrained.metrics["twoq"],
            "constrained_twoq": constrained.metrics["twoq"],
            "unconstrained_depth": unconstrained.metrics["depth"],
            "constrained_depth": constrained.metrics["depth"],
            "swaps_inserted": constrained.num_swaps_inserted,
            "routing_overhead_factor": round(
                constrained.metrics["twoq"] / unconstrained.metrics["twoq"], 3
            ),
        }
    )


def test_listing4_all_to_all_target(benchmark):
    circuit = _build_circuit()

    def run():
        return transpile(circuit, basis_gates=["sx", "rz", "cx"], optimization_level=2)

    result = benchmark(run)
    assert result.num_swaps_inserted == 0
    benchmark.extra_info.update({"twoq": result.metrics["twoq"], "depth": result.metrics["depth"]})
