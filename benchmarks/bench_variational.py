"""Variational fast-path benchmark: cached-parametric, expectation, batched grid.

Times the QAOA optimisation workload three ways at 8–12 qubits and writes
``BENCH_variational.json`` at the repository root:

* **grid-search stage** — the ``grid_resolution**...`` candidate sweep of
  ``optimize_qaoa`` as the PR 3 baseline (sampled mode: per-candidate
  bind -> package -> transpile -> simulate -> sample) versus the PR 4 fast
  path (expectation mode: one batched evolution with the candidate axis on
  the batch axis).  The headline target is **>= 10x at 12 qubits**.
* **sequential evaluations** — single-point ``evaluate`` throughput
  (evals/sec), sampled versus exact expectation.
* **parametric compilation** — compiles/sec of the fusion compiler on the
  per-evaluation circuit, cold (fresh structural analysis per compile)
  versus warm (template cache hit, re-bind only), plus the seeded-counts
  identity check between the cold and warm compile paths.

Run standalone (``python benchmarks/bench_variational.py``), as a quick CI
smoke (``python benchmarks/bench_variational.py --smoke``: one tiny row, no
JSON written), or via pytest (``pytest benchmarks/bench_variational.py``).
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.problems import MaxCutProblem
from repro.simulators.gate import (
    StatevectorSimulator,
    parametric_cache_clear,
    parametric_cache_info,
)
from repro.workflows import VariationalEvaluator, default_gate_context

GRID_RESOLUTION = 8
SAMPLES = 1024
SEED = 17
QUBIT_SIZES = (8, 10, 12)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_variational.json"


def ring_with_chords(num_nodes):
    """A ring plus skip-one chords: a denser landscape than the bare cycle."""
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    edges += [(i, (i + 2) % num_nodes) for i in range(0, num_nodes, 2)]
    weights = [1.0 + 0.1 * (k % 3) for k in range(len(edges))]
    return MaxCutProblem.from_edges(edges, weights=weights)


def grid_candidates(resolution):
    """The optimiser's first-layer grid as flat (gammas, betas) arrays."""
    grid = np.linspace(0.0, np.pi, resolution, endpoint=False)[1:]
    return np.repeat(grid, len(grid)), np.tile(grid, len(grid))


def time_call(fn, repeats=1):
    """Best-of-*repeats* wall clock and the last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_row(num_qubits, *, grid_resolution=GRID_RESOLUTION, samples=SAMPLES):
    """One benchmark row: grid stage, sequential evals, compile cache."""
    problem = ring_with_chords(num_qubits)
    gammas, betas = grid_candidates(grid_resolution)
    candidates = len(gammas)

    sampled = VariationalEvaluator(
        problem, context=default_gate_context(problem, samples=samples, seed=SEED)
    )
    exact = VariationalEvaluator(
        problem,
        context=default_gate_context(
            problem, samples=samples, seed=SEED, variational_evaluation="expectation"
        ),
    )

    # Grid-search stage: sequential recompile-and-sample vs one batched sweep.
    baseline_grid_s, baseline_values = time_call(
        lambda: [sampled.evaluate([g], [b]) for g, b in zip(gammas, betas)]
    )
    fast_grid_s, fast_values = time_call(
        lambda: exact.evaluate_grid(gammas, betas), repeats=3
    )
    # Same landscape: the sampled estimates must track the exact sweep.
    spread = float(np.max(np.abs(np.asarray(baseline_values) - fast_values)))
    assert spread < 0.8, f"sampled and exact landscapes disagree by {spread}"
    assert int(np.argmax(baseline_values)) == int(np.argmax(fast_values)) or (
        abs(np.max(baseline_values) - baseline_values[int(np.argmax(fast_values))])
        < 0.25
    )

    # Sequential single-point evaluations.
    point = (float(gammas[candidates // 2]), float(betas[candidates // 2]))
    sampled_eval_s, _ = time_call(lambda: sampled.evaluate([point[0]], [point[1]]))
    exact_eval_s, _ = time_call(
        lambda: exact.evaluate([point[0]], [point[1]]), repeats=3
    )

    # Parametric compilation: cold structural analysis vs warm re-bind.
    circuit = exact._qaoa_circuit([point[0]], [point[1]])
    from repro.simulators.gate import (
        compile_trajectory_program,
        compile_trajectory_program_cached,
    )

    compile_repeats = 25
    cold_s, _ = time_call(
        lambda: [compile_trajectory_program(circuit) for _ in range(compile_repeats)]
    )
    compile_trajectory_program_cached(circuit)  # prime the template cache
    warm_s, _ = time_call(
        lambda: [
            compile_trajectory_program_cached(circuit) for _ in range(compile_repeats)
        ]
    )

    # Seeded-counts identity across the cold and warm compile paths.
    check = circuit.copy()
    check.num_clbits = check.num_qubits
    for q in range(check.num_qubits):
        check.measure(q, q)
    simulator = StatevectorSimulator()
    parametric_cache_clear()
    cold_counts = simulator.run(check, shots=256, seed=SEED).counts
    warm_counts = simulator.run(check, shots=256, seed=SEED).counts
    cache_hits = parametric_cache_info()["hits"]
    seeded_identical = dict(cold_counts) == dict(warm_counts) and cache_hits >= 1
    assert seeded_identical, "cold/warm compile paths changed seeded counts"

    return {
        "num_qubits": num_qubits,
        "edges": len(problem.edges),
        "grid_candidates": candidates,
        "samples": samples,
        "grid_sampled_s": round(baseline_grid_s, 4),
        "grid_expectation_batched_s": round(fast_grid_s, 4),
        "grid_speedup": round(baseline_grid_s / fast_grid_s, 1),
        "grid_evals_per_s_sampled": round(candidates / baseline_grid_s, 1),
        "grid_evals_per_s_batched": round(candidates / fast_grid_s, 1),
        "eval_sampled_s": round(sampled_eval_s, 5),
        "eval_expectation_s": round(exact_eval_s, 5),
        "eval_speedup": round(sampled_eval_s / exact_eval_s, 1),
        "compile_cold_per_s": round(compile_repeats / cold_s, 1),
        "compile_warm_per_s": round(compile_repeats / warm_s, 1),
        "compile_speedup": round(cold_s / warm_s, 1),
        "seeded_counts_identical_cold_vs_warm": seeded_identical,
    }


def run_suite(qubit_sizes=QUBIT_SIZES, write=True):
    """Time every size and (optionally) write the JSON record."""
    rows = [bench_row(n) for n in qubit_sizes]
    record = {
        "benchmark": "variational_fastpath",
        "grid_resolution": GRID_RESOLUTION,
        "samples": SAMPLES,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    if write:
        OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_variational_fastpath_speedup():
    """The batched expectation grid beats recompile-and-sample >= 10x at 12q."""
    record = run_suite()
    headline = max(record["rows"], key=lambda row: row["num_qubits"])
    assert headline["num_qubits"] == 12
    assert headline["grid_speedup"] >= 10.0, record
    assert all(row["seeded_counts_identical_cold_vs_warm"] for row in record["rows"])


def test_variational_smoke():
    """Tiny fast-lane row: every fast-path component runs and agrees."""
    row = bench_row(6, grid_resolution=4, samples=128)
    assert row["seeded_counts_identical_cold_vs_warm"]
    assert row["grid_expectation_batched_s"] > 0


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        row = bench_row(6, grid_resolution=4, samples=128)
        print(json.dumps(row, indent=2))
    else:
        print(json.dumps(run_suite(), indent=2))
