"""E4 (Listing 1 / Section 2): the motivational 10-qubit QFT, middle-layer style.

The paper's motivational example builds a 10-qubit QFT with Qiskit and runs it
on the Aer simulator with 10000 shots.  Here the same program is expressed as
middle-layer artifacts (phase register + QFT_TEMPLATE + MEASUREMENT + context)
and executed on the state-vector substrate.  Starting from |0...0> the QFT
produces the uniform distribution over all 1024 phase values — the benchmark
checks that shape and records the realised circuit costs against the cost hint
of Listing 3 (~45 two-qubit gates, depth ~100).
"""

from repro import package, phase_register
from repro.core import ContextDescriptor, ExecPolicy
from repro.oplib import measurement, qft_operator
from repro.backends import submit


def test_listing1_qft_10_qubits(benchmark):
    reg = phase_register("reg_phase", 10, phase_scale="1/1024")
    qft = qft_operator(reg, approx_degree=0, do_swaps=True)
    context = ContextDescriptor(
        exec=ExecPolicy(engine="gate.aer_simulator", samples=10000, seed=42,
                        options={"optimization_level": 2})
    )
    bundle = package(reg, [qft, measurement(reg)], context, name="listing1-qft")

    def run():
        return submit(bundle)

    result = benchmark(run)

    counts = result.counts
    assert counts.shots == 10000
    # QFT of |0> is uniform: many distinct outcomes, none dominant.
    assert len(counts) > 900
    assert max(counts.probabilities().values()) < 0.01

    benchmark.extra_info.update(
        {
            "distinct_outcomes": len(counts),
            "cost_hint_twoq": qft.cost_hint.twoq,
            "cost_hint_depth": qft.cost_hint.depth,
            "lowered_twoq": result.metadata["lowered_twoq"],
            "transpiled_twoq": result.metadata["transpiled_twoq"],
            "transpiled_depth": result.metadata["transpiled_depth"],
        }
    )
