"""A2 (ablation): QAOA depth sweep and angle optimisation through the middle layer.

Sweeps the number of QAOA layers p on the proof-of-concept instance with
per-layer angles found by the classical outer loop.  Expected shape: the
expected cut is ~3 at p=1 (the known p=1 optimum for the 4-cycle) and does not
decrease as p grows; by p=2 it approaches the optimum of 4.
"""

import pytest

from repro.workflows import default_gate_context, evaluate_angles, optimize_qaoa

# Angles pre-optimised with repro.workflows.optimize_qaoa (kept fixed so the
# benchmark measures execution, not optimisation).
ANGLES = {
    1: ([-0.3927], [0.3927]),
    2: ([-0.35, -0.6], [0.45, 0.25]),
}


@pytest.mark.parametrize("reps", [1, 2])
def test_qaoa_depth_sweep(benchmark, cycle4, reps):
    context = default_gate_context(cycle4, samples=4096, seed=17, constrain_target=False)
    gammas, betas = ANGLES[reps]

    def run():
        return evaluate_angles(cycle4, gammas, betas, context=context)

    expected_cut = benchmark(run)
    assert expected_cut >= 2.5
    if reps == 1:
        assert expected_cut <= 3.1  # p=1 cannot exceed 3 on the 4-cycle
    benchmark.extra_info.update(
        {"p": reps, "expected_cut": round(expected_cut, 4), "optimal_cut": 4.0}
    )


def test_qaoa_angle_optimisation_loop(benchmark, cycle4):
    """The late-binding outer loop: grid search over (gamma, beta) at p=1."""
    context = default_gate_context(cycle4, samples=512, seed=17, constrain_target=False,
                                   optimization_level=1)

    def run():
        return optimize_qaoa(cycle4, reps=1, context=context, grid_resolution=5, refine=False)

    result = benchmark(run)
    # A coarse 4x4 grid already beats the random-assignment baseline (cut 2).
    assert result.best_expected_cut > 2.0
    benchmark.extra_info.update(
        {
            "best_expected_cut": round(result.best_expected_cut, 4),
            "best_gammas": [round(g, 4) for g in result.best_gammas],
            "best_betas": [round(b, 4) for b in result.best_betas],
            "evaluations": result.evaluations,
        }
    )
