"""E1 (Fig. 2): Max-Cut via the QAOA descriptor stack on the gate backend.

Reproduces the gate path of the proof of concept: the typed ``ising_vars``
register, the QAOA operator stack (PREP_UNIFORM, ISING_COST_PHASE, MIXER_RX,
MEASUREMENT), the Fig. 2 execution context (ring coupling map, {sx, rz, cx}
basis, optimisation level 2, 4096 samples), and the decoded statistics the
paper quotes: optimal assignments 1010/0101 and an expected cut of ~3.0-3.2.
"""

from repro.backends import submit
from repro.workflows import build_qaoa_bundle, default_gate_context, solve_maxcut


def test_fig2_qaoa_gate_path(benchmark, cycle4):
    context = default_gate_context(cycle4, samples=4096, seed=42)

    def run():
        return solve_maxcut(cycle4, formulation="qaoa", context=context)

    solution = benchmark(run)

    assert set(solution.best_assignments) == {"0101", "1010"}
    assert solution.best_cut == 4.0
    assert 2.8 <= solution.expected_cut <= 3.3

    benchmark.extra_info.update(
        {
            "expected_cut": round(solution.expected_cut, 4),
            "paper_expected_cut": "3.0-3.2",
            "best_assignments": solution.best_assignments,
            "approximation_ratio": round(solution.approximation_ratio, 4),
            "engine": solution.result.engine,
            "transpiled_twoq": solution.result.metadata["transpiled_twoq"],
            "transpiled_depth": solution.result.metadata["transpiled_depth"],
        }
    )


def test_fig2_packaging_and_lowering_only(benchmark, cycle4):
    """The middle-layer half of Fig. 2: package the bundle and lower it (no sampling)."""
    from repro.backends import GateBackend

    backend = GateBackend()

    def build():
        bundle = build_qaoa_bundle(cycle4)
        circuit, _ = backend.build_circuit(bundle)
        return circuit

    circuit = benchmark(build)
    benchmark.extra_info.update(
        {"lowered_gates": circuit.num_gates(), "lowered_twoq": circuit.num_twoq_gates()}
    )
    # The cost layer lowers to one ZZ-interaction gate per edge of the 4-cycle.
    assert circuit.num_twoq_gates() == 4
