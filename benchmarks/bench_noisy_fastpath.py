"""Noisy fast-path benchmark: compile cache, GEMM crossover, transpile cache.

Times the three PR 5 layers and writes ``BENCH_noisy.json`` at the
repository root:

* **noisy compilation** — compiles/sec of the fusion compiler on a noisy
  12-qubit QAOA circuit, cold (caches cleared per compile) versus warm
  (program-cache hit: the exact re-run every QEC/seed-sweep iteration pays)
  versus warm re-bind (template hit with fresh angles — the variational
  loop's iteration cost).  The headline target is **>= 5x warm vs cold**;
  the warm path is a dictionary hit, so the measured ratio is typically two
  orders of magnitude.
* **GEMM crossover** — batched-engine wall clock per noise rate with the
  masked-slice path (``noise_gemm_threshold=None``) versus the per-column
  operator GEMM path (threshold ``0``), plus the bit-identity check between
  their seeded counts.  The recorded crossover is the smallest swept rate at
  which the GEMM path wins.
* **transpile cache** — structure-keyed transpile of the QAOA shape against
  an 8x8 grid device, uncached versus warm cache (routing replay).
* **verify guard** — warm noisy execution with the ``verify_compiled``
  exec-policy knob off (twice: the second off row measures run-to-run timer
  noise, the honest baseline band) versus on.  The guard asserts the
  disabled knob adds no hot-path overhead beyond timer noise
  (``off_vs_baseline <= 1.25``); the structural argument — the off path is
  one attribute check per run — lives in ``docs/static_analysis.md``.

Run standalone (``python benchmarks/bench_noisy_fastpath.py``), as a quick
CI smoke (``--smoke``: one tiny row, no JSON written), or via pytest
(``pytest benchmarks/bench_noisy_fastpath.py``, which asserts the floors).
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.simulators.gate import (
    Circuit,
    NoiseModel,
    StatevectorSimulator,
    clear_compile_caches,
    compile_trajectory_program_cached,
    transpile,
    transpile_cached,
)
from repro.simulators.gate.transpiler import clear_transpile_cache

SEED = 29
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_noisy.json"

#: Depolarizing rates of the headline compile row (QEC-flavoured: rare 1q
#: errors, 2q errors an order of magnitude more likely).
COMPILE_NOISE = {"oneq_error": 0.002, "twoq_error": 0.01, "readout_error": 0.01}

#: Noise rates swept for the GEMM-vs-slice crossover.  The top rates sit
#: well past the expected crossover so the slow-lane "a crossover exists"
#: assertion has timing headroom on loaded CI hosts (measured ~1.7x GEMM
#: advantage at rate 0.2, ~2x at 0.3 on the dev container).
GEMM_RATES = (0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3)


def qaoa_circuit(num_qubits, gamma, beta, *, measure=True):
    """Ring-plus-chords QAOA shape (the variational benchmarks' landscape)."""
    circuit = Circuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        circuit.h(q)
    for q in range(num_qubits - 1):
        circuit.rzz(2.0 * gamma, q, q + 1)
    for q in range(0, num_qubits, 2):
        circuit.rzz(1.1 * gamma, q, (q + 2) % num_qubits)
    for q in range(num_qubits):
        circuit.rx(2.0 * beta, q)
    if measure:
        for q in range(num_qubits):
            circuit.measure(q, q)
    return circuit


def grid_coupling(rows, cols):
    """Edge list of a rows x cols nearest-neighbour device."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return edges


def time_loop(fn, repeats):
    """Total wall clock of *repeats* calls, as seconds per call."""
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def bench_compile(num_qubits, repeats):
    """Cold vs warm vs re-bind noisy compile throughput at one width."""
    noise = NoiseModel(**COMPILE_NOISE)
    circuit = qaoa_circuit(num_qubits, 0.4, 0.7)
    dtype = np.dtype(np.complex64)

    def cold():
        clear_compile_caches()
        compile_trajectory_program_cached(circuit, noise, dtype=dtype)

    cold_s = time_loop(cold, repeats)
    compile_trajectory_program_cached(circuit, noise, dtype=dtype)  # prime
    warm_s = time_loop(
        lambda: compile_trajectory_program_cached(circuit, noise, dtype=dtype),
        repeats,
    )
    angles = iter(np.linspace(0.05, 2.9, repeats + 1))

    def rebind():
        angle = next(angles)
        compile_trajectory_program_cached(
            qaoa_circuit(num_qubits, angle, -angle), noise, dtype=dtype
        )

    rebind_s = time_loop(rebind, repeats)

    # Seeded counts must not depend on cache temperature.
    simulator = StatevectorSimulator(noise_model=noise)
    clear_compile_caches()
    cold_counts = simulator.run(circuit, shots=256, seed=SEED).counts
    warm_counts = simulator.run(circuit, shots=256, seed=SEED).counts
    identical = dict(cold_counts) == dict(warm_counts)
    assert identical, "cold/warm noisy compile changed seeded counts"

    return {
        "num_qubits": num_qubits,
        "noise": dict(COMPILE_NOISE),
        "compile_cold_ms": round(cold_s * 1e3, 4),
        "compile_warm_ms": round(warm_s * 1e3, 4),
        "compile_rebind_ms": round(rebind_s * 1e3, 4),
        "warm_speedup": round(cold_s / warm_s, 1),
        "rebind_speedup": round(cold_s / rebind_s, 1),
        "seeded_counts_identical_cold_vs_warm": identical,
    }


def bench_gemm_crossover(num_qubits, shots):
    """Slice vs GEMM wall clock per noise rate, plus the count-identity check."""
    circuit = qaoa_circuit(num_qubits, 0.6, 0.9)
    rows = []
    crossover = None
    for rate in GEMM_RATES:
        noise = NoiseModel(oneq_error=rate, twoq_error=min(2 * rate, 0.99))
        timings = {}
        counts = {}
        for label, threshold in (("slice", None), ("gemm", 0.0)):
            simulator = StatevectorSimulator(
                noise_model=noise, noise_gemm_threshold=threshold
            )
            simulator.run(circuit, shots=min(shots, 64), seed=SEED)  # warm caches
            start = time.perf_counter()
            result = simulator.run(circuit, shots=shots, seed=SEED)
            timings[label] = time.perf_counter() - start
            counts[label] = dict(result.counts)
        identical = counts["slice"] == counts["gemm"]
        assert identical, f"GEMM/slice counts diverged at rate {rate}"
        speedup = timings["slice"] / timings["gemm"]
        if crossover is None and speedup >= 1.0:
            crossover = rate
        rows.append(
            {
                "oneq_error": rate,
                "twoq_error": min(2 * rate, 0.99),
                "slice_s": round(timings["slice"], 4),
                "gemm_s": round(timings["gemm"], 4),
                "gemm_speedup": round(speedup, 2),
                "seeded_counts_identical": identical,
            }
        )
    return {
        "num_qubits": num_qubits,
        "shots": shots,
        "rates": rows,
        "crossover_oneq_error": crossover,
    }


def bench_transpile(num_qubits, repeats, rows=8, cols=8):
    """Uncached vs warm structure-keyed transpile against a grid device."""
    coupling = grid_coupling(rows, cols)
    config = dict(
        basis_gates=["rz", "sx", "cx"], coupling_map=coupling, optimization_level=2
    )
    angles = np.linspace(0.05, 2.9, 2 * repeats + 2)
    clear_transpile_cache()
    uncached_s = time_loop(
        lambda: transpile(qaoa_circuit(num_qubits, angles[0], angles[1]), **config),
        repeats,
    )
    transpile_cached(qaoa_circuit(num_qubits, 0.3, 0.5), **config)  # prime
    pool = iter(angles)

    def warm():
        angle = next(pool)
        transpile_cached(qaoa_circuit(num_qubits, angle, -angle), **config)

    warm_s = time_loop(warm, repeats)
    return {
        "num_qubits": num_qubits,
        "device": f"{rows}x{cols} grid",
        "transpile_uncached_ms": round(uncached_s * 1e3, 3),
        "transpile_warm_ms": round(warm_s * 1e3, 3),
        "transpile_speedup": round(uncached_s / warm_s, 1),
    }


#: Noise-band ceiling for the verify guard: with ``verify_compiled=False``
#: the warm run differs from the baseline by one attribute check, so any
#: measured ratio above this is a real hot-path regression, not jitter.
VERIFY_OFF_CEILING = 1.25


def bench_verify_overhead(num_qubits, shots, repeats):
    """Warm-exec cost of the ``verify_compiled`` knob: off must be free.

    Three identically configured noisy simulators run the same warm
    (compile-cache-hit) workload: two with ``verify_compiled=False`` — the
    second quantifies run-to-run timer noise against the first — and one
    with the knob on.  Each timing is the min over three measurement rounds
    so scheduler blips do not fail the guard.  Seeded counts must be
    identical across all three (verification never touches the RNG stream).
    """
    noise = NoiseModel(**COMPILE_NOISE)
    circuit = qaoa_circuit(num_qubits, 0.4, 0.7)
    timings = {}
    counts = {}
    for label, enabled in (("baseline", False), ("off", False), ("on", True)):
        simulator = StatevectorSimulator(noise_model=noise, verify_compiled=enabled)
        simulator.run(circuit, shots=shots, seed=SEED)  # prime compile caches
        timings[label] = min(
            time_loop(lambda: simulator.run(circuit, shots=shots, seed=SEED), repeats)
            for _ in range(3)
        )
        counts[label] = dict(simulator.run(circuit, shots=shots, seed=SEED).counts)
    identical = counts["baseline"] == counts["off"] == counts["on"]
    assert identical, "verify_compiled changed seeded counts"
    return {
        "num_qubits": num_qubits,
        "shots": shots,
        "exec_baseline_ms": round(timings["baseline"] * 1e3, 4),
        "exec_off_ms": round(timings["off"] * 1e3, 4),
        "exec_on_ms": round(timings["on"] * 1e3, 4),
        "off_vs_baseline": round(timings["off"] / timings["baseline"], 3),
        "on_vs_baseline": round(timings["on"] / timings["baseline"], 3),
        "seeded_counts_identical": identical,
    }


def run_suite(write=True, *, compile_qubits=12, gemm_qubits=10, shots=2048, repeats=40):
    """Time every section and (optionally) write the JSON record."""
    record = {
        "benchmark": "noisy_fastpath",
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "compile": bench_compile(compile_qubits, repeats),
        "gemm_crossover": bench_gemm_crossover(gemm_qubits, shots),
        "transpile": bench_transpile(compile_qubits, max(repeats // 2, 5)),
        "verify": bench_verify_overhead(
            min(compile_qubits, 8), min(shots, 512), max(repeats // 4, 5)
        ),
    }
    if write:
        OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_noisy_fastpath_floors():
    """Warm noisy compile >= 5x cold at 12q; a GEMM crossover is measured."""
    record = run_suite()
    compile_row = record["compile"]
    assert compile_row["num_qubits"] == 12
    assert compile_row["warm_speedup"] >= 5.0, record
    assert compile_row["seeded_counts_identical_cold_vs_warm"]
    crossover = record["gemm_crossover"]
    assert all(row["seeded_counts_identical"] for row in crossover["rates"])
    assert crossover["crossover_oneq_error"] is not None, record
    assert record["transpile"]["transpile_speedup"] >= 1.0, record
    assert record["verify"]["seeded_counts_identical"]
    assert record["verify"]["off_vs_baseline"] <= VERIFY_OFF_CEILING, record


def test_noisy_fastpath_smoke():
    """Tiny fast-lane row: every section runs, identities hold, no floors."""
    record = run_suite(
        write=False, compile_qubits=6, gemm_qubits=5, shots=256, repeats=5
    )
    assert record["compile"]["seeded_counts_identical_cold_vs_warm"]
    assert all(
        row["seeded_counts_identical"] for row in record["gemm_crossover"]["rates"]
    )
    assert record["verify"]["seeded_counts_identical"]
    assert record["verify"]["off_vs_baseline"] <= VERIFY_OFF_CEILING, record


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        record = run_suite(
            write=False, compile_qubits=6, gemm_qubits=5, shots=256, repeats=5
        )
        print(json.dumps(record, indent=2))
    else:
        print(json.dumps(run_suite(), indent=2))
