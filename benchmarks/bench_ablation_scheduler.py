"""A5 (extension): cost-hint-driven backend selection for a mixed workload.

The scheduler consumes exactly the metadata the paper says Qiskit hides
(Section 2, "the cost information is not visible"): per-operator cost hints
plus the context's sampling policy.  The benchmark schedules a mixed fleet of
gate and annealing bundles and checks the expected shape: QAOA bundles land on
a gate engine, Ising bundles on an annealing/exact engine, and the makespan is
bounded by the sum of the per-job estimates.
"""

from repro.problems import MaxCutProblem, random_graph
from repro.services import CostAwareScheduler
from repro.workflows import build_anneal_bundle, build_qaoa_bundle


def test_mixed_workload_scheduling(benchmark, cycle4):
    scheduler = CostAwareScheduler()
    workload = [
        build_qaoa_bundle(cycle4, name="qaoa-c4"),
        build_anneal_bundle(cycle4, name="ising-c4"),
        build_anneal_bundle(MaxCutProblem(random_graph(10, 0.4, seed=3)), name="ising-r10"),
        build_qaoa_bundle(MaxCutProblem(random_graph(6, 0.5, seed=4)),
                          gammas=[-0.4], betas=[0.4], name="qaoa-r6"),
    ]

    def run():
        return scheduler.schedule(workload)

    schedule = benchmark(run)

    assert schedule.engine_of("qaoa-c4").startswith("gate.")
    assert schedule.engine_of("qaoa-r6").startswith("gate.")
    assert schedule.engine_of("ising-c4").split(".")[0] in ("anneal", "exact")
    assert schedule.engine_of("ising-r10").split(".")[0] in ("anneal", "exact")
    total = sum(job.estimated_runtime_s for job in schedule.jobs)
    assert schedule.makespan_s <= total + 1e-9

    benchmark.extra_info.update(
        {
            "assignments": {job.bundle_name: job.engine for job in schedule.jobs},
            "makespan_s": round(schedule.makespan_s, 4),
            "total_runtime_s": round(total, 4),
        }
    )


def test_per_bundle_estimation(benchmark, cycle4):
    scheduler = CostAwareScheduler()
    bundle = build_qaoa_bundle(cycle4)

    def run():
        return scheduler.choose_engine(bundle)

    engine, runtime = benchmark(run)
    assert engine.startswith("gate.") and runtime > 0
    benchmark.extra_info.update({"chosen_engine": engine, "estimated_runtime_s": round(runtime, 5)})
