"""Density-oracle benchmark: exact closed-form vs sampled trajectories, with
crossover record.

Times the same noisy workload through the exact density-matrix engine and the
batched (and, at small widths, per-shot reference) trajectory engines across
circuit widths, and writes ``BENCH_density.json`` at the repository root.  The
interesting quantity is the **crossover width**: the density engine costs
``O(4^n)`` per gate but is shot-free, while a trajectory engine costs
``O(shots x 2^n)`` — so below the crossover the oracle is the *cheaper* way to
get a distribution, and above it sampling wins.  The record keeps that
boundary visible as kernels and workloads evolve.

Every row also cross-checks correctness: the batched engine's empirical
histogram must sit within a total-variation tolerance of the oracle's exact
distribution (the same check the differential test suite enforces).

Run standalone (``python benchmarks/bench_density.py``) or via pytest
(``pytest benchmarks/bench_density.py``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.simulators.gate import (
    Circuit,
    DensityMatrixSimulator,
    NoiseModel,
    StatevectorSimulator,
    transpile,
)

SHOTS = 1024
QUBIT_SIZES = (2, 4, 6, 8)
REFERENCE_MAX_QUBITS = 6  # the per-shot loop is too slow beyond this width
BASIS = ("rz", "sx", "cx")
NOISE = dict(oneq_error=1e-3, twoq_error=1e-2, readout_error=2e-2)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_density.json"


def layered_workload(num_qubits: int, layers: int = 3) -> Circuit:
    """The trajectory benchmark's H/RZ + CX-brickwork shape, transpiled."""
    circuit = Circuit(num_qubits, num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            circuit.h(q)
            circuit.rz(0.1 * q + 0.2 * layer, q)
        for q in range(0, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
        for q in range(1, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    circuit.measure_all()
    return transpile(circuit, basis_gates=list(BASIS), optimization_level=1).circuit


def time_call(fn, repeats: int):
    """Best-of-*repeats* wall clock and the last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def total_variation(counts, exact) -> float:
    """TVD between an empirical histogram and exact probabilities."""
    shots = counts.shots
    keys = set(counts) | set(exact)
    return 0.5 * sum(
        abs(counts.get(key, 0) / shots - exact.get(key, 0.0)) for key in keys
    )


def run_suite(qubit_sizes=QUBIT_SIZES, shots=SHOTS, seed=1):
    """Time oracle vs trajectory engines per width and write the JSON record."""
    noise = NoiseModel(**NOISE)
    rows = []
    for num_qubits in qubit_sizes:
        circuit = layered_workload(num_qubits)
        repeats = 3 if num_qubits <= 6 else 2
        oracle = DensityMatrixSimulator(noise_model=noise)
        density_s, exact = time_call(lambda: oracle.probabilities(circuit), repeats)
        batched = StatevectorSimulator(noise_model=noise)
        batched_s, batched_result = time_call(
            lambda: batched.run(circuit, shots=shots, seed=seed), repeats
        )
        tvd = total_variation(batched_result.counts, exact)
        k = max(len(exact), 2)
        assert tvd < 5.0 * np.sqrt(k / (2 * np.pi * shots)), (num_qubits, tvd)
        row = {
            "num_qubits": num_qubits,
            "shots": shots,
            "gates": circuit.num_gates(),
            "density_s": round(density_s, 4),
            "batched_s": round(batched_s, 4),
            "density_vs_batched": round(density_s / batched_s, 2),
            "tvd_batched_vs_exact": round(tvd, 4),
        }
        if num_qubits <= REFERENCE_MAX_QUBITS:
            reference = StatevectorSimulator(noise_model=noise, trajectory_engine="reference")
            reference_s, _ = time_call(
                lambda: reference.run(circuit, shots=shots, seed=seed), repeats
            )
            row["per_shot_reference_s"] = round(reference_s, 4)
            row["density_vs_reference"] = round(density_s / reference_s, 2)
        rows.append(row)
    # The smallest width where exact costs more than sampling; None while the
    # oracle is cheaper everywhere measured.
    crossover = next(
        (row["num_qubits"] for row in rows if row["density_s"] > row["batched_s"]),
        None,
    )
    record = {
        "benchmark": "density_oracle",
        "noise": NOISE,
        "shots": shots,
        "cpu_count": os.cpu_count(),
        "crossover_num_qubits": crossover,
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_density_oracle_crossover(benchmark=None):
    """The oracle agrees with the batched engine and the record is well formed.

    Correctness (TVD per row) is asserted inside :func:`run_suite`; here the
    record's shape is checked and the headline row is exported to
    pytest-benchmark when available.  No absolute-speed assertion is made —
    the crossover width is a property of the host, not a pass/fail gate.
    """
    record = run_suite()
    assert len(record["rows"]) == len(QUBIT_SIZES)
    for row in record["rows"]:
        assert row["density_s"] > 0 and row["batched_s"] > 0
    if benchmark is not None and hasattr(benchmark, "extra_info"):
        headline = record["rows"][-1]
        benchmark.extra_info.update(headline)
        circuit = layered_workload(headline["num_qubits"])
        oracle = DensityMatrixSimulator(noise_model=NoiseModel(**NOISE))
        benchmark(lambda: oracle.probabilities(circuit))


if __name__ == "__main__":
    report = run_suite()
    print(json.dumps(report, indent=2))
    print(f"wrote {OUTPUT}")
