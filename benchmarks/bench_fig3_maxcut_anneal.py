"""E2 (Fig. 3): Max-Cut via a single ISING_PROBLEM descriptor on the annealer.

Reproduces the annealing path of the proof of concept: the same typed
register, one Ising problem descriptor (h = 0, unit J on the cycle edges), the
anneal context with num_reads = 1000, and the decoded result: ground states
1010/0101 with energy -4 (cut 4).
"""

from repro.workflows import default_anneal_context, solve_maxcut


def test_fig3_ising_anneal_path(benchmark, cycle4):
    context = default_anneal_context(num_reads=1000, num_sweeps=1000, seed=42)

    def run():
        return solve_maxcut(cycle4, formulation="ising", context=context)

    solution = benchmark(run)

    assert set(solution.best_assignments) == {"0101", "1010"}
    assert solution.best_cut == 4.0
    assert solution.result.metadata["best_energy"] == -4.0
    assert solution.result.metadata["ground_state_probability"] > 0.9

    benchmark.extra_info.update(
        {
            "expected_cut": round(solution.expected_cut, 4),
            "best_energy": solution.result.metadata["best_energy"],
            "ground_state_probability": round(
                solution.result.metadata["ground_state_probability"], 4
            ),
            "num_reads": solution.result.metadata["num_reads"],
            "engine": solution.result.engine,
        }
    )
