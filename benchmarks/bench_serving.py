"""Serving-runtime benchmark: queue throughput, coalescing, process executor.

Times the PR 8 serving layers and writes ``BENCH_serving.json`` at the
repository root:

* **mixed-workload throughput** — jobs/sec of :class:`JobService` over a
  mixed QAOA / QFT / repetition-code-memory batch (the three bundle shapes
  the paper's middle layer serves side by side), three ways: **coalesced**
  (the default: structure groups execute as one *merged* batch-axis run
  each), **back_to_back** (coalescing on, merging off — PR 8's behaviour:
  one backend call per job out of warm caches), and **uncoalesced** (every
  job alone, cold grouping).  Compile caches are cleared before each run so
  the comparison is honest: ``coalesced_speedup`` (uncoalesced wall over
  merged wall) is the headline, ``merge_speedup`` (back-to-back wall over
  merged wall) isolates what the merged fast path itself buys.
* **trajectory executor** — warm wall clock of the same seeded noisy
  workload on the thread executor versus the persistent process pool, with
  the bit-identity check between their counts.  The speedup is reported for
  the host's actual core count: on a single-core container the process
  path is bookkeeping overhead (~1x or below), and the row says so rather
  than extrapolating.

Run standalone (``python benchmarks/bench_serving.py``), as a quick CI
smoke (``--smoke``: tiny batch, no JSON written), or via pytest
(``pytest benchmarks/bench_serving.py``, which asserts the floors).
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.core import ContextDescriptor, ExecPolicy, package, phase_register
from repro.oplib import (
    measurement,
    qft_operator,
    repetition_memory_operator,
    repetition_register,
)
from repro.problems import MaxCutProblem
from repro.services import JobService
from repro.simulators.gate import (
    Circuit,
    NoiseModel,
    StatevectorSimulator,
    clear_compile_caches,
)
from repro.simulators.gate.fusion import compile_cache_info
from repro.simulators.gate.procpool import shutdown_worker_pool, worker_pool_info
from repro.workflows import build_qaoa_bundle
from repro.workflows.maxcut import default_gate_context

SEED = 37
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Depolarizing rates of the executor row (same QEC-flavoured band as the
#: noisy fast-path benchmark, so the two records are comparable).
EXEC_NOISE = {"oneq_error": 0.002, "twoq_error": 0.01, "readout_error": 0.01}


def qft_bundle(name, *, width=5, seed=1, samples=512):
    reg = phase_register("p", width)
    return package(
        reg,
        [qft_operator(reg, do_swaps=True), measurement(reg)],
        ContextDescriptor(
            exec=ExecPolicy(engine="gate.aer_simulator", samples=samples, seed=seed)
        ),
        name=name,
    )


def qec_bundle(name, *, distance=3, rounds=2, seed=1, samples=512):
    reg = repetition_register("patch", distance)
    return package(
        reg,
        [repetition_memory_operator(reg, distance, rounds=rounds)],
        ContextDescriptor(
            exec=ExecPolicy(
                engine="gate.aer_simulator",
                samples=samples,
                seed=seed,
                options={
                    "trajectory_engine": "auto",
                    "noise": {"oneq_error": 1e-3, "twoq_error": 2e-3},
                },
            )
        ),
        name=name,
    )


def mixed_batch(jobs_per_shape, samples):
    """QAOA + QFT + QEC bundles: three structures, *jobs_per_shape* users each."""
    problem = MaxCutProblem.cycle(4)
    bundles = []
    for i in range(jobs_per_shape):
        context = default_gate_context(problem, samples=samples, seed=i + 1)
        bundles.append(
            build_qaoa_bundle(problem, name=f"qaoa{i}", context=context)
        )
        bundles.append(qft_bundle(f"qft{i}", seed=i + 1, samples=samples))
        bundles.append(qec_bundle(f"qec{i}", seed=i + 1, samples=samples))
    return bundles


def bench_serving(jobs_per_shape, samples, lanes):
    """Jobs/sec of the mixed batch: merged vs back-to-back vs uncoalesced."""
    configs = (
        ("coalesced", dict(coalesce=True)),  # merged fast path, the default
        ("back_to_back", dict(coalesce=True, coalesce_merge=False)),
        ("uncoalesced", dict(coalesce=False)),
    )
    rows = {}
    for label, service_kwargs in configs:
        bundles = mixed_batch(jobs_per_shape, samples)
        clear_compile_caches()
        with JobService(lanes=lanes, **service_kwargs) as service:
            start = time.perf_counter()
            service.submit_many(bundles)
            tickets = service.drain()
            elapsed = time.perf_counter() - start
            stats = service.stats()
        assert stats["failed"] == 0, stats
        assert all(ticket.exception() is None for ticket in tickets)
        rows[label] = {
            "jobs": len(bundles),
            "wall_s": round(elapsed, 4),
            "jobs_per_s": round(len(bundles) / elapsed, 2),
            "groups": stats["groups"],
            "coalesced": stats["coalesced"],
            "merged_groups": stats["merged_groups"],
            "merged_jobs": stats["merged_jobs"],
            "template_compiles": compile_cache_info()["template"]["misses"],
        }
    return {
        "jobs_per_shape": jobs_per_shape,
        "samples": samples,
        "lanes": lanes,
        "runs": rows,
        "coalesced_speedup": round(
            rows["uncoalesced"]["wall_s"] / rows["coalesced"]["wall_s"], 2
        ),
        "merge_speedup": round(
            rows["back_to_back"]["wall_s"] / rows["coalesced"]["wall_s"], 2
        ),
    }


def noisy_workload_circuit(num_qubits):
    """Ring QAOA shape used for the executor comparison."""
    circuit = Circuit(num_qubits, num_qubits)
    for q in range(num_qubits):
        circuit.h(q)
    for q in range(num_qubits):
        circuit.rzz(0.8, q, (q + 1) % num_qubits)
    for q in range(num_qubits):
        circuit.rx(1.4, q)
    for q in range(num_qubits):
        circuit.measure(q, q)
    return circuit


def bench_executor(num_qubits, shots, workers):
    """Thread vs process wall clock for identical seeded chunked runs."""
    circuit = noisy_workload_circuit(num_qubits)
    noise = NoiseModel(**EXEC_NOISE)
    # Chunk the batch well past the worker count so dealing matters.
    chunk_bytes = (2 ** num_qubits) * 8 * max(shots // (8 * workers), 8)
    timings = {}
    counts = {}
    for label in ("thread", "process"):
        simulator = StatevectorSimulator(
            noise_model=noise,
            max_batch_memory=chunk_bytes,
            trajectory_workers=workers,
            trajectory_executor=label,
        )
        simulator.run(circuit, shots=min(shots, 128), seed=SEED)  # warm pool+caches
        start = time.perf_counter()
        result = simulator.run(circuit, shots=shots, seed=SEED)
        timings[label] = time.perf_counter() - start
        counts[label] = dict(result.counts)
        assert result.metadata["trajectory_executor"] == label
    identical = counts["thread"] == counts["process"]
    assert identical, "thread/process executors diverged on seeded counts"
    return {
        "num_qubits": num_qubits,
        "shots": shots,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "pool": worker_pool_info(),
        "thread_s": round(timings["thread"], 4),
        "process_s": round(timings["process"], 4),
        "process_speedup": round(timings["thread"] / timings["process"], 2),
        "seeded_counts_identical": identical,
    }


def run_suite(write=True, *, jobs_per_shape=6, samples=1024, lanes=2,
              exec_qubits=8, exec_shots=2048):
    """Time every section and (optionally) write the JSON record."""
    workers = max(1, min(4, os.cpu_count() or 1))
    record = {
        "benchmark": "serving",
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "serving": bench_serving(jobs_per_shape, samples, lanes),
        "executor": bench_executor(exec_qubits, exec_shots, workers),
    }
    if write:
        OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_serving_floors():
    """Merged groups win outright; structures compile once; executors match."""
    record = run_suite()
    serving = record["serving"]
    coalesced = serving["runs"]["coalesced"]
    # Three distinct structures -> three groups, everyone else coalesces,
    # and every coalesced group executes as one merged batch-axis run.
    assert coalesced["groups"] == 3, serving
    assert coalesced["coalesced"] == coalesced["jobs"] - 3, serving
    assert coalesced["merged_groups"] == 3, serving
    assert coalesced["merged_jobs"] == coalesced["jobs"], serving
    # The QEC shape compiles on the stabilizer engine, so at most the QAOA
    # and QFT structures touch the template cache -- and only once each.
    assert coalesced["template_compiles"] <= 2, serving
    uncoalesced = serving["runs"]["uncoalesced"]
    assert uncoalesced["groups"] == uncoalesced["jobs"], serving
    assert uncoalesced["merged_jobs"] == 0, serving
    # The point of the merged fast path: coalescing now pays for itself.
    assert serving["coalesced_speedup"] >= 1.0, serving
    assert record["executor"]["seeded_counts_identical"]


def test_serving_smoke():
    """Tiny fast-lane batch: every section runs, identities hold, no floors."""
    record = run_suite(
        write=False, jobs_per_shape=2, samples=128, lanes=1,
        exec_qubits=5, exec_shots=256,
    )
    assert record["serving"]["runs"]["coalesced"]["groups"] == 3
    assert record["serving"]["runs"]["coalesced"]["merged_jobs"] > 0
    assert record["executor"]["seeded_counts_identical"]
    shutdown_worker_pool()


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        record = run_suite(
            write=False, jobs_per_shape=2, samples=128, lanes=1,
            exec_qubits=5, exec_shots=256,
        )
        print(json.dumps(record, indent=2))
    else:
        print(json.dumps(run_suite(), indent=2))
    shutdown_worker_pool()
