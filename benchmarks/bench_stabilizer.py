"""Stabilizer tableau engine benchmark: QEC cycles at 50-1000+ qubits.

Times the ISSUE 7 tentpole and writes ``BENCH_stabilizer.json`` at the
repository root:

* **headline** — the acceptance configuration: 4 patches of distance-7
  circuit-level repetition cycles (52 qubits, 7 rounds) at 1024 shots must
  finish in **under a second**, with seeded counts bit-identical across
  ``trajectory_workers`` settings.
* **repetition width sweep** — wall clock per 1024 shots of one
  syndrome-extraction round at distances 25 to 501 (49 to 1001 physical
  qubits), demonstrating the polynomial tableau scaling far beyond any
  amplitude engine's reach.
* **surface width sweep** — two rounds of rotated-surface-code extraction
  at distances 5/9/13 (49 to 337 qubits).
* **logical error rates** — code-capacity repetition memory at distances
  3/5/7 decoded against :class:`~repro.services.qec.RepetitionCodeModel`'s
  closed form; each measured rate must sit within five binomial standard
  deviations of the prediction.

Run standalone (``python benchmarks/bench_stabilizer.py``), as a quick CI
smoke (``--smoke``: tiny rows, no JSON written), or via pytest
(``pytest benchmarks/bench_stabilizer.py``, which asserts the floors).
"""

import json
import math
import os
import sys
import time
from pathlib import Path

from repro.services.qec import (
    QECService,
    RepetitionCodeModel,
    repetition_code_circuit,
    surface_code_cycle_circuit,
)
from repro.simulators.gate import NoiseModel, StatevectorSimulator

SEED = 41
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_stabilizer.json"

#: Circuit-level noise rates of the scaling sweeps (QEC-flavoured: rare 1q
#: errors, 2q errors five times more likely).
SWEEP_NOISE = {"oneq_error": 0.001, "twoq_error": 0.005}

#: The headline acceptance bound: 52 qubits, 1024 shots, under a second.
HEADLINE_BUDGET_S = 1.0

#: Repetition distances of the width sweep (2d - 1 physical qubits each).
REPETITION_DISTANCES = (25, 51, 125, 251, 501)

#: Rotated-surface-code distances of the width sweep (2d^2 - 1 qubits each).
SURFACE_DISTANCES = (5, 9, 13)


def bench_headline(shots=1024, rounds=7, patches=4):
    """The acceptance row: 4 x d=7 cycles, <1 s, worker bit-identity."""
    service = QECService()
    start = time.perf_counter()
    result = service.run_repetition_memory(
        7,
        physical_error_rate=0.002,
        rounds=rounds,
        patches=patches,
        shots=shots,
        seed=SEED,
    )
    elapsed = time.perf_counter() - start
    threaded = service.run_repetition_memory(
        7,
        physical_error_rate=0.002,
        rounds=rounds,
        patches=patches,
        shots=shots,
        seed=SEED,
        trajectory_workers=4,
    )
    identical = threaded.logical_failures == result.logical_failures
    assert identical, "trajectory_workers changed seeded QEC failures"
    return {
        "distance": 7,
        "rounds": rounds,
        "patches": patches,
        "num_qubits": result.num_qubits,
        "shots": shots,
        "wall_s": round(elapsed, 4),
        "budget_s": HEADLINE_BUDGET_S,
        "within_budget": elapsed < HEADLINE_BUDGET_S,
        "logical_error_rate": result.logical_error_rate,
        "seeded_counts_worker_invariant": identical,
    }


def bench_repetition_widths(distances, shots):
    """Wall clock of one noisy syndrome round per 1024-shot-equivalent."""
    noise = NoiseModel(**SWEEP_NOISE)
    rows = []
    for distance in distances:
        circuit = repetition_code_circuit(distance, rounds=1)
        simulator = StatevectorSimulator(
            noise_model=noise, trajectory_engine="stabilizer"
        )
        start = time.perf_counter()
        result = simulator.run(circuit, shots=shots, seed=SEED)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "distance": distance,
                "num_qubits": circuit.num_qubits,
                "shots": shots,
                "wall_s": round(elapsed, 4),
                "shots_per_s": round(shots / elapsed, 1),
                "num_batches": result.metadata["num_batches"],
            }
        )
    return rows


def bench_surface_widths(distances, shots, rounds=2):
    """Wall clock of *rounds* rotated-surface-code extraction rounds."""
    noise = NoiseModel(**SWEEP_NOISE)
    rows = []
    for distance in distances:
        circuit = surface_code_cycle_circuit(distance, rounds=rounds)
        simulator = StatevectorSimulator(
            noise_model=noise, trajectory_engine="stabilizer"
        )
        start = time.perf_counter()
        simulator.run(circuit, shots=shots, seed=SEED)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "distance": distance,
                "rounds": rounds,
                "num_qubits": circuit.num_qubits,
                "shots": shots,
                "wall_s": round(elapsed, 4),
            }
        )
    return rows


def bench_logical_error_rates(shots, patches=4, physical_error_rate=0.2):
    """Code-capacity memory vs the closed-form model at distances 3/5/7."""
    service = QECService()
    model = RepetitionCodeModel()
    rows = []
    for distance in (3, 5, 7):
        result = service.run_repetition_memory(
            distance,
            physical_error_rate=physical_error_rate,
            patches=patches,
            shots=shots,
            seed=SEED,
            code_capacity=True,
        )
        predicted = model.logical_error_rate(distance, physical_error_rate)
        samples = shots * patches
        sigma = math.sqrt(max(predicted * (1.0 - predicted), 1e-12) / samples)
        deviation = abs(result.logical_error_rate - predicted)
        within = deviation < 5.0 * sigma
        assert within, (
            f"d={distance}: measured {result.logical_error_rate} vs "
            f"predicted {predicted} (5 sigma = {5.0 * sigma})"
        )
        rows.append(
            {
                "distance": distance,
                "physical_error_rate": physical_error_rate,
                "shots": shots,
                "patches": patches,
                "measured": result.logical_error_rate,
                "predicted": predicted,
                "deviation_sigma": round(deviation / sigma, 2),
                "within_5_sigma": within,
            }
        )
    return rows


def run_suite(
    write=True,
    *,
    repetition_distances=REPETITION_DISTANCES,
    surface_distances=SURFACE_DISTANCES,
    sweep_shots=1024,
    surface_shots=256,
    rate_shots=4096,
):
    """Time every section and (optionally) write the JSON record."""
    record = {
        "benchmark": "stabilizer",
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "headline": bench_headline(),
        "repetition_widths": bench_repetition_widths(repetition_distances, sweep_shots),
        "surface_widths": bench_surface_widths(surface_distances, surface_shots),
        "logical_error_rates": bench_logical_error_rates(rate_shots),
    }
    if write:
        OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def smoke_suite():
    """Tiny fast-lane rows: every section runs, identities hold, no JSON."""
    return run_suite(
        write=False,
        repetition_distances=(25, 51),
        surface_distances=(5,),
        sweep_shots=256,
        surface_shots=64,
        rate_shots=1024,
    )


def test_stabilizer_floors():
    """Headline <1 s at 52 qubits; sweep reaches 1000+ qubits; rates match."""
    record = run_suite()
    headline = record["headline"]
    assert headline["num_qubits"] == 52
    assert headline["within_budget"], record
    assert headline["seeded_counts_worker_invariant"]
    widest = max(row["num_qubits"] for row in record["repetition_widths"])
    assert widest >= 1000, record
    assert all(row["within_5_sigma"] for row in record["logical_error_rates"])


def test_stabilizer_smoke():
    """Fast-lane subset: headline budget + closed-form identity still hold."""
    record = smoke_suite()
    assert record["headline"]["within_budget"], record
    assert record["headline"]["seeded_counts_worker_invariant"]
    assert all(row["within_5_sigma"] for row in record["logical_error_rates"])


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        print(json.dumps(smoke_suite(), indent=2))
    else:
        print(json.dumps(run_suite(), indent=2))
