"""E3 (Section 5): cross-backend portability of the same typed problem.

The paper's central claim: the same typed Max-Cut problem runs on a gate
simulator and on an annealer by changing only the operator formulation and the
context, and both produce the optimal cut assignments 1010 and 0101 (cut = 4).
The benchmark times the full two-backend round trip and records both results
side by side, plus the classical baselines for reference.
"""

from repro.workflows import default_anneal_context, default_gate_context, solve_maxcut


def test_portability_both_backends(benchmark, cycle4):
    gate_ctx = default_gate_context(cycle4, samples=2048, seed=42)
    anneal_ctx = default_anneal_context(num_reads=500, num_sweeps=500, seed=42)

    def run():
        gate = solve_maxcut(cycle4, formulation="qaoa", context=gate_ctx)
        anneal = solve_maxcut(cycle4, formulation="ising", context=anneal_ctx)
        return gate, anneal

    gate, anneal = benchmark(run)

    # Who wins: both find the optimum; the annealer's *expected* cut is higher
    # (it concentrates on ground states), the QAOA p=1 expected cut sits at ~3.
    assert set(gate.best_assignments) == set(anneal.best_assignments) == {"0101", "1010"}
    assert anneal.expected_cut > gate.expected_cut
    assert gate.found_optimum and anneal.found_optimum

    optimal, _ = cycle4.brute_force()
    greedy, _ = cycle4.greedy(seed=0, restarts=3)
    benchmark.extra_info.update(
        {
            "gate_expected_cut": round(gate.expected_cut, 4),
            "anneal_expected_cut": round(anneal.expected_cut, 4),
            "optimal_cut": optimal,
            "greedy_baseline_cut": greedy,
            "shared_register": "ising_vars (ISING_SPIN, LSB_0, AS_BOOL, width 4)",
        }
    )
