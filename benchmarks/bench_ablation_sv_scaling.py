"""A4 (ablation): state-vector substrate scaling with register width.

Runs the full middle-layer QFT workflow (descriptor -> lowering -> transpile ->
simulate) for growing phase-register widths.  Expected shape: runtime grows
exponentially with width (each extra carrier doubles the state vector) while
the two-qubit count grows only quadratically — the gap the cost hints expose
to the scheduler.
"""

import pytest

from repro import package, phase_register
from repro.core import ContextDescriptor, ExecPolicy
from repro.oplib import measurement, qft_operator
from repro.backends import submit


@pytest.mark.parametrize("width", [4, 8, 12])
def test_qft_width_scaling(benchmark, width):
    reg = phase_register(f"p{width}", width)
    context = ContextDescriptor(
        exec=ExecPolicy(engine="gate.aer_simulator", samples=1024, seed=1,
                        options={"optimization_level": 1})
    )
    bundle = package(reg, [qft_operator(reg), measurement(reg)], context, name=f"qft{width}")

    def run():
        return submit(bundle)

    result = benchmark(run)
    assert result.counts.shots == 1024
    benchmark.extra_info.update(
        {
            "width": width,
            "statevector_dim": 2 ** width,
            "lowered_twoq": result.metadata["lowered_twoq"],
            "cost_hint_twoq": bundle.operators[0].cost_hint.twoq,
        }
    )
