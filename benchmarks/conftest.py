"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark reproduces one row of the experiment index in DESIGN.md and
records the quantities the paper reports in ``benchmark.extra_info`` so the
pytest-benchmark JSON/terminal output doubles as the reproduction record
(EXPERIMENTS.md quotes these numbers).
"""

import pytest

from repro.problems import MaxCutProblem


@pytest.fixture
def cycle4():
    """The paper's proof-of-concept instance: unit-weight 4-cycle."""
    return MaxCutProblem.cycle(4)
