"""Trajectory engine benchmark: per-shot reference vs batched (serial and
parallel), with JSON record.

Times the same noisy workload through both trajectory engines at 8–12 qubits
x 1024 shots — the batched engine both with one worker and with a
``trajectory_workers=4`` thread pool over its shot chunks — and writes the
wall-clock numbers to ``BENCH_trajectory.json`` at the repository root, so
the perf trajectory of the batched engine is tracked from the PR that
introduced it.  Seeded counts must be bit-identical across worker counts
(per-chunk ``SeedSequence`` streams); the suite asserts that on every row.

The workload is an H/RZ + CX-brickwork circuit **transpiled to the rz/sx/cx
basis** — the circuit shape the gate backend actually hands the simulator
(``GateBackend.run`` always transpiles first), with depolarizing + readout
noise at NISQ-like rates.  Transpilation expands every logical 1q gate into
an rz–sx–rz chain, which the per-shot reference pays for instruction by
instruction and the batched engine's run fusion collapses back into single
fused applications.

Run standalone (``python benchmarks/bench_trajectory_batching.py``) or via
pytest (``pytest benchmarks/bench_trajectory_batching.py``).
"""

import json
import os
import time
from pathlib import Path

from repro.simulators.gate import Circuit, NoiseModel, StatevectorSimulator, transpile

SHOTS = 1024
QUBIT_SIZES = (8, 10, 12)
BASIS = ("rz", "sx", "cx")
NOISE = dict(oneq_error=1e-3, twoq_error=1e-2, readout_error=2e-2)
PARALLEL_WORKERS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"


def layered_workload(num_qubits: int, layers: int = 3) -> Circuit:
    """H/RZ layers with CX brickwork, lowered to the backend's basis gates."""
    circuit = Circuit(num_qubits, num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            circuit.h(q)
            circuit.rz(0.1 * q + 0.2 * layer, q)
        for q in range(0, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
        for q in range(1, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    circuit.measure_all()
    return transpile(circuit, basis_gates=list(BASIS), optimization_level=1).circuit


def time_engine(engine: str, circuit: Circuit, shots: int, seed: int, repeats: int, workers: int = 1):
    """Best-of-*repeats* wall clock for one engine configuration."""
    simulator = StatevectorSimulator(
        noise_model=NoiseModel(**NOISE),
        trajectory_engine=engine,
        trajectory_workers=workers,
    )
    best, counts, metadata = float("inf"), None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = simulator.run(circuit, shots=shots, seed=seed)
        best = min(best, time.perf_counter() - start)
        counts, metadata = result.counts, result.metadata
    return best, counts, metadata


def run_suite(qubit_sizes=QUBIT_SIZES, shots=SHOTS, seed=1):
    """Time every engine configuration per size and write the JSON record."""
    rows = []
    for num_qubits in qubit_sizes:
        circuit = layered_workload(num_qubits)
        repeats = 3 if num_qubits <= 10 else 2
        batched_s, batched_counts, meta = time_engine("batched", circuit, shots, seed, repeats)
        parallel_s, parallel_counts, parallel_meta = time_engine(
            "batched", circuit, shots, seed, repeats, workers=PARALLEL_WORKERS
        )
        reference_s, reference_counts, _ = time_engine("reference", circuit, shots, seed, repeats)
        assert batched_counts.shots == reference_counts.shots == shots
        # Reproducibility contract: per-chunk SeedSequence streams make the
        # seeded histogram independent of the worker count.
        assert dict(parallel_counts) == dict(batched_counts)
        rows.append(
            {
                "num_qubits": num_qubits,
                "shots": shots,
                "gates": circuit.num_gates(),
                "num_chunks": meta["num_batches"],
                "batched_s": round(batched_s, 4),
                "parallel_workers": parallel_meta["trajectory_workers"],
                "parallel_s": round(parallel_s, 4),
                "parallel_speedup": round(batched_s / parallel_s, 2),
                "per_shot_reference_s": round(reference_s, 4),
                "speedup": round(reference_s / batched_s, 2),
            }
        )
    record = {
        "benchmark": "trajectory_batching",
        "noise": NOISE,
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_trajectory_batching_speedup(benchmark=None):
    """Batched engine beats the per-shot reference on the 12-qubit noisy workload.

    Parallel chunk execution must sample the identical seeded histogram at
    every worker count (asserted inside :func:`run_suite`) and, on hosts
    with at least two cores, must beat the single-worker batched engine on
    the multi-chunk 12-qubit row.
    """
    record = run_suite()
    by_qubits = {row["num_qubits"]: row for row in record["rows"]}
    headline = by_qubits[max(by_qubits)]
    assert headline["speedup"] >= 5.0, record
    # Loose floor: thread-pool overhead and BLAS-thread contention can eat
    # into the win on small/loaded hosts; the reproducibility assertion in
    # run_suite() is the hard gate.
    if (os.cpu_count() or 1) >= 2 and headline["num_chunks"] >= 2:
        assert headline["parallel_speedup"] >= 0.8, record
    if benchmark is not None and hasattr(benchmark, "extra_info"):
        benchmark.extra_info.update(headline)
        circuit = layered_workload(headline["num_qubits"])
        simulator = StatevectorSimulator(noise_model=NoiseModel(**NOISE))
        benchmark(lambda: simulator.run(circuit, shots=SHOTS, seed=1))


if __name__ == "__main__":
    report = run_suite()
    print(json.dumps(report, indent=2))
    print(f"wrote {OUTPUT}")
