#!/usr/bin/env python
"""Error correction as execution context: the same program, with and without QEC.

Listing 5 of the paper shows a QEC block added to the context descriptor — the
operator descriptors stay purely logical.  This example packages the Max-Cut
QAOA bundle once, then asks the orthogonal QEC service what running it would
cost under surface codes of increasing distance, and how the logical failure
probability falls as the distance grows.

Run:  python examples/qec_context_sweep.py
"""

from repro.core import QECPolicy
from repro.problems import MaxCutProblem
from repro.services import QECService, SurfaceCodeModel
from repro.workflows import build_qaoa_bundle


def main() -> None:
    problem = MaxCutProblem.cycle(4)
    bundle = build_qaoa_bundle(problem)
    print(f"Logical program: {len(bundle.operators)} operator descriptors over "
          f"{bundle.total_width} logical carriers")
    print("The operator descriptors are identical with and without QEC; only the "
          "context's qec block changes.\n")

    service = QECService()
    physical_error_rate = 1e-3
    print(f"Physical error rate assumed: {physical_error_rate:g}")
    header = f"{'distance':>8} {'phys/logical':>13} {'total phys':>11} {'rounds':>7} " \
             f"{'time (us)':>10} {'p_L/round':>12} {'P(failure)':>11}"
    print(header)
    print("-" * len(header))
    for plan in service.compare_distances(bundle, (3, 5, 7, 9, 11),
                                          physical_error_rate=physical_error_rate):
        print(
            f"{plan.policy.distance:>8} {plan.physical_qubits_per_logical:>13} "
            f"{plan.total_physical_qubits:>11} {plan.syndrome_rounds:>7} "
            f"{plan.execution_time_us:>10.1f} {plan.logical_error_rate_per_round:>12.2e} "
            f"{plan.failure_probability:>11.2e}"
        )

    # The Listing-5 policy: distance-7 surface code, automatic allocation.
    listing5 = QECPolicy(
        code_family="surface",
        distance=7,
        allocator="auto",
        logical_gate_set=["H", "S", "CNOT", "T", "MEASURE_Z"],
        physical_error_rate=physical_error_rate,
    )
    plan = service.plan(bundle, listing5)
    print("\nListing 5 policy (surface code, distance 7):")
    print(f"  patches per register    : { {r: len(p) for r, p in plan.patch_assignment.items()} }")
    print(f"  physical qubits needed  : {plan.total_physical_qubits}")
    print(f"  unsupported logical gates (need synthesis beyond the declared set): "
          f"{plan.unsupported_logical_gates or 'none'}")

    # How far must the distance grow for a 1e-9 per-round logical rate?
    model = SurfaceCodeModel()
    required = model.distance_for_target(physical_error_rate, 1e-9)
    print(f"\nDistance required for a 1e-9 per-round logical error rate: {required}")


if __name__ == "__main__":
    main()
