#!/usr/bin/env python
"""The motivational example done right: a typed 10-qubit QFT (Listing 1 vs 2-4).

Section 2 of the paper walks through a plain Qiskit QFT program and lists what
a technology-agnostic middle layer should have made explicit: the register's
meaning, the measurement semantics, the execution policy, and the cost of the
operator.  This example is the middle-layer version of that program:

* a width-10 *phase register* with ``phase_scale = 1/1024`` (Listing 2),
* a ``QFT_TEMPLATE`` operator descriptor with a cost hint and an explicit
  result schema (Listing 3),
* an execution context selecting the simulator, 10000 samples, a linear
  coupling map and basis gates (Listing 4),
* decoding of the measured counts into phase fractions via the declared
  semantics — no guessing about endianness.

The input state is prepared at phase 3/8 of a turn (basis value 384/1024), so
the inverse QFT concentrates the measured distribution on that value.

Run:  python examples/qft_phase_register.py
"""

from fractions import Fraction

from repro import package, phase_register
from repro.core import ContextDescriptor, ExecPolicy, TargetSpec
from repro.oplib import measurement, prep_basis_state, qft_operator, inverse_qft_operator
from repro.backends import submit


def main() -> None:
    width = 10
    reg = phase_register("reg_phase", width, name="phase", phase_scale="1/1024")
    print("Quantum data type (Listing 2):")
    print(" ", reg.to_dict())

    # Intent: prepare a known phase value, apply QFT then its inverse, measure.
    target_phase = Fraction(3, 8)  # = 384/1024, exactly representable
    prepare = prep_basis_state(reg, target_phase, name="prepare_phase")
    qft = qft_operator(reg, approx_degree=0, do_swaps=True)
    iqft = inverse_qft_operator(reg, do_swaps=True)
    meas = measurement(reg)

    print("\nOperator descriptor (Listing 3):")
    print(" ", {k: v for k, v in qft.to_dict().items() if k != "result_schema"})
    print("  cost hint:", qft.cost_hint.to_dict())

    context = ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=10000,
            seed=42,
            target=TargetSpec(
                basis_gates=["sx", "rz", "cx"],
                coupling_map=[[i, i + 1] for i in range(width - 1)],
            ),
            options={"optimization_level": 2},
        )
    )
    print("\nContext descriptor (Listing 4):")
    print(" ", context.to_dict()["exec"])

    bundle = package(reg, [prepare, qft, iqft, meas], context, name="qft-roundtrip")
    result = submit(bundle)

    decoded = result.decoded().single()
    top = decoded.most_likely()
    print("\nExecution on", result.engine)
    print(f"  transpiled depth        : {result.metadata['transpiled_twoq']} two-qubit gates, "
          f"depth {result.metadata['transpiled_depth']}")
    print(f"  most likely outcome     : bits={top.bits}  decoded phase={top.value} of a turn")
    print(f"  probability             : {top.probability:.3f}")
    print(f"  expected phase fraction : "
          f"{decoded.expectation(lambda v: float(v)):.4f} (target {float(target_phase):.4f})")
    assert top.value == target_phase, "QFT round-trip should return the prepared phase"
    print("\nQFT -> IQFT round-trip recovered the typed phase value exactly.")


if __name__ == "__main__":
    main()
