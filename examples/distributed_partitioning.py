#!/usr/bin/env python
"""Distributed execution policy: partitioning a problem across several QPUs.

The context's ``comm`` block declares how many QPUs are available, their
capacity, and whether teleportation is allowed.  The orthogonal communication
service partitions the carriers of a larger Max-Cut instance across the QPUs
and reports how many EPR pairs (teleported gates) the chosen partition costs —
the communication-volume metadata an HPC-style scheduler would consume.

Run:  python examples/distributed_partitioning.py
"""

from repro.core import CommPolicy
from repro.problems import MaxCutProblem, random_graph
from repro.services import CommunicationService, CostAwareScheduler
from repro.workflows import build_anneal_bundle, build_qaoa_bundle


def main() -> None:
    # A 12-node random Max-Cut instance — too large for a hypothetical 8-qubit QPU.
    problem = MaxCutProblem(random_graph(12, 0.35, seed=11))
    bundle = build_qaoa_bundle(
        problem,
        gammas=[-0.4],
        betas=[0.4],
        context=None,
    )
    print(f"Problem: Max-Cut on a random graph with {problem.num_nodes} nodes and "
          f"{len(problem.edges)} edges")

    service = CommunicationService()
    print(f"\n{'QPUs':>5} {'capacity':>9} {'EPR pairs':>10} {'est. fidelity':>14}  partition sizes")
    for max_qpus, capacity in ((1, 16), (2, 8), (3, 6), (4, 4)):
        policy = CommPolicy(allow_teleportation=True, max_qpus=max_qpus, qpu_capacity=capacity)
        try:
            plan = service.plan(bundle, policy)
        except Exception as exc:  # noqa: BLE001 - demonstration output
            print(f"{max_qpus:>5} {capacity:>9}  infeasible: {exc}")
            continue
        sizes = [len(plan.carriers_on(q)) for q in range(plan.num_qpus)]
        print(
            f"{plan.num_qpus:>5} {capacity:>9} {plan.epr_pairs:>10} "
            f"{plan.estimated_fidelity:>14.3f}  {sizes}"
        )

    # The scheduler consumes the same cost metadata to pick engines for a mixed fleet.
    print("\nCost-hint driven engine selection for a mixed workload:")
    scheduler = CostAwareScheduler()
    workload = [
        build_qaoa_bundle(MaxCutProblem.cycle(4), name="qaoa-c4"),
        build_anneal_bundle(MaxCutProblem.cycle(4), name="ising-c4"),
        build_anneal_bundle(problem, name="ising-random12"),
    ]
    schedule = scheduler.schedule(workload)
    for job in sorted(schedule.jobs, key=lambda j: j.start_s):
        print(
            f"  {job.bundle_name:<15} -> {job.engine:<26} "
            f"runtime ~{job.estimated_runtime_s * 1000:7.1f} ms  start at {job.start_s * 1000:6.1f} ms"
        )
    print(f"  predicted makespan: {schedule.makespan_s * 1000:.1f} ms")


if __name__ == "__main__":
    main()
