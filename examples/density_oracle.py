#!/usr/bin/env python
"""Density-matrix oracle: exact noisy distributions and expectation values.

Three demonstrations of the ``engine="density"`` workload class introduced by
the density-matrix engine:

1. **Exact distributions** — the noisy GHZ circuit's outcome probabilities in
   closed form (no shots, no sampling error), versus the batched trajectory
   engine's empirical histogram at 4096 shots (total-variation distance
   printed).
2. **Exact expectation values** — ``<ZZ>``, ``<XX>`` and a mixed-term
   Hamiltonian on the noisy state, computed as ``tr(O rho)`` to machine
   precision.
3. **Exact noisy fidelity** — how far depolarizing noise drags the state from
   the ideal GHZ target, measured as ``<psi_ideal| rho |psi_ideal>``.

Run:  python examples/density_oracle.py
"""

from repro.simulators.gate import (
    Circuit,
    DensityMatrix,
    DensityMatrixSimulator,
    NoiseModel,
    Statevector,
    StatevectorSimulator,
)

SHOTS = 4096
NOISE = NoiseModel(oneq_error=0.01, twoq_error=0.03, readout_error=0.02)


def ghz(num_qubits: int, measured: bool = True) -> Circuit:
    """The GHZ preparation circuit, optionally with terminal measurements."""
    circuit = Circuit(num_qubits, num_qubits)
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    if measured:
        circuit.measure_all()
    return circuit


def main() -> None:
    """Run the oracle demonstrations and print the headline numbers."""
    oracle = DensityMatrixSimulator(noise_model=NOISE)
    circuit = ghz(3)

    # 1. Exact distribution vs sampled histogram.
    exact = oracle.probabilities(circuit)
    sampled = StatevectorSimulator(noise_model=NOISE).run(
        circuit, shots=SHOTS, seed=11
    )
    empirical = {key: count / SHOTS for key, count in sampled.counts.items()}
    tvd = 0.5 * sum(
        abs(exact.get(k, 0.0) - empirical.get(k, 0.0))
        for k in set(exact) | set(empirical)
    )
    print("Exact noisy GHZ distribution (density oracle)")
    for key in sorted(exact, key=exact.get, reverse=True)[:4]:
        print(f"  P({key}) = {exact[key]:.6f}   sampled {empirical.get(key, 0.0):.6f}")
    print(f"  TVD(batched @ {SHOTS} shots, exact) = {tvd:.4f}")
    print()

    # 2. Exact expectation values on the noisy pre-measurement state.
    unitary = ghz(3, measured=False)
    print("Exact expectation values, tr(O rho)")
    for observable in ("ZZI", "XXX"):
        print(f"  <{observable}> = {oracle.expectation(unitary, observable):+.6f}")
    hamiltonian = {"ZZI": 0.5, "IZZ": 0.5, "XXX": -1.0}
    energy = oracle.expectation(unitary, hamiltonian)
    print(f"  <H> for H = 0.5 ZZI + 0.5 IZZ - XXX : {energy:+.6f}")
    print()

    # 3. Exact noisy fidelity against the ideal GHZ state.
    ideal = Statevector(3).evolve(ghz(3, measured=False))
    rho = DensityMatrix(3).evolve(ghz(3, measured=False), noise_model=NOISE)
    fidelity = rho.fidelity(ideal)
    print(f"Exact noisy fidelity <GHZ| rho |GHZ> = {fidelity:.6f}")
    assert fidelity < 1.0 and tvd < 0.1
    print("Oracle and trajectory engines agree within sampling tolerance: True")


if __name__ == "__main__":
    main()
