#!/usr/bin/env python
"""Portability demonstration: the full descriptor workflow of Figures 2 and 3.

Instead of the one-call convenience wrapper, this example builds every
middle-layer artifact explicitly — the quantum data type, the operator
descriptors, the two execution contexts — writes them to disk as the
QDT.json / QOP.json / CTX.json / job.json files the paper's figures show, and
submits both bundles.  The intent artifacts (register + problem) are shared;
only the operator formulation and the context differ.

Run:  python examples/maxcut_portability.py [output_directory]
"""

import sys
import tempfile
from pathlib import Path

from repro import ising_register, package
from repro.core import AnnealPolicy, ContextDescriptor, ExecPolicy, TargetSpec
from repro.oplib import ising_problem_operator, qaoa_sequence
from repro.problems import MaxCutProblem
from repro.backends import submit
from repro.workflows import ring_coupling_map, write_artifacts


def main() -> None:
    out_root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro_poc_"))
    problem = MaxCutProblem.cycle(4)

    # 1. The shared quantum data type: four ISING_SPIN decision variables,
    #    LSB_0 ordering, boolean readout (Section 5).
    qdt = ising_register("ising_vars", problem.num_nodes, name="s")
    print("Quantum data type:", qdt.to_dict())

    # 2a. Gate formulation: the QAOA descriptor stack.
    qaoa_ops = qaoa_sequence(
        qdt,
        problem.edges,
        weights=problem.weights,
        gammas=[-0.39269908169872414],
        betas=[0.39269908169872414],
    )
    gate_context = ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=4096,
            seed=42,
            target=TargetSpec(
                basis_gates=["sx", "rz", "cx"],
                coupling_map=ring_coupling_map(problem.num_nodes),
            ),
            options={"optimization_level": 2},
        )
    )
    gate_bundle = package(qdt, qaoa_ops, gate_context, name="maxcut-qaoa")

    # 2b. Annealing formulation: a single Ising problem descriptor.
    h, edges, weights, constant = problem.to_ising()
    ising_op = ising_problem_operator(qdt, h=h, edges=edges, weights=weights, constant=constant)
    anneal_context = ContextDescriptor(
        exec=ExecPolicy(engine="anneal.simulated_annealer", samples=1000, seed=42),
        anneal=AnnealPolicy(num_reads=1000, num_sweeps=1000, seed=42),
    )
    anneal_bundle = package(qdt, [ising_op], anneal_context, name="maxcut-ising")

    # 3. Write the artifact directories (QDT.json, QOP_*.json, CTX.json, job.json).
    for bundle, sub in ((gate_bundle, "gate_path"), (anneal_bundle, "anneal_path")):
        manifest = write_artifacts(bundle, out_root / sub)
        print(f"\nArtifacts for {bundle.name} written to {out_root / sub}:")
        for kind, files in manifest.items():
            print(f"  {kind:>4}: {', '.join(files)}")

    # 4. Submit both bundles and compare the decoded results.
    print("\nSubmitting both formulations...")
    for bundle in (gate_bundle, anneal_bundle):
        result = submit(bundle)
        decoded = result.decoded().single()
        distribution = {o.bits: o.probability for o in decoded.outcomes}
        expected = problem.expected_cut_from_distribution(distribution)
        top = decoded.most_likely()
        print(
            f"  {bundle.name:>13} on {result.engine:<26} "
            f"expected cut = {expected:5.3f}   most likely assignment = {top.bits} "
            f"(cut {problem.cut_value(top.bits):g})"
        )

    print(f"\nAll artifacts are under: {out_root}")


if __name__ == "__main__":
    main()
