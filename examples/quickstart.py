#!/usr/bin/env python
"""Quickstart: one typed problem, two quantum technologies.

This is the paper's proof of concept in ~40 lines of user code: declare what
the register *means* once, describe the Max-Cut problem as operator
descriptors, and run it on a gate-model simulator (QAOA formulation) and on a
simulated annealer (Ising formulation) by swapping only the operator
formulation and the execution context.

Run:  python examples/quickstart.py
"""

from repro import MaxCutProblem, solve_maxcut
from repro.backends import GateBackend
from repro.workflows import build_qaoa_bundle


def demo_engine_knobs(problem: "MaxCutProblem") -> None:
    """Exercise the simulator's exec-policy knobs (see README's knob table).

    Every knob is a plain entry of ``context.exec.options``.  The run below
    forces chunked execution (small ``max_batch_memory``) on a 4-thread pool
    and checks the reproducibility contract: seeded counts are bit-identical
    at every ``trajectory_workers`` value.
    """
    counts_by_workers = {}
    for workers in (1, 4):
        bundle = build_qaoa_bundle(problem)
        bundle.context.exec.seed = 2025
        bundle.context.exec.options.update(
            {
                "noise": {"oneq_error": 1e-3},       # forces the trajectory path
                "trajectory_engine": "batched",      # default, stated for clarity
                "trajectory_dtype": "complex64",     # default, stated for clarity
                "max_batch_memory": 4096,            # tiny budget -> many chunks
                "trajectory_workers": workers,       # new in this PR
            }
        )
        result = GateBackend().run(bundle)
        assert result.metadata["trajectory_engine"] == "batched"
        assert result.metadata["trajectory_workers"] == workers
        assert result.metadata["num_batches"] > 1
        counts_by_workers[workers] = dict(result.counts)
    assert counts_by_workers[1] == counts_by_workers[4]
    print("Engine knobs (context.exec.options on the gate path)")
    print("  trajectory_workers : seeded counts bit-identical for 1 vs 4 workers")
    print()


def main() -> None:
    # The 4-node cycle with unit weights — the instance from Section 5.
    problem = MaxCutProblem.cycle(4)
    optimal_cut, optimal_assignments = problem.brute_force()
    print(f"Problem: Max-Cut on the 4-cycle (optimal cut = {optimal_cut:g})")
    print(f"Optimal assignments: {['{}'.format(''.join(map(str, a))) for a in optimal_assignments]}")
    print()

    # Gate path: QAOA descriptor stack -> state-vector simulator.
    gate = solve_maxcut(problem, formulation="qaoa")
    print("Gate path (QAOA on the state-vector simulator)")
    print(f"  engine            : {gate.result.engine}")
    print(f"  expected cut      : {gate.expected_cut:.3f}  (paper reports ~3.0-3.2)")
    print(f"  best assignments  : {gate.best_assignments}  (cut = {gate.best_cut:g})")
    print(f"  approximation     : {gate.approximation_ratio:.3f}")
    print()

    # Annealing path: a single Ising problem descriptor -> simulated annealer.
    anneal = solve_maxcut(problem, formulation="ising")
    print("Annealing path (Ising problem on the simulated annealer)")
    print(f"  engine            : {anneal.result.engine}")
    print(f"  expected cut      : {anneal.expected_cut:.3f}")
    print(f"  best assignments  : {anneal.best_assignments}  (cut = {anneal.best_cut:g})")
    print(f"  ground-state prob : {anneal.result.metadata['ground_state_probability']:.3f}")
    print()

    demo_engine_knobs(problem)

    both_found_optimum = gate.found_optimum and anneal.found_optimum
    print(f"Both backends found the optimal cuts 1010 / 0101: {both_found_optimum}")


if __name__ == "__main__":
    main()
