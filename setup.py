"""Setuptools entry point.

Package metadata lives here (the project ships no ``pyproject.toml``); the
long description is the root ``README.md``, so PyPI-style renderers and
``pip show`` surface the same quickstart and exec-policy knob table the
repository documents.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).resolve().parent / "README.md"

setup(
    name="repro-markidis-npp25",
    version="0.2.0",
    description=(
        "Reproduction of conf_sc_MarkidisNPP25: typed quantum data and "
        "operator descriptors over gate-model and annealing simulators"
    ),
    long_description=README.read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
)
