"""Execution substrates used by the reference backends.

Two families are provided, mirroring the paper's proof of concept:

* :mod:`repro.simulators.gate` — a NumPy state-vector simulator with a small
  transpiler, standing in for IBM Qiskit Aer.
* :mod:`repro.simulators.anneal` — a binary-quadratic-model representation
  and a simulated-annealing sampler, standing in for D-Wave Ocean's ``neal``.

Both are deliberately independent of the middle-layer core: they know nothing
about descriptors.  Only :mod:`repro.backends` bridges the two worlds.
"""
