"""Exact (brute-force) solver for small binary quadratic models.

Enumerates every spin configuration and returns the full spectrum as a
:class:`~repro.results.sampleset.SampleSet`.  Useful as ground truth for
tests, as the optimal baseline in benchmarks, and as the reference the paper's
"optimal cut assignments 1010 and 0101" claim is checked against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.errors import SimulationError
from ...results.sampleset import SampleSet
from .bqm import BinaryQuadraticModel, Vartype

__all__ = ["ExactSolver"]

MAX_EXACT_VARIABLES = 22


class ExactSolver:
    """Enumerate all configurations of a (small) binary quadratic model."""

    def sample(self, bqm: BinaryQuadraticModel, *, lowest_only: bool = False) -> SampleSet:
        """Return every configuration with its energy (or only the ground states)."""
        spin_model = bqm.change_vartype(Vartype.SPIN)
        n = spin_model.num_variables
        if n == 0:
            raise SimulationError("cannot solve an empty model")
        if n > MAX_EXACT_VARIABLES:
            raise SimulationError(
                f"ExactSolver limited to {MAX_EXACT_VARIABLES} variables, got {n}"
            )
        count = 1 << n
        indices = np.arange(count, dtype=np.int64)
        # Bit i of the index is variable i's value; 0 -> spin +1, 1 -> spin -1.
        bits = (indices[:, None] >> np.arange(n)) & 1
        samples = (1 - 2 * bits).astype(np.int8)
        energies = spin_model.energies(samples)
        sample_set = SampleSet(
            samples, energies, variables=[str(v) for v in spin_model.variables]
        )
        if lowest_only:
            minimum = energies.min()
            mask = energies <= minimum + 1e-12
            sample_set = SampleSet(
                samples[mask], energies[mask], variables=[str(v) for v in spin_model.variables]
            )
        return sample_set

    def ground_states(self, bqm: BinaryQuadraticModel) -> SampleSet:
        """Only the minimum-energy configurations."""
        return self.sample(bqm, lowest_only=True)

    def ground_energy(self, bqm: BinaryQuadraticModel) -> float:
        """The minimum energy value."""
        return float(self.ground_states(bqm).energies.min())
