"""Annealing temperature schedules.

A schedule is a monotone sequence of inverse temperatures ``beta`` visited by
the Metropolis sweeps of the simulated annealer.  Two shapes are provided
(matching D-Wave Ocean's ``neal`` options): geometric and linear
interpolation between ``beta_min`` and ``beta_max``.  A default range is
derived from the problem's bias magnitudes so that early sweeps accept almost
every move and late sweeps freeze the state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ...core.errors import SimulationError
from .bqm import BinaryQuadraticModel

__all__ = ["default_beta_range", "beta_schedule"]


def default_beta_range(bqm: BinaryQuadraticModel) -> Tuple[float, float]:
    """Heuristic ``(beta_min, beta_max)`` derived from the bias magnitudes.

    ``beta_min`` is chosen so the largest single-spin energy change is accepted
    with probability ~50%; ``beta_max`` so the smallest nonzero change is
    accepted with probability ~1%.
    """
    h, J, _ = bqm.change_vartype("SPIN").to_arrays()
    # Maximum local field when every coupling aligns adversarially.
    couplings = np.abs(J) + np.abs(J).T
    max_delta = 2.0 * (np.abs(h) + couplings.sum(axis=1))
    max_change = float(max_delta.max()) if max_delta.size else 1.0
    nonzero = np.concatenate([np.abs(h[h != 0]), np.abs(J[J != 0])])
    min_change = 2.0 * float(nonzero.min()) if nonzero.size else 1.0
    max_change = max(max_change, 1e-9)
    min_change = max(min_change, 1e-9)
    beta_min = np.log(2.0) / max_change
    beta_max = np.log(100.0) / min_change
    if beta_max <= beta_min:
        beta_max = beta_min * 10.0
    return float(beta_min), float(beta_max)


def beta_schedule(
    num_sweeps: int,
    beta_range: Tuple[float, float],
    kind: str = "geometric",
) -> np.ndarray:
    """Array of ``num_sweeps`` inverse temperatures."""
    if num_sweeps < 1:
        raise SimulationError("num_sweeps must be >= 1")
    beta_min, beta_max = float(beta_range[0]), float(beta_range[1])
    if beta_min <= 0 or beta_max <= 0 or beta_max < beta_min:
        raise SimulationError("beta_range must be positive and increasing")
    if num_sweeps == 1:
        return np.array([beta_max])
    if kind == "geometric":
        return np.geomspace(beta_min, beta_max, num_sweeps)
    if kind == "linear":
        return np.linspace(beta_min, beta_max, num_sweeps)
    raise SimulationError(f"unknown schedule kind {kind!r}")
