"""Simulated-annealing sampler (the D-Wave Ocean ``neal`` stand-in).

The sampler runs ``num_reads`` independent Metropolis annealing trajectories
over a :class:`~repro.simulators.anneal.bqm.BinaryQuadraticModel`.  All reads
are advanced simultaneously with NumPy: each sweep visits every variable once
and, for each read, proposes a single-spin flip accepted with the Metropolis
probability at the sweep's inverse temperature.

Spins are simulated in SPIN form regardless of the model's vartype; BINARY
models are converted on entry and results are always reported as spins (the
middle layer's decoding convention maps ``+1 -> 0``, ``-1 -> 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ...core.errors import SimulationError
from ...results.sampleset import SampleSet
from .bqm import BinaryQuadraticModel, Vartype
from .schedule import beta_schedule, default_beta_range

__all__ = ["SimulatedAnnealingSampler"]


@dataclass
class SimulatedAnnealingSampler:
    """Classical Metropolis annealer over binary quadratic models."""

    default_num_reads: int = 100
    default_num_sweeps: int = 1000

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        *,
        num_reads: Optional[int] = None,
        num_sweeps: Optional[int] = None,
        beta_range: Optional[Tuple[float, float]] = None,
        schedule: str = "geometric",
        seed: Optional[int] = None,
        initial_states: Optional[np.ndarray] = None,
    ) -> SampleSet:
        """Draw samples from (a low-temperature distribution of) *bqm*.

        Returns an aggregated :class:`SampleSet` whose variables follow the
        model's variable order.
        """
        num_reads = self.default_num_reads if num_reads is None else int(num_reads)
        num_sweeps = self.default_num_sweeps if num_sweeps is None else int(num_sweeps)
        if num_reads < 1:
            raise SimulationError("num_reads must be >= 1")
        if num_sweeps < 1:
            raise SimulationError("num_sweeps must be >= 1")
        if bqm.num_variables == 0:
            raise SimulationError("cannot sample an empty model")

        spin_model = bqm.change_vartype(Vartype.SPIN)
        h, J, offset = spin_model.to_arrays()
        n = len(h)
        # Symmetric coupling matrix for local-field computation.
        W = J + J.T

        rng = np.random.default_rng(seed)
        if initial_states is not None:
            states = np.asarray(initial_states, dtype=np.int8).copy()
            if states.shape != (num_reads, n):
                raise SimulationError("initial_states must have shape (num_reads, num_variables)")
            if not np.all(np.isin(states, (-1, 1))):
                raise SimulationError("initial_states must be +1/-1 spins")
        else:
            states = rng.choice(np.array([-1, 1], dtype=np.int8), size=(num_reads, n))

        betas = beta_schedule(
            num_sweeps, beta_range or default_beta_range(spin_model), schedule
        )

        states_f = states.astype(float)
        for beta in betas:
            # Visit variables in a fresh random order each sweep.
            for var in rng.permutation(n):
                local_field = states_f @ W[:, var] + h[var]
                # Flipping s_i changes the energy by -2 * s_i * (h_i + sum_j W_ij s_j).
                delta_e = -2.0 * states_f[:, var] * local_field
                accept = (delta_e <= 0.0) | (
                    rng.random(num_reads) < np.exp(-beta * np.clip(delta_e, 0.0, 700.0 / beta))
                )
                states_f[accept, var] *= -1.0

        samples = states_f.astype(np.int8)
        energies = spin_model.energies(samples)
        sample_set = SampleSet(
            samples,
            energies,
            variables=[str(v) for v in spin_model.variables],
        )
        return sample_set.aggregate()

    def sample_ising(
        self,
        h,
        J,
        **kwargs,
    ) -> SampleSet:
        """Convenience wrapper mirroring Ocean's ``sample_ising`` signature."""
        return self.sample(BinaryQuadraticModel.from_ising(h, J), **kwargs)

    def sample_qubo(self, Q, **kwargs) -> SampleSet:
        """Convenience wrapper mirroring Ocean's ``sample_qubo`` signature."""
        return self.sample(BinaryQuadraticModel.from_qubo(Q), **kwargs)
