"""Annealing substrate: binary quadratic models and classical samplers."""

from .bqm import BinaryQuadraticModel, Vartype
from .exact import ExactSolver
from .sampler import SimulatedAnnealingSampler
from .schedule import beta_schedule, default_beta_range

__all__ = [
    "BinaryQuadraticModel",
    "Vartype",
    "SimulatedAnnealingSampler",
    "ExactSolver",
    "beta_schedule",
    "default_beta_range",
]
