"""Binary quadratic models: the Ising/QUBO representation annealers consume.

A :class:`BinaryQuadraticModel` (BQM) stores linear biases ``h_i``, quadratic
couplings ``J_ij`` and a constant offset over named variables, in either SPIN
(``s in {-1,+1}``) or BINARY (``x in {0,1}``) form, with loss-free conversion
between the two.  It is the direct analogue of D-Wave Ocean's ``dimod.BQM``
restricted to what the middle layer needs: energy evaluation (vectorised over
many samples), Ising/QUBO import/export and graph-style construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...core.errors import SimulationError

__all__ = ["Vartype", "BinaryQuadraticModel"]

Variable = Hashable


class Vartype(str, Enum):
    """Domain of the decision variables."""

    SPIN = "SPIN"  # s in {-1, +1}
    BINARY = "BINARY"  # x in {0, 1}


@dataclass
class _Terms:
    linear: Dict[Variable, float]
    quadratic: Dict[Tuple[Variable, Variable], float]
    offset: float


class BinaryQuadraticModel:
    """Quadratic energy function over binary/spin variables.

    Energy (SPIN form): ``E(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j + offset``.
    """

    def __init__(
        self,
        linear: Optional[Mapping[Variable, float]] = None,
        quadratic: Optional[Mapping[Tuple[Variable, Variable], float]] = None,
        offset: float = 0.0,
        vartype: Vartype | str = Vartype.SPIN,
    ):
        self.vartype = Vartype(vartype)
        self._linear: Dict[Variable, float] = {}
        self._quadratic: Dict[Tuple[Variable, Variable], float] = {}
        self.offset = float(offset)
        for v, bias in (linear or {}).items():
            self.add_variable(v, bias)
        for (u, v), bias in (quadratic or {}).items():
            self.add_interaction(u, v, bias)

    # -- construction ------------------------------------------------------------
    def add_variable(self, v: Variable, bias: float = 0.0) -> None:
        """Add *bias* to the linear term of *v* (creating it if needed)."""
        self._linear[v] = self._linear.get(v, 0.0) + float(bias)

    def add_interaction(self, u: Variable, v: Variable, bias: float) -> None:
        """Add *bias* to the coupling between *u* and *v* (order-insensitive)."""
        if u == v:
            raise SimulationError(f"self-interaction on variable {u!r} is not allowed")
        self.add_variable(u)
        self.add_variable(v)
        key = self._edge_key(u, v)
        self._quadratic[key] = self._quadratic.get(key, 0.0) + float(bias)

    def _edge_key(self, u: Variable, v: Variable) -> Tuple[Variable, Variable]:
        # Canonical ordering by insertion index keeps keys stable and hashable
        # even when variable labels are not mutually comparable.
        order = {var: i for i, var in enumerate(self._linear)}
        return (u, v) if order[u] <= order[v] else (v, u)

    # -- accessors ----------------------------------------------------------------
    @property
    def variables(self) -> List[Variable]:
        """Variables in insertion order."""
        return list(self._linear)

    @property
    def num_variables(self) -> int:
        return len(self._linear)

    @property
    def num_interactions(self) -> int:
        return len(self._quadratic)

    @property
    def linear(self) -> Dict[Variable, float]:
        """Copy of the linear biases."""
        return dict(self._linear)

    @property
    def quadratic(self) -> Dict[Tuple[Variable, Variable], float]:
        """Copy of the quadratic couplings."""
        return dict(self._quadratic)

    def get_linear(self, v: Variable) -> float:
        return self._linear.get(v, 0.0)

    def get_quadratic(self, u: Variable, v: Variable) -> float:
        if u not in self._linear or v not in self._linear:
            return 0.0
        return self._quadratic.get(self._edge_key(u, v), 0.0)

    # -- dense views -----------------------------------------------------------------
    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, float]:
        """Dense ``(h, J, offset)`` with variables in insertion order.

        ``J`` is strictly upper triangular.
        """
        index = {v: i for i, v in enumerate(self.variables)}
        n = self.num_variables
        h = np.zeros(n, dtype=float)
        J = np.zeros((n, n), dtype=float)
        for v, bias in self._linear.items():
            h[index[v]] = bias
        for (u, v), bias in self._quadratic.items():
            i, j = index[u], index[v]
            if i > j:
                i, j = j, i
            J[i, j] += bias
        return h, J, self.offset

    # -- energies ----------------------------------------------------------------------
    def energy(self, sample: Mapping[Variable, int] | Sequence[int]) -> float:
        """Energy of one sample (mapping or sequence in variable order)."""
        if isinstance(sample, Mapping):
            values = np.array([sample[v] for v in self.variables], dtype=float)
        else:
            values = np.asarray(sample, dtype=float)
            if values.shape != (self.num_variables,):
                raise SimulationError("sample length does not match the number of variables")
        return float(self.energies(values[None, :])[0])

    def energies(self, samples: np.ndarray) -> np.ndarray:
        """Vectorised energies of a ``(num_samples, num_variables)`` array."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim == 1:
            samples = samples[None, :]
        if samples.shape[1] != self.num_variables:
            raise SimulationError("sample width does not match the number of variables")
        self._check_domain(samples)
        h, J, offset = self.to_arrays()
        linear_term = samples @ h
        quadratic_term = np.einsum("ki,ij,kj->k", samples, J, samples)
        return linear_term + quadratic_term + offset

    def _check_domain(self, samples: np.ndarray) -> None:
        allowed = (-1.0, 1.0) if self.vartype is Vartype.SPIN else (0.0, 1.0)
        if not np.all(np.isin(samples, allowed)):
            raise SimulationError(
                f"samples contain values outside the {self.vartype.value} domain {allowed}"
            )

    # -- vartype conversion -----------------------------------------------------------------
    def change_vartype(self, vartype: Vartype | str) -> "BinaryQuadraticModel":
        """Return an equivalent model over the requested variable domain.

        Uses the substitution ``s = 2x - 1`` so that energies of corresponding
        samples are identical.
        """
        vartype = Vartype(vartype)
        if vartype == self.vartype:
            return self.copy()
        linear: Dict[Variable, float] = {v: 0.0 for v in self.variables}
        quadratic: Dict[Tuple[Variable, Variable], float] = {}
        offset = self.offset
        if self.vartype is Vartype.SPIN:  # SPIN -> BINARY, s = 2x - 1
            for v, h in self._linear.items():
                linear[v] += 2.0 * h
                offset += -h
            for (u, v), j in self._quadratic.items():
                quadratic[(u, v)] = 4.0 * j
                linear[u] += -2.0 * j
                linear[v] += -2.0 * j
                offset += j
        else:  # BINARY -> SPIN, x = (s + 1) / 2
            for v, q in self._linear.items():
                linear[v] += q / 2.0
                offset += q / 2.0
            for (u, v), q in self._quadratic.items():
                quadratic[(u, v)] = q / 4.0
                linear[u] += q / 4.0
                linear[v] += q / 4.0
                offset += q / 4.0
        return BinaryQuadraticModel(linear, quadratic, offset, vartype)

    # -- import/export -------------------------------------------------------------------------
    def copy(self) -> "BinaryQuadraticModel":
        return BinaryQuadraticModel(self._linear, self._quadratic, self.offset, self.vartype)

    @classmethod
    def from_ising(
        cls,
        h: Mapping[Variable, float] | Sequence[float],
        J: Mapping[Tuple[Variable, Variable], float],
        offset: float = 0.0,
    ) -> "BinaryQuadraticModel":
        """Build a SPIN model from Ising ``(h, J)``."""
        if not isinstance(h, Mapping):
            h = {i: bias for i, bias in enumerate(h)}
        return cls(h, J, offset, Vartype.SPIN)

    def to_ising(self) -> Tuple[Dict[Variable, float], Dict[Tuple[Variable, Variable], float], float]:
        """Export as Ising ``(h, J, offset)`` (converting from BINARY if needed)."""
        model = self.change_vartype(Vartype.SPIN)
        return model.linear, model.quadratic, model.offset

    @classmethod
    def from_qubo(
        cls, Q: Mapping[Tuple[Variable, Variable], float], offset: float = 0.0
    ) -> "BinaryQuadraticModel":
        """Build a BINARY model from a QUBO dictionary (diagonal = linear)."""
        linear: Dict[Variable, float] = {}
        quadratic: Dict[Tuple[Variable, Variable], float] = {}
        for (u, v), bias in Q.items():
            if u == v:
                linear[u] = linear.get(u, 0.0) + bias
            else:
                quadratic[(u, v)] = quadratic.get((u, v), 0.0) + bias
        return cls(linear, quadratic, offset, Vartype.BINARY)

    def to_qubo(self) -> Tuple[Dict[Tuple[Variable, Variable], float], float]:
        """Export as a QUBO dictionary plus offset."""
        model = self.change_vartype(Vartype.BINARY)
        Q: Dict[Tuple[Variable, Variable], float] = {}
        for v, bias in model.linear.items():
            if bias:
                Q[(v, v)] = bias
        for edge, bias in model.quadratic.items():
            if bias:
                Q[edge] = bias
        return Q, model.offset

    @classmethod
    def from_graph(
        cls,
        edges: Iterable[Tuple[Any, Any, float]],
        *,
        linear: Optional[Mapping[Variable, float]] = None,
        vartype: Vartype | str = Vartype.SPIN,
    ) -> "BinaryQuadraticModel":
        """Build a model from weighted edges ``(u, v, bias)``."""
        model = cls(linear or {}, {}, 0.0, vartype)
        for u, v, bias in edges:
            model.add_interaction(u, v, bias)
        return model

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready export (variables stringified)."""
        return {
            "vartype": self.vartype.value,
            "offset": self.offset,
            "linear": {str(v): b for v, b in self._linear.items()},
            "quadratic": [[str(u), str(v), b] for (u, v), b in self._quadratic.items()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BinaryQuadraticModel(vars={self.num_variables}, "
            f"interactions={self.num_interactions}, vartype={self.vartype.value})"
        )
