"""Static analysis for the gate substrate: IR verifier and verify-each hooks.

Layer 1 of the repo's static-analysis subsystem (layer 2, the AST invariant
linter, lives in ``tools/lint_invariants.py``; ``tools/analyze.py`` drives
both).  This package exposes:

* :func:`verify_program` / :func:`verify_template` /
  :func:`verify_stabilizer_program` / :func:`verify_result_metadata` —
  contract checks over compiled fusion artifacts (rules ``IR001``-``IR010``);
* :func:`verify_stage` — contract checks over transpiler stage outputs
  (rules ``TR001``-``TR006``);
* :func:`set_verify_each` — install (or remove) verification hooks inside the
  fusion compiler and the transpiler pass pipeline so **every** compiled
  artifact is verified at the moment it is produced.  Off by default in
  production; the test suite enables it session-wide via a conftest fixture,
  turning every differential sweep into a verifier soak.

The per-run ``verify_compiled`` exec-policy knob (see
:class:`~repro.simulators.gate.statevector.StatevectorSimulator`) layers on
top of these primitives: it verifies the bound program, its structural
template and the result metadata of each run it is enabled for.
"""

from __future__ import annotations

from .diagnostics import IRDiagnostic, IRVerificationError, VerificationReport
from .transpile_verify import STAGES, TR_RULES, verify_stage
from .verifier import (
    IR_RULES,
    STATEVECTOR_KINDS,
    verification_active,
    verify_program,
    verify_result,
    verify_result_metadata,
    verify_stabilizer_program,
    verify_template,
)

__all__ = [
    "IRDiagnostic",
    "IRVerificationError",
    "VerificationReport",
    "IR_RULES",
    "TR_RULES",
    "STAGES",
    "STATEVECTOR_KINDS",
    "verify_program",
    "verify_stabilizer_program",
    "verify_template",
    "verify_result",
    "verify_result_metadata",
    "verify_stage",
    "set_verify_each",
    "verify_each_enabled",
]

_VERIFY_EACH = False


def _template_hook(template, circuit) -> None:
    """Post-``compile_parametric_template`` hook: verify the fresh template."""
    if verification_active():
        return  # IR008's perturbed recompile must not recurse
    verify_template(template, circuit).raise_if_failed()


def _program_hook(program, circuit) -> None:
    """Post-``ParametricTemplate.bind`` hook: verify the fresh bound program."""
    if verification_active():
        return
    verify_program(program).raise_if_failed()


def _stabilizer_hook(program, circuit) -> None:
    """Post-``compile_stabilizer_program`` hook: verify the fresh program."""
    if verification_active():
        return
    verify_stabilizer_program(program).raise_if_failed()


def _stage_hook(stage, circuit, *, source=None, coupling_map=None, basis_gates=None) -> None:
    """Post-transpiler-stage hook: verify one stage's output circuit."""
    if verification_active():
        return
    verify_stage(
        stage,
        circuit,
        source=source,
        coupling_map=coupling_map,
        basis_gates=basis_gates,
    ).raise_if_failed()


def set_verify_each(enabled: bool) -> None:
    """Install or remove the verify-each hooks in the compile pipelines.

    With ``enabled=True`` every template produced by
    ``compile_parametric_template``, every program produced by
    ``ParametricTemplate.bind``, every stabilizer program produced by
    ``compile_stabilizer_program`` and every transpiler stage output is verified
    on the spot (cache *misses* only — cached artifacts were verified when
    first built); a failure raises
    :class:`~.diagnostics.IRVerificationError` at the point of production.
    With ``enabled=False`` the hooks are removed; the steady-state cost of
    the disabled hooks is one ``is not None`` check per compile.
    """
    global _VERIFY_EACH
    from ..fusion import set_compile_verify_hooks
    from ..transpiler.passes import set_stage_hook

    if enabled:
        set_compile_verify_hooks(_template_hook, _program_hook, _stabilizer_hook)
        set_stage_hook(_stage_hook)
    else:
        set_compile_verify_hooks(None, None, None)
        set_stage_hook(None)
    _VERIFY_EACH = bool(enabled)


def verify_each_enabled() -> bool:
    """Whether the verify-each hooks are currently installed."""
    return _VERIFY_EACH
