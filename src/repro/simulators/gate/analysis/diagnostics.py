"""Typed diagnostics for the compiled-IR verifier.

Every verifier rule reports failures as :class:`IRDiagnostic` values — a rule
id from the catalog (``IR001`` ... ``IR008``, ``TR001`` ... ``TR006``), the
provenance of the offending artifact (e.g. ``steps[3].noise[1]``) and a
human-readable message — collected into a :class:`VerificationReport`.  This
keeps verification *data-first*: callers can inspect, serialise (``to_dict``)
or aggregate reports, and only :meth:`VerificationReport.raise_if_failed`
turns a failed report into an :class:`IRVerificationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ....core.errors import SimulationError

__all__ = ["IRDiagnostic", "VerificationReport", "IRVerificationError"]


@dataclass(frozen=True)
class IRDiagnostic:
    """One verifier rule failure with provenance.

    ``rule`` is the catalog id (``IR001`` ...), ``location`` the path of the
    offending element inside the verified artifact (``steps[2].noise[0]``,
    ``terminal``, ``recipes[4]``, ``instructions[7]``), and ``message`` the
    human-readable explanation.
    """

    rule: str
    location: str
    message: str

    def __str__(self) -> str:
        """``RULE @ location: message`` — the report's printed line format."""
        return f"{self.rule} @ {self.location}: {self.message}"


@dataclass
class VerificationReport:
    """All diagnostics produced by one verification pass over one artifact."""

    subject: str
    diagnostics: List[IRDiagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the artifact verified clean (no diagnostics)."""
        return not self.diagnostics

    @property
    def rule_ids(self) -> Tuple[str, ...]:
        """The rule ids that fired, in report order (with repeats)."""
        return tuple(diagnostic.rule for diagnostic in self.diagnostics)

    def add(self, rule: str, location: str, message: str) -> None:
        """Record one rule failure."""
        self.diagnostics.append(IRDiagnostic(rule, location, message))

    def raise_if_failed(self) -> "VerificationReport":
        """Raise :class:`IRVerificationError` unless the report is clean."""
        if self.diagnostics:
            raise IRVerificationError(self)
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (the ``tools/analyze.py`` report format)."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "diagnostics": [
                {
                    "rule": diagnostic.rule,
                    "location": diagnostic.location,
                    "message": diagnostic.message,
                }
                for diagnostic in self.diagnostics
            ],
        }


class IRVerificationError(SimulationError):
    """A compiled artifact failed IR verification.

    Carries the full :class:`VerificationReport` as ``report`` so callers
    (and test assertions) can inspect exact rule ids and provenance.
    """

    def __init__(self, report: VerificationReport):
        lines = "; ".join(str(diagnostic) for diagnostic in report.diagnostics)
        super().__init__(
            f"{report.subject} failed IR verification "
            f"({len(report.diagnostics)} diagnostic(s)): {lines}"
        )
        self.report = report
