"""Static verifier for the compiled trajectory IR (rules ``IR001``-``IR008``).

The fusion compiler's output — :class:`~repro.simulators.gate.fusion.ParametricTemplate`
(structural phase) and :class:`~repro.simulators.gate.fusion.TrajectoryProgram`
(bound phase) — is plain immutable data with a contract the engines rely on
but nothing previously checked.  This module makes that contract machine
checkable:

* ``IR001`` — qubit/clbit indices in bounds and (for gate operands) distinct;
* ``IR002`` — operator shapes, dtypes and :class:`MatrixPlan` consistent with
  the step (``2^m x 2^m`` ``complex128`` matrix, plan equal to
  ``build_plan(matrix)``);
* ``IR003`` — fused step matrices unitary within dtype tolerance;
* ``IR004`` — noise-event operator stacks complete and CPTP
  (three Kraus branches, ``(1-r) I + (r/3) sum K_k^\\dagger K_k = I``,
  identity-first pre-cast ``stack`` consistent with ``operators``);
* ``IR005`` — event rates are finite probabilities in ``[0, 1]``;
* ``IR006`` — terminal-sample contract (implicit sampling covers every qubit
  in order, pairs in bounds);
* ``IR007`` — result metadata contract (``implicit_measurement``,
  documented ``statevector_kind``, ``compiled_steps`` for trajectory runs);
* ``IR008`` — cache-key soundness: a template's structural decisions must be
  invariant under parameter substitution, verified by recompiling the source
  circuit with symbolically perturbed parameters and comparing recipes;
* ``IR009`` — stabilizer-program well-formedness: every Clifford step names a
  tableau primitive with the right operand count, Pauli-channel rates are
  probabilities, and measure/reset/terminal operands are in bounds;
* ``IR010`` — tableau symplectic invariant: executing the program's Clifford
  steps on a probe tableau preserves the binary symplectic commutation
  structure (checked after every step at verifier widths, once at the end
  for very wide programs).

Failures are :class:`~.diagnostics.IRDiagnostic` values with step provenance,
never bare asserts; see :mod:`~.diagnostics`.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

import numpy as np

from ..circuit import Circuit, Instruction
from ..fusion import (
    CliffordStep,
    GateStep,
    MeasureStep,
    NoiseEvent,
    ParametricTemplate,
    PauliChannelStep,
    ResetStep,
    StabilizerProgram,
    StepRecipe,
    TerminalSample,
    TrajectoryProgram,
    compile_parametric_template,
)
from ..kernels import build_plan
from ..stabilizer import PRIMITIVE_GATES, StabilizerTableau
from .diagnostics import VerificationReport

__all__ = [
    "IR_RULES",
    "verify_program",
    "verify_stabilizer_program",
    "verify_template",
    "verify_result",
    "verify_result_metadata",
    "verification_active",
]

#: Rule catalog: id -> one-line description (rendered in ``docs/static_analysis.md``).
IR_RULES = {
    "IR001": "qubit/clbit indices in bounds and gate operands distinct",
    "IR002": "operator shape, dtype and MatrixPlan consistent with the step",
    "IR003": "fused step matrix unitary within dtype tolerance",
    "IR004": "noise-event operator stack complete and CPTP after pushing",
    "IR005": "noise-event rates are finite probabilities in [0, 1]",
    "IR006": "terminal-sample contract (implicit covers all qubits in order)",
    "IR007": "result metadata contract (implicit_measurement / statevector_kind / compiled_steps)",
    "IR008": "structural cache key invariant under parameter substitution",
    "IR009": "stabilizer program well-formed (primitives, operands, Pauli-channel rates)",
    "IR010": "tableau symplectic invariant preserved by the compiled Clifford steps",
}

#: Operand count of every tableau primitive (the IR009 arity table).
_PRIMITIVE_ARITY = {
    name: (2 if name in ("cx", "cz", "swap") else 1) for name in PRIMITIVE_GATES
}

#: Width bound for the IR010 per-step symplectic probe.  The Gram-matrix
#: check is O(n^3); beyond this width the probe checks once after the full
#: Clifford stream instead of after every step.
_SYMPLECTIC_STEPWISE_QUBITS = 24

#: ``statevector_kind`` values documented by ``StatevectorSimulator.run``.
STATEVECTOR_KINDS = ("pre_measurement", "final_trajectory", "none")

# Fused matrices are complex128 products of at most a few dozen 2x2/4x4
# unitaries; their unitarity residual is ~1e-13.  1e-9 leaves three orders
# of headroom without masking a genuinely wrong matrix.
_UNITARY_TOL = 1e-9
_CPTP_TOL = 1e-9

# Angle offset used by the IR008 symbolic rebind.  Irrational, so a perturbed
# parameter can only land on a structure-changing special angle (diagonality
# flip of a 2q rotation) if the original was deliberately degenerate.
_PERTURBATION = 0.6180339887498949

_GUARD = threading.local()


def verification_active() -> bool:
    """Whether a verification pass is running on this thread.

    The verify-each hooks consult this to break recursion: rule ``IR008``
    recompiles a perturbed circuit through
    :func:`~repro.simulators.gate.fusion.compile_parametric_template`, which
    would otherwise re-enter the template hook forever.
    """
    return bool(getattr(_GUARD, "active", False))


class _guarded:
    """Context manager marking this thread as inside a verification pass."""

    def __enter__(self):
        self._previous = verification_active()
        _GUARD.active = True
        return self

    def __exit__(self, *exc_info):
        _GUARD.active = self._previous
        return False


def _stack_tolerance(dtype: np.dtype) -> float:
    """Comparison tolerance for operator stacks pre-cast to *dtype*."""
    return float(100 * np.finfo(np.dtype(dtype)).eps)


def _check_qubits(
    report: VerificationReport,
    qubits: Iterable[int],
    num_qubits: int,
    location: str,
) -> bool:
    """IR001 on a gate-operand tuple: bounds and distinctness."""
    qubits = tuple(qubits)
    ok = True
    for qubit in qubits:
        if not 0 <= int(qubit) < num_qubits:
            report.add(
                "IR001",
                location,
                f"qubit {qubit} out of range for {num_qubits} qubits",
            )
            ok = False
    if len(set(qubits)) != len(qubits):
        report.add("IR001", location, f"duplicate qubits in {qubits}")
        ok = False
    return ok


def _check_matrix(
    report: VerificationReport,
    matrix: np.ndarray,
    plan,
    num_operands: int,
    location: str,
    *,
    unitary_rule: str = "IR003",
) -> None:
    """IR002 (shape/dtype/plan) and IR003/IR004 (unitarity) on one operator."""
    dim = 2 ** num_operands
    if not isinstance(matrix, np.ndarray) or matrix.shape != (dim, dim):
        shape = getattr(matrix, "shape", None)
        report.add(
            "IR002",
            location,
            f"expected a ({dim}, {dim}) matrix for {num_operands} operand(s), "
            f"got shape {shape}",
        )
        return
    if matrix.dtype != np.complex128:
        report.add(
            "IR002",
            location,
            f"step operators must stay complex128 (engines cast at apply "
            f"time), got {matrix.dtype}",
        )
    if plan.dim != dim:
        report.add(
            "IR002",
            location,
            f"plan dimension {plan.dim} does not match matrix dimension {dim}",
        )
    elif build_plan(matrix) != plan:
        report.add(
            "IR002",
            location,
            "MatrixPlan is stale: it does not equal build_plan(matrix)",
        )
    residual = float(
        np.max(np.abs(matrix.conj().T @ matrix - np.eye(dim)))
    )
    if not np.isfinite(residual) or residual > _UNITARY_TOL:
        report.add(
            unitary_rule,
            location,
            f"matrix is not unitary: max |M^H M - I| = {residual:.3e} "
            f"(tolerance {_UNITARY_TOL:.0e})",
        )


def _check_noise_event(
    report: VerificationReport,
    event: NoiseEvent,
    num_qubits: int,
    location: str,
) -> None:
    """IR001/IR002/IR004/IR005 on one depolarizing noise event."""
    rate = event.rate
    if not (np.isfinite(rate) and 0.0 <= rate <= 1.0):
        report.add(
            "IR005",
            location,
            f"event rate {rate!r} is not a probability in [0, 1]",
        )
    if not _check_qubits(report, event.qubits, num_qubits, location):
        return
    dim = 2 ** len(event.qubits)
    if len(event.operators) != 3:
        report.add(
            "IR004",
            location,
            f"depolarizing event needs 3 Kraus branches (x, y, z), got "
            f"{len(event.operators)} — truncated operator stack",
        )
    shapes_ok = True
    for k, (matrix, plan) in enumerate(event.operators):
        branch = f"{location}.operators[{k}]"
        _check_matrix(
            report, matrix, plan, len(event.qubits), branch, unitary_rule="IR004"
        )
        if not (isinstance(matrix, np.ndarray) and matrix.shape == (dim, dim)):
            shapes_ok = False
    # CPTP completeness of the pushed channel: the unstruck branch keeps the
    # state with probability (1 - r) and each conjugated Pauli branch fires
    # with probability r/3, so sum_k p_k K_k^H K_k must be the identity.
    if shapes_ok and len(event.operators) == 3 and 0.0 <= rate <= 1.0:
        total = (1.0 - rate) * np.eye(dim, dtype=np.complex128)
        for matrix, _ in event.operators:
            total = total + (rate / 3.0) * (matrix.conj().T @ matrix)
        residual = float(np.max(np.abs(total - np.eye(dim))))
        if residual > _CPTP_TOL:
            report.add(
                "IR004",
                location,
                f"pushed channel is not CPTP: max |sum p_k K^H K - I| = "
                f"{residual:.3e}",
            )
    if event.stack is None:
        return
    stack = event.stack
    expected_shape = (len(event.operators) + 1, dim, dim)
    if not isinstance(stack, np.ndarray) or stack.shape != expected_shape:
        report.add(
            "IR004",
            location,
            f"pre-cast stack shape {getattr(stack, 'shape', None)} does not "
            f"match identity-first layout {expected_shape}",
        )
        return
    tolerance = _stack_tolerance(stack.dtype)
    if float(np.max(np.abs(stack[0] - np.eye(dim)))) > tolerance:
        report.add(
            "IR004", location, "pre-cast stack slice 0 is not the identity"
        )
    for k, (matrix, _) in enumerate(event.operators):
        if not (isinstance(matrix, np.ndarray) and matrix.shape == (dim, dim)):
            continue
        cast = np.asarray(matrix, dtype=stack.dtype)
        if float(np.max(np.abs(stack[k + 1] - cast))) > tolerance:
            report.add(
                "IR004",
                location,
                f"pre-cast stack slice {k + 1} does not match operators[{k}]",
            )


def _check_terminal(
    report: VerificationReport,
    terminal: Optional[TerminalSample],
    num_qubits: int,
    num_clbits: int,
) -> None:
    """IR001/IR006 on the terminal-sample block (``None`` is always valid)."""
    if terminal is None:
        return
    width = num_qubits if terminal.implicit else num_clbits
    for k, (qubit, clbit) in enumerate(terminal.pairs):
        location = f"terminal.pairs[{k}]"
        if not 0 <= int(qubit) < num_qubits:
            report.add(
                "IR001",
                location,
                f"qubit {qubit} out of range for {num_qubits} qubits",
            )
        if not 0 <= int(clbit) < width:
            report.add(
                "IR001",
                location,
                f"clbit {clbit} out of range for bit width {width}",
            )
    if terminal.implicit:
        expected = tuple((qubit, qubit) for qubit in range(num_qubits))
        if tuple(terminal.pairs) != expected:
            report.add(
                "IR006",
                "terminal",
                f"implicit terminal sample must cover every qubit in order "
                f"({expected}), got {tuple(terminal.pairs)}",
            )


def verify_program(program: TrajectoryProgram) -> VerificationReport:
    """Verify one bound :class:`TrajectoryProgram` against rules IR001-IR006.

    Checks every step's operand bounds, matrix shape/dtype/plan consistency,
    unitarity, noise-event CPTP completeness and rate normalization, plus the
    terminal-sample contract.  Returns a data-first
    :class:`~.diagnostics.VerificationReport`; call ``raise_if_failed()`` to
    escalate.
    """
    report = VerificationReport("program")
    with _guarded():
        num_qubits = program.num_qubits
        width = program.bits_width
        for index, step in enumerate(program.steps):
            location = f"steps[{index}]"
            if isinstance(step, GateStep):
                if _check_qubits(report, step.qubits, num_qubits, location):
                    _check_matrix(
                        report, step.matrix, step.plan, len(step.qubits), location
                    )
                for j, event in enumerate(step.noise):
                    _check_noise_event(
                        report, event, num_qubits, f"{location}.noise[{j}]"
                    )
            elif isinstance(step, MeasureStep):
                if not 0 <= step.qubit < num_qubits:
                    report.add(
                        "IR001",
                        location,
                        f"measured qubit {step.qubit} out of range",
                    )
                if not 0 <= step.clbit < width:
                    report.add(
                        "IR001",
                        location,
                        f"clbit {step.clbit} out of range for bit width {width}",
                    )
            elif isinstance(step, ResetStep):
                if not 0 <= step.qubit < num_qubits:
                    report.add(
                        "IR001", location, f"reset qubit {step.qubit} out of range"
                    )
            else:
                report.add(
                    "IR002",
                    location,
                    f"unknown step kind {type(step).__name__}",
                )
        _check_terminal(report, program.terminal, num_qubits, program.num_clbits)
    return report


def verify_stabilizer_program(program: StabilizerProgram) -> VerificationReport:
    """Verify one compiled :class:`StabilizerProgram` (IR001/IR006/IR009/IR010).

    Structural pass (IR009 plus the shared bounds/terminal rules): every
    :class:`~repro.simulators.gate.fusion.CliffordStep` must name a tableau
    primitive with the primitive's operand count and distinct in-bounds
    qubits; every
    :class:`~repro.simulators.gate.fusion.PauliChannelStep` rate must be a
    finite probability in ``[0, 1]`` over in-bounds qubits; measure, reset
    and terminal operands must be in bounds (implicit terminal sampling must
    cover every qubit in order, as for trajectory programs).

    Dynamic pass (IR010), run only when the structural pass is clean: the
    program's Clifford steps execute on a one-shot probe
    :class:`~repro.simulators.gate.stabilizer.StabilizerTableau` and the
    binary symplectic Gram invariant is checked after every step (once at
    the end beyond ``24`` qubits, where the per-step cubic check would
    dominate) — a wrong tableau update rule cannot pass.  Pauli channels,
    measurements and resets never change the shared bit structure's
    symplectic property, so the gate stream alone decides the invariant.
    """
    report = VerificationReport("stabilizer program")
    with _guarded():
        num_qubits = program.num_qubits
        width = program.bits_width
        for index, step in enumerate(program.steps):
            location = f"steps[{index}]"
            if isinstance(step, CliffordStep):
                arity = _PRIMITIVE_ARITY.get(step.name)
                if arity is None:
                    report.add(
                        "IR009",
                        location,
                        f"{step.name!r} is not a tableau primitive "
                        f"{tuple(sorted(_PRIMITIVE_ARITY))}",
                    )
                    continue
                if len(step.qubits) != arity:
                    report.add(
                        "IR009",
                        location,
                        f"primitive {step.name!r} takes {arity} operand(s), "
                        f"got {step.qubits}",
                    )
                    continue
                _check_qubits(report, step.qubits, num_qubits, location)
            elif isinstance(step, PauliChannelStep):
                rate = step.rate
                if not (np.isfinite(rate) and 0.0 <= rate <= 1.0):
                    report.add(
                        "IR009",
                        location,
                        f"Pauli-channel rate {rate!r} is not a probability in [0, 1]",
                    )
                _check_qubits(report, step.qubits, num_qubits, location)
            elif isinstance(step, MeasureStep):
                if not 0 <= step.qubit < num_qubits:
                    report.add(
                        "IR001", location, f"measured qubit {step.qubit} out of range"
                    )
                if not 0 <= step.clbit < width:
                    report.add(
                        "IR001",
                        location,
                        f"clbit {step.clbit} out of range for bit width {width}",
                    )
            elif isinstance(step, ResetStep):
                if not 0 <= step.qubit < num_qubits:
                    report.add(
                        "IR001", location, f"reset qubit {step.qubit} out of range"
                    )
            else:
                report.add(
                    "IR009",
                    location,
                    f"unknown stabilizer step kind {type(step).__name__}",
                )
        _check_terminal(report, program.terminal, num_qubits, program.num_clbits)
        if report.ok:
            stepwise = num_qubits <= _SYMPLECTIC_STEPWISE_QUBITS
            probe = StabilizerTableau(num_qubits, 1)
            checked_any = False
            for index, step in enumerate(program.steps):
                if not isinstance(step, CliffordStep):
                    continue
                probe.apply_gate(step.name, step.qubits)
                checked_any = True
                if stepwise and not probe.is_symplectic():
                    report.add(
                        "IR010",
                        f"steps[{index}]",
                        f"tableau lost the symplectic invariant after "
                        f"{step.name!r} on {step.qubits}",
                    )
                    break
            if report.ok and checked_any and not stepwise:
                if not probe.is_symplectic():
                    report.add(
                        "IR010",
                        "steps",
                        "tableau lost the symplectic invariant over the "
                        "Clifford stream",
                    )
    return report


def _perturb_parameters(circuit: Circuit) -> Circuit:
    """The IR008 probe: *circuit* with every gate parameter shifted.

    Adds an irrational offset to every parameter, preserving structure
    (names, qubits, clbits) exactly.  A sound structural cache key must
    compile this probe to identical recipes.
    """
    probe = Circuit(circuit.num_qubits, circuit.num_clbits, name=circuit.name)
    probe.metadata = dict(circuit.metadata)
    probe.instructions = [
        Instruction(
            inst.name,
            inst.qubits,
            tuple(float(value) + _PERTURBATION for value in inst.params),
            inst.clbits,
            inst.label,
        )
        for inst in circuit.instructions
    ]
    return probe


def _recipe_equal(left: object, right: object) -> bool:
    """Structural equality of two template entries (frozen dataclasses)."""
    return type(left) is type(right) and left == right


def verify_template(
    template: ParametricTemplate, circuit: Optional[Circuit] = None
) -> VerificationReport:
    """Verify one structural :class:`ParametricTemplate` (IR001/IR002/IR006/IR008).

    Checks recipe operand bounds and factor-index sanity, the terminal
    contract, and — when the source *circuit* is supplied — rule ``IR008``:
    the template is recompiled from a parameter-perturbed copy of the circuit
    and must produce identical recipes, proving the structure-keyed compile
    caches cannot serve this shape a stale plan for other parameter values.
    """
    report = VerificationReport("template")
    with _guarded():
        num_qubits = template.num_qubits
        num_effective = None
        if circuit is not None:
            num_effective = sum(
                1 for inst in circuit.instructions if inst.name != "barrier"
            )
        for index, recipe in enumerate(template.recipes):
            location = f"recipes[{index}]"
            if isinstance(recipe, StepRecipe):
                _check_qubits(report, recipe.qubits, num_qubits, location)
                for f, factor in enumerate(recipe.factors):
                    indices = []
                    if hasattr(factor, "index"):
                        indices.append(int(factor.index))
                    indices.extend(int(k) for k in getattr(factor, "run_a", ()))
                    indices.extend(int(k) for k in getattr(factor, "run_b", ()))
                    for k in indices:
                        if k < 0 or (num_effective is not None and k >= num_effective):
                            report.add(
                                "IR002",
                                f"{location}.factors[{f}]",
                                f"factor references effective instruction {k} "
                                f"outside the source circuit",
                            )
            elif isinstance(recipe, MeasureStep):
                if not 0 <= recipe.qubit < num_qubits:
                    report.add(
                        "IR001",
                        location,
                        f"measured qubit {recipe.qubit} out of range",
                    )
            elif isinstance(recipe, ResetStep):
                if not 0 <= recipe.qubit < num_qubits:
                    report.add(
                        "IR001", location, f"reset qubit {recipe.qubit} out of range"
                    )
            else:
                report.add(
                    "IR002",
                    location,
                    f"unknown recipe kind {type(recipe).__name__}",
                )
        _check_terminal(report, template.terminal, num_qubits, template.num_clbits)
        if circuit is not None:
            probe = compile_parametric_template(_perturb_parameters(circuit))
            if len(probe.recipes) != len(template.recipes):
                report.add(
                    "IR008",
                    "recipes",
                    f"structural key is parameter-dependent: perturbed "
                    f"parameters produce {len(probe.recipes)} recipes instead "
                    f"of {len(template.recipes)}",
                )
            else:
                for index, (ours, theirs) in enumerate(
                    zip(template.recipes, probe.recipes)
                ):
                    if not _recipe_equal(ours, theirs):
                        report.add(
                            "IR008",
                            f"recipes[{index}]",
                            "structural key is parameter-dependent: perturbed "
                            "parameters change this recipe (a degenerate angle "
                            "flipped a fusion decision)",
                        )
                        break
            if probe.terminal != template.terminal:
                report.add(
                    "IR008",
                    "terminal",
                    "structural key is parameter-dependent: perturbed "
                    "parameters change the terminal sample",
                )
    return report


def verify_result_metadata(
    metadata, *, shots: Optional[int] = None
) -> VerificationReport:
    """Verify the contractual metadata of one simulation result (IR007).

    Checks the keys every engine must stamp: a boolean
    ``implicit_measurement``, a ``statevector_kind`` drawn from the
    documented set, and — for trajectory/density runs that executed shots —
    the ``compiled_steps`` provenance counter.
    """
    report = VerificationReport("result metadata")
    if not isinstance(metadata, dict):
        report.add("IR007", "metadata", f"metadata is {type(metadata).__name__}, not a dict")
        return report
    if not isinstance(metadata.get("implicit_measurement"), bool):
        report.add(
            "IR007",
            "metadata.implicit_measurement",
            "contractual key missing or not a bool",
        )
    kind = metadata.get("statevector_kind")
    if kind not in STATEVECTOR_KINDS:
        report.add(
            "IR007",
            "metadata.statevector_kind",
            f"{kind!r} is not one of the documented kinds {STATEVECTOR_KINDS}",
        )
    method = metadata.get("method")
    if method not in ("exact", "trajectories", "density"):
        report.add(
            "IR007",
            "metadata.method",
            f"{method!r} is not a documented execution method",
        )
    ran_shots = shots is None or shots > 0
    if method in ("trajectories", "density") and ran_shots:
        if not isinstance(metadata.get("compiled_steps"), int):
            report.add(
                "IR007",
                "metadata.compiled_steps",
                "trajectory/density runs must record the compiled step count",
            )
    return report


def verify_result(result) -> VerificationReport:
    """Verify a :class:`SimulationResult`'s contractual metadata (IR007)."""
    return verify_result_metadata(
        result.metadata, shots=getattr(result, "shots", None)
    )
