"""Verify-each checks for the transpiler pipeline (rules ``TR001``-``TR006``).

The transpiler's routing replay and cache paths build circuits by direct
instruction-list appends — deliberately bypassing ``Circuit.append``
validation for speed — so a routing or replay bug could emit silently
malformed circuits.  :func:`verify_stage` re-checks each stage's output:

* ``TR001`` — instruction qubit/clbit indices in bounds, gate operands
  distinct;
* ``TR002`` — every gate name resolvable in the gate registry;
* ``TR003`` — at most two-qubit gates after the pre-routing decomposition;
* ``TR004`` — every two-qubit gate acts on a coupled pair (undirected) when a
  coupling map constrains the stage;
* ``TR005`` — only basis gates (plus measure/reset/barrier) after basis
  translation;
* ``TR006`` — measurements and resets preserved: the translated circuit keeps
  the source's measure-clbit multiset and reset count (qubits may be
  relabelled by routing, records may not be dropped or duplicated).

Stages are named ``"decompose"``, ``"route"``, ``"translate"`` and
``"optimize"`` — the hook points installed by
:func:`repro.simulators.gate.analysis.set_verify_each`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..circuit import Circuit
from ..gates import has_gate
from .diagnostics import VerificationReport

__all__ = ["TR_RULES", "STAGES", "verify_stage"]

#: Rule catalog: id -> one-line description (rendered in ``docs/static_analysis.md``).
TR_RULES = {
    "TR001": "instruction qubit/clbit indices in bounds, operands distinct",
    "TR002": "every gate name resolvable in the gate registry",
    "TR003": "at most two-qubit gates after pre-routing decomposition",
    "TR004": "two-qubit gates act on coupled pairs when a coupling map applies",
    "TR005": "only basis gates (plus measure/reset/barrier) after translation",
    "TR006": "measure-clbit multiset and reset count preserved from the source",
}

#: Pipeline stages instrumented by the verify-each hooks, in pass order.
STAGES = ("decompose", "route", "translate", "optimize")

_NON_GATES = ("measure", "reset", "barrier")


def _record_signature(circuit: Circuit) -> Tuple[Tuple[int, ...], int]:
    """The TR006 invariant: sorted measure clbits and the reset count."""
    clbits = sorted(
        inst.clbits[0] for inst in circuit.instructions if inst.name == "measure"
    )
    resets = sum(1 for inst in circuit.instructions if inst.name == "reset")
    return tuple(clbits), resets


def verify_stage(
    stage: str,
    circuit: Circuit,
    *,
    source: Optional[Circuit] = None,
    coupling_map: Optional[Sequence[Tuple[int, int]]] = None,
    basis_gates: Optional[Sequence[str]] = None,
) -> VerificationReport:
    """Verify one transpiler stage's output circuit against TR001-TR006.

    *stage* names the pass that produced *circuit* (see :data:`STAGES`);
    *source* is the stage's input circuit (enables the TR006 record-
    preservation check), *coupling_map* / *basis_gates* the constraints the
    stage must have established (TR004 applies from routing onward, TR005
    only to translated/optimized circuits).
    """
    if stage not in STAGES:
        raise ValueError(f"unknown transpiler stage {stage!r}; expected one of {STAGES}")
    report = VerificationReport(f"transpile:{stage}")
    edges = None
    if coupling_map is not None and stage in ("route", "translate", "optimize"):
        edges = {frozenset(edge) for edge in coupling_map}
    basis = None
    if basis_gates is not None and stage in ("translate", "optimize"):
        basis = set(basis_gates)
    for index, inst in enumerate(circuit.instructions):
        location = f"instructions[{index}]"
        for qubit in inst.qubits:
            if not 0 <= qubit < circuit.num_qubits:
                report.add(
                    "TR001",
                    location,
                    f"{inst.name} qubit {qubit} out of range for "
                    f"{circuit.num_qubits} qubits",
                )
        for clbit in inst.clbits:
            if not 0 <= clbit < circuit.num_clbits:
                report.add(
                    "TR001",
                    location,
                    f"{inst.name} clbit {clbit} out of range for "
                    f"{circuit.num_clbits} clbits",
                )
        if inst.name == "barrier":
            continue
        if len(set(inst.qubits)) != len(inst.qubits):
            report.add(
                "TR001", location, f"duplicate qubits in {inst.name} {inst.qubits}"
            )
        if inst.name in _NON_GATES:
            continue
        if not has_gate(inst.name):
            report.add(
                "TR002", location, f"unknown gate {inst.name!r} after {stage}"
            )
            continue
        if inst.num_qubits > 2:
            report.add(
                "TR003",
                location,
                f"{inst.name} acts on {inst.num_qubits} qubits after the "
                f"pre-routing decomposition",
            )
        if edges is not None and inst.num_qubits == 2:
            if frozenset(inst.qubits) not in edges:
                report.add(
                    "TR004",
                    location,
                    f"{inst.name} on uncoupled pair {inst.qubits}",
                )
        if basis is not None and inst.name not in basis:
            report.add(
                "TR005",
                location,
                f"{inst.name!r} is outside the target basis {sorted(basis)}",
            )
    if source is not None:
        if _record_signature(circuit) != _record_signature(source):
            ours, theirs = _record_signature(circuit), _record_signature(source)
            report.add(
                "TR006",
                "instructions",
                f"stage {stage} changed the measurement/reset record: "
                f"measure clbits {theirs[0]} -> {ours[0]}, "
                f"resets {theirs[1]} -> {ours[1]}",
            )
    return report
