"""Exact density-matrix simulation: the trajectory stack's cross-validation oracle.

The trajectory engines (:mod:`~repro.simulators.gate.batched` and the per-shot
reference loop) *sample* noisy circuits; this module *solves* them.  A
:class:`DensityMatrix` evolves the full mixed state ``rho`` through the same
compiled :class:`~repro.simulators.gate.fusion.TrajectoryProgram` the batched
engine executes — every fused unitary block is applied as the superoperator
conjugation ``U rho U^dagger`` (the block's cached
:class:`~repro.simulators.gate.kernels.MatrixPlan` on the row axes, its
:func:`~repro.simulators.gate.kernels.conjugate_plan` on the column axes), and
every per-shot depolarizing opportunity becomes the exact CPTP map

.. math:: \\rho \\mapsto (1 - p)\\,\\rho + \\frac{p}{3}\\sum_{k} E_k \\rho E_k^\\dagger

with the *same* (possibly conjugated-through-fusion) operators ``E_k`` the
trajectory engines draw stochastically.  Readout errors are applied as exact
classical bit-flip channels on the outcome distribution.  The result is the
closed-form probability of every outcome bitstring — a ground truth that the
differential test harness validates both trajectory engines against, and a new
workload class on its own: exact expectation values and noisy fidelities
without sampling error.

Mid-circuit measurement and reset are handled without approximation by
tracking a *branch ensemble*: a map from recorded classical bits to the
unnormalised conditional state ``rho_b`` (trace = branch probability).  A
:class:`~repro.simulators.gate.fusion.MeasureStep` splits each branch through
the two projectors (mixing the projections when readout error makes the record
unreliable); a :class:`~repro.simulators.gate.fusion.ResetStep` applies the
non-branching channel ``rho -> P0 rho P0 + X P1 rho P1 X``.  Branch count is
bounded by ``2^#(mid-circuit measurements)`` and capped at
:data:`MAX_DENSITY_BRANCHES`.

State layout mirrors the pure-state engines: the tensor has shape
``(2, ..., 2, 2, ..., 2)`` with row (ket) qubit ``i`` on axis ``i`` and column
(bra) qubit ``i`` on axis ``n + i``, so the slice kernels of
:mod:`~repro.simulators.gate.kernels` apply unchanged on either side.  Memory
is ``16^n`` bytes per ``complex128`` state, so widths are capped at
:data:`MAX_DENSITY_QUBITS` qubits.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ...core.errors import SimulationError
from ...results.counts import Counts
from .circuit import Circuit
from .fusion import (
    GateStep,
    MeasureStep,
    NoiseEvent,
    ResetStep,
    TrajectoryProgram,
    compile_trajectory_program_cached,
)
from .gates import cached_gate_matrix, cached_gate_plan
from .kernels import MatrixPlan, apply_plan_inplace, build_plan, conjugate_plan
from .noise import NoiseModel
from .statevector import SimulationResult, Statevector

__all__ = [
    "DensityMatrix",
    "DensityMatrixSimulator",
    "pauli_terms",
    "MAX_DENSITY_QUBITS",
    "MAX_DENSITY_BRANCHES",
]

#: Width cap for exact density simulation: a ``complex128`` state costs
#: ``16^n`` bytes (16 MiB at 10 qubits), and every gate traverses all of it.
MAX_DENSITY_QUBITS = 10

#: Cap on simultaneously tracked measurement branches.  Each mid-circuit
#: measurement at most doubles the ensemble; circuits that legitimately need
#: more than this many *distinct recorded-bit histories* are outside the
#: oracle's intended scope (use the trajectory engines).
MAX_DENSITY_BRANCHES = 256

_PAULI_CHARS = "IXYZ"

#: Observable specification accepted by the ``expectation`` APIs: a Pauli
#: string (character ``i`` = qubit ``i``), a mapping of Pauli strings to real
#: coefficients, or a sequence of ``(pauli_string, coefficient)`` pairs.
PauliObservable = Union[str, Mapping[str, float], Sequence[Tuple[str, float]]]


def pauli_terms(
    observable: PauliObservable, num_qubits: int
) -> Tuple[Tuple[float, str], ...]:
    """Normalise an observable spec into ``(coefficient, pauli-string)`` terms.

    Accepts a single Pauli string (``"ZZI"``; character ``i`` acts on qubit
    ``i``, matching the bitstring convention), a mapping from Pauli strings to
    real coefficients, or a sequence of ``(pauli_string, coefficient)`` pairs.
    Strings are case-insensitive and must be exactly *num_qubits* wide over
    the alphabet ``IXYZ``.
    """
    try:
        if isinstance(observable, str):
            raw: List[Tuple[str, float]] = [(observable, 1.0)]
        elif isinstance(observable, Mapping):
            raw = [(str(key), float(value)) for key, value in observable.items()]
        else:
            raw = [(str(key), float(value)) for key, value in observable]
    except (TypeError, ValueError):
        raise SimulationError(
            "observable must be a Pauli string, a mapping of Pauli strings "
            f"to real coefficients, or (string, coefficient) pairs; got {observable!r}"
        ) from None
    if not raw:
        raise SimulationError("observable has no terms")
    terms: List[Tuple[float, str]] = []
    for string, coeff in raw:
        string = string.upper()
        if len(string) != num_qubits:
            raise SimulationError(
                f"Pauli string {string!r} has width {len(string)}, "
                f"expected {num_qubits}"
            )
        if any(c not in _PAULI_CHARS for c in string):
            raise SimulationError(
                f"Pauli string {string!r} contains characters outside 'IXYZ'"
            )
        terms.append((coeff, string))
    return tuple(terms)


# -- tensor-level channel primitives ------------------------------------------------
# These operate on raw ``(2,)*2n`` tensors so the simulator's branch ensemble
# can share them with the DensityMatrix wrapper without per-step object churn.


# Plans are frozen (hashable) dataclasses and one program applies the same
# plan once per branch per step, so memoise the conjugation instead of
# rebuilding coefficient tuples steps x branches x operators times per run.
_conjugate_plan = lru_cache(maxsize=1024)(conjugate_plan)


def _apply_unitary(
    tensor: np.ndarray, plan: MatrixPlan, qubits: Sequence[int], num_qubits: int
) -> None:
    """``rho -> U rho U^dagger`` in place: plan on row axes, conjugate on column axes."""
    apply_plan_inplace(tensor, plan, list(qubits))
    apply_plan_inplace(
        tensor, _conjugate_plan(plan), [num_qubits + q for q in qubits]
    )


def _apply_noise_event(
    tensor: np.ndarray, event: NoiseEvent, num_qubits: int
) -> np.ndarray:
    """The exact CPTP form of one stochastic error opportunity.

    Returns ``(1 - rate) rho + (rate / K) sum_k E_k rho E_k^dagger`` for the
    event's ``K`` equiprobable operators — the ensemble average of the
    trajectory engines' per-shot draw.
    """
    if event.rate <= 0.0:
        return tensor
    accumulated = (1.0 - event.rate) * tensor
    share = event.rate / len(event.operators)
    for _, plan in event.operators:
        branch = tensor.copy()
        _apply_unitary(branch, plan, event.qubits, num_qubits)
        accumulated += share * branch
    return accumulated


def _project(
    tensor: np.ndarray, qubit: int, num_qubits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Unnormalised projections ``(P0 rho P0, P1 rho P1)`` onto a qubit's outcomes."""
    projections = []
    for outcome in (0, 1):
        index: List[object] = [slice(None)] * (2 * num_qubits)
        index[qubit] = outcome
        index[num_qubits + qubit] = outcome
        projected = np.zeros_like(tensor)
        projected[tuple(index)] = tensor[tuple(index)]
        projections.append(projected)
    return projections[0], projections[1]


def _reset_qubit(tensor: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """The reset channel ``rho -> P0 rho P0 + X P1 rho P1 X`` (measure, flip to 0)."""
    zero, one = _project(tensor, qubit, num_qubits)
    index0: List[object] = [slice(None)] * (2 * num_qubits)
    index1: List[object] = [slice(None)] * (2 * num_qubits)
    index0[qubit] = 0
    index0[num_qubits + qubit] = 0
    index1[qubit] = 1
    index1[num_qubits + qubit] = 1
    zero[tuple(index0)] += one[tuple(index1)]
    return zero


def _trace(tensor: np.ndarray, num_qubits: int) -> float:
    """Real trace of a ``(2,)*2n`` density tensor."""
    dim = 1 << num_qubits
    return float(np.trace(tensor.reshape(dim, dim)).real)


class DensityMatrix:
    """An n-qubit mixed state with in-place channel application.

    The tensor layout is ``(2, ..., 2, 2, ..., 2)``: row (ket) qubit ``i`` on
    axis ``i``, column (bra) qubit ``i`` on axis ``n + i``.  All mutating
    operations are exact linear-algebra maps — nothing is sampled.
    """

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise SimulationError("density matrix needs at least one qubit")
        if num_qubits > MAX_DENSITY_QUBITS:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the density-matrix limit of "
                f"{MAX_DENSITY_QUBITS}"
            )
        self.num_qubits = int(num_qubits)
        self.dim = 1 << num_qubits
        if data is None:
            matrix = np.zeros((self.dim, self.dim), dtype=np.complex128)
            matrix[0, 0] = 1.0
        else:
            matrix = np.asarray(data, dtype=np.complex128).reshape(self.dim, self.dim).copy()
            if not np.allclose(matrix, matrix.conj().T, atol=1e-9):
                raise SimulationError("density matrix must be Hermitian")
            trace = float(np.trace(matrix).real)
            if trace <= 0.0:
                raise SimulationError("density matrix must have positive trace")
            matrix /= trace
        self._tensor = matrix.reshape((2,) * (2 * self.num_qubits))

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """The pure state ``|psi><psi|`` of an existing :class:`Statevector`."""
        psi = state.data
        return cls(state.num_qubits, data=np.outer(psi, psi.conj()))

    @classmethod
    def _from_tensor(cls, num_qubits: int, tensor: np.ndarray) -> "DensityMatrix":
        """Wrap a raw (possibly unnormalised) tensor without validation."""
        instance = cls.__new__(cls)
        instance.num_qubits = num_qubits
        instance.dim = 1 << num_qubits
        instance._tensor = tensor
        return instance

    # -- accessors ---------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The ``2^n x 2^n`` matrix form (a view onto the live tensor)."""
        return self._tensor.reshape(self.dim, self.dim)

    def trace(self) -> float:
        """``tr(rho)`` — 1 for a normalised state, branch weight otherwise."""
        return _trace(self._tensor, self.num_qubits)

    def purity(self) -> float:
        """``tr(rho^2)`` — 1 for pure states, ``1/2^n`` at the fully mixed state."""
        matrix = self.matrix
        return float(np.real(np.einsum("ij,ji->", matrix, matrix)))

    def probabilities(self) -> np.ndarray:
        """Exact computational-basis probabilities: the (clipped) real diagonal."""
        return np.clip(np.diagonal(self.matrix).real, 0.0, None)

    def probability_dict(self, threshold: float = 1e-12) -> Dict[str, float]:
        """Bitstring -> probability for every outcome above *threshold*."""
        from .statevector import index_to_bits  # local: avoid re-export confusion

        probs = self.probabilities()
        return {
            index_to_bits(i, self.num_qubits): float(p)
            for i, p in enumerate(probs)
            if p > threshold
        }

    def fidelity(self, state: Statevector) -> float:
        """``<psi| rho |psi>`` — the exact fidelity against a pure target."""
        if state.num_qubits != self.num_qubits:
            raise SimulationError("fidelity requires states of equal width")
        psi = state.data
        return float(np.real(np.vdot(psi, self.matrix @ psi)))

    # -- evolution ------------------------------------------------------------------
    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int], plan: Optional[MatrixPlan] = None
    ) -> "DensityMatrix":
        """Conjugate by a ``2^m x 2^m`` unitary: ``rho -> U rho U^dagger``."""
        qubits = [int(q) for q in qubits]
        m = len(qubits)
        if matrix.shape != (1 << m, 1 << m):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {m} target qubits"
            )
        if len(set(qubits)) != m:
            raise SimulationError(f"duplicate qubits in {tuple(qubits)}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise SimulationError(f"qubit {q} out of range")
        _apply_unitary(
            self._tensor, plan if plan is not None else build_plan(matrix), qubits, self.num_qubits
        )
        return self

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "DensityMatrix":
        """Conjugate by a named library gate (cached matrix and plan)."""
        return self.apply_matrix(
            cached_gate_matrix(name, params), qubits, plan=cached_gate_plan(name, params)
        )

    def evolve(self, circuit: Circuit, *, noise_model: Optional[NoiseModel] = None) -> "DensityMatrix":
        """Evolve through a unitary circuit, with optional exact depolarizing noise.

        Compiles *circuit* through the fusion compiler (the same program the
        batched engine runs) and applies each fused block as a conjugation and
        each noise opportunity as its exact CPTP map.  Measure and reset are
        rejected — branch-resolved execution lives in
        :class:`DensityMatrixSimulator`.
        """
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width does not match the density matrix")
        for inst in circuit.instructions:
            if inst.name != "barrier" and not inst.is_gate:
                raise SimulationError(
                    "DensityMatrix.evolve only supports unitary circuits; "
                    "use DensityMatrixSimulator.run for measurements"
                )
        if noise_model is not None and noise_model.is_noiseless:
            noise_model = None
        program = compile_trajectory_program_cached(circuit, noise_model)
        for step in program.steps:
            # Unitary-only circuits compile to GateStep exclusively.
            _apply_unitary(self._tensor, step.plan, step.qubits, self.num_qubits)
            for event in step.noise:
                self._tensor = _apply_noise_event(self._tensor, event, self.num_qubits)
        return self

    def apply_noise_event(self, event: NoiseEvent) -> "DensityMatrix":
        """Apply one compiled error opportunity as its exact CPTP map."""
        self._tensor = _apply_noise_event(self._tensor, event, self.num_qubits)
        return self

    def depolarize(self, qubit: int, rate: float) -> "DensityMatrix":
        """The exact single-qubit depolarizing channel at probability *rate*."""
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        if not 0.0 <= rate <= 1.0:
            raise SimulationError(f"depolarizing rate must lie in [0, 1], got {rate}")
        operators = tuple(
            (cached_gate_matrix(name), cached_gate_plan(name)) for name in ("x", "y", "z")
        )
        return self.apply_noise_event(NoiseEvent((qubit,), rate, operators))

    def reset(self, qubit: int) -> "DensityMatrix":
        """The reset channel: measure *qubit* and flip outcome 1 back to 0."""
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        self._tensor = _reset_qubit(self._tensor, qubit, self.num_qubits)
        return self

    def project(self, qubit: int) -> Tuple["DensityMatrix", "DensityMatrix"]:
        """Unnormalised post-measurement branches ``(P0 rho P0, P1 rho P1)``.

        The traces of the two returned (unnormalised) states are the outcome
        probabilities; the caller decides whether to renormalise.
        """
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        zero, one = _project(self._tensor, qubit, self.num_qubits)
        return (
            DensityMatrix._from_tensor(self.num_qubits, zero),
            DensityMatrix._from_tensor(self.num_qubits, one),
        )

    # -- observables -----------------------------------------------------------------
    def expectation(self, observable: Union[PauliObservable, np.ndarray]) -> float:
        """Exact expectation value ``tr(O rho)`` of a Hermitian observable.

        *observable* is either a full ``2^n x 2^n`` matrix or a Pauli
        specification (see :func:`pauli_terms`): a string like ``"ZZI"``
        (character ``i`` acts on qubit ``i``), a mapping of Pauli strings to
        coefficients, or ``(string, coefficient)`` pairs.
        """
        if isinstance(observable, np.ndarray):
            if observable.shape != (self.dim, self.dim):
                raise SimulationError(
                    f"observable shape {observable.shape} does not match "
                    f"dimension {self.dim}"
                )
            return float(np.real(np.einsum("ij,ji->", observable, self.matrix)))
        total = 0.0
        for coeff, string in pauli_terms(observable, self.num_qubits):
            work = self._tensor.copy()
            for qubit, char in enumerate(string):
                if char != "I":
                    apply_plan_inplace(work, cached_gate_plan(char.lower()), [qubit])
            total += coeff * _trace(work, self.num_qubits)
        return total


class DensityMatrixSimulator:
    """Exact execution of circuits on the full density matrix.

    The drop-in oracle counterpart of
    :class:`~repro.simulators.gate.statevector.StatevectorSimulator`: the same
    circuit IR, the same compiled program, the same
    :class:`~repro.results.counts.Counts` result contract — but outcome
    probabilities are computed in closed form instead of sampled, so the
    output distribution carries **no sampling error** regardless of the shot
    count.  Also exposed through the gate backend / exec-policy as
    ``trajectory_engine="density"``.

    Parameters
    ----------
    noise_model:
        Optional :class:`~repro.simulators.gate.noise.NoiseModel`; depolarizing
        rates become exact CPTP maps and readout error an exact classical
        bit-flip channel on the outcome distribution.
    sampling:
        How exact probabilities become integer counts.  ``"multinomial"``
        (default) draws ``shots`` outcomes from the exact distribution with
        the run's seed — statistically indistinguishable from hardware with
        that exact behaviour.  ``"deterministic"`` apportions
        ``round(p * shots)`` counts by largest remainder — reproducible
        without any RNG, useful for regression baselines.
    verify_compiled:
        ``bool`` (default ``False``).  When enabled, every compiled program
        and every result's contractual metadata is checked through the
        static IR verifier (:mod:`~repro.simulators.gate.analysis`); a
        violation raises
        :class:`~repro.simulators.gate.analysis.IRVerificationError`.
    """

    def __init__(
        self,
        *,
        noise_model: Optional[NoiseModel] = None,
        sampling: str = "multinomial",
        verify_compiled: bool = False,
    ):
        if sampling not in ("multinomial", "deterministic"):
            raise SimulationError(
                f"unknown density sampling mode {sampling!r}; "
                "expected 'multinomial' or 'deterministic'"
            )
        if not isinstance(verify_compiled, bool):
            raise SimulationError(
                f"verify_compiled must be a bool, got {verify_compiled!r}"
            )
        self.noise_model = noise_model
        self.sampling = sampling
        self.verify_compiled = verify_compiled

    # -- public API -------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        *,
        shots: int = 1024,
        seed: Optional[int] = None,
        return_statevector: bool = False,
    ) -> SimulationResult:
        """Execute *circuit* exactly and return counts over its classical bits.

        The exact outcome distribution is computed first (see
        :meth:`probabilities`), then converted to integer counts by the
        constructor's *sampling* mode.  The measurement contract matches the
        trajectory engines: explicit measurements key counts over classical
        bits; measurement-free circuits are measured implicitly over all
        qubits with ``metadata["implicit_measurement"] = True``; ``shots == 0``
        returns empty counts.

        A mixed state has no statevector, so the result's ``statevector`` is
        always ``None`` and ``metadata["statevector_kind"]`` is ``"none"``
        regardless of *return_statevector*.  Metadata also records
        ``method="density"``, the branch count, the compiled step count, and
        the sampling mode.
        """
        del return_statevector  # accepted for API parity; a mixed state has no |psi>
        if shots < 0:
            raise SimulationError("shots must be non-negative")
        program, noise = self._compile(circuit)
        if shots == 0:
            # Match the trajectory engines: no state work for an empty run.
            branches: Dict[Tuple[int, ...], np.ndarray] = {}
            distribution: Dict[str, float] = {}
        else:
            branches = self._evolve(program, noise)
            distribution = self._distribution(program, noise, branches)
        counts = self._sample_counts(distribution, shots, seed)
        metadata: Dict[str, object] = {
            "method": "density",
            "statevector_kind": "none",
            "trajectory_engine": "density",
            # shots == 0 reports False, matching the trajectory engines'
            # empty-run contract.
            "implicit_measurement": bool(
                shots > 0 and program.terminal is not None and program.terminal.implicit
            ),
            "num_branches": len(branches),
            "compiled_steps": len(program.steps),
            "density_sampling": self.sampling,
            "distribution_size": len(distribution),
        }
        result = SimulationResult(
            counts=counts, statevector=None, shots=shots, seed=seed, metadata=metadata
        )
        if self.verify_compiled:
            from .analysis import verify_result  # local: import cycle

            verify_result(result).raise_if_failed()
        return result

    def probabilities(self, circuit: Circuit) -> Dict[str, float]:
        """The exact outcome distribution of *circuit* under this noise model.

        Keys follow the counts contract (character ``c`` = classical bit
        ``c``; qubit-ordered keys over all qubits for measurement-free
        circuits); values sum to 1.  This is the oracle the differential test
        harness checks the trajectory engines' empirical histograms against.
        """
        program, noise = self._compile(circuit)
        branches = self._evolve(program, noise)
        return self._distribution(program, noise, branches)

    def expectation(self, circuit: Circuit, observable: Union[PauliObservable, np.ndarray]) -> float:
        """Exact ``tr(O rho_final)`` for the noisy final state of *circuit*.

        The state is the ensemble over all measurement branches *before* any
        terminal sampling (terminal measurements never collapse the state, so
        purely-terminal circuits get the pre-measurement expectation, matching
        :meth:`Statevector.expectation <repro.simulators.gate.statevector.Statevector.expectation>`
        on noiseless runs).  Readout error does not enter — it is a classical
        channel on records, not on the state.
        """
        program, noise = self._compile(circuit)
        branches = self._evolve(program, noise)
        ensemble = sum(branches.values())
        total = _trace(ensemble, program.num_qubits)
        if total <= 0.0:
            raise SimulationError("evolution produced a zero-trace ensemble")
        state = DensityMatrix._from_tensor(program.num_qubits, ensemble / total)
        return state.expectation(observable)

    # -- internals ------------------------------------------------------------
    def _compile(self, circuit: Circuit) -> Tuple[TrajectoryProgram, Optional[NoiseModel]]:
        """Compile once through the shared fusion compiler (noiseless -> None)."""
        if circuit.num_qubits > MAX_DENSITY_QUBITS:
            raise SimulationError(
                f"{circuit.num_qubits} qubits exceeds the density-matrix limit "
                f"of {MAX_DENSITY_QUBITS}"
            )
        noise = self.noise_model
        if noise is not None and noise.is_noiseless:
            noise = None
        program = compile_trajectory_program_cached(circuit, noise)
        if self.verify_compiled:
            from .analysis import verify_program  # local: import cycle

            verify_program(program).raise_if_failed()
        return program, noise

    def _evolve(
        self, program: TrajectoryProgram, noise: Optional[NoiseModel]
    ) -> Dict[Tuple[int, ...], np.ndarray]:
        """Advance the branch ensemble through a compiled program.

        Returns recorded-bits tuple -> unnormalised ``(2,)*2n`` tensor whose
        trace is that branch's probability.  Gate steps and resets act on
        every branch in place; measure steps split (and, under readout error,
        mix) branches, merging any that share a record.
        """
        n = program.num_qubits
        initial = np.zeros((2,) * (2 * n), dtype=np.complex128)
        initial[(0,) * (2 * n)] = 1.0
        branches: Dict[Tuple[int, ...], np.ndarray] = {
            (0,) * program.bits_width: initial
        }
        readout = noise.readout_error if noise is not None else 0.0
        for step in program.steps:
            if isinstance(step, GateStep):
                for bits, tensor in branches.items():
                    _apply_unitary(tensor, step.plan, step.qubits, n)
                    for event in step.noise:
                        tensor = _apply_noise_event(tensor, event, n)
                    branches[bits] = tensor
            elif isinstance(step, MeasureStep):
                split: Dict[Tuple[int, ...], np.ndarray] = {}
                for bits, tensor in branches.items():
                    zero, one = _project(tensor, step.qubit, n)
                    if readout > 0.0:
                        # The record misreads the physical outcome with
                        # probability r, so the record-b branch is a mixture
                        # of both projections.
                        recorded = (
                            (1.0 - readout) * zero + readout * one,
                            readout * zero + (1.0 - readout) * one,
                        )
                    else:
                        recorded = (zero, one)
                    for outcome, branch in enumerate(recorded):
                        if _trace(branch, n) <= 1e-15:
                            continue
                        key = bits[: step.clbit] + (outcome,) + bits[step.clbit + 1 :]
                        if key in split:
                            split[key] = split[key] + branch
                        else:
                            split[key] = branch
                if not split:
                    raise SimulationError("measurement produced a zero-trace ensemble")
                if len(split) > MAX_DENSITY_BRANCHES:
                    raise SimulationError(
                        f"mid-circuit measurements produced {len(split)} branches, "
                        f"exceeding the density-engine cap of {MAX_DENSITY_BRANCHES}"
                    )
                branches = split
            elif isinstance(step, ResetStep):
                for bits, tensor in branches.items():
                    branches[bits] = _reset_qubit(tensor, step.qubit, n)
        return branches

    def _distribution(
        self,
        program: TrajectoryProgram,
        noise: Optional[NoiseModel],
        branches: Dict[Tuple[int, ...], np.ndarray],
    ) -> Dict[str, float]:
        """Exact clbit-string distribution from the final branch ensemble.

        Terminal pairs are deduplicated per classical bit (last write wins,
        matching the trajectory engines' overwrite order), marginal outcome
        probabilities come from each branch's diagonal, and readout error on
        terminal records is applied as an independent bit-flip channel per
        recorded pair.
        """
        n = program.num_qubits
        terminal = program.terminal
        distribution: Dict[str, float] = {}
        if terminal is None:
            for bits, tensor in branches.items():
                key = "".join(map(str, bits))
                distribution[key] = distribution.get(key, 0.0) + _trace(tensor, n)
        else:
            seen: set = set()
            pairs: List[Tuple[int, int]] = []
            for qubit, clbit in reversed(terminal.pairs):
                if clbit not in seen:
                    seen.add(clbit)
                    pairs.append((qubit, clbit))
            pairs.reverse()
            measured = sorted({qubit for qubit, _ in pairs})
            axis_of = {qubit: axis for axis, qubit in enumerate(measured)}
            readout = (
                noise.readout_error
                if noise is not None and not terminal.implicit
                else 0.0
            )
            num_pairs = len(pairs)
            for bits, tensor in branches.items():
                diagonal = np.clip(
                    np.diagonal(tensor.reshape(1 << n, 1 << n)).real, 0.0, None
                ).reshape((2,) * n)
                # Marginalise onto the measured qubits (axes stay in ascending
                # qubit order).
                unmeasured = tuple(axis for axis in range(n) if axis not in measured)
                marginal = diagonal.sum(axis=unmeasured) if unmeasured else diagonal
                # Scatter qubit-outcome mass into recorded-pair space: each
                # pair's bit equals its qubit's bit (duplicate-qubit pairs are
                # perfectly correlated pre-readout).
                grids = np.indices(marginal.shape)
                pair_space = np.zeros((2,) * num_pairs)
                index = tuple(grids[axis_of[qubit]] for qubit, _ in pairs)
                np.add.at(pair_space, index, marginal)
                if readout > 0.0:
                    for axis in range(num_pairs):
                        pair_space = (1.0 - readout) * pair_space + readout * np.flip(
                            pair_space, axis=axis
                        )
                flat = pair_space.reshape(-1)
                for outcome in np.flatnonzero(flat > 1e-16):
                    row = list(bits)
                    for position, (_, clbit) in enumerate(pairs):
                        row[clbit] = (int(outcome) >> (num_pairs - 1 - position)) & 1
                    key = "".join(map(str, row))
                    distribution[key] = distribution.get(key, 0.0) + float(flat[outcome])
        total = sum(distribution.values())
        if total <= 0.0:
            raise SimulationError("exact distribution has zero total probability")
        return {key: value / total for key, value in distribution.items()}

    def _sample_counts(
        self, distribution: Dict[str, float], shots: int, seed: Optional[int]
    ) -> Counts:
        """Convert exact probabilities to integer counts per the sampling mode."""
        if shots == 0 or not distribution:
            return Counts({})
        keys = sorted(distribution)
        probs = np.array([distribution[key] for key in keys], dtype=np.float64)
        probs = probs / probs.sum()
        if self.sampling == "deterministic":
            exact = probs * shots
            counts = np.floor(exact).astype(np.int64)
            remainder = shots - int(counts.sum())
            if remainder:
                order = np.argsort(-(exact - counts), kind="stable")
                counts[order[:remainder]] += 1
        else:
            counts = np.random.default_rng(seed).multinomial(shots, probs)
        return Counts(
            {key: int(count) for key, count in zip(keys, counts) if count}
        )
