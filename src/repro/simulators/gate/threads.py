"""Best-effort BLAS/OpenMP thread pinning for the trajectory worker pool.

With ``trajectory_workers > 1`` the batched engine runs one shot chunk per
Python thread, and every chunk's GEMM calls into the host BLAS.  A BLAS
built with its own OpenMP team then spawns ``cores`` threads *per worker* —
``workers x cores`` runnable threads on ``cores`` cores — and the resulting
oversubscription (cache thrashing, context switches) routinely makes the
"parallel" configuration slower than the serial one.  The fix is standard:
pin the BLAS pool to roughly ``cores / workers`` threads while the chunk
pool is active, keeping the total runnable thread count near the core
count.

:func:`limit_blas_threads` implements that as a context manager with two
strategies:

* when ``threadpoolctl`` is importable it is used directly — it adjusts the
  already-loaded OpenBLAS/MKL/BLIS pools at runtime and restores them on
  exit, which is the reliable path;
* otherwise the ``*_NUM_THREADS`` environment-variable family is set for the
  duration of the block and restored afterwards.  Environment variables only
  bind when a library initialises its pool, so this fallback protects
  lazily-loaded libraries and child processes but cannot shrink a pool that
  is already warm — it is **best-effort by design** (the container this
  project targets ships no ``threadpoolctl``).

The guard is wired to the simulator's ``pin_blas_threads`` knob (default on)
and only engages when more than one trajectory worker is requested, so
single-threaded runs keep whatever BLAS parallelism the host configured.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["limit_blas_threads", "THREAD_ENV_VARS"]

#: Environment variables honoured by the common BLAS/OpenMP runtimes, set and
#: restored by the fallback strategy of :func:`limit_blas_threads`.
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


@contextmanager
def limit_blas_threads(limit: int = 1) -> Iterator[None]:
    """Cap BLAS/OpenMP thread pools at *limit* threads for the with-block.

    Prefers ``threadpoolctl`` (runtime control of loaded pools, fully
    restored on exit); falls back to setting the ``*_NUM_THREADS``
    environment variables around the block, which lazily-initialised pools
    honour.  Re-entrant and exception-safe either way.
    """
    if limit < 1:
        raise ValueError("limit_blas_threads needs limit >= 1")
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        threadpool_limits = None
    if threadpool_limits is not None:
        with threadpool_limits(limits=limit):
            yield
        return
    saved = {var: os.environ.get(var) for var in THREAD_ENV_VARS}
    for var in THREAD_ENV_VARS:
        os.environ[var] = str(limit)
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
