"""Transpiler passes for the gate-model substrate."""

from .decompose import decompose_to_basis, decompose_1q_matrix, zyz_angles
from .layout import Layout, coupling_graph, greedy_layout, trivial_layout
from .optimize import cancel_inverse_pairs, merge_rotations, optimize_circuit, remove_identities
from .passes import TranspileResult, transpile
from .routing import RoutingResult, route_circuit

__all__ = [
    "transpile",
    "TranspileResult",
    "decompose_to_basis",
    "decompose_1q_matrix",
    "zyz_angles",
    "Layout",
    "coupling_graph",
    "trivial_layout",
    "greedy_layout",
    "route_circuit",
    "RoutingResult",
    "optimize_circuit",
    "remove_identities",
    "cancel_inverse_pairs",
    "merge_rotations",
]
