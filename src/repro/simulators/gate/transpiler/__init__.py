"""Transpiler passes for the gate-model substrate."""

from .cache import (
    clear_transpile_cache,
    set_transpile_cache_size,
    transpile_cache_info,
    transpile_cached,
)
from .decompose import decompose_to_basis, decompose_1q_matrix, zyz_angles
from .layout import Layout, coupling_graph, greedy_layout, trivial_layout
from .optimize import cancel_inverse_pairs, merge_rotations, optimize_circuit, remove_identities
from .passes import TranspileResult, transpile
from .routing import RoutingResult, route_circuit

__all__ = [
    "transpile",
    "transpile_cached",
    "transpile_cache_info",
    "clear_transpile_cache",
    "set_transpile_cache_size",
    "TranspileResult",
    "decompose_to_basis",
    "decompose_1q_matrix",
    "zyz_angles",
    "Layout",
    "coupling_graph",
    "trivial_layout",
    "greedy_layout",
    "route_circuit",
    "RoutingResult",
    "optimize_circuit",
    "remove_identities",
    "cancel_inverse_pairs",
    "merge_rotations",
]
