"""Peephole optimisation passes.

These passes only ever shrink circuits, so they are safe to iterate to a
fixed point:

* :func:`remove_identities` — drop ``id`` gates and rotations whose angle is a
  multiple of 2*pi (a global phase on the full circuit).
* :func:`cancel_inverse_pairs` — remove adjacent self-inverse pairs acting on
  the same qubits with no interposed operation (``cx cx``, ``h h``, ...).
* :func:`merge_rotations` — add the angles of adjacent rotations of the same
  kind on the same qubits (``rz rz``, ``cp cp``, ``rzz rzz``...).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..circuit import Circuit, Instruction
from ..gates import get_gate

__all__ = ["remove_identities", "cancel_inverse_pairs", "merge_rotations", "optimize_circuit"]

_ANGLE_TOL = 1e-12
_MERGEABLE = {"rz", "rx", "ry", "p", "cp", "crx", "cry", "crz", "rzz", "rxx", "ryy"}
_SYMMETRIC_2Q = {"rzz", "rxx", "ryy", "cz", "ccz"}


def _is_trivial_angle(angle: float) -> bool:
    return abs(((angle + math.pi) % (2 * math.pi)) - math.pi) < _ANGLE_TOL


def _canonical_qubits(inst: Instruction) -> Tuple[int, ...]:
    """Qubit tuple with symmetric gates normalised to sorted order."""
    if inst.name in _SYMMETRIC_2Q:
        return tuple(sorted(inst.qubits))
    return inst.qubits


def remove_identities(circuit: Circuit) -> Circuit:
    """Drop ``id`` gates and rotations by multiples of 2*pi."""
    out = Circuit(circuit.num_qubits, circuit.num_clbits, name=circuit.name)
    out.metadata = dict(circuit.metadata)
    for inst in circuit.instructions:
        if inst.name == "id":
            continue
        if inst.name in _MERGEABLE and _is_trivial_angle(inst.params[0]):
            continue
        out.instructions.append(inst)
    return out


def cancel_inverse_pairs(circuit: Circuit) -> Circuit:
    """Cancel adjacent self-inverse gates on identical qubits.

    "Adjacent" means no intervening instruction touches any of the gate's
    qubits (or, for measuring/reset ops, the whole pass keeps them as
    barriers for safety).
    """
    instructions = list(circuit.instructions)
    removed = [False] * len(instructions)
    # last_open[qubits+name] -> index of a candidate waiting for its partner
    last_open: Dict[Tuple, int] = {}

    def invalidate(qubits: Tuple[int, ...]) -> None:
        stale = [key for key in last_open if set(key[1]) & set(qubits)]
        for key in stale:
            del last_open[key]

    for index, inst in enumerate(instructions):
        if inst.name in ("measure", "reset", "barrier"):
            invalidate(inst.qubits)
            continue
        definition = get_gate(inst.name)
        if not definition.self_inverse or inst.params:
            invalidate(inst.qubits)
            if inst.name in _MERGEABLE:
                # merging handled by merge_rotations; treat as blocking here
                pass
            continue
        key = (inst.name, _canonical_qubits(inst))
        partner = last_open.get(key)
        if partner is not None:
            removed[partner] = True
            removed[index] = True
            del last_open[key]
            continue
        invalidate(inst.qubits)
        last_open[key] = index

    out = Circuit(circuit.num_qubits, circuit.num_clbits, name=circuit.name)
    out.metadata = dict(circuit.metadata)
    out.instructions = [inst for inst, dead in zip(instructions, removed) if not dead]
    return out


def merge_rotations(circuit: Circuit) -> Circuit:
    """Combine adjacent same-kind rotations on the same qubits by adding angles."""
    out = Circuit(circuit.num_qubits, circuit.num_clbits, name=circuit.name)
    out.metadata = dict(circuit.metadata)
    pending: Dict[Tuple, int] = {}  # (name, qubits) -> index in out.instructions

    def invalidate(qubits: Tuple[int, ...]) -> None:
        stale = [key for key in pending if set(key[1]) & set(qubits)]
        for key in stale:
            del pending[key]

    for inst in circuit.instructions:
        if inst.name in _MERGEABLE:
            key = (inst.name, _canonical_qubits(inst))
            previous = pending.get(key)
            if previous is not None:
                old = out.instructions[previous]
                merged_angle = old.params[0] + inst.params[0]
                out.instructions[previous] = Instruction(
                    old.name, old.qubits, (merged_angle,), old.clbits, old.label
                )
                continue
            invalidate(inst.qubits)
            out.instructions.append(inst)
            pending[key] = len(out.instructions) - 1
            continue
        invalidate(inst.qubits)
        out.instructions.append(inst)
    return remove_identities(out)


def optimize_circuit(circuit: Circuit, *, iterations: int = 4) -> Circuit:
    """Iterate the cheap passes to a fixed point (bounded by *iterations*)."""
    current = remove_identities(circuit)
    for _ in range(iterations):
        before = len(current.instructions)
        current = merge_rotations(current)
        current = cancel_inverse_pairs(current)
        current = remove_identities(current)
        if len(current.instructions) == before:
            break
    return current
