"""Pass manager: the substrate-side consumer of the context's ``target`` block.

:func:`transpile` mirrors the knobs the paper's Listing 4 exposes —
``basis_gates``, ``coupling_map`` and ``optimization_level`` — and reports the
structural metrics (depth, two-qubit count, inserted SWAPs) that feed cost
hints and the scheduler.

Pipeline (roughly Qiskit's preset pass managers, radically simplified):

1. decompose every gate to at most two qubits,
2. choose an initial layout (trivial for level <= 1, greedy for level >= 2),
3. route against the coupling map (SWAP insertion),
4. translate to the requested basis,
5. peephole-optimise (levels >= 1), iterating once more at level >= 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ....core.errors import TranspilerError
from ..circuit import Circuit
from .decompose import decompose_to_basis
from .layout import Layout, greedy_layout, trivial_layout
from .optimize import optimize_circuit
from .routing import route_circuit

__all__ = ["TranspileResult", "transpile", "set_stage_hook"]

# Verify-each hook (``analysis.set_verify_each``).  ``None`` — the
# production default — costs one identity check per stage; an installed hook
# receives every stage's freshly built output circuit.
_STAGE_HOOK = None


def set_stage_hook(hook) -> None:
    """Install (or clear, with ``None``) the post-stage verification hook.

    The hook is called as ``hook(stage, circuit, source=..., coupling_map=...,
    basis_gates=...)`` after each pipeline stage (``"decompose"``,
    ``"route"``, ``"translate"``, ``"optimize"``) in both the direct
    :func:`transpile` path and the cached replay path.  Installed by
    :func:`repro.simulators.gate.analysis.set_verify_each`.
    """
    global _STAGE_HOOK
    _STAGE_HOOK = hook


def _notify_stage(stage, circuit, *, source=None, coupling_map=None, basis_gates=None):
    hook = _STAGE_HOOK
    if hook is not None:
        hook(
            stage,
            circuit,
            source=source,
            coupling_map=coupling_map,
            basis_gates=basis_gates,
        )

# Basis used to normalise circuits before routing (everything <= 2 qubits).
_PRE_ROUTING_BASIS = (
    "cx", "rz", "sx", "x", "h", "s", "sdg", "t", "tdg", "rx", "ry", "p", "u",
    "cz", "cp", "swap", "rzz",
)


@dataclass
class TranspileResult:
    """A transpiled circuit plus the metadata schedulers care about."""

    circuit: Circuit
    initial_layout: Layout
    final_layout: Layout
    basis_gates: Optional[Tuple[str, ...]]
    coupling_map: Optional[Tuple[Tuple[int, int], ...]]
    num_swaps_inserted: int
    metrics: Dict[str, float] = field(default_factory=dict)


def _pre_route(circuit: Circuit) -> Circuit:
    """Stage 1: normalise to <=2-qubit gates so routing understands the circuit."""
    return decompose_to_basis(circuit, _PRE_ROUTING_BASIS)


def _choose_layout(
    working: Circuit,
    coupling_map: Optional[Sequence[Tuple[int, int]]],
    optimization_level: int,
) -> Layout:
    """Stage 2: default layout selection (trivial below level 2, greedy above)."""
    if coupling_map is not None and optimization_level >= 2:
        return greedy_layout(working.num_qubits, coupling_map)
    return trivial_layout(working.num_qubits)


def _translate_and_optimize(
    routed: Circuit,
    basis_gates: Optional[Sequence[str]],
    optimization_level: int,
    *,
    coupling_map: Optional[Sequence[Tuple[int, int]]] = None,
) -> Circuit:
    """Stages 4-5: basis translation (SWAPs included) and peephole passes."""
    translated = decompose_to_basis(routed, basis_gates) if basis_gates else routed
    _notify_stage(
        "translate",
        translated,
        source=routed,
        coupling_map=coupling_map,
        basis_gates=basis_gates,
    )
    if optimization_level >= 1:
        translated = optimize_circuit(translated)
    if optimization_level >= 2:
        translated = optimize_circuit(translated, iterations=8)
    if optimization_level >= 1:
        _notify_stage(
            "optimize",
            translated,
            source=routed,
            coupling_map=coupling_map,
            basis_gates=basis_gates,
        )
    return translated


def _finish_result(
    circuit: Circuit,
    translated: Circuit,
    *,
    initial_layout: Layout,
    final_layout: Layout,
    num_swaps_inserted: int,
    basis_gates: Optional[Sequence[str]],
    coupling_map: Optional[Sequence[Tuple[int, int]]],
    optimization_level: int,
) -> TranspileResult:
    """Stamp metadata/metrics and assemble the :class:`TranspileResult`."""
    translated.metadata.update(
        {
            "basis_gates": list(basis_gates) if basis_gates else None,
            "coupling_map": [list(e) for e in coupling_map] if coupling_map else None,
            "optimization_level": optimization_level,
        }
    )
    metrics = {
        "original_depth": float(circuit.depth()),
        "original_twoq": float(circuit.num_twoq_gates()),
        "depth": float(translated.depth()),
        "twoq": float(translated.num_twoq_gates()),
        "gates": float(translated.num_gates()),
        "swaps_inserted": float(num_swaps_inserted),
    }
    return TranspileResult(
        circuit=translated,
        initial_layout=initial_layout,
        final_layout=final_layout,
        basis_gates=tuple(basis_gates) if basis_gates else None,
        coupling_map=tuple(tuple(e) for e in coupling_map) if coupling_map else None,
        num_swaps_inserted=num_swaps_inserted,
        metrics=metrics,
    )


def transpile(
    circuit: Circuit,
    *,
    basis_gates: Optional[Sequence[str]] = None,
    coupling_map: Optional[Sequence[Tuple[int, int]]] = None,
    optimization_level: int = 1,
    initial_layout: Optional[Layout] = None,
) -> TranspileResult:
    """Lower *circuit* to the target described by the execution context."""
    if not 0 <= optimization_level <= 3:
        raise TranspilerError("optimization_level must be between 0 and 3")

    # 1. normalise to <=2-qubit gates so routing has something it understands.
    working = _pre_route(circuit)
    _notify_stage("decompose", working, source=circuit)

    # 2. layout selection.
    if initial_layout is None:
        initial_layout = _choose_layout(working, coupling_map, optimization_level)

    # 3. routing.
    routing = route_circuit(working, coupling_map, initial_layout=initial_layout)
    _notify_stage("route", routing.circuit, source=working, coupling_map=coupling_map)

    # 4-5. basis translation and optimisation.
    translated = _translate_and_optimize(
        routing.circuit, basis_gates, optimization_level, coupling_map=coupling_map
    )

    return _finish_result(
        circuit,
        translated,
        initial_layout=routing.initial_layout,
        final_layout=routing.final_layout,
        num_swaps_inserted=routing.num_swaps_inserted,
        basis_gates=basis_gates,
        coupling_map=coupling_map,
        optimization_level=optimization_level,
    )
