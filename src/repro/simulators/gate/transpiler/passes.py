"""Pass manager: the substrate-side consumer of the context's ``target`` block.

:func:`transpile` mirrors the knobs the paper's Listing 4 exposes —
``basis_gates``, ``coupling_map`` and ``optimization_level`` — and reports the
structural metrics (depth, two-qubit count, inserted SWAPs) that feed cost
hints and the scheduler.

Pipeline (roughly Qiskit's preset pass managers, radically simplified):

1. decompose every gate to at most two qubits,
2. choose an initial layout (trivial for level <= 1, greedy for level >= 2),
3. route against the coupling map (SWAP insertion),
4. translate to the requested basis,
5. peephole-optimise (levels >= 1), iterating once more at level >= 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ....core.errors import TranspilerError
from ..circuit import Circuit
from .decompose import decompose_to_basis
from .layout import Layout, greedy_layout, trivial_layout
from .optimize import optimize_circuit
from .routing import route_circuit

__all__ = ["TranspileResult", "transpile"]

# Basis used to normalise circuits before routing (everything <= 2 qubits).
_PRE_ROUTING_BASIS = (
    "cx", "rz", "sx", "x", "h", "s", "sdg", "t", "tdg", "rx", "ry", "p", "u",
    "cz", "cp", "swap", "rzz",
)


@dataclass
class TranspileResult:
    """A transpiled circuit plus the metadata schedulers care about."""

    circuit: Circuit
    initial_layout: Layout
    final_layout: Layout
    basis_gates: Optional[Tuple[str, ...]]
    coupling_map: Optional[Tuple[Tuple[int, int], ...]]
    num_swaps_inserted: int
    metrics: Dict[str, float] = field(default_factory=dict)


def transpile(
    circuit: Circuit,
    *,
    basis_gates: Optional[Sequence[str]] = None,
    coupling_map: Optional[Sequence[Tuple[int, int]]] = None,
    optimization_level: int = 1,
    initial_layout: Optional[Layout] = None,
) -> TranspileResult:
    """Lower *circuit* to the target described by the execution context."""
    if not 0 <= optimization_level <= 3:
        raise TranspilerError("optimization_level must be between 0 and 3")

    original_depth = circuit.depth()
    original_twoq = circuit.num_twoq_gates()

    # 1. normalise to <=2-qubit gates so routing has something it understands.
    working = decompose_to_basis(circuit, _PRE_ROUTING_BASIS)

    # 2. layout selection.
    if initial_layout is None:
        if coupling_map is not None and optimization_level >= 2:
            initial_layout = greedy_layout(working.num_qubits, coupling_map)
        else:
            initial_layout = trivial_layout(working.num_qubits)

    # 3. routing.
    routing = route_circuit(working, coupling_map, initial_layout=initial_layout)
    routed = routing.circuit

    # 4. basis translation (after routing so inserted SWAPs are translated too).
    translated = decompose_to_basis(routed, basis_gates) if basis_gates else routed

    # 5. optimisation.
    if optimization_level >= 1:
        translated = optimize_circuit(translated)
    if optimization_level >= 2:
        translated = optimize_circuit(translated, iterations=8)

    translated.metadata.update(
        {
            "basis_gates": list(basis_gates) if basis_gates else None,
            "coupling_map": [list(e) for e in coupling_map] if coupling_map else None,
            "optimization_level": optimization_level,
        }
    )

    metrics = {
        "original_depth": float(original_depth),
        "original_twoq": float(original_twoq),
        "depth": float(translated.depth()),
        "twoq": float(translated.num_twoq_gates()),
        "gates": float(translated.num_gates()),
        "swaps_inserted": float(routing.num_swaps_inserted),
    }
    return TranspileResult(
        circuit=translated,
        initial_layout=routing.initial_layout,
        final_layout=routing.final_layout,
        basis_gates=tuple(basis_gates) if basis_gates else None,
        coupling_map=tuple(tuple(e) for e in coupling_map) if coupling_map else None,
        num_swaps_inserted=routing.num_swaps_inserted,
        metrics=metrics,
    )
