"""Initial layout selection: mapping logical qubits onto physical qubits.

The context descriptor's ``coupling_map`` names physical qubits; the lowered
circuit uses logical qubits ``0..n-1``.  A :class:`Layout` records the
bijection between the two, and this module offers two selection strategies:

* :func:`trivial_layout` — logical ``i`` on physical ``i`` (what Qiskit does
  at optimisation level 0/1 for small circuits),
* :func:`greedy_layout` — pick a connected, high-degree region of the device
  graph so that routing has short paths to work with.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ....core.errors import TranspilerError

__all__ = ["Layout", "coupling_graph", "trivial_layout", "greedy_layout"]


class Layout:
    """A bijection logical qubit -> physical qubit."""

    def __init__(self, mapping: Dict[int, int]):
        values = list(mapping.values())
        if len(set(values)) != len(values):
            raise TranspilerError("layout maps two logical qubits to the same physical qubit")
        self._l2p = dict(mapping)
        self._p2l = {p: l for l, p in self._l2p.items()}

    # -- accessors -----------------------------------------------------------
    def physical(self, logical: int) -> int:
        """Physical qubit carrying *logical*."""
        try:
            return self._l2p[logical]
        except KeyError:
            raise TranspilerError(f"logical qubit {logical} not in layout") from None

    def logical(self, physical: int) -> Optional[int]:
        """Logical qubit on *physical*, or ``None`` when unused."""
        return self._p2l.get(physical)

    def to_dict(self) -> Dict[int, int]:
        """Plain logical -> physical dictionary copy."""
        return dict(self._l2p)

    @property
    def num_logical(self) -> int:
        """Number of logical qubits in the mapping."""
        return len(self._l2p)

    def physical_qubits(self) -> List[int]:
        """Physical qubits in use, ordered by logical index."""
        return [self._l2p[l] for l in sorted(self._l2p)]

    # -- mutation -------------------------------------------------------------
    def swap_physical(self, phys_a: int, phys_b: int) -> None:
        """Record a SWAP between two physical qubits (updates the bijection)."""
        la, lb = self._p2l.get(phys_a), self._p2l.get(phys_b)
        if la is not None:
            self._l2p[la] = phys_b
        if lb is not None:
            self._l2p[lb] = phys_a
        self._p2l = {p: l for l, p in self._l2p.items()}

    def copy(self) -> "Layout":
        """An independent copy of this layout."""
        return Layout(dict(self._l2p))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout({self._l2p})"


def coupling_graph(coupling_map: Sequence[Tuple[int, int]]) -> nx.Graph:
    """Undirected device graph built from a coupling map edge list."""
    graph = nx.Graph()
    for a, b in coupling_map:
        if a == b:
            raise TranspilerError(f"coupling map contains a self-loop ({a}, {b})")
        graph.add_edge(int(a), int(b))
    return graph


def trivial_layout(num_logical: int) -> Layout:
    """Logical ``i`` -> physical ``i``."""
    return Layout({i: i for i in range(num_logical)})


def greedy_layout(num_logical: int, coupling_map: Sequence[Tuple[int, int]]) -> Layout:
    """Map logical qubits onto a connected, well-connected device region.

    Starting from the highest-degree physical qubit, a breadth-first search
    collects ``num_logical`` physical qubits, always preferring neighbours
    with the most connections back into the selected region.
    """
    graph = coupling_graph(coupling_map)
    if graph.number_of_nodes() < num_logical:
        raise TranspilerError(
            f"device has {graph.number_of_nodes()} qubits, circuit needs {num_logical}"
        )
    start = max(graph.degree, key=lambda kv: kv[1])[0]
    selected: List[int] = [start]
    frontier = set(graph.neighbors(start))
    while len(selected) < num_logical:
        if not frontier:
            # Disconnected device: jump to the best remaining node.
            remaining = [n for n in graph.nodes if n not in selected]
            if not remaining:
                raise TranspilerError("could not select enough physical qubits")
            best = max(remaining, key=lambda n: graph.degree[n])
        else:
            best = max(
                frontier,
                key=lambda n: (sum(1 for m in graph.neighbors(n) if m in selected), graph.degree[n]),
            )
        selected.append(best)
        frontier.discard(best)
        frontier.update(m for m in graph.neighbors(best) if m not in selected)
    return Layout({logical: physical for logical, physical in enumerate(selected)})
