"""Structure-keyed transpile cache: skip layout/routing on re-transpiles.

A sampled variational loop transpiles the *same circuit shape* once per
evaluation — only the rotation angles change — yet layout selection and SWAP
routing depend exclusively on the circuit's **structure** (gate names,
qubits, clbits) and the pass configuration, never on parameter values.  This
module memoises that structural work:

* the cache key is ``(circuit structure, basis gates, coupling map,
  optimization level)``;
* the cached value is a **routing template**: the chosen initial/final
  layouts plus a replay plan recording, for every instruction of the routed
  circuit, either "inserted SWAP on these physical qubits" or "input
  instruction *i* remapped onto these physical qubits";
* a cache hit *re-binds* the template with fresh parameters — the input is
  decomposed to the pre-routing basis (cheap, rule-driven), the plan is
  replayed against it verbatim, and only the parameter-dependent passes
  (basis translation, peephole optimisation) re-run.

Replay reconstructs exactly what :func:`~.passes.transpile` would produce —
routing is deterministic and parameters ride through it untouched — so the
cached and uncached paths return **identical transpiled circuits**.  The
one structural input that could in principle depend on parameter values is
the pre-routing decomposition itself; the template therefore records the
decomposed structure and, whenever a re-bind's decomposition no longer
matches, rebuilds the template from the current circuit and replaces the
cache entry (counted as a *fallback*), so a degenerate first compile can
never pin a stale plan.

Provenance is extracted by routing a relabelled copy of the decomposed
circuit (labels survive routing; inserted SWAPs stay unlabelled), so the
router itself needs no cache-specific mode.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ....core.errors import TranspilerError
from ..circuit import Circuit, Instruction
from ..lru import DEFAULT_CACHE_SIZE, BoundedLRU
from .layout import Layout
from .passes import (
    TranspileResult,
    _choose_layout,
    _finish_result,
    _notify_stage,
    _pre_route,
    _translate_and_optimize,
    transpile,
)
from .routing import route_circuit

__all__ = [
    "transpile_cached",
    "transpile_cache_info",
    "clear_transpile_cache",
    "set_transpile_cache_size",
    "DEFAULT_TRANSPILE_CACHE_SIZE",
]

#: Default bound on the routing-template LRU; kept in lockstep with the
#: fusion compile caches by ``fusion.set_compile_cache_size`` (the
#: ``compile_cache_size`` exec-policy knob).
DEFAULT_TRANSPILE_CACHE_SIZE = DEFAULT_CACHE_SIZE

_LABEL_PREFIX = "__transpile_cache:"

_TRANSPILE_CACHE = BoundedLRU(DEFAULT_TRANSPILE_CACHE_SIZE)
_FALLBACK_LOCK = threading.Lock()
_transpile_cache_fallbacks = 0


@dataclass(frozen=True)
class _RoutingTemplate:
    """The cached, parameter-independent outcome of layout + routing."""

    working_signature: tuple
    plan: Tuple[Tuple[int, Tuple[int, ...]], ...]
    initial_layout: Tuple[Tuple[int, int], ...]
    final_layout: Tuple[Tuple[int, int], ...]
    num_swaps_inserted: int
    routed_num_qubits: int


def _signature(circuit: Circuit) -> tuple:
    """Hashable key of a circuit's parameter-independent structure.

    Barriers are *kept* (unlike the fusion compiler's key): the peephole
    passes treat them as optimisation blockers, so they are structure here.
    """
    return (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(
            (inst.name, inst.qubits, inst.clbits) for inst in circuit.instructions
        ),
    )


def _build_template(
    working: Circuit,
    coupling_map: Optional[Sequence[Tuple[int, int]]],
    optimization_level: int,
) -> _RoutingTemplate:
    """Run layout + routing once and record the replay plan.

    The decomposed circuit is relabelled with its instruction indices before
    routing; reading the labels off the routed output yields, in order,
    which output instructions are inserted SWAPs (source index ``-1``) and
    which are remapped input instructions.
    """
    layout = _choose_layout(working, coupling_map, optimization_level)
    labeled = working.copy()
    labeled.instructions = [
        Instruction(inst.name, inst.qubits, inst.params, inst.clbits, f"{_LABEL_PREFIX}{k}")
        for k, inst in enumerate(working.instructions)
    ]
    routing = route_circuit(labeled, coupling_map, initial_layout=layout)
    plan = []
    for inst in routing.circuit.instructions:
        if inst.label is not None and inst.label.startswith(_LABEL_PREFIX):
            plan.append((int(inst.label[len(_LABEL_PREFIX):]), inst.qubits))
        elif inst.name == "swap" and inst.label is None:
            plan.append((-1, inst.qubits))
        else:  # pragma: no cover - router invariant
            raise TranspilerError(
                f"routing produced an instruction without provenance: {inst!r}"
            )
    return _RoutingTemplate(
        working_signature=_signature(working),
        plan=tuple(plan),
        initial_layout=tuple(sorted(routing.initial_layout.to_dict().items())),
        final_layout=tuple(sorted(routing.final_layout.to_dict().items())),
        num_swaps_inserted=routing.num_swaps_inserted,
        routed_num_qubits=routing.circuit.num_qubits,
    )


def _replay(working: Circuit, template: _RoutingTemplate) -> Circuit:
    """Re-bind the routed circuit: recorded structure, fresh parameters."""
    routed = Circuit(template.routed_num_qubits, working.num_clbits, name=working.name)
    routed.metadata = dict(working.metadata)
    instructions = working.instructions
    out = routed.instructions
    for source, qubits in template.plan:
        if source < 0:
            out.append(Instruction("swap", qubits))
        else:
            src = instructions[source]
            out.append(Instruction(src.name, qubits, src.params, src.clbits, src.label))
    return routed


def transpile_cached(
    circuit: Circuit,
    *,
    basis_gates: Optional[Sequence[str]] = None,
    coupling_map: Optional[Sequence[Tuple[int, int]]] = None,
    optimization_level: int = 1,
    initial_layout: Optional[Layout] = None,
) -> TranspileResult:
    """Transpile through the structure-keyed routing-template cache.

    Drop-in replacement for :func:`~repro.simulators.gate.transpiler.transpile`
    that skips layout selection and SWAP routing whenever the circuit's
    structure (not its parameter values) was transpiled before under the
    same basis/coupling/optimisation configuration — the per-iteration cost
    of a sampled variational loop drops to decompose + translate + peephole.
    Cached and uncached calls return identical results; an explicit
    *initial_layout* (caller-managed state) bypasses the cache entirely.
    """
    global _transpile_cache_fallbacks
    if initial_layout is not None:
        return transpile(
            circuit,
            basis_gates=basis_gates,
            coupling_map=coupling_map,
            optimization_level=optimization_level,
            initial_layout=initial_layout,
        )
    if not 0 <= optimization_level <= 3:
        raise TranspilerError("optimization_level must be between 0 and 3")
    basis_key = tuple(basis_gates) if basis_gates else None
    coupling_key = (
        tuple(tuple(edge) for edge in coupling_map) if coupling_map else None
    )
    key = (_signature(circuit), basis_key, coupling_key, int(optimization_level))
    template = _TRANSPILE_CACHE.lookup(key)
    working = _pre_route(circuit)
    _notify_stage("decompose", working, source=circuit)
    if template is not None and template.working_signature != _signature(working):
        # A parameter value changed the pre-routing decomposition's shape
        # relative to the cached template (or the template was built from a
        # degenerate angle): rebuild from this circuit and *replace* the
        # entry, so one unlucky first compile cannot pin a stale plan.
        with _FALLBACK_LOCK:
            _transpile_cache_fallbacks += 1
        template = None
    if template is None:
        template = _build_template(working, coupling_map, optimization_level)
        _TRANSPILE_CACHE.store(key, template)
    routed = _replay(working, template)
    # The replay path is exactly where a stale/corrupt template would emit a
    # malformed circuit, so verify-each re-checks the replayed output too.
    _notify_stage("route", routed, source=working, coupling_map=coupling_map)
    translated = _translate_and_optimize(
        routed, basis_gates, optimization_level, coupling_map=coupling_map
    )
    return _finish_result(
        circuit,
        translated,
        initial_layout=Layout(dict(template.initial_layout)),
        final_layout=Layout(dict(template.final_layout)),
        num_swaps_inserted=template.num_swaps_inserted,
        basis_gates=basis_gates,
        coupling_map=coupling_map,
        optimization_level=optimization_level,
    )


def transpile_cache_info() -> Dict[str, int]:
    """Hit/miss/fallback/entry counters of the transpile template cache.

    ``hits`` counts lookups served by a valid routing replay; ``fallbacks``
    counts lookups whose cached template proved stale for the circuit's
    parameter values (the template is rebuilt and replaced, costing a full
    layout+routing pass) — fallbacks are *excluded* from ``hits``.
    """
    info = _TRANSPILE_CACHE.info()
    with _FALLBACK_LOCK:
        fallbacks = _transpile_cache_fallbacks
    return {
        "hits": info["hits"] - fallbacks,
        "misses": info["misses"],
        "fallbacks": fallbacks,
        "entries": info["entries"],
        "maxsize": info["maxsize"],
    }


def clear_transpile_cache() -> None:
    """Empty the transpile template cache and reset its counters.

    Runs automatically when
    :func:`~repro.simulators.gate.gates.register_gate` replaces a gate
    definition (via the fusion layer's invalidation hook) — templates record
    decompositions built from the definitions active at compile time.
    """
    global _transpile_cache_fallbacks
    _TRANSPILE_CACHE.clear()
    with _FALLBACK_LOCK:
        _transpile_cache_fallbacks = 0


def set_transpile_cache_size(maxsize: int) -> None:
    """Bound the transpile template LRU at *maxsize* entries (evict oldest)."""
    if not isinstance(maxsize, int) or isinstance(maxsize, bool) or maxsize < 1:
        raise TranspilerError(
            f"transpile cache size must be a positive int, got {maxsize!r}"
        )
    _TRANSPILE_CACHE.set_maxsize(maxsize)
