"""Gate decomposition into a target basis.

Implements the basis-translation step of the transpiler: every gate of a
circuit is rewritten, recursively, into gates drawn from the context's
``basis_gates`` list (Listing 4 uses ``["sx", "rz", "cx"]``).

Single-qubit gates are resynthesised from their 2x2 matrix, either as
``RZ·RY·RZ`` (ZYZ) or ``RZ·SX·RZ·SX·RZ`` (ZSX) depending on the basis.
Multi-qubit gates are expanded through a fixed rule table down to
``{cx, 1q}`` and then translated.  All rewrites preserve the circuit's
unitary up to a global phase.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ....core.errors import TranspilerError
from ..circuit import Circuit, Instruction
from ..gates import gate_matrix

__all__ = ["zyz_angles", "decompose_1q_matrix", "decompose_to_basis", "expand_instruction"]

_ATOL = 1e-10


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``e^{i phase} RZ(phi) RY(theta) RZ(lam)``.

    Returns ``(theta, phi, lam, phase)``.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.shape != (2, 2):
        raise TranspilerError("zyz_angles expects a 2x2 matrix")
    det = np.linalg.det(matrix)
    if abs(abs(det) - 1.0) > 1e-6:
        raise TranspilerError("matrix is not unitary (|det| != 1)")
    # Special-unitary form.
    phase = 0.5 * cmath.phase(det)
    su = matrix * cmath.exp(-1j * phase)
    theta = 2.0 * math.atan2(abs(su[1, 0]), abs(su[0, 0]))
    if abs(su[1, 0]) < _ATOL and abs(su[0, 1]) < _ATOL:
        # Diagonal: only the sum phi + lam is defined.
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi, lam = phi_plus_lam, 0.0
    elif abs(su[0, 0]) < _ATOL and abs(su[1, 1]) < _ATOL:
        # Anti-diagonal: only the difference phi - lam is defined.
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
        phi, lam = phi_minus_lam, 0.0
    else:
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
        phi = 0.5 * (phi_plus_lam + phi_minus_lam)
        lam = 0.5 * (phi_plus_lam - phi_minus_lam)
    return theta, phi, lam, phase


def _is_multiple_of_2pi(angle: float) -> bool:
    return abs(((angle + math.pi) % (2 * math.pi)) - math.pi) < 1e-12


def decompose_1q_matrix(
    matrix: np.ndarray, qubit: int, basis_gates: Sequence[str]
) -> List[Instruction]:
    """Rewrite an arbitrary 1-qubit unitary into instructions from the basis."""
    theta, phi, lam, _ = zyz_angles(matrix)
    basis = set(basis_gates)

    if "u" in basis:
        return [Instruction("u", (qubit,), (theta, phi, lam))]

    if "rz" in basis and "ry" in basis:
        out = []
        if not _is_multiple_of_2pi(lam):
            out.append(Instruction("rz", (qubit,), (lam,)))
        if abs(theta) > _ATOL:
            out.append(Instruction("ry", (qubit,), (theta,)))
        if not _is_multiple_of_2pi(phi):
            out.append(Instruction("rz", (qubit,), (phi,)))
        return out

    if "rz" in basis and "sx" in basis:
        # U(theta, phi, lam) ~ RZ(phi + pi) . SX . RZ(theta + pi) . SX . RZ(lam)
        # (standard ZSX Euler basis, exact up to global phase).
        if abs(theta) < _ATOL:
            total = phi + lam
            if _is_multiple_of_2pi(total):
                return []
            return [Instruction("rz", (qubit,), (total,))]
        return [
            Instruction("rz", (qubit,), (lam,)),
            Instruction("sx", (qubit,)),
            Instruction("rz", (qubit,), (theta + math.pi,)),
            Instruction("sx", (qubit,)),
            Instruction("rz", (qubit,), (phi + math.pi,)),
        ]

    raise TranspilerError(
        f"basis {sorted(basis)} cannot express single-qubit unitaries "
        "(needs 'u', or 'rz'+'ry', or 'rz'+'sx')"
    )


# -- multi-qubit expansion rules (always into {cx, 1q gates}) -------------------

def _rule_cz(inst: Instruction) -> List[Instruction]:
    a, b = inst.qubits
    return [Instruction("h", (b,)), Instruction("cx", (a, b)), Instruction("h", (b,))]


def _rule_cy(inst: Instruction) -> List[Instruction]:
    a, b = inst.qubits
    return [Instruction("sdg", (b,)), Instruction("cx", (a, b)), Instruction("s", (b,))]


def _rule_ch(inst: Instruction) -> List[Instruction]:
    a, b = inst.qubits
    return [
        Instruction("ry", (b,), (math.pi / 4,)),
        Instruction("cx", (a, b)),
        Instruction("ry", (b,), (-math.pi / 4,)),
    ]


def _rule_cp(inst: Instruction) -> List[Instruction]:
    lam = inst.params[0]
    a, b = inst.qubits
    return [
        Instruction("p", (a,), (lam / 2,)),
        Instruction("cx", (a, b)),
        Instruction("p", (b,), (-lam / 2,)),
        Instruction("cx", (a, b)),
        Instruction("p", (b,), (lam / 2,)),
    ]


def _rule_crz(inst: Instruction) -> List[Instruction]:
    lam = inst.params[0]
    a, b = inst.qubits
    return [
        Instruction("rz", (b,), (lam / 2,)),
        Instruction("cx", (a, b)),
        Instruction("rz", (b,), (-lam / 2,)),
        Instruction("cx", (a, b)),
    ]


def _rule_cry(inst: Instruction) -> List[Instruction]:
    theta = inst.params[0]
    a, b = inst.qubits
    return [
        Instruction("ry", (b,), (theta / 2,)),
        Instruction("cx", (a, b)),
        Instruction("ry", (b,), (-theta / 2,)),
        Instruction("cx", (a, b)),
    ]


def _rule_crx(inst: Instruction) -> List[Instruction]:
    theta = inst.params[0]
    a, b = inst.qubits
    return [
        Instruction("h", (b,)),
        *_rule_crz(Instruction("crz", (a, b), (theta,))),
        Instruction("h", (b,)),
    ]


def _rule_swap(inst: Instruction) -> List[Instruction]:
    a, b = inst.qubits
    return [Instruction("cx", (a, b)), Instruction("cx", (b, a)), Instruction("cx", (a, b))]


def _rule_rzz(inst: Instruction) -> List[Instruction]:
    theta = inst.params[0]
    a, b = inst.qubits
    return [
        Instruction("cx", (a, b)),
        Instruction("rz", (b,), (theta,)),
        Instruction("cx", (a, b)),
    ]


def _rule_rxx(inst: Instruction) -> List[Instruction]:
    theta = inst.params[0]
    a, b = inst.qubits
    return [
        Instruction("h", (a,)),
        Instruction("h", (b,)),
        *_rule_rzz(Instruction("rzz", (a, b), (theta,))),
        Instruction("h", (a,)),
        Instruction("h", (b,)),
    ]


def _rule_ryy(inst: Instruction) -> List[Instruction]:
    theta = inst.params[0]
    a, b = inst.qubits
    return [
        Instruction("rx", (a,), (math.pi / 2,)),
        Instruction("rx", (b,), (math.pi / 2,)),
        *_rule_rzz(Instruction("rzz", (a, b), (theta,))),
        Instruction("rx", (a,), (-math.pi / 2,)),
        Instruction("rx", (b,), (-math.pi / 2,)),
    ]


def _rule_iswap(inst: Instruction) -> List[Instruction]:
    a, b = inst.qubits
    return [
        *_rule_rxx(Instruction("rxx", (a, b), (-math.pi / 2,))),
        *_rule_ryy(Instruction("ryy", (a, b), (-math.pi / 2,))),
    ]


def _rule_ccx(inst: Instruction) -> List[Instruction]:
    a, b, c = inst.qubits
    return [
        Instruction("h", (c,)),
        Instruction("cx", (b, c)),
        Instruction("tdg", (c,)),
        Instruction("cx", (a, c)),
        Instruction("t", (c,)),
        Instruction("cx", (b, c)),
        Instruction("tdg", (c,)),
        Instruction("cx", (a, c)),
        Instruction("t", (b,)),
        Instruction("t", (c,)),
        Instruction("h", (c,)),
        Instruction("cx", (a, b)),
        Instruction("t", (a,)),
        Instruction("tdg", (b,)),
        Instruction("cx", (a, b)),
    ]


def _rule_ccz(inst: Instruction) -> List[Instruction]:
    a, b, c = inst.qubits
    return [
        Instruction("h", (c,)),
        *_rule_ccx(Instruction("ccx", (a, b, c))),
        Instruction("h", (c,)),
    ]


def _rule_cswap(inst: Instruction) -> List[Instruction]:
    c, a, b = inst.qubits
    return [
        Instruction("cx", (b, a)),
        *_rule_ccx(Instruction("ccx", (c, a, b))),
        Instruction("cx", (b, a)),
    ]


_EXPANSION_RULES = {
    "cz": _rule_cz,
    "cy": _rule_cy,
    "ch": _rule_ch,
    "cp": _rule_cp,
    "crz": _rule_crz,
    "cry": _rule_cry,
    "crx": _rule_crx,
    "swap": _rule_swap,
    "rzz": _rule_rzz,
    "rxx": _rule_rxx,
    "ryy": _rule_ryy,
    "iswap": _rule_iswap,
    "ccx": _rule_ccx,
    "ccz": _rule_ccz,
    "cswap": _rule_cswap,
}


def expand_instruction(inst: Instruction) -> List[Instruction]:
    """Expand one multi-qubit gate into {cx, 1q} gates (one level of rules)."""
    rule = _EXPANSION_RULES.get(inst.name)
    if rule is None:
        raise TranspilerError(f"no expansion rule for gate {inst.name!r}")
    return rule(inst)


def decompose_to_basis(
    circuit: Circuit,
    basis_gates: Optional[Sequence[str]],
    *,
    keep_swaps: bool = False,
) -> Circuit:
    """Rewrite *circuit* so every gate is in *basis_gates*.

    ``None`` basis means "leave everything untouched".  Measurements, resets
    and barriers always pass through.  ``keep_swaps=True`` leaves explicit
    ``swap`` gates in place (used between routing and final translation).
    """
    if basis_gates is None:
        return circuit.copy()
    basis = set(basis_gates)
    if not ({"cx", "cz"} & basis):
        raise TranspilerError("basis must contain an entangling gate ('cx' or 'cz')")

    out = Circuit(circuit.num_qubits, circuit.num_clbits, name=circuit.name)
    out.metadata = dict(circuit.metadata)

    def emit(inst: Instruction) -> None:
        if inst.name in ("measure", "reset", "barrier"):
            out.instructions.append(inst)
            return
        if inst.name in basis:
            out.instructions.append(inst)
            return
        if keep_swaps and inst.name == "swap":
            out.instructions.append(inst)
            return
        if inst.name == "id":
            return
        if inst.num_qubits == 1:
            matrix = gate_matrix(inst.name, inst.params)
            for new in decompose_1q_matrix(matrix, inst.qubits[0], basis_gates):
                emit(new)
            return
        if inst.name == "cx" and "cx" not in basis:
            # Only cz remains as the entangler.
            a, b = inst.qubits
            emit(Instruction("h", (b,)))
            emit(Instruction("cz", (a, b)))
            emit(Instruction("h", (b,)))
            return
        for new in expand_instruction(inst):
            emit(new)

    for inst in circuit.instructions:
        emit(inst)
    return out
