"""SWAP-insertion routing for constrained coupling maps.

The context descriptor's ``target.coupling_map`` (Listing 4) "forces realistic
routing and basis decompositions".  This pass makes that true for our
substrate: every two-qubit gate between physically non-adjacent qubits is
preceded by a chain of SWAPs that walks one operand along a shortest path
towards the other, updating the logical-to-physical layout as it goes.

The router expects a circuit whose gates touch at most two qubits (the pass
manager decomposes three-qubit gates first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ....core.errors import TranspilerError
from ..circuit import Circuit, Instruction
from .layout import Layout, coupling_graph, trivial_layout

__all__ = ["RoutingResult", "route_circuit"]


@dataclass
class RoutingResult:
    """Routed circuit plus layout bookkeeping."""

    circuit: Circuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps_inserted: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)


def route_circuit(
    circuit: Circuit,
    coupling_map: Optional[Sequence[Tuple[int, int]]],
    *,
    initial_layout: Optional[Layout] = None,
) -> RoutingResult:
    """Insert SWAPs so that every 2-qubit gate acts on coupled physical qubits.

    With ``coupling_map=None`` (all-to-all connectivity) the circuit passes
    through unchanged apart from being relabelled by the initial layout.
    """
    layout = (initial_layout or trivial_layout(circuit.num_qubits)).copy()
    start_layout = layout.copy()

    if coupling_map is None:
        routed = circuit.remapped(
            [layout.physical(q) for q in range(circuit.num_qubits)],
            num_qubits=max(layout.physical_qubits(), default=circuit.num_qubits - 1) + 1,
        )
        return RoutingResult(routed, start_layout, layout, 0)

    graph = coupling_graph(coupling_map)
    for logical in range(circuit.num_qubits):
        if layout.physical(logical) not in graph.nodes:
            raise TranspilerError(
                f"initial layout places logical qubit {logical} on physical qubit "
                f"{layout.physical(logical)} which is absent from the coupling map"
            )

    num_physical = max(graph.nodes) + 1
    routed = Circuit(num_physical, circuit.num_clbits, name=circuit.name)
    routed.metadata = dict(circuit.metadata)
    swaps = 0

    # Pre-compute all-pairs shortest paths once; devices are small graphs.
    shortest = dict(nx.all_pairs_shortest_path(graph))

    # Labels are carried through verbatim (inserted SWAPs stay unlabelled):
    # the transpile cache uses them to record which routed instruction came
    # from which input instruction.
    for inst in circuit.instructions:
        if inst.name == "barrier":
            routed.append(
                "barrier", [layout.physical(q) for q in inst.qubits], label=inst.label
            )
            continue
        if inst.name in ("measure", "reset"):
            routed.append(
                inst.name,
                [layout.physical(inst.qubits[0])],
                clbits=inst.clbits,
                label=inst.label,
            )
            continue
        if inst.num_qubits == 1:
            routed.append(
                inst.name, [layout.physical(inst.qubits[0])], inst.params, label=inst.label
            )
            continue
        if inst.num_qubits > 2:
            raise TranspilerError(
                f"routing requires <=2-qubit gates; decompose {inst.name!r} first"
            )

        logical_a, logical_b = inst.qubits
        phys_a, phys_b = layout.physical(logical_a), layout.physical(logical_b)
        if phys_b not in shortest.get(phys_a, {}):
            raise TranspilerError(
                f"physical qubits {phys_a} and {phys_b} are not connected in the coupling map"
            )
        path = shortest[phys_a][phys_b]
        # Walk qubit A along the path until it neighbours B.
        for step in path[1:-1]:
            current = layout.physical(logical_a)
            routed.append("swap", [current, step])
            layout.swap_physical(current, step)
            swaps += 1
        routed.append(
            inst.name,
            [layout.physical(logical_a), layout.physical(logical_b)],
            inst.params,
            label=inst.label,
        )

    return RoutingResult(
        circuit=routed,
        initial_layout=start_layout,
        final_layout=layout,
        num_swaps_inserted=swaps,
        metadata={"num_physical_qubits": num_physical},
    )
