"""NumPy state-vector simulation engine (the Aer stand-in).

Two entry points:

* :class:`Statevector` — an n-qubit state with gate application, probability
  extraction and expectation values; useful on its own for exact reference
  results in tests and benchmarks.
* :class:`StatevectorSimulator` — shot-based execution of a
  :class:`~repro.simulators.gate.circuit.Circuit`, returning a
  :class:`~repro.results.counts.Counts` histogram.  Terminal-measurement
  circuits are sampled from the exact distribution in one pass; circuits with
  mid-circuit measurement or reset fall back to per-shot trajectories.

State layout
------------
The state is stored as a tensor of shape ``(2,) * n`` where axis ``i`` is
qubit ``i``.  In flattened (C-order) indices qubit 0 therefore varies slowest;
the helper :func:`index_to_bits` converts a flat index to the bitstring whose
character ``i`` is the value of qubit ``i`` — the same convention used by the
middle layer's counts and result schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...core.errors import SimulationError
from ...results.counts import Counts
from .circuit import Circuit, Instruction
from .gates import gate_matrix
from .noise import NoiseModel

__all__ = ["index_to_bits", "bits_to_index", "Statevector", "SimulationResult", "StatevectorSimulator"]

MAX_SIMULATED_QUBITS = 24


def index_to_bits(index: int, num_qubits: int) -> str:
    """Flat tensor index -> bitstring with character ``i`` = qubit ``i``."""
    return format(index, f"0{num_qubits}b")


def bits_to_index(bits: str) -> int:
    """Inverse of :func:`index_to_bits`."""
    return int(bits, 2)


class Statevector:
    """An n-qubit pure state with in-place gate application."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise SimulationError("statevector needs at least one qubit")
        if num_qubits > MAX_SIMULATED_QUBITS:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the simulator limit of {MAX_SIMULATED_QUBITS}"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            tensor = np.zeros(dim, dtype=np.complex128)
            tensor[0] = 1.0
        else:
            tensor = np.asarray(data, dtype=np.complex128).reshape(dim).copy()
            norm = np.linalg.norm(tensor)
            if norm == 0:
                raise SimulationError("cannot build a statevector from the zero vector")
            tensor = tensor / norm
        self._tensor = tensor.reshape((2,) * num_qubits)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_bitstring(cls, bits: str) -> "Statevector":
        """Computational basis state; character ``i`` is qubit ``i``."""
        state = cls(len(bits))
        state._tensor[...] = 0
        state._tensor[tuple(int(c) for c in bits)] = 1.0
        return state

    # -- accessors ---------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Flat complex amplitudes (C-order over qubit axes 0..n-1)."""
        return self._tensor.reshape(-1)

    def amplitude(self, bits: str) -> complex:
        """Amplitude of the basis state given as a qubit-order bitstring."""
        if len(bits) != self.num_qubits:
            raise SimulationError("bitstring width does not match the statevector")
        return complex(self._tensor[tuple(int(c) for c in bits)])

    def probabilities(self) -> np.ndarray:
        """Flat probability vector (C-order over qubit axes)."""
        return np.abs(self.data) ** 2

    def probability_dict(self, threshold: float = 1e-12) -> Dict[str, float]:
        """Bitstring -> probability for every outcome above *threshold*."""
        probs = self.probabilities()
        return {
            index_to_bits(i, self.num_qubits): float(p)
            for i, p in enumerate(probs)
            if p > threshold
        }

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        if other.num_qubits != self.num_qubits:
            raise SimulationError("fidelity requires states of equal width")
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli Z on *qubit*."""
        probs = np.abs(self._tensor) ** 2
        axes = tuple(a for a in range(self.num_qubits) if a != qubit)
        marginal = probs.sum(axis=axes) if axes else probs
        return float(marginal[0] - marginal[1])

    def expectation_zz(self, qubit_a: int, qubit_b: int) -> float:
        """Expectation value of Z_a Z_b."""
        if qubit_a == qubit_b:
            return 1.0
        probs = np.abs(self._tensor) ** 2
        axes = tuple(a for a in range(self.num_qubits) if a not in (qubit_a, qubit_b))
        marginal = probs.sum(axis=axes) if axes else probs
        if qubit_a > qubit_b:
            marginal = marginal.T
        return float(marginal[0, 0] + marginal[1, 1] - marginal[0, 1] - marginal[1, 0])

    # -- evolution ------------------------------------------------------------------
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Apply a ``2^m x 2^m`` unitary to the given qubits (first = MSB)."""
        qubits = [int(q) for q in qubits]
        m = len(qubits)
        if matrix.shape != (1 << m, 1 << m):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {m} target qubits"
            )
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise SimulationError(f"qubit {q} out of range")
        tensor = np.moveaxis(self._tensor, qubits, range(m))
        shape = tensor.shape
        tensor = tensor.reshape(1 << m, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape(shape)
        self._tensor = np.moveaxis(tensor, range(m), qubits)
        return self

    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> "Statevector":
        """Apply a named gate from the library."""
        return self.apply_matrix(gate_matrix(name, params), qubits)

    def evolve(self, circuit: Circuit) -> "Statevector":
        """Apply every unitary gate of *circuit* (measure/reset are rejected)."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width does not match the statevector")
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            if not inst.is_gate:
                raise SimulationError(
                    "Statevector.evolve only supports unitary circuits; "
                    "use StatevectorSimulator.run for measurements"
                )
            self.apply_gate(inst.name, inst.qubits, inst.params)
        return self

    # -- measurement -----------------------------------------------------------------
    def measure_qubit(self, qubit: int, rng: np.random.Generator) -> int:
        """Projectively measure one qubit, collapsing the state in place."""
        probs = np.abs(self._tensor) ** 2
        axes = tuple(a for a in range(self.num_qubits) if a != qubit)
        marginal = probs.sum(axis=axes) if axes else probs
        p1 = float(marginal[1])
        outcome = 1 if rng.random() < p1 else 0
        projector_index = [slice(None)] * self.num_qubits
        projector_index[qubit] = 1 - outcome
        self._tensor[tuple(projector_index)] = 0.0
        norm = np.linalg.norm(self._tensor)
        if norm == 0:
            raise SimulationError("measurement produced a zero-norm state")
        self._tensor /= norm
        return outcome

    def reset_qubit(self, qubit: int, rng: np.random.Generator) -> None:
        """Measure then flip-to-zero a single qubit."""
        outcome = self.measure_qubit(qubit, rng)
        if outcome == 1:
            self.apply_gate("x", [qubit])

    def sample_counts(
        self, shots: int, rng: np.random.Generator, qubits: Optional[Sequence[int]] = None
    ) -> Counts:
        """Sample *shots* outcomes of the given qubits (default all)."""
        qubits = list(range(self.num_qubits)) if qubits is None else list(qubits)
        probs = self.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        data: Dict[str, int] = {}
        for index, multiplicity in zip(*np.unique(outcomes, return_counts=True)):
            full = index_to_bits(int(index), self.num_qubits)
            key = "".join(full[q] for q in qubits)
            data[key] = data.get(key, 0) + int(multiplicity)
        return Counts(data)


@dataclass
class SimulationResult:
    """Output of one :class:`StatevectorSimulator` run."""

    counts: Counts
    statevector: Optional[Statevector] = None
    shots: int = 0
    seed: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def get_counts(self) -> Counts:
        """Qiskit-style accessor."""
        return self.counts


class StatevectorSimulator:
    """Shot-based execution of circuits on the exact state vector."""

    def __init__(self, *, noise_model: Optional[NoiseModel] = None):
        self.noise_model = noise_model

    def run(
        self,
        circuit: Circuit,
        *,
        shots: int = 1024,
        seed: Optional[int] = None,
        return_statevector: bool = False,
    ) -> SimulationResult:
        """Execute *circuit* and return counts over its classical bits.

        Circuits without measurements return counts over all qubits measured
        implicitly at the end *only* when ``shots > 0`` — but note the middle
        layer never relies on this: lowered circuits always carry explicit
        measurements (the "no hidden measurement" rule).
        """
        if shots < 0:
            raise SimulationError("shots must be non-negative")
        rng = np.random.default_rng(seed)

        needs_trajectories = (
            self.noise_model is not None
            or not circuit.measurements_are_terminal()
            or any(inst.name == "reset" for inst in circuit.instructions)
        )
        if needs_trajectories:
            counts, final_state = self._run_trajectories(circuit, shots, rng)
        else:
            counts, final_state = self._run_exact(circuit, shots, rng)
        return SimulationResult(
            counts=counts,
            statevector=final_state if return_statevector else None,
            shots=shots,
            seed=seed,
            metadata={"method": "trajectories" if needs_trajectories else "exact"},
        )

    # -- exact path -------------------------------------------------------------
    def _run_exact(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> Tuple[Counts, Statevector]:
        state = Statevector(circuit.num_qubits)
        measure_map: Dict[int, int] = {}
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            if inst.name == "measure":
                measure_map[inst.clbits[0]] = inst.qubits[0]
                continue
            state.apply_gate(inst.name, inst.qubits, inst.params)

        if not measure_map or shots == 0:
            return Counts({}), state

        num_clbits = circuit.num_clbits
        probs = state.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        data: Dict[str, int] = {}
        for index, multiplicity in zip(*np.unique(outcomes, return_counts=True)):
            full = index_to_bits(int(index), circuit.num_qubits)
            key_chars = ["0"] * num_clbits
            for clbit, qubit in measure_map.items():
                key_chars[clbit] = full[qubit]
            key = "".join(key_chars)
            data[key] = data.get(key, 0) + int(multiplicity)
        return Counts(data), state

    # -- trajectory path -----------------------------------------------------------
    def _run_trajectories(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> Tuple[Counts, Statevector]:
        if shots == 0:
            return Counts({}), Statevector(circuit.num_qubits)
        samples: List[str] = []
        final_state = Statevector(circuit.num_qubits)
        for _ in range(shots):
            state = Statevector(circuit.num_qubits)
            clbits = ["0"] * circuit.num_clbits
            for inst in circuit.instructions:
                if inst.name == "barrier":
                    continue
                if inst.name == "measure":
                    outcome = state.measure_qubit(inst.qubits[0], rng)
                    if self.noise_model is not None:
                        outcome = self.noise_model.apply_readout_error(outcome, rng)
                    clbits[inst.clbits[0]] = str(outcome)
                    continue
                if inst.name == "reset":
                    state.reset_qubit(inst.qubits[0], rng)
                    continue
                state.apply_gate(inst.name, inst.qubits, inst.params)
                if self.noise_model is not None:
                    self.noise_model.apply_gate_noise(state, inst, rng)
            samples.append("".join(clbits))
            final_state = state
        return Counts.from_samples(samples), final_state
