"""NumPy state-vector simulation engine (the Aer stand-in).

Two entry points:

* :class:`Statevector` — an n-qubit state with gate application, probability
  extraction and expectation values; useful on its own for exact reference
  results in tests and benchmarks.
* :class:`StatevectorSimulator` — shot-based execution of a
  :class:`~repro.simulators.gate.circuit.Circuit`, returning a
  :class:`~repro.results.counts.Counts` histogram.

Execution paths
---------------
The simulator picks one of three paths per run:

* **exact** — circuits whose measurements are all terminal (and noiseless
  runs without reset) evolve the state once and sample all shots from the
  exact distribution in a single pass;
* **batched trajectories** (default for everything else) — noisy circuits
  and circuits with mid-circuit measurement or reset advance *all* shots
  simultaneously through a
  :class:`~repro.simulators.gate.batched.BatchedStatevector` whose
  *trailing* axis is the shot index (layout ``(2, ..., 2, batch)``, qubit
  ``i`` on axis ``i`` — the same qubit-axis convention as the single-shot
  state).  The ``max_batch_memory`` knob bounds the ``shots x 2^n``
  footprint by chunking the shot dimension; each chunk is an independent
  batch with its own ``SeedSequence``-spawned RNG stream, and the
  ``trajectory_workers`` knob dispatches chunks across a thread pool — or,
  with ``trajectory_executor="process"``, across the persistent worker-process
  pool of :mod:`~repro.simulators.gate.procpool` (seeded counts are
  bit-identical for every worker count and both executors).
* **reference trajectories** — a per-shot Python loop over the *same*
  compiled program, with scalar RNG draws; kept as the executable
  specification of per-trajectory semantics that the batched engine's
  vectorised execution is tested against (``trajectory_engine="reference"``;
  the compiler itself is validated against the density oracle and the
  unfused specification in the fusion property tests).

A fourth engine sits outside the sampling family:
``trajectory_engine="density"`` routes the whole run through the exact
:class:`~repro.simulators.gate.density.DensityMatrixSimulator` oracle, which
computes the outcome distribution in closed form (noise applied as CPTP maps)
instead of sampling trajectories at all.

A fifth engine lifts the width cap for Clifford circuits:
``trajectory_engine="stabilizer"`` compiles through the Clifford lowering
table of :mod:`~repro.simulators.gate.fusion` and samples trajectories on a
batched Aaronson–Gottesman tableau
(:mod:`~repro.simulators.gate.stabilizer`), which scales to hundreds of
qubits (QEC cycles) but raises
:class:`~repro.core.errors.UnsupportedGateError` on non-Clifford gates.
``trajectory_engine="auto"`` picks the stabilizer engine for Clifford
circuits and the batched engine otherwise.

State layout
------------
A single state is stored as a tensor of shape ``(2,) * n`` where axis ``i``
is qubit ``i``.  In flattened (C-order) indices qubit 0 therefore varies
slowest; the helper :func:`index_to_bits` converts a flat index to the
bitstring whose character ``i`` is the value of qubit ``i`` — the same
convention used by the middle layer's counts and result schemas.  The batched
engine uses the identical qubit-axis layout with a trailing shot axis.

Single- and two-qubit gates are applied through fused axis-sliced kernels
(:mod:`~repro.simulators.gate.kernels`) with an LRU gate-matrix cache; only
three-qubit-and-wider unitaries take the generic
``moveaxis -> reshape -> matmul`` route.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...core.errors import SimulationError
from ...results.counts import Counts
from .circuit import Circuit
from .gates import cached_gate_matrix, cached_gate_plan
from .kernels import DEFAULT_NOISE_GEMM_THRESHOLD, apply_matrix_inplace
from .noise import NoiseModel

__all__ = [
    "index_to_bits",
    "bits_to_index",
    "Statevector",
    "SimulationResult",
    "StatevectorSimulator",
    "execute_program_chunk",
    "execute_program_segments",
    "DEFAULT_MAX_BATCH_MEMORY",
]

MAX_SIMULATED_QUBITS = 24

#: Default cap on the batched engine's working set (state + scratch buffer),
#: in bytes.  The engine is memory-bandwidth bound, so the sweet spot is the
#: largest chunk that stays cache-friendly, not the largest that fits RAM —
#: 16 MiB admits 256 simultaneous complex64 trajectories at 12 qubits and
#: measured fastest across chunk sizes on a single-core x86 host.
DEFAULT_MAX_BATCH_MEMORY = 16 * 1024 * 1024


def index_to_bits(index: int, num_qubits: int) -> str:
    """Flat tensor index -> bitstring with character ``i`` = qubit ``i``."""
    return format(index, f"0{num_qubits}b")


def bits_to_index(bits: str) -> int:
    """Inverse of :func:`index_to_bits`."""
    return int(bits, 2)


class Statevector:
    """An n-qubit pure state with in-place gate application."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise SimulationError("statevector needs at least one qubit")
        if num_qubits > MAX_SIMULATED_QUBITS:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the simulator limit of {MAX_SIMULATED_QUBITS}"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            tensor = np.zeros(dim, dtype=np.complex128)
            tensor[0] = 1.0
        else:
            tensor = np.asarray(data, dtype=np.complex128).reshape(dim).copy()
            norm = np.linalg.norm(tensor)
            if norm == 0:
                raise SimulationError("cannot build a statevector from the zero vector")
            tensor = tensor / norm
        self._tensor = tensor.reshape((2,) * num_qubits)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_bitstring(cls, bits: str) -> "Statevector":
        """Computational basis state; character ``i`` is qubit ``i``."""
        state = cls(len(bits))
        state._tensor[...] = 0
        state._tensor[tuple(int(c) for c in bits)] = 1.0
        return state

    # -- accessors ---------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Flat complex amplitudes (C-order over qubit axes 0..n-1)."""
        return self._tensor.reshape(-1)

    def amplitude(self, bits: str) -> complex:
        """Amplitude of the basis state given as a qubit-order bitstring."""
        if len(bits) != self.num_qubits:
            raise SimulationError("bitstring width does not match the statevector")
        return complex(self._tensor[tuple(int(c) for c in bits)])

    def probabilities(self) -> np.ndarray:
        """Flat probability vector (C-order over qubit axes)."""
        return np.abs(self.data) ** 2

    def probability_dict(self, threshold: float = 1e-12) -> Dict[str, float]:
        """Bitstring -> probability for every outcome above *threshold*."""
        probs = self.probabilities()
        return {
            index_to_bits(i, self.num_qubits): float(p)
            for i, p in enumerate(probs)
            if p > threshold
        }

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        if other.num_qubits != self.num_qubits:
            raise SimulationError("fidelity requires states of equal width")
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli Z on *qubit*."""
        probs = np.abs(self._tensor) ** 2
        axes = tuple(a for a in range(self.num_qubits) if a != qubit)
        marginal = probs.sum(axis=axes) if axes else probs
        return float(marginal[0] - marginal[1])

    def expectation_zz(self, qubit_a: int, qubit_b: int) -> float:
        """Expectation value of Z_a Z_b."""
        if qubit_a == qubit_b:
            return 1.0
        probs = np.abs(self._tensor) ** 2
        axes = tuple(a for a in range(self.num_qubits) if a not in (qubit_a, qubit_b))
        marginal = probs.sum(axis=axes) if axes else probs
        if qubit_a > qubit_b:
            marginal = marginal.T
        return float(marginal[0, 0] + marginal[1, 1] - marginal[0, 1] - marginal[1, 0])

    def expectation(self, observable) -> float:
        """Exact ``<psi| O |psi>`` of a Hermitian observable on this pure state.

        *observable* is either a full ``2^n x 2^n`` matrix or a Pauli
        specification (a string like ``"ZZI"`` with character ``i`` acting on
        qubit ``i``, a mapping of Pauli strings to coefficients, or
        ``(string, coefficient)`` pairs) — the same contract as
        :meth:`DensityMatrix.expectation
        <repro.simulators.gate.density.DensityMatrix.expectation>`, so the
        density oracle and the pure-state engines are directly comparable.
        """
        from .density import pauli_terms  # local: density imports this module
        from .gates import cached_gate_plan
        from .kernels import apply_plan_inplace

        if isinstance(observable, np.ndarray):
            dim = 1 << self.num_qubits
            if observable.shape != (dim, dim):
                raise SimulationError(
                    f"observable shape {observable.shape} does not match dimension {dim}"
                )
            psi = self.data
            return float(np.real(np.vdot(psi, observable @ psi)))
        total = 0.0
        for coeff, string in pauli_terms(observable, self.num_qubits):
            work = self._tensor.copy()
            for qubit, char in enumerate(string):
                if char != "I":
                    apply_plan_inplace(work, cached_gate_plan(char.lower()), [qubit])
            total += coeff * float(np.real(np.vdot(self.data, work.reshape(-1))))
        return total

    # -- evolution ------------------------------------------------------------------
    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int], plan=None
    ) -> "Statevector":
        """Apply a ``2^m x 2^m`` unitary to the given qubits (first = MSB).

        One- and two-qubit matrices go through the fused axis-sliced kernels
        (pass a cached *plan* to skip the structure analysis); wider
        unitaries fall back to the generic transpose/matmul route.
        """
        qubits = [int(q) for q in qubits]
        m = len(qubits)
        if matrix.shape != (1 << m, 1 << m):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {m} target qubits"
            )
        if len(set(qubits)) != m:
            raise SimulationError(f"duplicate qubits in {tuple(qubits)}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise SimulationError(f"qubit {q} out of range")
        if m <= 2:
            apply_matrix_inplace(self._tensor, matrix, qubits, plan=plan)
            return self
        tensor = np.moveaxis(self._tensor, qubits, range(m))
        shape = tensor.shape
        tensor = tensor.reshape(1 << m, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape(shape)
        self._tensor = np.moveaxis(tensor, range(m), qubits)
        return self

    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> "Statevector":
        """Apply a named gate from the library (matrices served from the LRU cache)."""
        matrix = cached_gate_matrix(name, params)
        if len(qubits) <= 2:
            return self.apply_matrix(matrix, qubits, plan=cached_gate_plan(name, params))
        return self.apply_matrix(matrix, qubits)

    def evolve(self, circuit: Circuit, *, fuse: bool = True) -> "Statevector":
        """Apply every unitary gate of *circuit* to this state, in place.

        Parameters
        ----------
        circuit:
            A purely unitary :class:`~repro.simulators.gate.circuit.Circuit`
            of the same width as this state.  Measure and reset instructions
            are rejected (use :meth:`StatevectorSimulator.run` for those);
            barriers are ignored.
        fuse:
            When true (the default) the circuit is first compiled through the
            :func:`~repro.simulators.gate.fusion.compile_trajectory_program`
            fusion compiler, so consecutive single-qubit gates cost one fused
            traversal and adjacent pending 1q runs are absorbed into
            following two-qubit gates — typically 2-3x fewer state
            traversals on transpiled circuits.  ``fuse=False`` applies the
            instructions one by one and is kept as the executable
            specification the fused path is tested against.

        Returns
        -------
        Statevector
            ``self``, for chaining.  Both paths produce the same state up to
            float rounding (fused matrix products are accumulated in
            ``complex128``).
        """
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width does not match the statevector")
        for inst in circuit.instructions:
            if inst.name != "barrier" and not inst.is_gate:
                raise SimulationError(
                    "Statevector.evolve only supports unitary circuits; "
                    "use StatevectorSimulator.run for measurements"
                )
        if fuse:
            from .fusion import compile_trajectory_program_cached  # local: import cycle

            program = compile_trajectory_program_cached(circuit)
            for step in program.steps:
                self.apply_matrix(step.matrix, step.qubits, plan=step.plan)
            return self
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            self.apply_gate(inst.name, inst.qubits, inst.params)
        return self

    # -- measurement -----------------------------------------------------------------
    def measure_qubit(self, qubit: int, rng: np.random.Generator) -> int:
        """Projectively measure one qubit, collapsing the state in place."""
        probs = np.abs(self._tensor) ** 2
        axes = tuple(a for a in range(self.num_qubits) if a != qubit)
        marginal = probs.sum(axis=axes) if axes else probs
        p1 = float(marginal[1])
        outcome = 1 if rng.random() < p1 else 0
        projector_index = [slice(None)] * self.num_qubits
        projector_index[qubit] = 1 - outcome
        self._tensor[tuple(projector_index)] = 0.0
        norm = np.linalg.norm(self._tensor)
        if norm == 0:
            raise SimulationError("measurement produced a zero-norm state")
        self._tensor /= norm
        return outcome

    def reset_qubit(self, qubit: int, rng: np.random.Generator) -> None:
        """Measure then flip-to-zero a single qubit."""
        outcome = self.measure_qubit(qubit, rng)
        if outcome == 1:
            self.apply_gate("x", [qubit])

    def sample_counts(
        self, shots: int, rng: np.random.Generator, qubits: Optional[Sequence[int]] = None
    ) -> Counts:
        """Sample *shots* outcomes of the given qubits (default all)."""
        qubits = list(range(self.num_qubits)) if qubits is None else list(qubits)
        probs = self.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        data: Dict[str, int] = {}
        for index, multiplicity in zip(*np.unique(outcomes, return_counts=True)):
            full = index_to_bits(int(index), self.num_qubits)
            key = "".join(full[q] for q in qubits)
            data[key] = data.get(key, 0) + int(multiplicity)
        return Counts(data)


@dataclass
class SimulationResult:
    """Output of one :class:`StatevectorSimulator` run."""

    counts: Counts
    statevector: Optional[Statevector] = None
    shots: int = 0
    seed: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def get_counts(self) -> Counts:
        """Qiskit-style accessor."""
        return self.counts


class StatevectorSimulator:
    """Shot-based execution of circuits on the exact state vector.

    Parameters
    ----------
    noise_model:
        Optional :class:`NoiseModel`; any nonzero rate forces the trajectory
        path.
    max_batch_memory:
        Byte budget for the batched trajectory engine's working set (state
        tensor plus scratch buffer).  Shots are chunked so that
        ``batch x 2^n`` states fit; ``None`` disables chunking and runs every
        shot in one batch.
    trajectory_engine:
        ``"batched"`` (default) compiles the circuit once (1q-run fusion,
        noise pushing, terminal-measurement batching — see
        :mod:`~repro.simulators.gate.fusion`) and advances all shots of a
        chunk simultaneously; ``"reference"`` executes the same compiled
        program one shot at a time with scalar RNG draws, the executable
        specification of per-trajectory semantics.  Both sample the same
        distributions, but their RNG consumption patterns differ, so
        per-seed counts are only identical within one engine.
        ``"density"`` routes **every** run through the exact
        :class:`~repro.simulators.gate.density.DensityMatrixSimulator`
        oracle: outcome probabilities are computed in closed form (noise as
        CPTP maps, readout as an exact bit-flip channel) and counts carry no
        sampling error beyond the chosen ``density_sampling`` conversion.
        Width is capped at
        :data:`~repro.simulators.gate.density.MAX_DENSITY_QUBITS` qubits.
        ``"stabilizer"`` samples trajectories on the batched
        Aaronson–Gottesman tableau of
        :mod:`~repro.simulators.gate.stabilizer` — Clifford circuits only
        (non-Clifford gates raise
        :class:`~repro.core.errors.UnsupportedGateError`), with no width
        cap, the same per-chunk ``SeedSequence`` streams as the batched
        engine (seeded counts bit-identical at every worker count), and
        gate noise lowered to per-gate Pauli channels at compile time.
        ``"auto"`` resolves per run: the stabilizer engine when every gate
        of the circuit is Clifford, the batched engine otherwise.
    density_sampling:
        How the density engine converts exact probabilities to integer
        counts: ``"multinomial"`` (default) draws shots from the exact
        distribution with the run's seed; ``"deterministic"`` apportions
        ``p * shots`` by largest remainder with no RNG at all.  Ignored by
        the other engines.
    trajectory_dtype:
        ``"complex64"`` (default) or ``"complex128"`` for the batched
        engine's state tensor.  The engine is memory-bandwidth bound, and
        single precision halves the traffic; ~1e-7 amplitude rounding is
        far below the sampling noise of any realistic shot count.  The
        reference engine and the exact path always use ``complex128``.
    pin_blas_threads:
        Cap the host BLAS/OpenMP pools at ``max(1, cores // workers)``
        threads while the ``trajectory_workers`` thread pool is active
        (default ``True``), keeping total runnable threads at about the
        core count.  Without the cap, every worker's GEMMs spawn a full
        BLAS team and the resulting ``workers x cores`` oversubscription
        routinely makes the parallel configuration *slower* than serial.  Uses ``threadpoolctl``
        when available, else the ``*_NUM_THREADS`` environment-variable
        guard of :mod:`~repro.simulators.gate.threads` (best-effort).  Has
        no effect on single-worker runs, and never changes sampled counts —
        it only controls intra-GEMM parallelism.
    noise_gemm_threshold:
        Crossover for the batched engine's high-noise GEMM path (float
        ``>= 0``, or ``None`` to always use the masked-slice path; default
        :data:`~repro.simulators.gate.batched.DEFAULT_NOISE_GEMM_THRESHOLD`).
        When a gate step's expected number of sampled error operators in one
        chunk (``batch x sum(event rates)``) reaches the threshold, its
        events apply as per-column operator GEMMs instead of per-branch
        masked slice updates.  The two paths consume identical RNG draws
        and produce bit-identical amplitudes, so seeded counts never depend
        on this knob — it is purely a throughput crossover.
    compile_cache_size:
        Optional bound on the module-level compile caches (fusion templates,
        bound trajectory programs, transpile templates; default
        :data:`~repro.simulators.gate.fusion.DEFAULT_COMPILE_CACHE_SIZE`
        entries each).  The caches are process-global, so the most recent
        configuration wins; ``None`` (default) leaves the current bound
        untouched.
    trajectory_workers:
        Number of threads executing the batched engine's shot chunks
        (``int >= 1``, or ``"auto"`` for the host CPU count; default ``1``).
        The chunks produced by ``max_batch_memory`` are independent, NumPy's
        GEMM kernels release the GIL, and every chunk draws from its own
        :class:`numpy.random.SeedSequence`-spawned stream, so seeded counts
        are **bit-identical for every worker count** and chunk decomposition
        never depends on this knob.  Only the batched engine parallelises;
        the reference engine and the exact path ignore this option.
        Interacts with ``max_batch_memory``: there must be at least as many
        chunks as workers for full utilisation (shrink the byte budget or
        raise the shot count if ``num_batches`` in the result metadata is
        below ``trajectory_workers``), and because up to ``workers`` chunks
        are live at once, the peak working set is about
        ``trajectory_workers x max_batch_memory`` bytes.
    trajectory_executor:
        ``"thread"`` (default) or ``"process"``: how the batched and
        stabilizer engines' shot chunks are dispatched across
        ``trajectory_workers``.  ``"thread"`` keeps the in-process pool
        (zero startup cost, GIL-bound between kernels).  ``"process"``
        executes the chunk groups on the persistent forkserver worker pool
        of :mod:`~repro.simulators.gate.procpool`: the parent ships each
        structure's compiled template once, the workers bind parameters
        into their own warm compile caches, and chunk ``i`` always consumes
        the ``i``-th ``SeedSequence``-spawned stream — so seeded counts are
        **bit-identical** across both executors and every worker count.
        The reference, density and exact paths ignore this option.
    fault_plan:
        Deterministic fault-injection schedule
        (:class:`~repro.simulators.gate.faults.FaultPlan`, a JSON-safe dict
        spec, or ``None``; default ``None``).  Faults fire immediately
        before a chunk task executes, keyed on ``(chunk_id, attempt)``:
        ``"raise"`` raises the transient
        :class:`~repro.core.errors.TransientExecutionError`, ``"hang"``
        stalls the task for a bounded interval, ``"kill"`` hard-exits the
        worker process under ``trajectory_executor="process"`` (a
        documented no-op on the thread executor).  Killed workers are
        recovered in-run: the pool is rebuilt and only the lost chunk
        groups re-dispatch with their original ``SeedSequence`` streams,
        so recovered seeded counts are **bit-identical** to an uncrashed
        run.  ``None`` (production) costs one attribute check per run.
    verify_compiled:
        ``bool`` (default ``False``).  When enabled, every run verifies its
        compiled artifacts through the static IR verifier
        (:mod:`~repro.simulators.gate.analysis`): the bound trajectory
        program (rules IR001-IR006), its structural template including the
        IR008 cache-key soundness probe, and the result's contractual
        metadata (IR007).  A violation raises
        :class:`~repro.simulators.gate.analysis.IRVerificationError` instead
        of returning a result.  The disabled path costs one attribute check
        per run and never touches the hot loops.
    """

    def __init__(
        self,
        *,
        noise_model: Optional[NoiseModel] = None,
        max_batch_memory: Optional[int] = DEFAULT_MAX_BATCH_MEMORY,
        trajectory_engine: str = "batched",
        trajectory_executor: str = "thread",
        trajectory_dtype: str = "complex64",
        trajectory_workers: Union[int, str] = 1,
        density_sampling: str = "multinomial",
        pin_blas_threads: bool = True,
        noise_gemm_threshold: Union[float, int, None] = DEFAULT_NOISE_GEMM_THRESHOLD,
        compile_cache_size: Optional[int] = None,
        fault_plan=None,
        verify_compiled: bool = False,
    ):
        if trajectory_engine not in (
            "batched",
            "reference",
            "density",
            "stabilizer",
            "auto",
        ):
            raise SimulationError(
                f"unknown trajectory engine {trajectory_engine!r}; expected "
                "'batched', 'reference', 'density', 'stabilizer' or 'auto'"
            )
        if trajectory_executor not in ("thread", "process"):
            raise SimulationError(
                f"unknown trajectory executor {trajectory_executor!r}; "
                "expected 'thread' or 'process'"
            )
        if density_sampling not in ("multinomial", "deterministic"):
            raise SimulationError(
                f"unknown density sampling mode {density_sampling!r}; "
                "expected 'multinomial' or 'deterministic'"
            )
        if trajectory_dtype not in ("complex64", "complex128"):
            raise SimulationError(
                f"unknown trajectory dtype {trajectory_dtype!r}; "
                "expected 'complex64' or 'complex128'"
            )
        if max_batch_memory is not None and max_batch_memory <= 0:
            raise SimulationError("max_batch_memory must be positive (or None)")
        if trajectory_workers == "auto":
            trajectory_workers = os.cpu_count() or 1
        if not isinstance(trajectory_workers, int) or isinstance(trajectory_workers, bool):
            raise SimulationError(
                f"trajectory_workers must be a positive int or 'auto', "
                f"got {trajectory_workers!r}"
            )
        if trajectory_workers < 1:
            raise SimulationError("trajectory_workers must be >= 1")
        if not isinstance(pin_blas_threads, bool):
            raise SimulationError(
                f"pin_blas_threads must be a bool, got {pin_blas_threads!r}"
            )
        if not isinstance(verify_compiled, bool):
            raise SimulationError(
                f"verify_compiled must be a bool, got {verify_compiled!r}"
            )
        if noise_gemm_threshold is not None:
            if isinstance(noise_gemm_threshold, bool) or not isinstance(
                noise_gemm_threshold, (int, float)
            ):
                raise SimulationError(
                    f"noise_gemm_threshold must be a number >= 0 or None, "
                    f"got {noise_gemm_threshold!r}"
                )
            noise_gemm_threshold = float(noise_gemm_threshold)
            if noise_gemm_threshold < 0.0:
                raise SimulationError("noise_gemm_threshold must be >= 0 (or None)")
        if compile_cache_size is not None:
            from .fusion import set_compile_cache_size  # local: import cycle

            if isinstance(compile_cache_size, bool) or not isinstance(
                compile_cache_size, int
            ):
                raise SimulationError(
                    f"compile_cache_size must be a positive int or None, "
                    f"got {compile_cache_size!r}"
                )
            if compile_cache_size < 1:
                raise SimulationError("compile_cache_size must be >= 1 (or None)")
            set_compile_cache_size(compile_cache_size)
        from .faults import FaultPlan  # local: keeps the import graph flat

        fault_plan = FaultPlan.coerce(fault_plan)
        self.noise_model = noise_model
        self.max_batch_memory = max_batch_memory
        self.trajectory_engine = trajectory_engine
        self.trajectory_executor = trajectory_executor
        self.trajectory_dtype = trajectory_dtype
        self.trajectory_workers = trajectory_workers
        self.density_sampling = density_sampling
        self.pin_blas_threads = pin_blas_threads
        self.noise_gemm_threshold = noise_gemm_threshold
        self.compile_cache_size = compile_cache_size
        self.fault_plan = fault_plan
        self.verify_compiled = verify_compiled

    def run(
        self,
        circuit: Circuit,
        *,
        shots: int = 1024,
        seed: Optional[int] = None,
        return_statevector: bool = False,
    ) -> SimulationResult:
        """Execute *circuit* and return counts over its classical bits.

        Measurement contract
        --------------------
        Circuits **with** measure instructions yield counts keyed over their
        classical bits (character ``c`` = clbit ``c``).  Circuits **without**
        any measure instruction and ``shots > 0`` are measured implicitly at
        the end: counts are keyed over *all qubits* in qubit order and
        ``metadata["implicit_measurement"]`` is ``True``.  (The middle layer
        never relies on this — lowered circuits always carry explicit
        measurements — but interactive callers get the documented behaviour
        instead of silently empty counts.)  ``shots == 0`` always returns
        empty counts.

        Statevector contract
        --------------------
        With ``return_statevector=True`` the result carries
        ``metadata["statevector_kind"]`` naming what you got:

        * exact path: ``"pre_measurement"`` — the full final superposition;
          terminal measurements are sampled, never collapsed.
        * trajectory path (either engine), explicit measurements:
          ``"final_trajectory"`` — the collapsed post-measurement state of
          the *last* shot.
        * trajectory path, measurement-free (implicit) circuits:
          ``"pre_measurement"`` — the last shot's final state; the implicit
          sampling never collapses (mid-circuit noise/resets are applied).
        * density engine: a mixed state has no statevector, so the result's
          ``statevector`` is always ``None`` and the kind is ``"none"``.
        * stabilizer engine: tableaus have no amplitude representation, so
          the result's ``statevector`` is always ``None`` and the kind is
          ``"none"`` (the engine runs far beyond the amplitude width cap).
        """
        if shots < 0:
            raise SimulationError("shots must be non-negative")
        engine = self.trajectory_engine
        if engine == "auto":
            from .fusion import is_clifford_circuit  # local: import cycle

            engine = "stabilizer" if is_clifford_circuit(circuit) else "batched"
        if engine == "stabilizer":
            # The tableau engine owns the whole run: it has no exact-path
            # analogue (no amplitudes) and no width cap to fall back under.
            return self._run_stabilizer(circuit, shots, seed)
        if self.trajectory_engine == "density":
            # The exact oracle handles every construct (noise, mid-circuit
            # measurement, reset) in closed form, so it owns the whole run.
            from .density import DensityMatrixSimulator  # local: import cycle

            return DensityMatrixSimulator(
                noise_model=self.noise_model,
                sampling=self.density_sampling,
                verify_compiled=self.verify_compiled,
            ).run(circuit, shots=shots, seed=seed)
        rng = np.random.default_rng(seed)

        needs_trajectories = (
            (self.noise_model is not None and not self.noise_model.is_noiseless)
            or not circuit.measurements_are_terminal()
            or any(inst.name == "reset" for inst in circuit.instructions)
        )
        if needs_trajectories:
            counts, final_state, extra = self._run_trajectories(circuit, shots, rng, seed)
            method = "trajectories"
            # Implicit sampling never collapses, so the returned state is the
            # last trajectory's pre-measurement state, as on the exact path.
            statevector_kind = (
                "pre_measurement" if extra.get("implicit_measurement") else "final_trajectory"
            )
        else:
            counts, final_state, extra = self._run_exact(circuit, shots, rng)
            method = "exact"
            statevector_kind = "pre_measurement"
        metadata: Dict[str, object] = {"method": method, "statevector_kind": statevector_kind}
        metadata.update(extra)
        result = SimulationResult(
            counts=counts,
            statevector=final_state if return_statevector else None,
            shots=shots,
            seed=seed,
            metadata=metadata,
        )
        if self.verify_compiled:
            from .analysis import verify_result  # local: import cycle

            verify_result(result).raise_if_failed()
        return result

    # -- merged-group execution ---------------------------------------------------
    def run_merged(
        self,
        circuit: Circuit,
        specs: Sequence[Tuple[int, Optional[int]]],
    ) -> List[SimulationResult]:
        """Execute several jobs of one circuit as a single merged run.

        *specs* is a sequence of ``(shots, seed)`` pairs, one per job.  The
        jobs share one compiled program and one batched tensor evolution: the
        batch axis is partitioned into *segments* — one per standalone chunk
        per job — and every random draw is pulled from that chunk's own
        ``SeedSequence``-spawned generator, in standalone order and size.
        The contract is strict: each returned result's seeded counts are
        **bit-identical** to ``run(circuit, shots=..., seed=...)`` alone.

        Results executed through a genuinely merged path carry
        ``metadata["merged"] = {"group_size", "position", "merged_chunks"}``;
        jobs that cannot merge fall back to a solo :meth:`run` with identical
        semantics (reference/density engines, zero-shot jobs, and amplitude
        jobs whose standalone chunk plan contains a width-1 chunk — dense
        GEMM columns are only bit-stable across batch widths >= 2).
        """
        specs = [(int(shots), seed) for shots, seed in specs]
        for shots, _ in specs:
            if shots < 0:
                raise SimulationError("shots must be non-negative")
        engine = self.trajectory_engine
        if engine == "auto":
            from .fusion import is_clifford_circuit  # local: import cycle

            engine = "stabilizer" if is_clifford_circuit(circuit) else "batched"
        if engine == "stabilizer":
            return self._run_stabilizer_merged(circuit, specs)
        if self.trajectory_engine in ("density", "reference"):
            # No batch axis to merge on: the density oracle is closed-form
            # and the reference engine is the scalar specification.
            return [self.run(circuit, shots=s, seed=sd) for s, sd in specs]
        needs_trajectories = (
            (self.noise_model is not None and not self.noise_model.is_noiseless)
            or not circuit.measurements_are_terminal()
            or any(inst.name == "reset" for inst in circuit.instructions)
        )
        if not needs_trajectories:
            return self._run_exact_merged(circuit, specs)
        return self._run_trajectories_merged(circuit, specs)

    @staticmethod
    def _standalone_chunk_sizes(batch_size: int, shots: int) -> List[int]:
        """The chunk decomposition a standalone run of *shots* would use."""
        sizes = [batch_size] * (shots // batch_size)
        if shots % batch_size:
            sizes.append(shots % batch_size)
        return sizes

    @staticmethod
    def _pack_merged_chunks(job_plans, cap: Optional[int]) -> List[List[tuple]]:
        """First-fit pack standalone chunks into merged super-chunks.

        *job_plans* maps job index -> list of ``(size, stream)`` standalone
        chunks (``None`` for solo-fallback jobs).  Chunks are never split —
        each keeps its standalone size and stream, so per-segment draws are
        untouched; the packing only decides which chunks share one tensor
        (bin choice cannot affect bit-identity, only throughput).  *cap* is
        the super-chunk capacity in shots (``None`` = unbounded), the same
        byte-budget-derived cap that sized the standalone chunks, so peak
        memory per super-chunk matches a standalone chunk's.  Deterministic
        and independent of worker count.  Returns super-chunks as lists of
        ``(job, chunk_id, size, stream)``.
        """
        flat = [
            (job, chunk_id, size, stream)
            for job, plan in enumerate(job_plans)
            if plan is not None
            for chunk_id, (size, stream) in enumerate(plan)
        ]
        if cap is None:
            return [flat] if flat else []
        out: List[List[tuple]] = []
        remaining: List[int] = []
        for entry in flat:
            size = entry[2]
            for i in range(len(out)):
                if remaining[i] >= size:
                    out[i].append(entry)
                    remaining[i] -= size
                    break
            else:
                out.append([entry])
                remaining.append(cap - size)
        return out

    def _run_merged_chunks_threaded(self, num_chunks: int, run_merged_chunk):
        """Run merged super-chunks on the thread executor (serial when 1 worker).

        Same BLAS-pinning policy as the standalone chunk dispatch; returns
        the flattened ``(job, chunk_id, bits)`` rows of every super-chunk.
        """
        if num_chunks == 0:
            return []
        workers = min(self.trajectory_workers, num_chunks)
        if workers <= 1:
            return [
                row for chunk in range(num_chunks) for row in run_merged_chunk(chunk)
            ]
        from .threads import limit_blas_threads

        if self.pin_blas_threads:
            guard = limit_blas_threads(max(1, (os.cpu_count() or 1) // workers))
        else:
            guard = nullcontext()
        with guard, ThreadPoolExecutor(max_workers=workers) as pool:
            return [
                row
                for chunk_rows in pool.map(run_merged_chunk, range(num_chunks))
                for row in chunk_rows
            ]

    def _run_trajectories_merged(
        self, circuit: Circuit, specs: List[Tuple[int, Optional[int]]]
    ) -> List[SimulationResult]:
        """Merged batched-amplitude execution (see :meth:`run_merged`)."""
        from .fusion import compile_trajectory_program_cached

        noise = self.noise_model
        if noise is not None and noise.is_noiseless:
            noise = None
        program = compile_trajectory_program_cached(
            circuit, noise, dtype=np.dtype(self.trajectory_dtype)
        )
        if self.verify_compiled:
            self._verify_compiled_artifacts(circuit, program)
        implicit = program.terminal is not None and program.terminal.implicit
        n = circuit.num_qubits
        job_plans: List[Optional[List[tuple]]] = []
        job_batch: List[int] = []
        for shots, seed in specs:
            if shots == 0:
                job_plans.append(None)
                job_batch.append(0)
                continue
            batch_size = self._batch_size_for(n, shots)
            sizes = self._standalone_chunk_sizes(batch_size, shots)
            job_batch.append(batch_size)
            if min(sizes) < 2:
                # Width-1 guard: a one-shot chunk's dense GEMM rounds
                # differently from the same column inside a wider batch
                # (~1 ulp), which can flip a sampled outcome.  Bit-identity
                # wins over merging, so the job runs solo.
                job_plans.append(None)
                continue
            streams = np.random.SeedSequence(seed).spawn(len(sizes))
            job_plans.append(list(zip(sizes, streams)))
        if self.max_batch_memory is None:
            cap = None
        else:
            itemsize = np.dtype(self.trajectory_dtype).itemsize
            cap = max(1, self.max_batch_memory // (2 * itemsize * (1 << n)))
        merged_chunks = self._pack_merged_chunks(job_plans, cap)

        def run_merged_chunk(chunk: int):
            segs = merged_chunks[chunk]
            if self.fault_plan is not None:
                self.fault_plan.fire(chunk, 0, executor="thread")
            segments = [
                (size, np.random.default_rng(stream)) for _, _, size, stream in segs
            ]
            merged_bits = execute_program_segments(
                program,
                segments,
                noise_model=noise,
                dtype=self.trajectory_dtype,
                gemm_threshold=self.noise_gemm_threshold,
            )
            rows = []
            offset = 0
            for job, chunk_id, size, _ in segs:
                rows.append((job, chunk_id, merged_bits[offset : offset + size]))
                offset += size
            return rows

        recovery = None
        if not merged_chunks:
            rows = []
        elif self.trajectory_executor == "process":
            from .fusion import compile_parametric_template_cached
            from .procpool import run_merged_trajectory_chunks

            workers = min(self.trajectory_workers, len(merged_chunks))
            blas_threads = (
                max(1, (os.cpu_count() or 1) // workers)
                if self.pin_blas_threads and workers > 1
                else None
            )
            rows, recovery = run_merged_trajectory_chunks(
                circuit,
                compile_parametric_template_cached(circuit),
                self.noise_model,
                merged_chunks,
                workers=workers,
                dtype=self.trajectory_dtype,
                gemm_threshold=self.noise_gemm_threshold,
                blas_threads=blas_threads,
                fault_plan=self.fault_plan,
            )
        else:
            rows = self._run_merged_chunks_threaded(len(merged_chunks), run_merged_chunk)
        per_job: Dict[int, Dict[int, np.ndarray]] = {}
        for job, chunk_id, chunk_bits in rows:
            per_job.setdefault(job, {})[chunk_id] = chunk_bits
        results: List[SimulationResult] = []
        for j, (shots, seed) in enumerate(specs):
            if job_plans[j] is None:
                results.append(self.run(circuit, shots=shots, seed=seed))
                continue
            chunks = per_job.get(j, {})
            bits = np.concatenate(
                [chunks[cid] for cid in range(len(job_plans[j]))], axis=0
            )
            metadata: Dict[str, object] = {
                "method": "trajectories",
                "statevector_kind": "none",
                "trajectory_engine": "batched",
                "trajectory_dtype": self.trajectory_dtype,
                "trajectory_workers": self.trajectory_workers,
                "trajectory_executor": self.trajectory_executor,
                "implicit_measurement": implicit,
                "num_batches": len(job_plans[j]),
                "batch_size": job_batch[j],
                "compiled_steps": len(program.steps),
                "merged": {
                    "group_size": len(specs),
                    "position": j,
                    "merged_chunks": len(merged_chunks),
                },
            }
            if recovery is not None:
                metadata["executor_recovery"] = recovery
            result = SimulationResult(
                counts=Counts.from_array(bits), shots=shots, seed=seed, metadata=metadata
            )
            if self.verify_compiled:
                from .analysis import verify_result  # local: import cycle

                verify_result(result).raise_if_failed()
            results.append(result)
        return results

    def _run_stabilizer_merged(
        self, circuit: Circuit, specs: List[Tuple[int, Optional[int]]]
    ) -> List[SimulationResult]:
        """Merged stabilizer-tableau execution (see :meth:`run_merged`).

        Integer tableau updates are exact at every batch width, so there is
        no width-1 guard here: every nonzero-shot job merges.
        """
        from .fusion import compile_stabilizer_program_cached  # local: import cycle
        from .stabilizer import execute_stabilizer_program_segments

        noise = self.noise_model
        if noise is not None and noise.is_noiseless:
            noise = None
        program = compile_stabilizer_program_cached(circuit, noise)
        if self.verify_compiled:
            from .analysis import verify_stabilizer_program  # local: import cycle

            verify_stabilizer_program(program).raise_if_failed()
        implicit = program.terminal is not None and program.terminal.implicit
        job_plans: List[Optional[List[tuple]]] = []
        job_batch: List[int] = []
        for shots, seed in specs:
            if shots == 0:
                job_plans.append(None)
                job_batch.append(0)
                continue
            batch_size = self._stabilizer_batch_size(
                circuit.num_qubits, program.bits_width, shots
            )
            sizes = self._standalone_chunk_sizes(batch_size, shots)
            job_batch.append(batch_size)
            streams = np.random.SeedSequence(seed).spawn(len(sizes))
            job_plans.append(list(zip(sizes, streams)))
        if self.max_batch_memory is None:
            cap = None
        else:
            bytes_per_shot = 2 * circuit.num_qubits + program.bits_width
            cap = max(1, self.max_batch_memory // bytes_per_shot)
        merged_chunks = self._pack_merged_chunks(job_plans, cap)

        def run_merged_chunk(chunk: int):
            segs = merged_chunks[chunk]
            if self.fault_plan is not None:
                self.fault_plan.fire(chunk, 0, executor="thread")
            segments = [
                (size, np.random.default_rng(stream)) for _, _, size, stream in segs
            ]
            merged_bits = execute_stabilizer_program_segments(program, segments, noise)
            rows = []
            offset = 0
            for job, chunk_id, size, _ in segs:
                rows.append((job, chunk_id, merged_bits[offset : offset + size]))
                offset += size
            return rows

        recovery = None
        if not merged_chunks:
            rows = []
        elif self.trajectory_executor == "process":
            from .procpool import run_merged_stabilizer_chunks

            workers = min(self.trajectory_workers, len(merged_chunks))
            rows, recovery = run_merged_stabilizer_chunks(
                program,
                noise,
                merged_chunks,
                workers=workers,
                fault_plan=self.fault_plan,
            )
        else:
            rows = self._run_merged_chunks_threaded(len(merged_chunks), run_merged_chunk)
        per_job: Dict[int, Dict[int, np.ndarray]] = {}
        for job, chunk_id, chunk_bits in rows:
            per_job.setdefault(job, {})[chunk_id] = chunk_bits
        results: List[SimulationResult] = []
        for j, (shots, seed) in enumerate(specs):
            if job_plans[j] is None:
                results.append(self.run(circuit, shots=shots, seed=seed))
                continue
            chunks = per_job.get(j, {})
            bits = np.concatenate(
                [chunks[cid] for cid in range(len(job_plans[j]))], axis=0
            )
            metadata: Dict[str, object] = {
                "method": "trajectories",
                "statevector_kind": "none",
                "trajectory_engine": "stabilizer",
                "trajectory_workers": self.trajectory_workers,
                "trajectory_executor": self.trajectory_executor,
                "implicit_measurement": implicit,
                "num_batches": len(job_plans[j]),
                "batch_size": job_batch[j],
                "compiled_steps": len(program.steps),
                "merged": {
                    "group_size": len(specs),
                    "position": j,
                    "merged_chunks": len(merged_chunks),
                },
            }
            if recovery is not None:
                metadata["executor_recovery"] = recovery
            result = SimulationResult(
                counts=Counts.from_array(bits), shots=shots, seed=seed, metadata=metadata
            )
            if self.verify_compiled:
                from .analysis import verify_result  # local: import cycle

                verify_result(result).raise_if_failed()
            results.append(result)
        return results

    def _run_exact_merged(
        self, circuit: Circuit, specs: List[Tuple[int, Optional[int]]]
    ) -> List[SimulationResult]:
        """Merged exact-path execution: one evolution, per-job sampling.

        The exact path consumes no RNG before sampling, so evolving once and
        drawing each job's shots with a fresh per-job generator is trivially
        bit-identical to N standalone runs.
        """
        state, measure_map = self._evolve_exact(circuit)
        results: List[SimulationResult] = []
        for j, (shots, seed) in enumerate(specs):
            rng = np.random.default_rng(seed)
            counts, extra = self._sample_exact(state, measure_map, circuit, shots, rng)
            metadata: Dict[str, object] = {
                "method": "exact",
                "statevector_kind": "pre_measurement",
                "merged": {
                    "group_size": len(specs),
                    "position": j,
                    "merged_chunks": 1,
                },
            }
            metadata.update(extra)
            result = SimulationResult(
                counts=counts, shots=shots, seed=seed, metadata=metadata
            )
            if self.verify_compiled:
                from .analysis import verify_result  # local: import cycle

                verify_result(result).raise_if_failed()
            results.append(result)
        return results

    def _verify_compiled_artifacts(self, circuit: Circuit, program) -> None:
        """``verify_compiled`` knob path: verify one run's compiled artifacts.

        Verifies the bound :class:`~repro.simulators.gate.fusion.TrajectoryProgram`
        (IR001-IR006) and the structural template of *circuit* including the
        IR008 cache-key soundness probe.  Only called when the knob is on;
        the off path never reaches this method.
        """
        from .analysis import verify_program, verify_template  # local: import cycle
        from .fusion import compile_parametric_template

        verify_template(compile_parametric_template(circuit), circuit).raise_if_failed()
        verify_program(program).raise_if_failed()

    # -- stabilizer path ---------------------------------------------------------
    def _stabilizer_batch_size(self, num_qubits: int, bits_width: int, shots: int) -> int:
        """Largest tableau chunk whose per-shot memory fits ``max_batch_memory``.

        A stabilizer shot costs ``2 n`` phase bytes plus ``bits_width``
        outcome bytes (the shared bit matrices are a fixed ``4 n^2`` bytes
        per chunk, amortised across the batch), so the same byte budget that
        admits hundreds of amplitude trajectories admits hundreds of
        thousands of tableau trajectories.  The decomposition depends only on
        the budget, the width and the shot count — never on
        ``trajectory_workers`` — preserving bit-identical seeded counts.
        """
        if self.max_batch_memory is None:
            return shots
        bytes_per_shot = 2 * num_qubits + bits_width
        return max(1, min(shots, self.max_batch_memory // bytes_per_shot))

    def _run_stabilizer(
        self, circuit: Circuit, shots: int, seed: Optional[int]
    ) -> SimulationResult:
        """Run the whole circuit on the batched stabilizer tableau engine.

        Mirrors the batched amplitude engine's execution policy: the circuit
        compiles once through the structure-keyed stabilizer cache (Clifford
        lowering plus Pauli-channel noise steps;
        :class:`~repro.core.errors.UnsupportedGateError` on non-Clifford
        gates), the shot axis splits into ``max_batch_memory``-sized chunks,
        each chunk draws from its own ``SeedSequence``-spawned stream, and
        ``trajectory_workers`` threads execute the chunks — seeded counts
        are bit-identical for every worker count.  The result never carries
        a statevector (``statevector_kind="none"``).
        """
        from .fusion import compile_stabilizer_program_cached  # local: import cycle
        from .stabilizer import execute_stabilizer_program

        noise = self.noise_model
        if noise is not None and noise.is_noiseless:
            noise = None
        metadata: Dict[str, object] = {
            "method": "trajectories",
            "statevector_kind": "none",
            "trajectory_engine": "stabilizer",
            "trajectory_workers": self.trajectory_workers,
            "trajectory_executor": self.trajectory_executor,
        }
        if shots == 0:
            metadata.update(
                {"implicit_measurement": False, "num_batches": 0, "batch_size": 0}
            )
            return SimulationResult(
                counts=Counts({}), shots=shots, seed=seed, metadata=metadata
            )
        program = compile_stabilizer_program_cached(circuit, noise)
        if self.verify_compiled:
            from .analysis import verify_stabilizer_program  # local: import cycle

            verify_stabilizer_program(program).raise_if_failed()
        implicit = program.terminal is not None and program.terminal.implicit
        batch_size = self._stabilizer_batch_size(
            circuit.num_qubits, program.bits_width, shots
        )
        sizes = [batch_size] * (shots // batch_size)
        if shots % batch_size:
            sizes.append(shots % batch_size)
        streams = np.random.SeedSequence(seed).spawn(len(sizes))

        def run_chunk(chunk: int) -> np.ndarray:
            if self.fault_plan is not None:
                self.fault_plan.fire(chunk, 0, executor="thread")
            return execute_stabilizer_program(
                program, sizes[chunk], np.random.default_rng(streams[chunk]), noise
            )

        workers = min(self.trajectory_workers, len(sizes))
        if self.trajectory_executor == "process":
            from .procpool import run_stabilizer_chunks

            results, recovery = run_stabilizer_chunks(
                program, noise, sizes, streams, workers=workers,
                fault_plan=self.fault_plan,
            )
            metadata["executor_recovery"] = recovery
        elif workers <= 1:
            results = [run_chunk(chunk) for chunk in range(len(sizes))]
        else:
            from .threads import limit_blas_threads

            if self.pin_blas_threads:
                guard = limit_blas_threads(max(1, (os.cpu_count() or 1) // workers))
            else:
                guard = nullcontext()
            with guard, ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(run_chunk, range(len(sizes))))
        counts = Counts.from_array(np.concatenate(results, axis=0))
        metadata.update(
            {
                "implicit_measurement": implicit,
                "num_batches": len(sizes),
                "batch_size": batch_size,
                "compiled_steps": len(program.steps),
            }
        )
        result = SimulationResult(
            counts=counts, shots=shots, seed=seed, metadata=metadata
        )
        if self.verify_compiled:
            from .analysis import verify_result  # local: import cycle

            verify_result(result).raise_if_failed()
        return result

    # -- exact path -------------------------------------------------------------
    def _run_exact(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> Tuple[Counts, Statevector, Dict[str, object]]:
        """Evolve once through the fused program, then sample all shots.

        The gates are compiled through the parametric template cache (the
        circuit is noiseless here, and any gates appearing after a terminal
        measurement act on *other* qubits and commute with it), so repeated
        structurally identical circuits — a variational optimisation loop —
        skip the fusion analysis and only re-bind the fused matrices.
        """
        state, measure_map = self._evolve_exact(circuit)
        counts, extra = self._sample_exact(state, measure_map, circuit, shots, rng)
        return counts, state, extra

    def _evolve_exact(self, circuit: Circuit) -> Tuple[Statevector, Dict[int, int]]:
        """Evolve the exact pre-measurement state of *circuit* once.

        Returns the evolved :class:`Statevector` and the clbit -> qubit map of
        the circuit's (terminal) measure instructions.  Shared by the solo and
        merged exact paths.
        """
        from .fusion import compile_trajectory_program_cached  # local: import cycle

        state = Statevector(circuit.num_qubits)
        measure_map: Dict[int, int] = {}
        gates_only = Circuit(circuit.num_qubits, name=circuit.name)
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            if inst.name == "measure":
                measure_map[inst.clbits[0]] = inst.qubits[0]
                continue
            gates_only.instructions.append(inst)
        if gates_only.instructions:
            program = compile_trajectory_program_cached(gates_only)
            if self.verify_compiled:
                self._verify_compiled_artifacts(gates_only, program)
            for step in program.steps:
                state.apply_matrix(step.matrix, step.qubits, plan=step.plan)
        return state, measure_map

    @staticmethod
    def _sample_exact(
        state: Statevector,
        measure_map: Dict[int, int],
        circuit: Circuit,
        shots: int,
        rng: np.random.Generator,
    ) -> Tuple[Counts, Dict[str, object]]:
        """Sample *shots* outcomes from an already-evolved exact state.

        Split out of :meth:`_run_exact` so merged-group execution
        (:meth:`run_merged`) can evolve the shared state once and draw each
        job's shots with the job's own fresh generator — exactly the draws a
        standalone run makes, since the exact path consumes no RNG before
        sampling.
        """
        if shots == 0:
            return Counts({}), {"implicit_measurement": False}
        if not measure_map:
            # Documented contract: measurement-free circuits are measured
            # implicitly at the end, keyed over all qubits in qubit order.
            return state.sample_counts(shots, rng), {"implicit_measurement": True}

        num_clbits = circuit.num_clbits
        probs = state.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
        data: Dict[str, int] = {}
        for index, multiplicity in zip(*np.unique(outcomes, return_counts=True)):
            full = index_to_bits(int(index), circuit.num_qubits)
            key_chars = ["0"] * num_clbits
            for clbit, qubit in measure_map.items():
                key_chars[clbit] = full[qubit]
            key = "".join(key_chars)
            data[key] = data.get(key, 0) + int(multiplicity)
        return Counts(data), {"implicit_measurement": False}

    # -- trajectory path -----------------------------------------------------------
    def _run_trajectories(
        self, circuit: Circuit, shots: int, rng: np.random.Generator, seed: Optional[int]
    ) -> Tuple[Counts, Statevector, Dict[str, object]]:
        """Dispatch to the selected trajectory engine."""
        if self.trajectory_engine == "reference":
            return self._run_trajectories_reference(circuit, shots, rng)
        return self._run_trajectories_batched(circuit, shots, seed)

    def _batch_size_for(self, num_qubits: int, shots: int) -> int:
        """Largest shot chunk whose state + scratch fit ``max_batch_memory``."""
        if self.max_batch_memory is None:
            return shots
        itemsize = np.dtype(self.trajectory_dtype).itemsize
        bytes_per_shot = 2 * itemsize * (1 << num_qubits)  # tensor + scratch
        return max(1, min(shots, self.max_batch_memory // bytes_per_shot))

    def _run_trajectories_batched(
        self, circuit: Circuit, shots: int, seed: Optional[int]
    ) -> Tuple[Counts, Statevector, Dict[str, object]]:
        """Compile once, then run the shot chunks (possibly across threads).

        The shot axis is first split into chunks sized by ``max_batch_memory``
        — a decomposition that depends only on the byte budget, the circuit
        width, the dtype, and the shot count, never on ``trajectory_workers``.
        Every chunk gets its own RNG stream spawned from
        ``SeedSequence(seed)``, so a seeded run produces bit-identical counts
        whether the chunks execute serially or on a thread pool: the heavy
        NumPy kernels release the GIL, and no mutable state is shared between
        chunks (each :class:`BatchedStatevector` owns its buffers; compiled
        program data and gate caches are read-only at this point).
        """
        from .batched import BatchedStatevector  # local import: cycle with batched.py
        from .fusion import compile_trajectory_program_cached

        extra: Dict[str, object] = {
            "trajectory_engine": "batched",
            "trajectory_dtype": self.trajectory_dtype,
            "trajectory_workers": self.trajectory_workers,
            "trajectory_executor": self.trajectory_executor,
        }
        if shots == 0:
            extra.update({"implicit_measurement": False, "num_batches": 0, "batch_size": 0})
            return Counts({}), Statevector(circuit.num_qubits), extra

        noise = self.noise_model
        if noise is not None and noise.is_noiseless:
            noise = None
        program = compile_trajectory_program_cached(
            circuit, noise, dtype=np.dtype(self.trajectory_dtype)
        )
        if self.verify_compiled:
            self._verify_compiled_artifacts(circuit, program)
        implicit = program.terminal is not None and program.terminal.implicit
        batch_size = self._batch_size_for(circuit.num_qubits, shots)
        sizes = [batch_size] * (shots // batch_size)
        if shots % batch_size:
            sizes.append(shots % batch_size)
        streams = np.random.SeedSequence(seed).spawn(len(sizes))

        def run_chunk(chunk: int):
            """One chunk's bit rows; the chunk state is kept only for the last
            chunk (the result-statevector contract) so peak memory stays at
            ~``workers x max_batch_memory`` instead of one state per chunk."""
            if self.fault_plan is not None:
                self.fault_plan.fire(chunk, 0, executor="thread")
            bits, state, last_index = self._run_batch(
                program, sizes[chunk], np.random.default_rng(streams[chunk])
            )
            if chunk == len(sizes) - 1:
                return bits, state, last_index
            return bits, None, None

        workers = min(self.trajectory_workers, len(sizes))
        if self.trajectory_executor == "process":
            from .fusion import compile_parametric_template_cached
            from .procpool import run_trajectory_chunks

            # Each worker process runs its own BLAS pools, so the
            # oversubscription cap applies per process instead of via the
            # parent's thread-local guard.
            blas_threads = (
                max(1, (os.cpu_count() or 1) // workers)
                if self.pin_blas_threads and workers > 1
                else None
            )
            bits_rows, state_data, last_index, recovery = run_trajectory_chunks(
                circuit,
                compile_parametric_template_cached(circuit),
                self.noise_model,
                sizes,
                streams,
                workers=workers,
                dtype=self.trajectory_dtype,
                gemm_threshold=self.noise_gemm_threshold,
                blas_threads=blas_threads,
                fault_plan=self.fault_plan,
            )
            extra["executor_recovery"] = recovery
            counts = Counts.from_array(np.concatenate(bits_rows, axis=0))
            final_state = Statevector(circuit.num_qubits, data=state_data)
        else:
            if workers <= 1:
                results = [run_chunk(chunk) for chunk in range(len(sizes))]
            else:
                from .threads import limit_blas_threads

                # Cap BLAS at cores-per-worker: without the cap every worker's
                # GEMMs spawn a full OpenMP team and the workers x cores
                # oversubscription erases the parallel speedup; capping below
                # cores/workers would idle cores.  Knob: ``pin_blas_threads``.
                if self.pin_blas_threads:
                    guard = limit_blas_threads(max(1, (os.cpu_count() or 1) // workers))
                else:
                    guard = nullcontext()
                with guard, ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(run_chunk, range(len(sizes))))
            counts = Counts.from_array(
                np.concatenate([bits for bits, _, _ in results], axis=0)
            )
            _, state, last_index = results[-1]
            final_state = state.extract(-1)
        if program.terminal is not None and not implicit and last_index is not None:
            self._collapse_terminal(final_state, program.terminal.pairs, last_index)
        extra.update(
            {
                "implicit_measurement": implicit,
                "num_batches": len(sizes),
                "batch_size": batch_size,
                "compiled_steps": len(program.steps),
            }
        )
        return counts, final_state, extra

    def _run_batch(
        self, program, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, "object", Optional[int]]:
        """Advance one chunk of trajectories through a compiled program."""
        return execute_program_chunk(
            program,
            batch_size,
            rng,
            noise_model=self.noise_model,
            dtype=self.trajectory_dtype,
            gemm_threshold=self.noise_gemm_threshold,
        )

    @staticmethod
    def _collapse_terminal(
        state: Statevector, pairs: Tuple[Tuple[int, int], ...], index: int
    ) -> None:
        """Project *state* onto the sampled outcomes of the terminal measures.

        Keeps the ``"final_trajectory"`` statevector contract aligned with
        the reference engine, which collapses each measured qubit in turn.
        """
        n = state.num_qubits
        for qubit, _ in pairs:
            bit = (index >> (n - 1 - qubit)) & 1
            projector = [slice(None)] * n
            projector[qubit] = 1 - bit
            state._tensor[tuple(projector)] = 0.0
        norm = np.linalg.norm(state.data)
        if norm == 0:
            raise SimulationError("terminal collapse produced a zero-norm state")
        state._tensor /= norm

    def _run_trajectories_reference(
        self, circuit: Circuit, shots: int, rng: np.random.Generator
    ) -> Tuple[Counts, Statevector, Dict[str, object]]:
        """Per-shot reference implementation (scalar executable specification).

        Executes the *same* compiled :class:`TrajectoryProgram` as the
        batched engine — compiled through the shared structure-keyed cache,
        noise model included — but one shot at a time with scalar RNG draws:
        one uniform per error opportunity, one projective collapse per
        mid-circuit measurement, one joint draw for the terminal block.
        Kept for differentially testing the batched engine's *vectorised
        execution* (the compiler itself is validated against the density
        oracle and the unfused specification in the fusion property tests);
        every production caller goes through the batched engine.
        """
        from .fusion import (  # local: import cycle
            GateStep,
            MeasureStep,
            ResetStep,
            compile_trajectory_program_cached,
        )

        extra: Dict[str, object] = {"trajectory_engine": "reference"}
        if shots == 0:
            extra["implicit_measurement"] = False
            return Counts({}), Statevector(circuit.num_qubits), extra
        noise = self.noise_model
        if noise is not None and noise.is_noiseless:
            noise = None
        program = compile_trajectory_program_cached(circuit, noise)
        if self.verify_compiled:
            self._verify_compiled_artifacts(circuit, program)
        implicit = program.terminal is not None and program.terminal.implicit
        n = program.num_qubits
        samples: List[str] = []
        final_state = Statevector(n)
        for _ in range(shots):
            state = Statevector(n)
            clbits = ["0"] * program.bits_width
            for step in program.steps:
                if isinstance(step, GateStep):
                    state.apply_matrix(step.matrix, step.qubits, plan=step.plan)
                    for event in step.noise:
                        if rng.random() < event.rate:
                            drawn = int(rng.integers(0, len(event.operators)))
                            matrix, plan = event.operators[drawn]
                            state.apply_matrix(matrix, event.qubits, plan=plan)
                elif isinstance(step, MeasureStep):
                    outcome = state.measure_qubit(step.qubit, rng)
                    if noise is not None:
                        outcome = noise.apply_readout_error(outcome, rng)
                    clbits[step.clbit] = str(outcome)
                elif isinstance(step, ResetStep):
                    state.reset_qubit(step.qubit, rng)
            if program.terminal is not None:
                probs = state.probabilities()
                index = int(rng.choice(len(probs), p=probs / probs.sum()))
                for qubit, clbit in program.terminal.pairs:
                    bit = (index >> (n - 1 - qubit)) & 1
                    if noise is not None and not implicit:
                        bit = noise.apply_readout_error(bit, rng)
                    clbits[clbit] = str(bit)
                if not implicit:
                    # Collapse onto the sampled outcome for the documented
                    # "final_trajectory" statevector contract; the implicit
                    # sample never collapses (pre-measurement contract).
                    self._collapse_terminal(state, program.terminal.pairs, index)
            samples.append("".join(clbits))
            final_state = state
        extra["implicit_measurement"] = implicit
        extra["compiled_steps"] = len(program.steps)
        return Counts.from_samples(samples), final_state, extra


def execute_program_chunk(
    program,
    batch_size: int,
    rng: np.random.Generator,
    *,
    noise_model: Optional[NoiseModel],
    dtype,
    gemm_threshold,
) -> Tuple[np.ndarray, "object", Optional[int]]:
    """Advance one chunk of trajectories through a compiled program.

    Module-level rather than a simulator method so the thread executor and
    the process-pool workers (:mod:`~repro.simulators.gate.procpool`) run the
    *same* chunk code: given the same program, chunk size and RNG stream the
    two executors are bit-identical by construction, not by parallel
    maintenance of two code paths.  Returns the chunk's classical-bit rows,
    the final :class:`~repro.simulators.gate.batched.BatchedStatevector`
    (pre terminal collapse), and the last trajectory's sampled terminal
    index (``None`` without a terminal block).
    """
    from .batched import BatchedStatevector  # local import: cycle with batched.py
    from .fusion import GateStep, MeasureStep, ResetStep

    state = BatchedStatevector(program.num_qubits, batch_size, dtype=np.dtype(dtype))
    noise = noise_model
    bits = np.zeros((batch_size, program.bits_width), dtype=np.uint8)
    for step in program.steps:
        if isinstance(step, GateStep):
            state.apply_matrix(step.matrix, step.qubits, plan=step.plan)
            if step.noise:
                state.apply_noise_events(
                    step.noise, rng, gemm_threshold=gemm_threshold
                )
        elif isinstance(step, MeasureStep):
            outcomes = state.measure(step.qubit, rng)
            if noise is not None:
                outcomes = noise.apply_readout_error_batched(outcomes, rng)
            bits[:, step.clbit] = outcomes
        elif isinstance(step, ResetStep):
            state.reset(step.qubit, rng)
    last_index: Optional[int] = None
    if program.terminal is not None:
        indices = state.sample_all(rng)
        last_index = int(indices[-1])
        n = program.num_qubits
        for qubit, clbit in program.terminal.pairs:
            column = ((indices >> (n - 1 - qubit)) & 1).astype(np.uint8)
            if noise is not None and not program.terminal.implicit:
                column = noise.apply_readout_error_batched(column, rng)
            bits[:, clbit] = column
    return bits, state, last_index


def execute_program_segments(
    program,
    segments,
    *,
    noise_model: Optional[NoiseModel],
    dtype,
    gemm_threshold,
) -> np.ndarray:
    """Advance one merged super-chunk: several jobs' chunks on one batch axis.

    *segments* is a sequence of ``(size, generator)`` pairs partitioning the
    batch axis; each pair is one standalone chunk of one job, carrying that
    chunk's own ``SeedSequence``-spawned generator.  The shared tensor
    evolution is per-column pure (dense broadcast GEMMs produce bit-identical
    columns at every batch width >= 2 — callers must keep width-1 chunks out
    of merged runs), and every random draw (noise events, mid-circuit
    measurements, terminal sampling, readout flips) is pulled per segment in
    standalone order and size.  Slicing the returned rows back per segment
    therefore reproduces each job's solo chunk bit for bit.

    Module-level for the same reason as :func:`execute_program_chunk`: the
    thread executor and the process-pool workers run the *same* merged-chunk
    code.  Returns only the concatenated ``(sum(sizes), bits_width)``
    classical-bit rows — merged runs carry no statevector.
    """
    from .batched import BatchedStatevector  # local import: cycle with batched.py
    from .fusion import GateStep, MeasureStep, ResetStep

    total = sum(size for size, _ in segments)
    state = BatchedStatevector(program.num_qubits, total, dtype=np.dtype(dtype))
    noise = noise_model
    bits = np.zeros((total, program.bits_width), dtype=np.uint8)
    for step in program.steps:
        if isinstance(step, GateStep):
            state.apply_matrix(step.matrix, step.qubits, plan=step.plan)
            if step.noise:
                state.apply_noise_events(
                    step.noise, None, gemm_threshold=gemm_threshold, segments=segments
                )
        elif isinstance(step, MeasureStep):
            outcomes = state.measure(step.qubit, None, segments=segments)
            if noise is not None:
                outcomes = noise.apply_readout_error_segmented(outcomes, segments)
            bits[:, step.clbit] = outcomes
        elif isinstance(step, ResetStep):
            state.reset(step.qubit, None, segments=segments)
    if program.terminal is not None:
        indices = state.sample_all(None, segments=segments)
        n = program.num_qubits
        for qubit, clbit in program.terminal.pairs:
            column = ((indices >> (n - 1 - qubit)) & 1).astype(np.uint8)
            if noise is not None and not program.terminal.implicit:
                column = noise.apply_readout_error_segmented(column, segments)
            bits[:, clbit] = column
    return bits
