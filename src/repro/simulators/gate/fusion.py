"""Trajectory program compilation: gate fusion, parametric templates, caching.

The batched trajectory engine is memory-bandwidth bound — every gate costs at
least one full traversal of the ``shots x 2^n`` state.  This module compiles
a :class:`~repro.simulators.gate.circuit.Circuit` once per run into a
:class:`TrajectoryProgram` that minimises traversals without changing the
sampled distribution:

* **1q-run fusion** — consecutive single-qubit gates on the same qubit (with
  no intervening operation touching it) are multiplied into one 2x2 matrix,
  so a transpiled ``rz–sx–rz`` chain costs one traversal instead of three.
  Reordering is safe because runs are only hoisted past operations on
  *disjoint* qubits, with which they commute.
* **2q absorption** — pending 1q runs are multiplied into a following
  non-diagonal two-qubit gate on *adjacent* qubits (``G2 (U_a ⊗ U_b)``),
  which the batched engine applies as a single contiguous-reshape GEMM.
* **same-pair 2q fusion** — consecutive two-qubit gates acting on the same
  qubit pair (in either order; SWAP-conjugated when reversed) collapse into
  one 4x4 product, so an ``rzz–cx`` cost-layer pair or a routed
  ``cx–cx–cx`` SWAP chain costs one traversal instead of two or three.
* **noise pushing** — with a depolarizing model active, the reference engine
  inserts an independent Pauli-error opportunity after *every* gate.  Fusion
  preserves that channel exactly: an error ``P`` striking after sub-gate
  ``u_i`` of a fused block is algebraically pushed past the rest of the
  block, ``P -> R P R^dagger`` with ``R`` the product of the sub-gates
  applied after ``u_i``, and applied as a small *subset* operation to only
  the struck shots.  Same-pair fusion pushes the earlier gate's (already
  conjugated) events through the later gate the same way.
* **terminal-measurement batching** — the trailing measurements (those whose
  qubit is never touched afterwards) commute with everything after them, so
  they are sampled *jointly* from the final per-shot distribution in one
  cumulative pass instead of one collapse per qubit.  Circuits with no
  measurements at all get the documented implicit terminal measurement over
  every qubit through the same mechanism.

Parametric compilation
----------------------
Variational workloads (QAOA optimisation, parameter-grid sweeps) execute the
*same circuit structure* hundreds of times with different rotation angles.
For noiseless circuits the compiler is therefore split into two phases:

* :func:`compile_parametric_template` performs the **structural** phase —
  which gates fuse into which step, absorption and same-pair decisions,
  terminal-measurement peeling — and records each fused step as a *recipe*
  over instruction indices instead of concrete matrices.  The phase depends
  only on the circuit's structure (names, qubits, clbits), never on the
  parameter values.
* :meth:`ParametricTemplate.bind` performs the **numeric** phase — it reads
  the concrete parameter values out of a structurally identical circuit and
  multiplies the (small, cached) gate matrices into the fused step matrices.

:func:`compile_trajectory_program_cached` memoises the structural phase in a
module-level LRU keyed on circuit structure, so a variational loop pays for
fusion analysis once per optimisation instead of once per evaluation.  The
noiseless :func:`compile_trajectory_program` is itself implemented as
``template + bind``, so the cached and uncached paths produce **bit-identical
programs by construction**.  Noisy compilation (whose pushed error events
depend on the concrete matrices) always takes the full path and bypasses the
cache.

The compiled program is engine-agnostic data; execution lives in
:class:`~repro.simulators.gate.statevector.StatevectorSimulator`.  The same
compiler also serves noiseless unitary sweeps:
:meth:`~repro.simulators.gate.statevector.Statevector.evolve` and
:func:`~repro.simulators.gate.unitary.circuit_unitary` compile first (their
programs contain only :class:`GateStep`) and apply the fused steps directly.
A compiled program is immutable after compilation, so one program may be
executed by many shot chunks concurrently (``trajectory_workers``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .circuit import Circuit, Instruction
from .gates import cached_gate_matrix, cached_gate_plan
from .kernels import MatrixPlan, build_plan
from .noise import NoiseModel

__all__ = [
    "NoiseEvent",
    "GateStep",
    "MeasureStep",
    "ResetStep",
    "TerminalSample",
    "TrajectoryProgram",
    "StepRecipe",
    "ParametricTemplate",
    "compile_parametric_template",
    "compile_trajectory_program",
    "compile_trajectory_program_cached",
    "parametric_cache_info",
    "parametric_cache_clear",
]

_PAULI_NAMES = ("x", "y", "z")
_ID2 = np.eye(2, dtype=np.complex128)


@dataclass(frozen=True)
class NoiseEvent:
    """One depolarizing-error opportunity (probability *rate* per shot).

    ``operators[k]`` is the ``(matrix, plan)`` to apply to the struck shots
    when Pauli ``k`` (x, y, z) is drawn — the raw Pauli for errors at the end
    of a step, or the Pauli conjugated through the remainder of a fused block
    (a 4x4 on *qubits* when the error was absorbed into a 2q gate).
    """

    qubits: Tuple[int, ...]
    rate: float
    operators: Tuple[Tuple[np.ndarray, MatrixPlan], ...]


@dataclass(frozen=True)
class GateStep:
    """One (possibly fused) unitary application plus its noise events."""

    matrix: np.ndarray
    qubits: Tuple[int, ...]
    plan: MatrixPlan
    noise: Tuple[NoiseEvent, ...] = ()


@dataclass(frozen=True)
class MeasureStep:
    """A mid-circuit projective measurement recorded into a classical bit."""

    qubit: int
    clbit: int


@dataclass(frozen=True)
class ResetStep:
    """Measure-and-zero of one qubit."""

    qubit: int


@dataclass(frozen=True)
class TerminalSample:
    """Joint sampling of the trailing measurements from the final state.

    ``pairs`` maps measured qubits to classical bits in original instruction
    order (so a clbit written twice keeps last-write-wins semantics).  When
    *implicit* is true the circuit had no measurements and every qubit is
    sampled into a counts key of width ``num_qubits`` (qubit order).
    """

    pairs: Tuple[Tuple[int, int], ...]
    implicit: bool = False


@dataclass
class TrajectoryProgram:
    """A compiled instruction stream for the batched trajectory engine."""

    num_qubits: int
    num_clbits: int
    steps: List[object] = field(default_factory=list)
    terminal: Optional[TerminalSample] = None

    @property
    def bits_width(self) -> int:
        """Width of the per-shot classical-bit rows the program produces."""
        if self.terminal is not None and self.terminal.implicit:
            return self.num_qubits
        return self.num_clbits


def _planned(matrix: np.ndarray) -> Tuple[np.ndarray, MatrixPlan]:
    return matrix, build_plan(matrix)


def _pauli_event(qubit: int, rate: float) -> NoiseEvent:
    operators = tuple(
        (cached_gate_matrix(name), cached_gate_plan(name)) for name in _PAULI_NAMES
    )
    return NoiseEvent((qubit,), rate, operators)


def _run_product(matrices: List[np.ndarray]) -> np.ndarray:
    product = matrices[0]
    for matrix in matrices[1:]:
        product = matrix @ product
    return product


def _run_conjugations(matrices: List[np.ndarray]) -> List[np.ndarray]:
    """``R_i`` (product of the sub-gates applied after sub-gate *i*) per sub-gate."""
    suffix = _ID2
    out: List[np.ndarray] = []
    for matrix in reversed(matrices):
        out.append(suffix)
        suffix = suffix @ matrix
    out.reverse()
    return out


def _pushed_1q_events(
    qubit: int, matrices: List[np.ndarray], rate: float
) -> List[NoiseEvent]:
    """Per-sub-gate error events for a fused 1q run, conjugated to the end."""
    events: List[NoiseEvent] = []
    for remainder in _run_conjugations(matrices):
        operators = tuple(
            _planned(remainder @ cached_gate_matrix(name) @ remainder.conj().T)
            for name in _PAULI_NAMES
        )
        events.append(NoiseEvent((qubit,), rate, operators))
    return events


def _absorbed_events(
    events: List[NoiseEvent], side: int, gate: np.ndarray, qubits: Tuple[int, int]
) -> List[NoiseEvent]:
    """Push a run's 1q events through ``gate`` as 4x4 events on *qubits*.

    ``side`` is 0 when the run's qubit is the gate's first (most significant)
    qubit, 1 for the second: ``E -> G2 (E ⊗ I) G2†`` resp. ``G2 (I ⊗ E) G2†``.
    """
    gate_dag = gate.conj().T
    out: List[NoiseEvent] = []
    for event in events:
        operators = []
        for matrix, _ in event.operators:
            embedded = np.kron(matrix, _ID2) if side == 0 else np.kron(_ID2, matrix)
            operators.append(_planned(gate @ embedded @ gate_dag))
        out.append(NoiseEvent(qubits, event.rate, tuple(operators)))
    return out


def _pushed_pair_events(
    events: Tuple[NoiseEvent, ...], gate: np.ndarray, qubits: Tuple[int, int]
) -> List[NoiseEvent]:
    """Push an earlier same-pair step's events through the following 4x4 *gate*.

    *gate* is expressed in the *qubits* orientation (first qubit = MSB).  Each
    event operator is embedded into the pair's 4x4 space — ``kron`` for
    single-qubit operators, a SWAP conjugation for operators recorded in the
    opposite qubit order — and conjugated, ``E -> G E G†``, which is exact:
    ``G E rho E† G† = (G E G†) (G rho G†) (G E G†)†``.
    """
    swap = cached_gate_matrix("swap")
    gate_dag = gate.conj().T
    out: List[NoiseEvent] = []
    for event in events:
        operators = []
        for matrix, _ in event.operators:
            if event.qubits == qubits:
                embedded = matrix
            elif event.qubits == (qubits[1], qubits[0]):
                embedded = swap @ matrix @ swap
            elif event.qubits == (qubits[0],):
                embedded = np.kron(matrix, _ID2)
            elif event.qubits == (qubits[1],):
                embedded = np.kron(_ID2, matrix)
            else:  # pragma: no cover - compiler invariant
                raise ValueError(
                    f"cannot push event on {event.qubits} through pair {qubits}"
                )
            operators.append(_planned(gate @ embedded @ gate_dag))
        out.append(NoiseEvent(qubits, event.rate, tuple(operators)))
    return out


# -- parametric templates -----------------------------------------------------------


@dataclass(frozen=True)
class _GateFactor:
    """One source instruction's matrix (SWAP-conjugated when *swapped*)."""

    index: int
    swapped: bool = False


@dataclass(frozen=True)
class _KronFactor:
    """``kron(product(run_a), product(run_b))`` of two absorbed 1q runs.

    ``run_a`` / ``run_b`` are effective-instruction indices in application
    order; an empty run contributes the 2x2 identity.
    """

    run_a: Tuple[int, ...]
    run_b: Tuple[int, ...]


@dataclass(frozen=True)
class StepRecipe:
    """How to rebuild one fused :class:`GateStep` from concrete parameters.

    ``factors`` are applied in sequence — the step matrix is
    ``F_k @ ... @ F_1`` — and reference the circuit's *effective*
    (barrier-free) instruction list by index, so a structurally identical
    circuit with different rotation angles can be re-bound without re-running
    the fusion analysis.
    """

    qubits: Tuple[int, ...]
    factors: Tuple[object, ...]


@dataclass
class ParametricTemplate:
    """Structural compilation of one circuit shape, reusable across bindings.

    Produced by :func:`compile_parametric_template`; every entry of
    ``recipes`` is a :class:`StepRecipe`, :class:`MeasureStep` or
    :class:`ResetStep`.  Templates are immutable after construction and safe
    to bind from multiple threads.
    """

    num_qubits: int
    num_clbits: int
    recipes: List[object]
    terminal: Optional[TerminalSample]

    def bind(self, circuit: Circuit) -> TrajectoryProgram:
        """Produce the concrete :class:`TrajectoryProgram` for *circuit*.

        *circuit* must be structurally identical to the template's source
        (same gate names, qubits and clbits instruction by instruction,
        barriers excluded); only its parameter values are read.  Binding the
        source circuit itself reproduces the uncached compilation bit for
        bit.
        """
        instructions = _effective_instructions(circuit)
        steps: List[object] = []
        for recipe in self.recipes:
            if isinstance(recipe, StepRecipe):
                steps.append(_bind_step(recipe, instructions))
            else:
                steps.append(recipe)
        program = TrajectoryProgram(self.num_qubits, self.num_clbits, steps)
        program.terminal = self.terminal
        return program


def _effective_instructions(circuit: Circuit) -> List[Instruction]:
    """The circuit's instruction list with barriers dropped."""
    return [inst for inst in circuit.instructions if inst.name != "barrier"]


def _factor_matrix(factor: object, instructions: List[Instruction]) -> np.ndarray:
    """Evaluate one recipe factor against concrete instruction parameters."""
    if isinstance(factor, _KronFactor):
        run_a = (
            _run_product([_matrix128(instructions[k]) for k in factor.run_a])
            if factor.run_a
            else _ID2
        )
        run_b = (
            _run_product([_matrix128(instructions[k]) for k in factor.run_b])
            if factor.run_b
            else _ID2
        )
        return np.kron(run_a, run_b)
    inst = instructions[factor.index]
    matrix = cached_gate_matrix(inst.name, inst.params)
    if factor.swapped:
        swap = cached_gate_matrix("swap")
        matrix = swap @ matrix @ swap
    return matrix


def _matrix128(inst: Instruction) -> np.ndarray:
    return np.asarray(cached_gate_matrix(inst.name, inst.params), dtype=np.complex128)


def _bind_step(recipe: StepRecipe, instructions: List[Instruction]) -> GateStep:
    """Materialise one :class:`GateStep` from a recipe and concrete params."""
    factors = recipe.factors
    first = factors[0]
    if len(factors) == 1 and isinstance(first, _GateFactor) and not first.swapped:
        inst = instructions[first.index]
        if len(inst.qubits) == len(recipe.qubits):
            # A standalone library gate: serve the shared cached matrix and
            # its memoised structure plan directly.
            return GateStep(
                cached_gate_matrix(inst.name, inst.params),
                recipe.qubits,
                cached_gate_plan(inst.name, inst.params),
            )
    matrix = np.asarray(_factor_matrix(first, instructions), dtype=np.complex128)
    for factor in factors[1:]:
        matrix = _factor_matrix(factor, instructions) @ matrix
    return GateStep(matrix, recipe.qubits, build_plan(matrix))


def compile_parametric_template(circuit: Circuit) -> ParametricTemplate:
    """Run the structural (parameter-independent) compilation phase.

    Performs the full fusion analysis of :func:`compile_trajectory_program`
    for the **noiseless** case — 1q-run fusion, 2q absorption, same-pair 2q
    fusion, terminal-measurement peeling — but records each fused step as a
    :class:`StepRecipe` over instruction indices instead of a concrete
    matrix, so the result can be re-bound to any structurally identical
    circuit via :meth:`ParametricTemplate.bind`.

    The one parameter-dependent structural input is a two-qubit gate's
    diagonality (the 2q-absorption guard), which is evaluated at this
    circuit's parameter values; rotation families (``rzz``, ``crz``, ...)
    keep their diagonality for every angle, so generic variational circuits
    re-bind exactly.  Re-binding remains *correct* even when a degenerate
    angle (e.g. ``crx(0)``) would have changed the decision — only the
    chosen decomposition, never the product, depends on it.
    """
    instructions = _effective_instructions(circuit)
    recipes: List[object] = []
    pending: Dict[int, List[int]] = {}

    def flush(qubit: int) -> None:
        run = pending.pop(qubit, None)
        if run:
            recipes.append(
                StepRecipe((qubit,), tuple(_GateFactor(k) for k in run))
            )

    def append_gate(recipe: StepRecipe) -> None:
        """Append a gate recipe, fusing into a trailing same-pair 2q recipe."""
        if len(recipe.qubits) == 2 and recipes:
            prev = recipes[-1]
            if (
                isinstance(prev, StepRecipe)
                and len(prev.qubits) == 2
                and set(prev.qubits) == set(recipe.qubits)
            ):
                if recipe.qubits == prev.qubits:
                    extra = recipe.factors
                else:
                    extra = tuple(_swapped_factor(f) for f in recipe.factors)
                recipes[-1] = StepRecipe(prev.qubits, prev.factors + extra)
                return
        recipes.append(recipe)

    for index, inst in enumerate(instructions):
        if inst.name == "measure":
            flush(inst.qubits[0])
            recipes.append(MeasureStep(inst.qubits[0], inst.clbits[0]))
            continue
        if inst.name == "reset":
            flush(inst.qubits[0])
            recipes.append(ResetStep(inst.qubits[0]))
            continue
        if inst.num_qubits == 1:
            pending.setdefault(inst.qubits[0], []).append(index)
            continue

        gate_plan = cached_gate_plan(inst.name, inst.params)
        qa, qb = (inst.qubits[0], inst.qubits[1]) if inst.num_qubits == 2 else (-1, -1)
        absorb = (
            inst.num_qubits == 2
            and abs(qa - qb) == 1
            and not gate_plan.is_diagonal
            and (qa in pending or qb in pending)
        )
        if absorb:
            run_a = tuple(pending.pop(qa, ()))
            run_b = tuple(pending.pop(qb, ()))
            append_gate(
                StepRecipe((qa, qb), (_KronFactor(run_a, run_b), _GateFactor(index)))
            )
            continue

        for qubit in inst.qubits:
            flush(qubit)
        append_gate(StepRecipe(inst.qubits, (_GateFactor(index),)))
    for qubit in sorted(pending):
        flush(qubit)

    recipes, terminal = _peel_terminal(recipes, circuit)
    return ParametricTemplate(circuit.num_qubits, circuit.num_clbits, recipes, terminal)


def _swapped_factor(factor: object) -> object:
    """The factor conjugated by SWAP (reversing its qubit-pair orientation)."""
    if isinstance(factor, _KronFactor):
        # SWAP (A ⊗ B) SWAP = B ⊗ A: swap the runs instead of the matrix.
        return _KronFactor(factor.run_b, factor.run_a)
    return _GateFactor(factor.index, not factor.swapped)


def _peel_terminal(
    steps: List[object], circuit: Circuit
) -> Tuple[List[object], Optional[TerminalSample]]:
    """Peel trailing measurements that can be sampled jointly at the end.

    A measurement whose qubit is never touched afterwards commutes past
    everything behind it.  A measurement whose classical bit is rewritten by
    a *later* kept measurement must not be peeled either — sampling it at
    the end would invert the program's last-write-wins ordering on that
    clbit.  Works on both :class:`GateStep` streams and recipe streams.
    """
    touched: set = set()
    kept_clbits: set = set()
    terminal_positions: List[int] = []
    for position in range(len(steps) - 1, -1, -1):
        step = steps[position]
        if (
            isinstance(step, MeasureStep)
            and step.qubit not in touched
            and step.clbit not in kept_clbits
        ):
            terminal_positions.append(position)
            continue
        if isinstance(step, (GateStep, StepRecipe)):
            touched.update(step.qubits)
        elif isinstance(step, MeasureStep):
            touched.add(step.qubit)
            kept_clbits.add(step.clbit)
        elif isinstance(step, ResetStep):
            touched.add(step.qubit)
    if terminal_positions:
        terminal_positions.reverse()  # back to instruction order
        pairs = tuple((steps[p].qubit, steps[p].clbit) for p in terminal_positions)
        removed = set(terminal_positions)
        kept = [step for p, step in enumerate(steps) if p not in removed]
        return kept, TerminalSample(pairs)
    if not circuit.has_measurements():
        return steps, TerminalSample(
            tuple((q, q) for q in range(circuit.num_qubits)), implicit=True
        )
    return steps, None


# -- template cache ------------------------------------------------------------------

_TEMPLATE_CACHE_MAXSIZE = 128
_TEMPLATE_CACHE: "OrderedDict[tuple, ParametricTemplate]" = OrderedDict()
_TEMPLATE_CACHE_LOCK = threading.Lock()
_template_cache_hits = 0
_template_cache_misses = 0


def _structure_key(circuit: Circuit) -> tuple:
    """Hashable key of the circuit's parameter-independent structure."""
    return (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(
            (inst.name, inst.qubits, inst.clbits)
            for inst in circuit.instructions
            if inst.name != "barrier"
        ),
    )


def compile_trajectory_program_cached(
    circuit: Circuit, noise_model: Optional[NoiseModel] = None
) -> TrajectoryProgram:
    """Compile *circuit* through the structure-keyed parametric LRU cache.

    Noiseless circuits whose structure (gate names, qubits, clbits — not
    parameter values) was compiled before skip the fusion analysis and only
    re-bind the fused matrices, so a variational loop pays the structural
    phase once per optimisation.  Cached and uncached compilations produce
    bit-identical programs (the uncached noiseless path is the same
    ``template + bind``).  Circuits with an effective noise model fall back
    to :func:`compile_trajectory_program` uncached, because pushed error
    events bake concrete matrices into the program.
    """
    global _template_cache_hits, _template_cache_misses
    if noise_model is not None and not noise_model.is_noiseless:
        return compile_trajectory_program(circuit, noise_model)
    key = _structure_key(circuit)
    with _TEMPLATE_CACHE_LOCK:
        template = _TEMPLATE_CACHE.get(key)
        if template is not None:
            _TEMPLATE_CACHE.move_to_end(key)
            _template_cache_hits += 1
    if template is None:
        template = compile_parametric_template(circuit)
        with _TEMPLATE_CACHE_LOCK:
            _template_cache_misses += 1
            _TEMPLATE_CACHE[key] = template
            _TEMPLATE_CACHE.move_to_end(key)
            while len(_TEMPLATE_CACHE) > _TEMPLATE_CACHE_MAXSIZE:
                _TEMPLATE_CACHE.popitem(last=False)
    return template.bind(circuit)


def parametric_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the parametric template cache."""
    with _TEMPLATE_CACHE_LOCK:
        return {
            "hits": _template_cache_hits,
            "misses": _template_cache_misses,
            "size": len(_TEMPLATE_CACHE),
            "maxsize": _TEMPLATE_CACHE_MAXSIZE,
        }


def parametric_cache_clear() -> None:
    """Empty the parametric template cache and reset its counters."""
    global _template_cache_hits, _template_cache_misses
    with _TEMPLATE_CACHE_LOCK:
        _TEMPLATE_CACHE.clear()
        _template_cache_hits = 0
        _template_cache_misses = 0


# -- full compilation ---------------------------------------------------------------


def compile_trajectory_program(
    circuit: Circuit, noise_model: Optional[NoiseModel] = None
) -> TrajectoryProgram:
    """Compile *circuit* (and optional noise) into a :class:`TrajectoryProgram`.

    Parameters
    ----------
    circuit:
        The circuit to compile.  Barriers are dropped; measure and reset
        instructions become :class:`MeasureStep` / :class:`ResetStep` (pure
        unitary callers such as ``Statevector.evolve`` validate their input
        first and get a program of :class:`GateStep` only).
    noise_model:
        Optional :class:`~repro.simulators.gate.noise.NoiseModel`.  With
        nonzero rates, every gate step carries the per-shot error events of
        the reference engine's channel, conjugated through fused blocks so
        fusion never changes the sampled distribution.  Default ``None``
        (also the effective value for a noiseless model).

    Returns
    -------
    TrajectoryProgram
        Immutable program data: the fused step list plus an optional
        :class:`TerminalSample` describing the jointly-sampled trailing
        measurements (implicit over all qubits for measurement-free
        circuits).  Safe to execute from multiple threads.

    Notes
    -----
    The noiseless path is implemented as
    ``compile_parametric_template(circuit).bind(circuit)``, so it and the
    LRU-backed :func:`compile_trajectory_program_cached` produce identical
    programs by construction.
    """
    if noise_model is None or noise_model.is_noiseless:
        return compile_parametric_template(circuit).bind(circuit)
    oneq_rate = noise_model.oneq_error
    twoq_rate = noise_model.twoq_error

    steps: List[object] = []
    pending: Dict[int, List[np.ndarray]] = {}

    def take(qubit: int) -> Tuple[np.ndarray, List[NoiseEvent]]:
        """Pop a pending run as (product, pushed events); identity if empty."""
        matrices = pending.pop(qubit, None)
        if not matrices:
            return _ID2, []
        events = _pushed_1q_events(qubit, matrices, oneq_rate) if oneq_rate > 0 else []
        return _run_product(matrices), events

    def flush(qubit: int) -> None:
        if qubit in pending:
            product, events = take(qubit)
            steps.append(GateStep(product, (qubit,), build_plan(product), tuple(events)))

    def append_gate(step: GateStep) -> None:
        """Append a gate step, fusing into a trailing same-pair 2q step.

        The earlier step's error events are pushed through the later gate
        (``E -> G E G†``, exact), then the later gate's own events follow —
        the same ordering the unfused channel produces.
        """
        if len(step.qubits) == 2 and steps:
            prev = steps[-1]
            if (
                isinstance(prev, GateStep)
                and len(prev.qubits) == 2
                and set(prev.qubits) == set(step.qubits)
            ):
                if step.qubits == prev.qubits:
                    gate = np.asarray(step.matrix, dtype=np.complex128)
                else:
                    swap = cached_gate_matrix("swap")
                    gate = swap @ step.matrix @ swap
                combined = gate @ prev.matrix
                events = tuple(_pushed_pair_events(prev.noise, gate, prev.qubits))
                events += step.noise
                steps[-1] = GateStep(
                    combined, prev.qubits, build_plan(combined), events
                )
                return
        steps.append(step)

    for inst in circuit.instructions:
        name = inst.name
        if name == "barrier":
            continue
        if name == "measure":
            flush(inst.qubits[0])
            steps.append(MeasureStep(inst.qubits[0], inst.clbits[0]))
            continue
        if name == "reset":
            flush(inst.qubits[0])
            steps.append(ResetStep(inst.qubits[0]))
            continue
        if inst.num_qubits == 1:
            matrix = np.asarray(cached_gate_matrix(name, inst.params), dtype=np.complex128)
            pending.setdefault(inst.qubits[0], []).append(matrix)
            continue

        gate_matrix_ = cached_gate_matrix(name, inst.params)
        gate_plan = cached_gate_plan(name, inst.params)
        qa, qb = (inst.qubits[0], inst.qubits[1]) if inst.num_qubits == 2 else (-1, -1)
        absorb = (
            inst.num_qubits == 2
            and abs(qa - qb) == 1
            and not gate_plan.is_diagonal
            and (qa in pending or qb in pending)
        )
        if absorb:
            # Fold the pending 1q runs into the 2q gate: one GEMM instead of
            # up to three traversals.  Their noise is pushed through the gate.
            run_a, events_a = take(qa)
            run_b, events_b = take(qb)
            fused = np.asarray(gate_matrix_, dtype=np.complex128) @ np.kron(run_a, run_b)
            events: List[NoiseEvent] = []
            events.extend(_absorbed_events(events_a, 0, gate_matrix_, (qa, qb)))
            events.extend(_absorbed_events(events_b, 1, gate_matrix_, (qa, qb)))
            if twoq_rate > 0.0:
                events.extend(_pauli_event(q, twoq_rate) for q in (qa, qb))
            append_gate(GateStep(fused, (qa, qb), build_plan(fused), tuple(events)))
            continue

        for qubit in inst.qubits:
            flush(qubit)
        noise_events: Tuple[NoiseEvent, ...] = ()
        if twoq_rate > 0.0:
            noise_events = tuple(_pauli_event(q, twoq_rate) for q in inst.qubits)
        append_gate(GateStep(gate_matrix_, inst.qubits, gate_plan, noise_events))
    for qubit in sorted(pending):
        flush(qubit)

    kept, terminal = _peel_terminal(steps, circuit)
    program = TrajectoryProgram(circuit.num_qubits, circuit.num_clbits, kept)
    program.terminal = terminal
    return program
