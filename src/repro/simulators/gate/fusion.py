"""Trajectory program compilation: gate fusion and terminal-measurement analysis.

The batched trajectory engine is memory-bandwidth bound — every gate costs at
least one full traversal of the ``shots x 2^n`` state.  This module compiles
a :class:`~repro.simulators.gate.circuit.Circuit` once per run into a
:class:`TrajectoryProgram` that minimises traversals without changing the
sampled distribution:

* **1q-run fusion** — consecutive single-qubit gates on the same qubit (with
  no intervening operation touching it) are multiplied into one 2x2 matrix,
  so a transpiled ``rz–sx–rz`` chain costs one traversal instead of three.
  Reordering is safe because runs are only hoisted past operations on
  *disjoint* qubits, with which they commute.
* **2q absorption** — pending 1q runs are multiplied into a following
  non-diagonal two-qubit gate on *adjacent* qubits (``G2 (U_a ⊗ U_b)``),
  which the batched engine applies as a single contiguous-reshape GEMM.
* **noise pushing** — with a depolarizing model active, the reference engine
  inserts an independent Pauli-error opportunity after *every* gate.  Fusion
  preserves that channel exactly: an error ``P`` striking after sub-gate
  ``u_i`` of a run ``u_k ... u_1`` is algebraically pushed past the rest of
  the fused block, ``P -> R P R^dagger`` with ``R`` the product of the
  sub-gates applied after ``u_i``, and applied as a small *subset* operation
  to only the struck shots.
* **terminal-measurement batching** — the trailing measurements (those whose
  qubit is never touched afterwards) commute with everything after them, so
  they are sampled *jointly* from the final per-shot distribution in one
  cumulative pass instead of one collapse per qubit.  Circuits with no
  measurements at all get the documented implicit terminal measurement over
  every qubit through the same mechanism.

The compiled program is engine-agnostic data; execution lives in
:class:`~repro.simulators.gate.statevector.StatevectorSimulator`.  The same
compiler also serves noiseless unitary sweeps:
:meth:`~repro.simulators.gate.statevector.Statevector.evolve` and
:func:`~repro.simulators.gate.unitary.circuit_unitary` compile first (their
programs contain only :class:`GateStep`) and apply the fused steps directly.
A compiled program is immutable after compilation, so one program may be
executed by many shot chunks concurrently (``trajectory_workers``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .circuit import Circuit
from .gates import cached_gate_matrix, cached_gate_plan
from .kernels import MatrixPlan, build_plan
from .noise import NoiseModel

__all__ = [
    "NoiseEvent",
    "GateStep",
    "MeasureStep",
    "ResetStep",
    "TerminalSample",
    "TrajectoryProgram",
    "compile_trajectory_program",
]

_PAULI_NAMES = ("x", "y", "z")
_ID2 = np.eye(2, dtype=np.complex128)


@dataclass(frozen=True)
class NoiseEvent:
    """One depolarizing-error opportunity (probability *rate* per shot).

    ``operators[k]`` is the ``(matrix, plan)`` to apply to the struck shots
    when Pauli ``k`` (x, y, z) is drawn — the raw Pauli for errors at the end
    of a step, or the Pauli conjugated through the remainder of a fused block
    (a 4x4 on *qubits* when the error was absorbed into a 2q gate).
    """

    qubits: Tuple[int, ...]
    rate: float
    operators: Tuple[Tuple[np.ndarray, MatrixPlan], ...]


@dataclass(frozen=True)
class GateStep:
    """One (possibly fused) unitary application plus its noise events."""

    matrix: np.ndarray
    qubits: Tuple[int, ...]
    plan: MatrixPlan
    noise: Tuple[NoiseEvent, ...] = ()


@dataclass(frozen=True)
class MeasureStep:
    """A mid-circuit projective measurement recorded into a classical bit."""

    qubit: int
    clbit: int


@dataclass(frozen=True)
class ResetStep:
    """Measure-and-zero of one qubit."""

    qubit: int


@dataclass(frozen=True)
class TerminalSample:
    """Joint sampling of the trailing measurements from the final state.

    ``pairs`` maps measured qubits to classical bits in original instruction
    order (so a clbit written twice keeps last-write-wins semantics).  When
    *implicit* is true the circuit had no measurements and every qubit is
    sampled into a counts key of width ``num_qubits`` (qubit order).
    """

    pairs: Tuple[Tuple[int, int], ...]
    implicit: bool = False


@dataclass
class TrajectoryProgram:
    """A compiled instruction stream for the batched trajectory engine."""

    num_qubits: int
    num_clbits: int
    steps: List[object] = field(default_factory=list)
    terminal: Optional[TerminalSample] = None

    @property
    def bits_width(self) -> int:
        """Width of the per-shot classical-bit rows the program produces."""
        if self.terminal is not None and self.terminal.implicit:
            return self.num_qubits
        return self.num_clbits


def _planned(matrix: np.ndarray) -> Tuple[np.ndarray, MatrixPlan]:
    return matrix, build_plan(matrix)


def _pauli_event(qubit: int, rate: float) -> NoiseEvent:
    operators = tuple(
        (cached_gate_matrix(name), cached_gate_plan(name)) for name in _PAULI_NAMES
    )
    return NoiseEvent((qubit,), rate, operators)


def _run_product(matrices: List[np.ndarray]) -> np.ndarray:
    product = matrices[0]
    for matrix in matrices[1:]:
        product = matrix @ product
    return product


def _run_conjugations(matrices: List[np.ndarray]) -> List[np.ndarray]:
    """``R_i`` (product of the sub-gates applied after sub-gate *i*) per sub-gate."""
    suffix = _ID2
    out: List[np.ndarray] = []
    for matrix in reversed(matrices):
        out.append(suffix)
        suffix = suffix @ matrix
    out.reverse()
    return out


def _pushed_1q_events(
    qubit: int, matrices: List[np.ndarray], rate: float
) -> List[NoiseEvent]:
    """Per-sub-gate error events for a fused 1q run, conjugated to the end."""
    events: List[NoiseEvent] = []
    for remainder in _run_conjugations(matrices):
        operators = tuple(
            _planned(remainder @ cached_gate_matrix(name) @ remainder.conj().T)
            for name in _PAULI_NAMES
        )
        events.append(NoiseEvent((qubit,), rate, operators))
    return events


def _absorbed_events(
    events: List[NoiseEvent], side: int, gate: np.ndarray, qubits: Tuple[int, int]
) -> List[NoiseEvent]:
    """Push a run's 1q events through ``gate`` as 4x4 events on *qubits*.

    ``side`` is 0 when the run's qubit is the gate's first (most significant)
    qubit, 1 for the second: ``E -> G2 (E ⊗ I) G2†`` resp. ``G2 (I ⊗ E) G2†``.
    """
    gate_dag = gate.conj().T
    out: List[NoiseEvent] = []
    for event in events:
        operators = []
        for matrix, _ in event.operators:
            embedded = np.kron(matrix, _ID2) if side == 0 else np.kron(_ID2, matrix)
            operators.append(_planned(gate @ embedded @ gate_dag))
        out.append(NoiseEvent(qubits, event.rate, tuple(operators)))
    return out


def compile_trajectory_program(
    circuit: Circuit, noise_model: Optional[NoiseModel] = None
) -> TrajectoryProgram:
    """Compile *circuit* (and optional noise) into a :class:`TrajectoryProgram`.

    Parameters
    ----------
    circuit:
        The circuit to compile.  Barriers are dropped; measure and reset
        instructions become :class:`MeasureStep` / :class:`ResetStep` (pure
        unitary callers such as ``Statevector.evolve`` validate their input
        first and get a program of :class:`GateStep` only).
    noise_model:
        Optional :class:`~repro.simulators.gate.noise.NoiseModel`.  With
        nonzero rates, every gate step carries the per-shot error events of
        the reference engine's channel, conjugated through fused blocks so
        fusion never changes the sampled distribution.  Default ``None``
        (also the effective value for a noiseless model).

    Returns
    -------
    TrajectoryProgram
        Immutable program data: the fused step list plus an optional
        :class:`TerminalSample` describing the jointly-sampled trailing
        measurements (implicit over all qubits for measurement-free
        circuits).  Safe to execute from multiple threads.
    """
    oneq_rate = noise_model.oneq_error if noise_model is not None else 0.0
    twoq_rate = noise_model.twoq_error if noise_model is not None else 0.0

    steps: List[object] = []
    pending: Dict[int, List[np.ndarray]] = {}

    def take(qubit: int) -> Tuple[np.ndarray, List[NoiseEvent]]:
        """Pop a pending run as (product, pushed events); identity if empty."""
        matrices = pending.pop(qubit, None)
        if not matrices:
            return _ID2, []
        events = _pushed_1q_events(qubit, matrices, oneq_rate) if oneq_rate > 0 else []
        return _run_product(matrices), events

    def flush(qubit: int) -> None:
        if qubit in pending:
            product, events = take(qubit)
            steps.append(GateStep(product, (qubit,), build_plan(product), tuple(events)))

    for inst in circuit.instructions:
        name = inst.name
        if name == "barrier":
            continue
        if name == "measure":
            flush(inst.qubits[0])
            steps.append(MeasureStep(inst.qubits[0], inst.clbits[0]))
            continue
        if name == "reset":
            flush(inst.qubits[0])
            steps.append(ResetStep(inst.qubits[0]))
            continue
        if inst.num_qubits == 1:
            matrix = np.asarray(cached_gate_matrix(name, inst.params), dtype=np.complex128)
            pending.setdefault(inst.qubits[0], []).append(matrix)
            continue

        gate_matrix_ = cached_gate_matrix(name, inst.params)
        gate_plan = cached_gate_plan(name, inst.params)
        qa, qb = (inst.qubits[0], inst.qubits[1]) if inst.num_qubits == 2 else (-1, -1)
        absorb = (
            inst.num_qubits == 2
            and abs(qa - qb) == 1
            and not gate_plan.is_diagonal
            and (qa in pending or qb in pending)
        )
        if absorb:
            # Fold the pending 1q runs into the 2q gate: one GEMM instead of
            # up to three traversals.  Their noise is pushed through the gate.
            run_a, events_a = take(qa)
            run_b, events_b = take(qb)
            fused = np.asarray(gate_matrix_, dtype=np.complex128) @ np.kron(run_a, run_b)
            events: List[NoiseEvent] = []
            events.extend(_absorbed_events(events_a, 0, gate_matrix_, (qa, qb)))
            events.extend(_absorbed_events(events_b, 1, gate_matrix_, (qa, qb)))
            if twoq_rate > 0.0:
                events.extend(_pauli_event(q, twoq_rate) for q in (qa, qb))
            steps.append(GateStep(fused, (qa, qb), build_plan(fused), tuple(events)))
            continue

        for qubit in inst.qubits:
            flush(qubit)
        noise_events: Tuple[NoiseEvent, ...] = ()
        if twoq_rate > 0.0:
            noise_events = tuple(_pauli_event(q, twoq_rate) for q in inst.qubits)
        steps.append(GateStep(gate_matrix_, inst.qubits, gate_plan, noise_events))
    for qubit in sorted(pending):
        flush(qubit)

    program = TrajectoryProgram(circuit.num_qubits, circuit.num_clbits, steps)

    # Peel trailing measurements whose qubits are never touched afterwards:
    # they commute past everything behind them and can be sampled jointly.
    # A measurement whose classical bit is rewritten by a *later* kept
    # measurement must not be peeled either — sampling it at the end would
    # invert the program's last-write-wins ordering on that clbit.
    touched: set = set()
    kept_clbits: set = set()
    terminal_positions: List[int] = []
    for position in range(len(steps) - 1, -1, -1):
        step = steps[position]
        if (
            isinstance(step, MeasureStep)
            and step.qubit not in touched
            and step.clbit not in kept_clbits
        ):
            terminal_positions.append(position)
            continue
        if isinstance(step, GateStep):
            touched.update(step.qubits)
        elif isinstance(step, MeasureStep):
            touched.add(step.qubit)
            kept_clbits.add(step.clbit)
        elif isinstance(step, ResetStep):
            touched.add(step.qubit)
    if terminal_positions:
        terminal_positions.reverse()  # back to instruction order
        pairs = tuple((steps[p].qubit, steps[p].clbit) for p in terminal_positions)
        removed = set(terminal_positions)
        program.steps = [step for p, step in enumerate(steps) if p not in removed]
        program.terminal = TerminalSample(pairs)
    elif not circuit.has_measurements():
        program.terminal = TerminalSample(
            tuple((q, q) for q in range(circuit.num_qubits)), implicit=True
        )
    return program
