"""Trajectory program compilation: gate fusion, parametric templates, caching.

The batched trajectory engine is memory-bandwidth bound — every gate costs at
least one full traversal of the ``shots x 2^n`` state.  This module compiles
a :class:`~repro.simulators.gate.circuit.Circuit` once per run into a
:class:`TrajectoryProgram` that minimises traversals without changing the
sampled distribution:

* **1q-run fusion** — consecutive single-qubit gates on the same qubit (with
  no intervening operation touching it) are multiplied into one 2x2 matrix,
  so a transpiled ``rz–sx–rz`` chain costs one traversal instead of three.
  Reordering is safe because runs are only hoisted past operations on
  *disjoint* qubits, with which they commute.
* **2q absorption** — pending 1q runs are multiplied into a following
  non-diagonal two-qubit gate on *adjacent* qubits (``G2 (U_a ⊗ U_b)``),
  which the batched engine applies as a single contiguous-reshape GEMM.
* **same-pair 2q fusion** — consecutive two-qubit gates acting on the same
  qubit pair (in either order; SWAP-conjugated when reversed) collapse into
  one 4x4 product, so an ``rzz–cx`` cost-layer pair or a routed
  ``cx–cx–cx`` SWAP chain costs one traversal instead of two or three.
* **noise pushing** — with a depolarizing model active, the reference engine
  inserts an independent Pauli-error opportunity after *every* gate.  Fusion
  preserves that channel exactly: an error ``P`` striking after sub-gate
  ``u_i`` of a fused block is algebraically pushed past the rest of the
  block, ``P -> R P R^dagger`` with ``R`` the product of the sub-gates
  applied after ``u_i``, and applied as a small *subset* operation to only
  the struck shots.  Same-pair fusion pushes the earlier gate's (already
  conjugated) events through the later gate the same way.
* **terminal-measurement batching** — the trailing measurements (those whose
  qubit is never touched afterwards) commute with everything after them, so
  they are sampled *jointly* from the final per-shot distribution in one
  cumulative pass instead of one collapse per qubit.  Circuits with no
  measurements at all get the documented implicit terminal measurement over
  every qubit through the same mechanism.

Parametric compilation
----------------------
Variational workloads (QAOA optimisation, parameter-grid sweeps) execute the
*same circuit structure* hundreds of times with different rotation angles.
The compiler is therefore split into two phases — for noiseless **and**
noisy circuits alike:

* :func:`compile_parametric_template` performs the **structural** phase —
  which gates fuse into which step, absorption and same-pair decisions,
  terminal-measurement peeling — and records each fused step as a *recipe*
  over instruction indices instead of concrete matrices.  Each recipe also
  carries its *noise segments*: the provenance of every sub-block that was
  fused into the step, which is exactly the information needed to replay
  noise pushing (``E -> G E G†``) against concrete matrices later.  The
  phase depends only on the circuit's structure (names, qubits, clbits),
  never on the parameter values or the noise rates.
* :meth:`ParametricTemplate.bind` performs the **numeric** phase — it reads
  the concrete parameter values out of a structurally identical circuit and
  multiplies the (small, cached) gate matrices into the fused step matrices.
  With a ``noise_model`` it additionally replays the noise-pushing algebra
  segment by segment, producing the same conjugated
  :class:`NoiseEvent` streams the one-shot noisy compiler builds.

Two module-level LRUs memoise the phases:

* the **template cache**, keyed on circuit structure alone, skips the
  structural phase (a variational loop pays fusion analysis once per
  optimisation instead of once per evaluation);
* the **program cache**, keyed on structure + parameter values + effective
  noise rates + (for noisy programs) trajectory dtype, skips the numeric
  phase entirely — a noisy QAOA/QEC iteration that re-runs the *same bound
  circuit* (sweeps over seeds, shot counts, contexts) gets its compiled
  :class:`TrajectoryProgram` back as a dictionary hit.  The dtype lives in
  the noisy key because noisy programs carry per-event identity-first
  operator stacks pre-cast to the engine dtype (step matrices and plans
  always stay ``complex128``); without it a ``complex64`` program's stacks
  could leak into a ``complex128`` run.  Noiseless binds are
  dtype-independent, so their key normalises the dtype away.

:func:`compile_trajectory_program` is itself implemented as
``template + bind`` for every noise setting, so the cached and uncached
paths produce **bit-identical programs by construction**.  Cache sizes are
bounded (:func:`set_compile_cache_size`) and instrumented
(:func:`compile_cache_info`, :func:`clear_compile_caches`).

The compiled program is engine-agnostic data; execution lives in
:class:`~repro.simulators.gate.statevector.StatevectorSimulator`.  The same
compiler also serves noiseless unitary sweeps:
:meth:`~repro.simulators.gate.statevector.Statevector.evolve` and
:func:`~repro.simulators.gate.unitary.circuit_unitary` compile first (their
programs contain only :class:`GateStep`) and apply the fused steps directly.
A compiled program is immutable after compilation, so one program may be
executed by many shot chunks concurrently (``trajectory_workers``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.errors import UnsupportedGateError
from .circuit import Circuit, Instruction
from .gates import cached_gate_matrix, cached_gate_plan
from .kernels import MatrixPlan, build_plan, operator_stack
from .lru import DEFAULT_CACHE_SIZE, BoundedLRU
from .noise import NoiseModel

__all__ = [
    "NoiseEvent",
    "GateStep",
    "MeasureStep",
    "ResetStep",
    "TerminalSample",
    "TrajectoryProgram",
    "StepRecipe",
    "ParametricTemplate",
    "CliffordStep",
    "PauliChannelStep",
    "StabilizerProgram",
    "CLIFFORD_GATES",
    "is_clifford_circuit",
    "compile_stabilizer_program",
    "compile_stabilizer_program_cached",
    "compile_parametric_template",
    "compile_parametric_template_cached",
    "adopt_parametric_template",
    "structure_key",
    "params_key",
    "compile_trajectory_program",
    "compile_trajectory_program_cached",
    "compile_cache_info",
    "clear_compile_caches",
    "set_compile_cache_size",
    "parametric_cache_info",
    "parametric_cache_clear",
    "set_compile_verify_hooks",
    "DEFAULT_COMPILE_CACHE_SIZE",
]

_PAULI_NAMES = ("x", "y", "z")
_ID2 = np.eye(2, dtype=np.complex128)

# Verify-each hooks (``analysis.set_verify_each``).  ``None`` — the
# production default — costs one identity check per structural compile /
# bind; installed hooks receive every freshly produced artifact (cache
# misses only: cached templates and programs were verified when built).
_TEMPLATE_HOOK = None
_PROGRAM_HOOK = None
_STABILIZER_HOOK = None


def set_compile_verify_hooks(template_hook, program_hook, stabilizer_hook=None) -> None:
    """Install (or clear, with ``None``) the post-compile verification hooks.

    *template_hook* is called as ``hook(template, circuit)`` at the end of
    every uncached :func:`compile_parametric_template`; *program_hook* as
    ``hook(program, circuit)`` at the end of every
    :meth:`ParametricTemplate.bind`; *stabilizer_hook* as
    ``hook(program, circuit)`` at the end of every uncached
    :func:`compile_stabilizer_program`.  Installed by
    :func:`repro.simulators.gate.analysis.set_verify_each`; do not call
    directly unless you are building a custom verification collector.
    """
    global _TEMPLATE_HOOK, _PROGRAM_HOOK, _STABILIZER_HOOK
    _TEMPLATE_HOOK = template_hook
    _PROGRAM_HOOK = program_hook
    _STABILIZER_HOOK = stabilizer_hook


@dataclass(frozen=True)
class NoiseEvent:
    """One depolarizing-error opportunity (probability *rate* per shot).

    ``operators[k]`` is the ``(matrix, plan)`` to apply to the struck shots
    when Pauli ``k`` (x, y, z) is drawn — the raw Pauli for errors at the end
    of a step, or the Pauli conjugated through the remainder of a fused block
    (a 4x4 on *qubits* when the error was absorbed into a 2q gate).

    ``stack`` optionally holds the identity-first operator stack
    ``(K + 1, d, d)`` pre-cast to the trajectory dtype — slice 0 is the
    identity (the "not struck" branch), slice ``k + 1`` is ``operators[k]``.
    The batched engine's GEMM noise path gathers per-column operators out of
    it; the slice path and the density oracle never read it.
    """

    qubits: Tuple[int, ...]
    rate: float
    operators: Tuple[Tuple[np.ndarray, MatrixPlan], ...]
    stack: Optional[np.ndarray] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class GateStep:
    """One (possibly fused) unitary application plus its noise events."""

    matrix: np.ndarray
    qubits: Tuple[int, ...]
    plan: MatrixPlan
    noise: Tuple[NoiseEvent, ...] = ()


@dataclass(frozen=True)
class MeasureStep:
    """A mid-circuit projective measurement recorded into a classical bit."""

    qubit: int
    clbit: int


@dataclass(frozen=True)
class ResetStep:
    """Measure-and-zero of one qubit."""

    qubit: int


@dataclass(frozen=True)
class TerminalSample:
    """Joint sampling of the trailing measurements from the final state.

    ``pairs`` maps measured qubits to classical bits in original instruction
    order (so a clbit written twice keeps last-write-wins semantics).  When
    *implicit* is true the circuit had no measurements and every qubit is
    sampled into a counts key of width ``num_qubits`` (qubit order).
    """

    pairs: Tuple[Tuple[int, int], ...]
    implicit: bool = False


@dataclass
class TrajectoryProgram:
    """A compiled instruction stream for the batched trajectory engine."""

    num_qubits: int
    num_clbits: int
    steps: List[object] = field(default_factory=list)
    terminal: Optional[TerminalSample] = None

    @property
    def bits_width(self) -> int:
        """Width of the per-shot classical-bit rows the program produces."""
        if self.terminal is not None and self.terminal.implicit:
            return self.num_qubits
        return self.num_clbits


@dataclass(frozen=True)
class CliffordStep:
    """One primitive Clifford gate of a compiled stabilizer program.

    ``name`` is drawn from the tableau's primitive set
    (:data:`~repro.simulators.gate.stabilizer.PRIMITIVE_GATES`); wider
    library Cliffords are lowered onto sequences of these at compile time.
    """

    name: str
    qubits: Tuple[int, ...]


@dataclass(frozen=True)
class PauliChannelStep:
    """One gate's depolarizing channel, lowered to Pauli-frame form.

    Each qubit of ``qubits`` is struck independently with probability
    ``rate``; a struck trajectory applies a uniformly drawn X, Y or Z.  On a
    tableau this is pure phase (sign) information — a Pauli-frame twirl of
    the same per-qubit depolarizing channel the trajectory engines' conjugated
    :class:`NoiseEvent` streams encode (depolarizing is already a Pauli
    channel, so the twirl is exact, not an approximation).
    """

    qubits: Tuple[int, ...]
    rate: float


@dataclass
class StabilizerProgram:
    """A compiled instruction stream for the stabilizer tableau engine.

    Steps are :class:`CliffordStep`, :class:`PauliChannelStep`,
    :class:`MeasureStep` and :class:`ResetStep`; trailing measurements are
    peeled into the same :class:`TerminalSample` contract (implicit terminal
    measurement included) as :class:`TrajectoryProgram`, so the engines share
    one result-semantics contract.  Immutable after compilation and safe to
    execute from many shot chunks concurrently.
    """

    num_qubits: int
    num_clbits: int
    steps: List[object] = field(default_factory=list)
    terminal: Optional[TerminalSample] = None

    @property
    def bits_width(self) -> int:
        """Width of the per-shot classical-bit rows the program produces."""
        if self.terminal is not None and self.terminal.implicit:
            return self.num_qubits
        return self.num_clbits


def _planned(matrix: np.ndarray) -> Tuple[np.ndarray, MatrixPlan]:
    return matrix, build_plan(matrix)


@lru_cache(maxsize=4096)
def _pauli_event(qubit: int, rate: float) -> NoiseEvent:
    """The raw (unconjugated) per-qubit Pauli error opportunity, memoised.

    Events are immutable and their operators come from the shared gate
    caches, so one instance per ``(qubit, rate)`` serves every compile.
    """
    operators = tuple(
        (cached_gate_matrix(name), cached_gate_plan(name)) for name in _PAULI_NAMES
    )
    return NoiseEvent((qubit,), rate, operators)


def _run_product(matrices: List[np.ndarray]) -> np.ndarray:
    product = matrices[0]
    for matrix in matrices[1:]:
        product = matrix @ product
    return product


def _run_conjugations(matrices: List[np.ndarray]) -> List[np.ndarray]:
    """``R_i`` (product of the sub-gates applied after sub-gate *i*) per sub-gate."""
    suffix = _ID2
    out: List[np.ndarray] = []
    for matrix in reversed(matrices):
        out.append(suffix)
        suffix = suffix @ matrix
    out.reverse()
    return out


def _pushed_1q_events(
    qubit: int, matrices: List[np.ndarray], rate: float
) -> List[NoiseEvent]:
    """Per-sub-gate error events for a fused 1q run, conjugated to the end."""
    events: List[NoiseEvent] = []
    for remainder in _run_conjugations(matrices):
        if remainder is _ID2:
            # The run's last sub-gate has nothing behind it: conjugating by
            # the identity is exact, so serve the shared raw-Pauli event
            # instead of multiplying it out and re-analysing the plans.
            events.append(_pauli_event(qubit, rate))
            continue
        operators = tuple(
            _planned(remainder @ cached_gate_matrix(name) @ remainder.conj().T)
            for name in _PAULI_NAMES
        )
        events.append(NoiseEvent((qubit,), rate, operators))
    return events


def _absorbed_events(
    events: List[NoiseEvent], side: int, gate: np.ndarray, qubits: Tuple[int, int]
) -> List[NoiseEvent]:
    """Push a run's 1q events through ``gate`` as 4x4 events on *qubits*.

    ``side`` is 0 when the run's qubit is the gate's first (most significant)
    qubit, 1 for the second: ``E -> G2 (E ⊗ I) G2†`` resp. ``G2 (I ⊗ E) G2†``.
    """
    gate_dag = gate.conj().T
    out: List[NoiseEvent] = []
    for event in events:
        operators = []
        for matrix, _ in event.operators:
            embedded = np.kron(matrix, _ID2) if side == 0 else np.kron(_ID2, matrix)
            operators.append(_planned(gate @ embedded @ gate_dag))
        out.append(NoiseEvent(qubits, event.rate, tuple(operators)))
    return out


def _pushed_pair_events(
    events: Tuple[NoiseEvent, ...], gate: np.ndarray, qubits: Tuple[int, int]
) -> List[NoiseEvent]:
    """Push an earlier same-pair step's events through the following 4x4 *gate*.

    *gate* is expressed in the *qubits* orientation (first qubit = MSB).  Each
    event operator is embedded into the pair's 4x4 space — ``kron`` for
    single-qubit operators, a SWAP conjugation for operators recorded in the
    opposite qubit order — and conjugated, ``E -> G E G†``, which is exact:
    ``G E rho E† G† = (G E G†) (G rho G†) (G E G†)†``.
    """
    swap = cached_gate_matrix("swap")
    gate_dag = gate.conj().T
    out: List[NoiseEvent] = []
    for event in events:
        operators = []
        for matrix, _ in event.operators:
            if event.qubits == qubits:
                embedded = matrix
            elif event.qubits == (qubits[1], qubits[0]):
                embedded = swap @ matrix @ swap
            elif event.qubits == (qubits[0],):
                embedded = np.kron(matrix, _ID2)
            elif event.qubits == (qubits[1],):
                embedded = np.kron(_ID2, matrix)
            else:  # pragma: no cover - compiler invariant
                raise ValueError(
                    f"cannot push event on {event.qubits} through pair {qubits}"
                )
            operators.append(_planned(gate @ embedded @ gate_dag))
        out.append(NoiseEvent(qubits, event.rate, tuple(operators)))
    return out


# -- parametric templates -----------------------------------------------------------


@dataclass(frozen=True)
class _GateFactor:
    """One source instruction's matrix (SWAP-conjugated when *swapped*)."""

    index: int
    swapped: bool = False


@dataclass(frozen=True)
class _KronFactor:
    """``kron(product(run_a), product(run_b))`` of two absorbed 1q runs.

    ``run_a`` / ``run_b`` are effective-instruction indices in application
    order; an empty run contributes the 2x2 identity.
    """

    run_a: Tuple[int, ...]
    run_b: Tuple[int, ...]


# -- noise segments ------------------------------------------------------------------
# One segment per sub-block fused into a step, in fusion order and in the
# sub-block's *original* qubit orientation.  Segments are the structural
# record the noisy bind replays: each knows how to rebuild its own matrix and
# its own error events from concrete instruction parameters, and the bind
# loop pushes earlier segments' events through later segments' matrices
# exactly the way the one-shot noisy compiler did.


@dataclass(frozen=True)
class _RunSegment:
    """A flushed run of consecutive 1q gates on one qubit."""

    qubits: Tuple[int, ...]
    run: Tuple[int, ...]


@dataclass(frozen=True)
class _AbsorbSegment:
    """A 2q gate that absorbed the pending 1q runs of its operands."""

    qubits: Tuple[int, int]
    run_a: Tuple[int, ...]
    run_b: Tuple[int, ...]
    index: int


@dataclass(frozen=True)
class _GateSegment:
    """A standalone multi-qubit gate (no absorption)."""

    qubits: Tuple[int, ...]
    index: int


@dataclass(frozen=True)
class StepRecipe:
    """How to rebuild one fused :class:`GateStep` from concrete parameters.

    ``factors`` are applied in sequence — the step matrix is
    ``F_k @ ... @ F_1`` — and reference the circuit's *effective*
    (barrier-free) instruction list by index, so a structurally identical
    circuit with different rotation angles can be re-bound without re-running
    the fusion analysis.  ``segments`` record the same step at sub-block
    granularity (which runs/absorptions/gates were fused, in which original
    orientation); the noisy bind replays them to rebuild the step's pushed
    :class:`NoiseEvent` stream for any noise rates.
    """

    qubits: Tuple[int, ...]
    factors: Tuple[object, ...]
    segments: Tuple[object, ...] = ()


@dataclass
class ParametricTemplate:
    """Structural compilation of one circuit shape, reusable across bindings.

    Produced by :func:`compile_parametric_template`; every entry of
    ``recipes`` is a :class:`StepRecipe`, :class:`MeasureStep` or
    :class:`ResetStep`.  Templates are immutable after construction and safe
    to bind from multiple threads.
    """

    num_qubits: int
    num_clbits: int
    recipes: List[object]
    terminal: Optional[TerminalSample]

    def bind(
        self,
        circuit: Circuit,
        noise_model: Optional[NoiseModel] = None,
        *,
        dtype: Optional[np.dtype] = None,
    ) -> TrajectoryProgram:
        """Produce the concrete :class:`TrajectoryProgram` for *circuit*.

        *circuit* must be structurally identical to the template's source
        (same gate names, qubits and clbits instruction by instruction,
        barriers excluded); only its parameter values are read.  Binding the
        source circuit itself reproduces the uncached compilation bit for
        bit — with or without noise.

        Parameters
        ----------
        noise_model:
            Optional :class:`~repro.simulators.gate.noise.NoiseModel`.  With
            nonzero depolarizing rates every gate step's noise segments are
            replayed into the conjugated-through :class:`NoiseEvent` stream
            of the full noisy compilation (readout error never enters the
            program; it is applied at execution time).
        dtype:
            Optional trajectory dtype.  When given, every noise event gets
            its identity-first operator ``stack`` pre-cast to that dtype
            (the batched engine's GEMM noise path reads it without a
            per-apply conversion).  Step matrices and plans always stay
            ``complex128`` — the engines cast at apply time — so the dtype
            never changes sampled counts.
        """
        instructions = _effective_instructions(circuit)
        if noise_model is not None and noise_model.is_noiseless:
            noise_model = None
        steps: List[object] = []
        for recipe in self.recipes:
            if isinstance(recipe, StepRecipe):
                if noise_model is not None:
                    step = _bind_step_noisy(
                        recipe,
                        instructions,
                        noise_model.oneq_error,
                        noise_model.twoq_error,
                    )
                else:
                    step = _bind_step(recipe, instructions)
                steps.append(_finalize_step_dtype(step, dtype))
            else:
                steps.append(recipe)
        program = TrajectoryProgram(self.num_qubits, self.num_clbits, steps)
        program.terminal = self.terminal
        hook = _PROGRAM_HOOK
        if hook is not None:
            hook(program, circuit)
        return program


def _effective_instructions(circuit: Circuit) -> List[Instruction]:
    """The circuit's instruction list with barriers dropped."""
    return [inst for inst in circuit.instructions if inst.name != "barrier"]


def _factor_matrix(factor: object, instructions: List[Instruction]) -> np.ndarray:
    """Evaluate one recipe factor against concrete instruction parameters."""
    if isinstance(factor, _KronFactor):
        run_a = (
            _run_product([_matrix128(instructions[k]) for k in factor.run_a])
            if factor.run_a
            else _ID2
        )
        run_b = (
            _run_product([_matrix128(instructions[k]) for k in factor.run_b])
            if factor.run_b
            else _ID2
        )
        return np.kron(run_a, run_b)
    inst = instructions[factor.index]
    matrix = cached_gate_matrix(inst.name, inst.params)
    if factor.swapped:
        swap = cached_gate_matrix("swap")
        matrix = swap @ matrix @ swap
    return matrix


def _matrix128(inst: Instruction) -> np.ndarray:
    return np.asarray(cached_gate_matrix(inst.name, inst.params), dtype=np.complex128)


def _bind_step(recipe: StepRecipe, instructions: List[Instruction]) -> GateStep:
    """Materialise one :class:`GateStep` from a recipe and concrete params."""
    factors = recipe.factors
    first = factors[0]
    if len(factors) == 1 and isinstance(first, _GateFactor) and not first.swapped:
        inst = instructions[first.index]
        if len(inst.qubits) == len(recipe.qubits):
            # A standalone library gate: serve the shared cached matrix and
            # its memoised structure plan directly.
            return GateStep(
                cached_gate_matrix(inst.name, inst.params),
                recipe.qubits,
                cached_gate_plan(inst.name, inst.params),
            )
    matrix = np.asarray(_factor_matrix(first, instructions), dtype=np.complex128)
    for factor in factors[1:]:
        matrix = _factor_matrix(factor, instructions) @ matrix
    return GateStep(matrix, recipe.qubits, build_plan(matrix))


def _segment_matrix_events(
    segment: object,
    instructions: List[Instruction],
    oneq_rate: float,
    twoq_rate: float,
) -> Tuple[np.ndarray, MatrixPlan, List[NoiseEvent]]:
    """One segment's concrete ``(matrix, plan, own error events)``.

    The matrix is expressed in the segment's *original* qubit orientation;
    the plan is the one the segment would carry as a standalone step.  The
    arithmetic mirrors the one-shot noisy compiler operation for operation,
    so replaying segments reproduces its programs bit for bit.
    """
    if isinstance(segment, _RunSegment):
        matrices = [_matrix128(instructions[k]) for k in segment.run]
        product = _run_product(matrices)
        events = (
            _pushed_1q_events(segment.qubits[0], matrices, oneq_rate)
            if oneq_rate > 0.0
            else []
        )
        if len(matrices) == 1:
            # A one-gate run's product is the library matrix itself: serve
            # its memoised structure plan instead of re-analysing it.
            inst = instructions[segment.run[0]]
            return product, cached_gate_plan(inst.name, inst.params), events
        return product, build_plan(product), events
    if isinstance(segment, _AbsorbSegment):
        qa, qb = segment.qubits
        matrices_a = [_matrix128(instructions[k]) for k in segment.run_a]
        matrices_b = [_matrix128(instructions[k]) for k in segment.run_b]
        run_a = _run_product(matrices_a) if matrices_a else _ID2
        run_b = _run_product(matrices_b) if matrices_b else _ID2
        events_a = (
            _pushed_1q_events(qa, matrices_a, oneq_rate)
            if oneq_rate > 0.0 and matrices_a
            else []
        )
        events_b = (
            _pushed_1q_events(qb, matrices_b, oneq_rate)
            if oneq_rate > 0.0 and matrices_b
            else []
        )
        inst = instructions[segment.index]
        gate = cached_gate_matrix(inst.name, inst.params)
        fused = np.asarray(gate, dtype=np.complex128) @ np.kron(run_a, run_b)
        events: List[NoiseEvent] = []
        events.extend(_absorbed_events(events_a, 0, gate, (qa, qb)))
        events.extend(_absorbed_events(events_b, 1, gate, (qa, qb)))
        if twoq_rate > 0.0:
            events.extend(_pauli_event(q, twoq_rate) for q in (qa, qb))
        return fused, build_plan(fused), events
    inst = instructions[segment.index]
    matrix = cached_gate_matrix(inst.name, inst.params)
    events = (
        [_pauli_event(q, twoq_rate) for q in inst.qubits] if twoq_rate > 0.0 else []
    )
    return matrix, cached_gate_plan(inst.name, inst.params), events


def _bind_step_noisy(
    recipe: StepRecipe,
    instructions: List[Instruction],
    oneq_rate: float,
    twoq_rate: float,
) -> GateStep:
    """Materialise one noisy :class:`GateStep`: matrices *and* pushed events.

    Replays the recipe's segments in fusion order: the first segment seeds
    the step, every later segment's matrix is oriented to the step's qubit
    order (SWAP conjugation when reversed) and multiplied on, and the
    already-accumulated events are pushed through it (``E -> G E G†``)
    before the later segment's own events are appended — the exact ordering
    the unfused per-gate channel produces.
    """
    segments = recipe.segments
    matrix, plan, events = _segment_matrix_events(
        segments[0], instructions, oneq_rate, twoq_rate
    )
    for segment in segments[1:]:
        gate, _, own_events = _segment_matrix_events(
            segment, instructions, oneq_rate, twoq_rate
        )
        if segment.qubits == recipe.qubits:
            gate = np.asarray(gate, dtype=np.complex128)
        else:
            swap = cached_gate_matrix("swap")
            gate = swap @ gate @ swap
        matrix = gate @ matrix
        pushed = _pushed_pair_events(tuple(events), gate, recipe.qubits)
        events = pushed + list(own_events)
        plan = None
    if plan is None:
        plan = build_plan(matrix)
    return GateStep(matrix, recipe.qubits, plan, tuple(events))


def _finalize_step_dtype(step: GateStep, dtype: Optional[np.dtype]) -> GateStep:
    """Attach engine-dtype noise operator stacks to a bound step.

    Step matrices and plans always stay ``complex128`` (the engines cast at
    apply time, so numerics are unchanged); the identity-first event
    ``stack`` pre-pays the cast that feeds the batched engine's GEMM noise
    path.  ``dtype=None`` (reference engine, density oracle, exact path) —
    or a step without events — leaves the step untouched.
    """
    if dtype is None or not step.noise:
        return step
    dtype = np.dtype(dtype)
    events = tuple(
        NoiseEvent(
            event.qubits,
            event.rate,
            event.operators,
            stack=operator_stack(event.operators, dtype),
        )
        for event in step.noise
    )
    return GateStep(step.matrix, step.qubits, step.plan, events)


def compile_parametric_template(circuit: Circuit) -> ParametricTemplate:
    """Run the structural (parameter-independent) compilation phase.

    Performs the full fusion analysis of :func:`compile_trajectory_program`
    for the **noiseless** case — 1q-run fusion, 2q absorption, same-pair 2q
    fusion, terminal-measurement peeling — but records each fused step as a
    :class:`StepRecipe` over instruction indices instead of a concrete
    matrix, so the result can be re-bound to any structurally identical
    circuit via :meth:`ParametricTemplate.bind`.

    The one parameter-dependent structural input is a two-qubit gate's
    diagonality (the 2q-absorption guard), which is evaluated at this
    circuit's parameter values; rotation families (``rzz``, ``crz``, ...)
    keep their diagonality for every angle, so generic variational circuits
    re-bind exactly.  Re-binding remains *correct* even when a degenerate
    angle (e.g. ``crx(0)``) would have changed the decision — only the
    chosen decomposition, never the product, depends on it.
    """
    instructions = _effective_instructions(circuit)
    recipes: List[object] = []
    pending: Dict[int, List[int]] = {}

    def flush(qubit: int) -> None:
        run = pending.pop(qubit, None)
        if run:
            recipes.append(
                StepRecipe(
                    (qubit,),
                    tuple(_GateFactor(k) for k in run),
                    (_RunSegment((qubit,), tuple(run)),),
                )
            )

    def append_gate(recipe: StepRecipe) -> None:
        """Append a gate recipe, fusing into a trailing same-pair 2q recipe."""
        if len(recipe.qubits) == 2 and recipes:
            prev = recipes[-1]
            if (
                isinstance(prev, StepRecipe)
                and len(prev.qubits) == 2
                and set(prev.qubits) == set(recipe.qubits)
            ):
                if recipe.qubits == prev.qubits:
                    extra = recipe.factors
                else:
                    extra = tuple(_swapped_factor(f) for f in recipe.factors)
                recipes[-1] = StepRecipe(
                    prev.qubits,
                    prev.factors + extra,
                    prev.segments + recipe.segments,
                )
                return
        recipes.append(recipe)

    for index, inst in enumerate(instructions):
        if inst.name == "measure":
            flush(inst.qubits[0])
            recipes.append(MeasureStep(inst.qubits[0], inst.clbits[0]))
            continue
        if inst.name == "reset":
            flush(inst.qubits[0])
            recipes.append(ResetStep(inst.qubits[0]))
            continue
        if inst.num_qubits == 1:
            pending.setdefault(inst.qubits[0], []).append(index)
            continue

        gate_plan = cached_gate_plan(inst.name, inst.params)
        qa, qb = (inst.qubits[0], inst.qubits[1]) if inst.num_qubits == 2 else (-1, -1)
        absorb = (
            inst.num_qubits == 2
            and abs(qa - qb) == 1
            and not gate_plan.is_diagonal
            and (qa in pending or qb in pending)
        )
        if absorb:
            run_a = tuple(pending.pop(qa, ()))
            run_b = tuple(pending.pop(qb, ()))
            append_gate(
                StepRecipe(
                    (qa, qb),
                    (_KronFactor(run_a, run_b), _GateFactor(index)),
                    (_AbsorbSegment((qa, qb), run_a, run_b, index),),
                )
            )
            continue

        for qubit in inst.qubits:
            flush(qubit)
        append_gate(
            StepRecipe(
                inst.qubits,
                (_GateFactor(index),),
                (_GateSegment(inst.qubits, index),),
            )
        )
    for qubit in sorted(pending):
        flush(qubit)

    recipes, terminal = _peel_terminal(recipes, circuit)
    template = ParametricTemplate(
        circuit.num_qubits, circuit.num_clbits, recipes, terminal
    )
    hook = _TEMPLATE_HOOK
    if hook is not None:
        hook(template, circuit)
    return template


def _swapped_factor(factor: object) -> object:
    """The factor conjugated by SWAP (reversing its qubit-pair orientation)."""
    if isinstance(factor, _KronFactor):
        # SWAP (A ⊗ B) SWAP = B ⊗ A: swap the runs instead of the matrix.
        return _KronFactor(factor.run_b, factor.run_a)
    return _GateFactor(factor.index, not factor.swapped)


def _peel_terminal(
    steps: List[object], circuit: Circuit
) -> Tuple[List[object], Optional[TerminalSample]]:
    """Peel trailing measurements that can be sampled jointly at the end.

    A measurement whose qubit is never touched afterwards commutes past
    everything behind it.  A measurement whose classical bit is rewritten by
    a *later* kept measurement must not be peeled either — sampling it at
    the end would invert the program's last-write-wins ordering on that
    clbit.  Works on both :class:`GateStep` streams and recipe streams.
    """
    touched: set = set()
    kept_clbits: set = set()
    terminal_positions: List[int] = []
    for position in range(len(steps) - 1, -1, -1):
        step = steps[position]
        if (
            isinstance(step, MeasureStep)
            and step.qubit not in touched
            and step.clbit not in kept_clbits
        ):
            terminal_positions.append(position)
            continue
        if isinstance(step, (GateStep, StepRecipe, CliffordStep, PauliChannelStep)):
            touched.update(step.qubits)
        elif isinstance(step, MeasureStep):
            touched.add(step.qubit)
            kept_clbits.add(step.clbit)
        elif isinstance(step, ResetStep):
            touched.add(step.qubit)
    if terminal_positions:
        terminal_positions.reverse()  # back to instruction order
        pairs = tuple((steps[p].qubit, steps[p].clbit) for p in terminal_positions)
        removed = set(terminal_positions)
        kept = [step for p, step in enumerate(steps) if p not in removed]
        return kept, TerminalSample(pairs)
    if not circuit.has_measurements():
        return steps, TerminalSample(
            tuple((q, q) for q in range(circuit.num_qubits)), implicit=True
        )
    return steps, None


# -- stabilizer compile path ---------------------------------------------------------

#: Clifford lowering table: library gate name -> tuple of primitive
#: ``(name, operand-index-tuple)`` emissions.  Operand indices select into the
#: instruction's qubit tuple, so ``cy`` on ``(c, t)`` lowers to
#: ``sdg(t), cx(c, t), s(t)``.  Gates outside this table (or any gate carrying
#: parameters) are non-Clifford for the tableau engine.
CLIFFORD_GATES: Dict[str, Tuple[Tuple[str, Tuple[int, ...]], ...]] = {
    "id": (),
    "x": (("x", (0,)),),
    "y": (("y", (0,)),),
    "z": (("z", (0,)),),
    "h": (("h", (0,)),),
    "s": (("s", (0,)),),
    "sdg": (("sdg", (0,)),),
    # SX = e^{i pi/4} S† H S† and SX† = e^{-i pi/4} S H S; global phase is
    # unobservable, so the lowering is exact for sampling.
    "sx": (("sdg", (0,)), ("h", (0,)), ("sdg", (0,))),
    "sxdg": (("s", (0,)), ("h", (0,)), ("s", (0,))),
    "cx": (("cx", (0, 1)),),
    "cz": (("cz", (0, 1)),),
    # CY = (I ⊗ S) CX (I ⊗ S†).
    "cy": (("sdg", (1,)), ("cx", (0, 1)), ("s", (1,))),
    # iSWAP = CZ (S ⊗ S) SWAP.
    "iswap": (("swap", (0, 1)), ("s", (0,)), ("s", (1,)), ("cz", (0, 1))),
    "swap": (("swap", (0, 1)),),
}


def is_clifford_circuit(circuit: Circuit) -> bool:
    """Whether every gate of *circuit* lowers onto the stabilizer tableau.

    True exactly when :func:`compile_stabilizer_program` would succeed:
    every effective (barrier-free) instruction is a measure, a reset, or a
    parameter-free gate in :data:`CLIFFORD_GATES`.  Used by the backend
    registry's ``trajectory_engine="auto"`` resolution.
    """
    for inst in circuit.instructions:
        if inst.name in ("barrier", "measure", "reset"):
            continue
        if inst.params or inst.name not in CLIFFORD_GATES:
            return False
    return True


def compile_stabilizer_program(
    circuit: Circuit, noise_model: Optional[NoiseModel] = None
) -> StabilizerProgram:
    """Compile *circuit* (and optional noise) into a :class:`StabilizerProgram`.

    Classifies every gate as Clifford or non-Clifford: Cliffords are lowered
    onto the tableau primitive set via :data:`CLIFFORD_GATES`; a parametric
    gate or a name outside the table raises
    :class:`~repro.core.errors.UnsupportedGateError` carrying the offending
    gate name and its effective-instruction index (the hook the backend
    registry's auto-selection and the gate backend's fallback are built on).

    With a noise model, each source gate instruction is followed by one
    :class:`PauliChannelStep` over its qubits at the model's per-gate rate
    (``oneq_error`` / ``twoq_error``) — the Pauli-frame twirled form of the
    exact per-qubit depolarizing channel the trajectory engines apply, so the
    engines sample the same distribution on Clifford circuits.  Readout
    error never enters the program; it is applied at execution time.

    Trailing measurements are peeled into the shared :class:`TerminalSample`
    contract (implicit terminal measurement over every qubit for
    measurement-free circuits), identical to the trajectory compiler.
    """
    if noise_model is not None and noise_model.is_noiseless:
        noise_model = None
    steps: List[object] = []
    for index, inst in enumerate(_effective_instructions(circuit)):
        if inst.name == "measure":
            steps.append(MeasureStep(inst.qubits[0], inst.clbits[0]))
            continue
        if inst.name == "reset":
            steps.append(ResetStep(inst.qubits[0]))
            continue
        if inst.params:
            raise UnsupportedGateError(
                inst.name, index, "parametric gates are not Clifford"
            )
        lowering = CLIFFORD_GATES.get(inst.name)
        if lowering is None:
            raise UnsupportedGateError(
                inst.name, index, "outside the Clifford lowering table"
            )
        for name, operands in lowering:
            steps.append(CliffordStep(name, tuple(inst.qubits[k] for k in operands)))
        if noise_model is not None:
            rate = (
                noise_model.oneq_error
                if inst.num_qubits == 1
                else noise_model.twoq_error
            )
            if rate > 0.0:
                steps.append(PauliChannelStep(inst.qubits, rate))
    steps, terminal = _peel_terminal(steps, circuit)
    program = StabilizerProgram(circuit.num_qubits, circuit.num_clbits, steps)
    program.terminal = terminal
    hook = _STABILIZER_HOOK
    if hook is not None:
        hook(program, circuit)
    return program


# -- template + program caches -------------------------------------------------------

#: Default bound on each compile cache (templates and bound programs alike);
#: override per run with the ``compile_cache_size`` exec-policy knob /
#: :func:`set_compile_cache_size`.
DEFAULT_COMPILE_CACHE_SIZE = DEFAULT_CACHE_SIZE

_TEMPLATE_CACHE = BoundedLRU(DEFAULT_COMPILE_CACHE_SIZE)
_PROGRAM_CACHE = BoundedLRU(DEFAULT_COMPILE_CACHE_SIZE)
_STABILIZER_CACHE = BoundedLRU(DEFAULT_COMPILE_CACHE_SIZE)


def _structure_key(circuit: Circuit) -> tuple:
    """Hashable key of the circuit's parameter-independent structure."""
    return (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(
            (inst.name, inst.qubits, inst.clbits)
            for inst in circuit.instructions
            if inst.name != "barrier"
        ),
    )


def _params_key(circuit: Circuit) -> tuple:
    """Hashable tuple of every effective instruction's parameter values."""
    return tuple(
        inst.params for inst in circuit.instructions if inst.name != "barrier"
    )


def _noise_key(noise_model: Optional[NoiseModel]) -> Optional[Tuple[float, float]]:
    """The rates that enter a compiled program (readout error never does)."""
    if noise_model is None or noise_model.is_noiseless:
        return None
    return (noise_model.oneq_error, noise_model.twoq_error)


def structure_key(circuit: Circuit) -> tuple:
    """Public alias of the structure-keyed cache key.

    The serving queue coalesces structurally identical submissions on this
    key (same key ⇒ same fusion template ⇒ the batch shares one compile), so
    it is part of the module's contract, not an implementation detail.
    """
    return _structure_key(circuit)


def params_key(circuit: Circuit) -> tuple:
    """Public alias of the parameter-values cache key.

    Merged-group execution requires *bound-circuit* equality — identical
    structure **and** identical parameter values — so the backend's merge
    eligibility key pairs this with :func:`structure_key`.
    """
    return _params_key(circuit)


def compile_parametric_template_cached(circuit: Circuit) -> ParametricTemplate:
    """Structural template of *circuit* through the template LRU cache."""
    structure = _structure_key(circuit)
    template = _TEMPLATE_CACHE.lookup(structure)
    if template is None:
        template = compile_parametric_template(circuit)
        _TEMPLATE_CACHE.store(structure, template)
    return template


def adopt_parametric_template(circuit: Circuit, template: ParametricTemplate) -> None:
    """Seed the template cache with a template compiled in another process.

    The process-pool executor ships each structure's template to the workers
    once; adopting it lets the worker-side bind skip the structural fusion
    analysis entirely.  A template already cached for the structure wins
    (templates for one structure are interchangeable by construction), and
    the membership probe stays off the hit/miss counters.
    """
    structure = _structure_key(circuit)
    if structure not in _TEMPLATE_CACHE:
        _TEMPLATE_CACHE.store(structure, template)


def compile_trajectory_program_cached(
    circuit: Circuit,
    noise_model: Optional[NoiseModel] = None,
    *,
    dtype: Optional[np.dtype] = None,
) -> TrajectoryProgram:
    """Compile *circuit* through the two-level structure-keyed LRU caches.

    Level 1 — the **program cache**: an exact re-run (same structure, same
    parameter values, same effective noise rates, same trajectory *dtype*)
    returns the previously bound, immutable :class:`TrajectoryProgram`
    without any numeric work; this is what makes warm noisy QAOA/QEC
    iterations cache-hit end to end.  Level 2 — the **template cache**: a
    structurally identical circuit with *different* parameters skips the
    fusion analysis and only re-binds matrices (and, for noisy models, the
    pushed error events).  Cached and uncached compilations produce
    bit-identical programs for every noise setting, because the uncached
    :func:`compile_trajectory_program` is the same ``template + bind``.
    """
    if noise_model is not None and noise_model.is_noiseless:
        noise_model = None
    structure = _structure_key(circuit)
    noise_key = _noise_key(noise_model)
    # dtype only shapes noisy programs (their pre-cast operator stacks); a
    # noiseless bind is dtype-independent, so normalising the key component
    # lets the exact path and the batched engine share one entry.
    dtype_key = (
        np.dtype(dtype).str if dtype is not None and noise_key is not None else None
    )
    program_key = (structure, _params_key(circuit), noise_key, dtype_key)
    program = _PROGRAM_CACHE.lookup(program_key)
    if program is not None:
        return program
    template = compile_parametric_template_cached(circuit)
    program = template.bind(circuit, noise_model, dtype=dtype)
    _PROGRAM_CACHE.store(program_key, program)
    return program


def compile_stabilizer_program_cached(
    circuit: Circuit, noise_model: Optional[NoiseModel] = None
) -> StabilizerProgram:
    """Compile *circuit* for the tableau engine through a structure-keyed LRU.

    Stabilizer programs carry no parameters (parametric gates are
    non-Clifford by definition), so the cache key is the circuit structure
    plus the effective noise rates — a warm QEC cycle re-run (sweeps over
    seeds, shot counts, distances already compiled) is a dictionary hit.
    Cached and uncached compilations are the same object stream by
    construction; an :class:`~repro.core.errors.UnsupportedGateError` is
    never cached (the compile raises before storing).
    """
    if noise_model is not None and noise_model.is_noiseless:
        noise_model = None
    key = (_structure_key(circuit), _noise_key(noise_model))
    program = _STABILIZER_CACHE.lookup(key)
    if program is not None:
        return program
    program = compile_stabilizer_program(circuit, noise_model)
    _STABILIZER_CACHE.store(key, program)
    return program


def set_compile_cache_size(maxsize: int) -> None:
    """Bound the template and program LRUs (and the transpile cache) at *maxsize*.

    Entries beyond the new bound are evicted oldest-first immediately.  The
    exec-policy knob ``compile_cache_size`` routes here through
    :class:`~repro.simulators.gate.statevector.StatevectorSimulator`; the
    default is :data:`DEFAULT_COMPILE_CACHE_SIZE`.
    """
    if not isinstance(maxsize, int) or isinstance(maxsize, bool) or maxsize < 1:
        raise ValueError(f"compile cache size must be a positive int, got {maxsize!r}")
    _TEMPLATE_CACHE.set_maxsize(maxsize)
    _PROGRAM_CACHE.set_maxsize(maxsize)
    _STABILIZER_CACHE.set_maxsize(maxsize)
    from .transpiler import cache as transpile_cache  # local: import cycle

    transpile_cache.set_transpile_cache_size(maxsize)


def compile_cache_info() -> Dict[str, Dict[str, int]]:
    """Hit/miss/entry counters of every compile-side cache.

    Returns a mapping with four sections: ``"template"`` (structural fusion
    templates), ``"program"`` (fully bound trajectory programs),
    ``"stabilizer"`` (compiled tableau programs) and ``"transpile"`` (the
    transpiler's structure-keyed routing templates).
    """
    info = {
        "template": _TEMPLATE_CACHE.info(),
        "program": _PROGRAM_CACHE.info(),
        "stabilizer": _STABILIZER_CACHE.info(),
    }
    from .transpiler import cache as transpile_cache  # local: import cycle

    info["transpile"] = transpile_cache.transpile_cache_info()
    return info


def clear_compile_caches() -> None:
    """Empty the template, program, stabilizer and transpile caches."""
    _TEMPLATE_CACHE.clear()
    _PROGRAM_CACHE.clear()
    _STABILIZER_CACHE.clear()
    _pauli_event.cache_clear()
    from .transpiler import cache as transpile_cache  # local: import cycle

    transpile_cache.clear_transpile_cache()


# A replaced gate definition invalidates every compiled artifact built from
# the old matrices; gates.register_gate fires this hook.
from .gates import register_cache_invalidation_hook as _register_invalidation

_register_invalidation(clear_compile_caches)


def parametric_cache_info() -> Dict[str, int]:
    """Aggregated compile-cache counters (pre-PR 5 compatibility view).

    ``hits`` counts every compile served without structural analysis —
    template re-binds *and* whole-program cache hits; ``misses`` counts
    structural (template) misses; ``size`` is the template entry count.  Use
    :func:`compile_cache_info` for the per-cache breakdown.
    """
    template = _TEMPLATE_CACHE.info()
    program = _PROGRAM_CACHE.info()
    return {
        "hits": template["hits"] + program["hits"],
        "misses": template["misses"],
        "size": template["entries"],
        "maxsize": template["maxsize"],
    }


def parametric_cache_clear() -> None:
    """Empty every compile-side cache (alias of :func:`clear_compile_caches`)."""
    clear_compile_caches()


# -- full compilation ---------------------------------------------------------------


def compile_trajectory_program(
    circuit: Circuit, noise_model: Optional[NoiseModel] = None
) -> TrajectoryProgram:
    """Compile *circuit* (and optional noise) into a :class:`TrajectoryProgram`.

    Parameters
    ----------
    circuit:
        The circuit to compile.  Barriers are dropped; measure and reset
        instructions become :class:`MeasureStep` / :class:`ResetStep` (pure
        unitary callers such as ``Statevector.evolve`` validate their input
        first and get a program of :class:`GateStep` only).
    noise_model:
        Optional :class:`~repro.simulators.gate.noise.NoiseModel`.  With
        nonzero rates, every gate step carries the per-shot error events of
        the reference engine's channel, conjugated through fused blocks so
        fusion never changes the sampled distribution.  Default ``None``
        (also the effective value for a noiseless model).

    Returns
    -------
    TrajectoryProgram
        Immutable program data: the fused step list plus an optional
        :class:`TerminalSample` describing the jointly-sampled trailing
        measurements (implicit over all qubits for measurement-free
        circuits).  Safe to execute from multiple threads.

    Notes
    -----
    Every path — noiseless *and* noisy — is implemented as
    ``compile_parametric_template(circuit).bind(circuit, noise_model)``, so
    this function and the LRU-backed
    :func:`compile_trajectory_program_cached` produce identical programs by
    construction; the noisy bind replays the recorded noise segments into
    the same conjugated event streams the one-shot compiler used to build
    inline.
    """
    return compile_parametric_template(circuit).bind(circuit, noise_model)
