"""Gate library for the gate-model substrate.

Every gate is described by a :class:`GateDef` carrying its qubit arity,
parameter count, and a function producing the unitary matrix.  Matrices are
written in the basis where the **first qubit argument is the most significant
bit** of the matrix index (so ``CX(control, target)`` is the familiar
``[[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]]``).

The library covers the gates the transpiler, the lowering rules and the noise
model need; adding a gate is a single :func:`register_gate` call.

The matrix/plan LRU caches (:func:`cached_gate_matrix`,
:func:`cached_gate_plan`) serve read-only objects and are safe to hit from
the batched engine's chunk worker threads; :func:`register_gate` (which
clears them) must not race a running simulation.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ...core.errors import SimulationError
from .kernels import MatrixPlan, build_plan

__all__ = [
    "GateDef",
    "register_gate",
    "get_gate",
    "has_gate",
    "gate_matrix",
    "cached_gate_matrix",
    "cached_gate_plan",
    "list_gates",
    "ALL_GATE_NAMES",
]

_SQ2 = 1.0 / math.sqrt(2.0)


@dataclass(frozen=True)
class GateDef:
    """Static description of one gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray]
    self_inverse: bool = False
    description: str = ""

    def matrix(self, *params: float) -> np.ndarray:
        """The unitary matrix for the given parameters."""
        if len(params) != self.num_params:
            raise SimulationError(
                f"gate {self.name!r} expects {self.num_params} parameters, got {len(params)}"
            )
        return self.matrix_fn(*params)


_GATES: Dict[str, GateDef] = {}

# Higher layers (the fusion compiler, the transpile cache) memoise artifacts
# built from gate definitions; they register their clear functions here so a
# replaced definition cannot serve stale compiled matrices.
_CACHE_INVALIDATION_HOOKS = []


def register_cache_invalidation_hook(hook) -> None:
    """Register a zero-argument callable run whenever a gate is (re)registered."""
    _CACHE_INVALIDATION_HOOKS.append(hook)


def register_gate(
    name: str,
    num_qubits: int,
    num_params: int,
    matrix_fn: Callable[..., np.ndarray],
    *,
    self_inverse: bool = False,
    description: str = "",
    replace: bool = False,
) -> GateDef:
    """Register a gate definition under *name*."""
    if name in _GATES and not replace:
        raise SimulationError(f"gate {name!r} already registered")
    definition = GateDef(name, num_qubits, num_params, matrix_fn, self_inverse, description)
    _GATES[name] = definition
    # A replaced definition must not serve stale matrices or plans — nor
    # stale compiled programs / transpile templates built from them.
    _cached_matrix.cache_clear()
    _cached_plan.cache_clear()
    for hook in _CACHE_INVALIDATION_HOOKS:
        hook()
    return definition


def get_gate(name: str) -> GateDef:
    """Look up a gate definition, raising for unknown names."""
    try:
        return _GATES[name]
    except KeyError:
        raise SimulationError(f"unknown gate {name!r}") from None


def has_gate(name: str) -> bool:
    """Whether *name* is a registered gate."""
    return name in _GATES


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Convenience wrapper returning a fresh (writable) matrix of gate *name*."""
    return get_gate(name).matrix(*params)


@lru_cache(maxsize=1024)
def _cached_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    matrix = get_gate(name).matrix(*params)
    matrix.setflags(write=False)  # cached arrays are shared; freeze them
    return matrix


def cached_gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """The matrix of gate *name*, memoised per ``(name, params)``.

    Hot loops (the simulators apply the same few gates thousands of times per
    circuit) hit an LRU cache instead of rebuilding the matrix.  The returned
    array is **read-only**; call :func:`gate_matrix` for a private copy.
    """
    return _cached_matrix(name, tuple(float(p) for p in params))


@lru_cache(maxsize=1024)
def _cached_plan(name: str, params: Tuple[float, ...]) -> MatrixPlan:
    return build_plan(_cached_matrix(name, params))


def cached_gate_plan(name: str, params: Sequence[float] = ()) -> MatrixPlan:
    """The :class:`~repro.simulators.gate.kernels.MatrixPlan` of gate *name*.

    Memoised alongside :func:`cached_gate_matrix` so the simulators analyse
    each distinct gate's sparsity structure exactly once.
    """
    return _cached_plan(name, tuple(float(p) for p in params))


def list_gates() -> Tuple[str, ...]:
    """Sorted names of all registered gates."""
    return tuple(sorted(_GATES))


# -- concrete matrices ---------------------------------------------------------

def _mat(rows) -> np.ndarray:
    return np.array(rows, dtype=np.complex128)


def _id() -> np.ndarray:
    return np.eye(2, dtype=np.complex128)


def _x() -> np.ndarray:
    return _mat([[0, 1], [1, 0]])


def _y() -> np.ndarray:
    return _mat([[0, -1j], [1j, 0]])


def _z() -> np.ndarray:
    return _mat([[1, 0], [0, -1]])


def _h() -> np.ndarray:
    return _mat([[_SQ2, _SQ2], [_SQ2, -_SQ2]])


def _s() -> np.ndarray:
    return _mat([[1, 0], [0, 1j]])


def _sdg() -> np.ndarray:
    return _mat([[1, 0], [0, -1j]])


def _t() -> np.ndarray:
    return _mat([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])


def _tdg() -> np.ndarray:
    return _mat([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])


def _sx() -> np.ndarray:
    return 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])


def _sxdg() -> np.ndarray:
    return 0.5 * _mat([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]])


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -1j * s], [-1j * s, c]])


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -s], [s, c]])


def _rz(theta: float) -> np.ndarray:
    return _mat([[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]])


def _p(theta: float) -> np.ndarray:
    return _mat([[1, 0], [0, cmath.exp(1j * theta)]])


def _u(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )


def _controlled(base: np.ndarray) -> np.ndarray:
    dim = base.shape[0]
    out = np.eye(2 * dim, dtype=np.complex128)
    out[dim:, dim:] = base
    return out


def _cx() -> np.ndarray:
    return _controlled(_x())


def _cz() -> np.ndarray:
    return _controlled(_z())


def _cy() -> np.ndarray:
    return _controlled(_y())


def _ch() -> np.ndarray:
    return _controlled(_h())


def _cp(theta: float) -> np.ndarray:
    return _controlled(_p(theta))


def _crx(theta: float) -> np.ndarray:
    return _controlled(_rx(theta))


def _cry(theta: float) -> np.ndarray:
    return _controlled(_ry(theta))


def _crz(theta: float) -> np.ndarray:
    return _controlled(_rz(theta))


def _swap() -> np.ndarray:
    return _mat([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]])


def _iswap() -> np.ndarray:
    return _mat([[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]])


def _rzz(theta: float) -> np.ndarray:
    ep, em = cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)
    return np.diag([ep, em, em, ep]).astype(np.complex128)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
    out = np.eye(4, dtype=np.complex128) * c
    out[0, 3] = out[3, 0] = s
    out[1, 2] = out[2, 1] = s
    return out


def _ryy(theta: float) -> np.ndarray:
    c = math.cos(theta / 2)
    s = 1j * math.sin(theta / 2)
    out = np.eye(4, dtype=np.complex128) * c
    out[0, 3] = s
    out[3, 0] = s
    out[1, 2] = -s
    out[2, 1] = -s
    return out


def _ccx() -> np.ndarray:
    return _controlled(_cx())


def _ccz() -> np.ndarray:
    return _controlled(_cz())


def _cswap() -> np.ndarray:
    return _controlled(_swap())


# Registration order defines ALL_GATE_NAMES below.
register_gate("id", 1, 0, _id, self_inverse=True, description="identity")
register_gate("x", 1, 0, _x, self_inverse=True, description="Pauli X")
register_gate("y", 1, 0, _y, self_inverse=True, description="Pauli Y")
register_gate("z", 1, 0, _z, self_inverse=True, description="Pauli Z")
register_gate("h", 1, 0, _h, self_inverse=True, description="Hadamard")
register_gate("s", 1, 0, _s, description="phase S = sqrt(Z)")
register_gate("sdg", 1, 0, _sdg, description="S dagger")
register_gate("t", 1, 0, _t, description="T = fourth root of Z")
register_gate("tdg", 1, 0, _tdg, description="T dagger")
register_gate("sx", 1, 0, _sx, description="sqrt(X)")
register_gate("sxdg", 1, 0, _sxdg, description="sqrt(X) dagger")
register_gate("rx", 1, 1, _rx, description="X rotation")
register_gate("ry", 1, 1, _ry, description="Y rotation")
register_gate("rz", 1, 1, _rz, description="Z rotation")
register_gate("p", 1, 1, _p, description="phase gate")
register_gate("u", 1, 3, _u, description="generic single-qubit U(theta, phi, lambda)")
register_gate("cx", 2, 0, _cx, self_inverse=True, description="controlled-X")
register_gate("cy", 2, 0, _cy, self_inverse=True, description="controlled-Y")
register_gate("cz", 2, 0, _cz, self_inverse=True, description="controlled-Z")
register_gate("ch", 2, 0, _ch, self_inverse=True, description="controlled-H")
register_gate("cp", 2, 1, _cp, description="controlled phase")
register_gate("crx", 2, 1, _crx, description="controlled RX")
register_gate("cry", 2, 1, _cry, description="controlled RY")
register_gate("crz", 2, 1, _crz, description="controlled RZ")
register_gate("swap", 2, 0, _swap, self_inverse=True, description="SWAP")
register_gate("iswap", 2, 0, _iswap, description="iSWAP")
register_gate("rzz", 2, 1, _rzz, description="ZZ interaction rotation")
register_gate("rxx", 2, 1, _rxx, description="XX interaction rotation")
register_gate("ryy", 2, 1, _ryy, description="YY interaction rotation")
register_gate("ccx", 3, 0, _ccx, self_inverse=True, description="Toffoli")
register_gate("ccz", 3, 0, _ccz, self_inverse=True, description="doubly-controlled Z")
register_gate("cswap", 3, 0, _cswap, self_inverse=True, description="Fredkin")

ALL_GATE_NAMES: Tuple[str, ...] = list_gates()


def inverse_gate(name: str, params: Sequence[float] = ()) -> Tuple[str, Tuple[float, ...]]:
    """Name/params of the inverse of gate *name* (staying in the library)."""
    definition = get_gate(name)
    if definition.self_inverse:
        return name, tuple(params)
    fixed = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t", "sx": "sxdg", "sxdg": "sx",
             "iswap": None}
    if name in fixed:
        if fixed[name] is None:
            raise SimulationError(f"gate {name!r} has no registered named inverse")
        return fixed[name], tuple(params)
    if definition.num_params >= 1 and name in (
        "rx", "ry", "rz", "p", "cp", "crx", "cry", "crz", "rzz", "rxx", "ryy"
    ):
        return name, tuple(-p for p in params)
    if name == "u":
        theta, phi, lam = params
        return "u", (-theta, -lam, -phi)
    raise SimulationError(f"gate {name!r} has no registered named inverse")
