"""Deterministic fault injection for the chunk executors.

Recovery paths deserve the same differential-testing rigor as hot paths:
the repo validates seeded counts bit-identically across engines, worker
counts and executors, so the claim "a crashed worker is recovered with
bit-identical counts" must itself be checkable from a seed.  This module is
that seam — a :class:`FaultPlan` is pure data describing *which chunk task,
on which execution attempt, fails how*:

* ``"raise"`` — the task raises
  :class:`~repro.core.errors.TransientExecutionError` (a retryable
  application-level failure);
* ``"hang"`` — the task stalls for a bounded ``hang_s`` before proceeding
  normally (exercises deadlines without corrupting results);
* ``"kill"`` — the task hard-exits its **worker process**
  (``os._exit``), breaking the process pool (exercises
  ``BrokenProcessPool`` recovery).  On the thread executor a kill is a
  documented no-op: threads cannot be killed without taking the whole
  interpreter down.

Plans are installed through the ``fault_plan`` exec-policy knob (a
JSON-safe dict, so it rides bundle contexts and digests unchanged) or
passed directly to :class:`~repro.simulators.gate.statevector.StatevectorSimulator`.
When no plan is set the hot paths pay exactly one ``is None`` check per
chunk.  Faults key on ``(chunk_id, attempt)``: the executor's re-dispatch
machinery increments *attempt*, so a fault fires once and the recovered
re-execution runs clean — unless the plan deliberately schedules repeated
faults to exercise recovery exhaustion.

Seeded chaos plans (:meth:`FaultPlan.seeded`) draw the fault sites from a
``default_rng(seed)``, making whole chaos sweeps reproducible from one
integer.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...core.errors import SimulationError, TransientExecutionError

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS"]

#: The supported fault kinds, in documentation order.
FAULT_KINDS = ("raise", "hang", "kill")

#: Exit status used by ``"kill"`` faults; distinctive in worker post-mortems.
KILL_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *kind* strikes chunk *chunk_id* on *attempt*.

    ``attempt`` counts executions of the chunk's task: the first dispatch is
    attempt 0, the executor's crash-recovery re-dispatch is attempt 1, and
    so on.  ``hang_s`` bounds a ``"hang"`` stall so injected hangs can never
    wedge a suite — "hang" here means "slow enough to trip a deadline",
    not "forever".
    """

    kind: str
    chunk_id: int
    attempt: int = 0
    hang_s: float = 0.05

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.chunk_id < 0:
            raise SimulationError("fault chunk_id must be >= 0")
        if self.attempt < 0:
            raise SimulationError("fault attempt must be >= 0")
        if self.hang_s < 0:
            raise SimulationError("fault hang_s must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (inverse of :meth:`FaultPlan.from_dict` rows)."""
        return {
            "kind": self.kind,
            "chunk_id": self.chunk_id,
            "attempt": self.attempt,
            "hang_s": self.hang_s,
        }


class FaultPlan:
    """An immutable schedule of :class:`FaultEvent`\\ s, keyed on (chunk, attempt).

    Plans are plain picklable data: the process executor ships them inside
    task payloads so the fault fires *inside* the worker, exactly where a
    real failure would.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()):
        index: Dict[Tuple[int, int], FaultEvent] = {}
        for event in events:
            if not isinstance(event, FaultEvent):
                raise SimulationError(
                    f"FaultPlan events must be FaultEvent instances, got {event!r}"
                )
            key = (event.chunk_id, event.attempt)
            if key in index:
                raise SimulationError(
                    f"duplicate fault for chunk {event.chunk_id} attempt {event.attempt}"
                )
            index[key] = event
        self._events: Tuple[FaultEvent, ...] = tuple(events)
        self._index = index

    # -- construction ---------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        num_chunks: int,
        kinds: Sequence[str] = ("kill",),
        events: int = 1,
        max_attempt: int = 0,
        hang_s: float = 0.05,
    ) -> "FaultPlan":
        """Draw *events* distinct fault sites deterministically from *seed*.

        Sites are ``(chunk_id, attempt)`` pairs over ``num_chunks`` chunks
        and attempts ``0..max_attempt``; each site's kind is drawn uniformly
        from *kinds*.  Identical arguments always produce an identical plan,
        so a whole chaos sweep replays from its seed list.
        """
        if num_chunks < 1:
            raise SimulationError("seeded fault plans need num_chunks >= 1")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise SimulationError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
        sites = [
            (chunk, attempt)
            for chunk in range(num_chunks)
            for attempt in range(max_attempt + 1)
        ]
        rng = np.random.default_rng(seed)
        count = min(int(events), len(sites))
        chosen = rng.choice(len(sites), size=count, replace=False)
        planned = [
            FaultEvent(
                kind=str(kinds[int(rng.integers(len(kinds)))]),
                chunk_id=sites[int(site)][0],
                attempt=sites[int(site)][1],
                hang_s=hang_s,
            )
            for site in sorted(int(s) for s in chosen)
        ]
        return cls(planned)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from its JSON-safe dict form.

        Two shapes are accepted: an explicit event list
        (``{"events": [{"kind": ..., "chunk_id": ...}, ...]}``) or a seeded
        spec (``{"seed": ..., "num_chunks": ..., ...}`` — the keyword
        arguments of :meth:`seeded`, where ``events`` is a *count*).  The
        presence of ``"seed"`` selects the seeded shape.
        """
        if "seed" in doc:
            kwargs = {key: doc[key] for key in doc if key != "seed"}
            return cls.seeded(int(doc["seed"]), **kwargs)
        if "events" in doc:
            rows = doc["events"]
            return cls(
                [
                    FaultEvent(
                        kind=str(row["kind"]),
                        chunk_id=int(row["chunk_id"]),
                        attempt=int(row.get("attempt", 0)),
                        hang_s=float(row.get("hang_s", 0.05)),
                    )
                    for row in rows
                ]
            )
        raise SimulationError(
            "fault plan dict needs an 'events' list or a seeded spec with 'seed'"
        )

    @classmethod
    def coerce(cls, value: Any) -> Optional["FaultPlan"]:
        """Normalise a knob value: ``None`` | :class:`FaultPlan` | dict spec."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise SimulationError(
            f"fault_plan must be a FaultPlan, a dict spec, or None, got {value!r}"
        )

    # -- introspection ----------------------------------------------------------------
    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The scheduled events, in construction order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self._events == other._events

    def __repr__(self) -> str:
        return f"FaultPlan({list(self._events)!r})"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, round-trippable through :meth:`from_dict`."""
        return {"events": [event.to_dict() for event in self._events]}

    def event_for(self, chunk_id: int, attempt: int) -> Optional[FaultEvent]:
        """The event scheduled for ``(chunk_id, attempt)``, or ``None``."""
        return self._index.get((int(chunk_id), int(attempt)))

    # -- firing -------------------------------------------------------------------
    def fire(self, chunk_id: int, attempt: int, *, executor: str = "process") -> None:
        """Execute the fault scheduled for ``(chunk_id, attempt)``, if any.

        Called by the chunk executors immediately before running a chunk.
        ``"raise"`` raises :class:`TransientExecutionError`; ``"hang"``
        sleeps ``hang_s`` then returns (the chunk still runs, so results
        stay bit-identical); ``"kill"`` hard-exits the current process on
        the ``"process"`` executor and is a no-op on ``"thread"``.
        """
        event = self.event_for(chunk_id, attempt)
        if event is None:
            return
        if event.kind == "raise":
            raise TransientExecutionError(
                f"injected fault: chunk {chunk_id} attempt {attempt}"
            )
        if event.kind == "hang":
            time.sleep(event.hang_s)
            return
        if executor == "process":  # "kill": threads cannot be killed
            os._exit(KILL_EXIT_CODE)
