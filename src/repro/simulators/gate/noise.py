"""A small noise model for the gate-model substrate.

The middle layer itself is noise-agnostic; this model exists so that the
context descriptor's execution options can request noisy simulation (and so
QEC resource estimates have a physical error rate to refer to).  Two channels
are modelled, both applied stochastically per trajectory:

* depolarizing noise after every gate (independent single-qubit Pauli errors
  on each qubit the gate touched, with separate rates for 1q and 2q gates),
* symmetric readout bit-flip errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ...core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .circuit import Instruction
    from .statevector import Statevector

__all__ = ["NoiseModel"]

_PAULIS = ("x", "y", "z")


@dataclass
class NoiseModel:
    """Depolarizing + readout-error noise parameters."""

    oneq_error: float = 0.0
    twoq_error: float = 0.0
    readout_error: float = 0.0

    def __post_init__(self) -> None:
        for name in ("oneq_error", "twoq_error", "readout_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must lie in [0, 1], got {value}")

    @property
    def is_noiseless(self) -> bool:
        """True when every rate is zero."""
        return self.oneq_error == 0.0 and self.twoq_error == 0.0 and self.readout_error == 0.0

    def apply_gate_noise(
        self, state: "Statevector", instruction: "Instruction", rng: np.random.Generator
    ) -> None:
        """Apply per-qubit depolarizing noise after *instruction* (in place).

        The unfused per-instruction form of the channel.  The engines no
        longer call this — every trajectory engine executes compiled
        programs whose :class:`~repro.simulators.gate.fusion.NoiseEvent`
        streams encode the same channel — but it remains the executable
        definition the fusion property tests compare those streams against.
        """
        if instruction.name in ("barrier", "measure", "reset"):
            return
        rate = self.oneq_error if instruction.num_qubits == 1 else self.twoq_error
        if rate <= 0.0:
            return
        for qubit in instruction.qubits:
            if rng.random() < rate:
                pauli = _PAULIS[rng.integers(0, 3)]
                state.apply_gate(pauli, [qubit])

    def apply_readout_error(self, outcome: int, rng: np.random.Generator) -> int:
        """Flip a classical readout with probability ``readout_error``."""
        if self.readout_error > 0.0 and rng.random() < self.readout_error:
            return 1 - outcome
        return outcome

    # -- batched channels (one vector draw for a whole trajectory batch) --------
    # Gate noise for the batched engine lives in the compiled program: the
    # fusion compiler turns each gate's depolarizing channel into
    # NoiseEvents that BatchedStatevector.apply_noise_events samples, so
    # pushed-through (conjugated) errors and raw Paulis share one code path.
    def apply_readout_error_batched(
        self, outcomes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Flip each entry of a ``(batch,)`` outcome vector independently."""
        if self.readout_error <= 0.0:
            return outcomes
        flips = rng.random(outcomes.shape[0]) < self.readout_error
        return (outcomes ^ flips).astype(outcomes.dtype)

    def apply_readout_error_segmented(self, outcomes: np.ndarray, segments) -> np.ndarray:
        """Segment-aware readout flips for merged runs.

        *segments* is a sequence of ``(size, generator)`` pairs partitioning
        the batch axis; each segment draws its flip vector from its own
        generator so a merged job consumes exactly the draws a standalone
        chunk would.  Skips all draws when the rate is zero, matching
        :meth:`apply_readout_error_batched`.
        """
        if self.readout_error <= 0.0:
            return outcomes
        flips = np.concatenate(
            [gen.random(size) < self.readout_error for size, gen in segments]
        )
        return (outcomes ^ flips).astype(outcomes.dtype)

    def to_dict(self) -> dict:
        """The three channel rates as a plain dict (context-options form)."""
        return {
            "oneq_error": self.oneq_error,
            "twoq_error": self.twoq_error,
            "readout_error": self.readout_error,
        }

    @classmethod
    def from_dict(cls, doc: dict | None) -> "NoiseModel | None":
        """Build a model from a rates dict; ``None``/empty means no noise."""
        if not doc:
            return None
        return cls(
            oneq_error=float(doc.get("oneq_error", 0.0)),
            twoq_error=float(doc.get("twoq_error", 0.0)),
            readout_error=float(doc.get("readout_error", 0.0)),
        )
