"""A minimal gate-level circuit intermediate representation.

:class:`Circuit` is the substrate-side IR that backends lower operator
descriptors into and that the transpiler and simulators consume.  It is a
flat list of :class:`Instruction` records over ``num_qubits`` qubits and
``num_clbits`` classical bits, with helpers for the structural properties the
middle layer cares about (depth, two-qubit count, measurement placement).

It deliberately mirrors the shape of Qiskit's ``QuantumCircuit`` closely
enough that the paper's Listing 1 translates line by line, while staying a
few hundred lines of NumPy-friendly Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...core.errors import SimulationError
from .gates import get_gate, has_gate, inverse_gate

__all__ = ["Instruction", "Circuit"]

_NON_GATE_OPS = ("measure", "reset", "barrier")


@dataclass(frozen=True)
class Instruction:
    """One operation in a circuit."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()
    clbits: Tuple[int, ...] = ()
    label: Optional[str] = None

    @property
    def is_gate(self) -> bool:
        """True for unitary gates (not measure/reset/barrier)."""
        return self.name not in _NON_GATE_OPS

    @property
    def num_qubits(self) -> int:
        """Number of qubits the instruction acts on."""
        return len(self.qubits)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dict form (empty fields omitted)."""
        doc: Dict[str, Any] = {"name": self.name, "qubits": list(self.qubits)}
        if self.params:
            doc["params"] = [float(p) for p in self.params]
        if self.clbits:
            doc["clbits"] = list(self.clbits)
        if self.label:
            doc["label"] = self.label
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Instruction":
        """Rebuild an :class:`Instruction` from its :meth:`to_dict` form."""
        return cls(
            name=doc["name"],
            qubits=tuple(doc["qubits"]),
            params=tuple(doc.get("params", ())),
            clbits=tuple(doc.get("clbits", ())),
            label=doc.get("label"),
        )


class Circuit:
    """A sequence of gate/measure/reset/barrier instructions."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, *, name: str = "circuit"):
        if num_qubits < 1:
            raise SimulationError("a circuit needs at least one qubit")
        if num_clbits < 0:
            raise SimulationError("num_clbits cannot be negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name
        self.instructions: List[Instruction] = []
        self.metadata: Dict[str, Any] = {}

    # -- validation helpers ------------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        qs = tuple(int(q) for q in qubits)
        if len(set(qs)) != len(qs):
            raise SimulationError(f"duplicate qubits in {qs}")
        for q in qs:
            if not 0 <= q < self.num_qubits:
                raise SimulationError(
                    f"qubit {q} out of range for a {self.num_qubits}-qubit circuit"
                )
        return qs

    def _check_clbits(self, clbits: Sequence[int]) -> Tuple[int, ...]:
        cs = tuple(int(c) for c in clbits)
        for c in cs:
            if not 0 <= c < self.num_clbits:
                raise SimulationError(
                    f"clbit {c} out of range for a circuit with {self.num_clbits} clbits"
                )
        return cs

    # -- generic appends -----------------------------------------------------------
    def append(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
        clbits: Sequence[int] = (),
        label: Optional[str] = None,
    ) -> "Circuit":
        """Append an instruction by name, validating arity against the library."""
        qs = self._check_qubits(qubits)
        cs = self._check_clbits(clbits)
        if name not in _NON_GATE_OPS:
            definition = get_gate(name)
            if definition.num_qubits != len(qs):
                raise SimulationError(
                    f"gate {name!r} acts on {definition.num_qubits} qubits, got {len(qs)}"
                )
            if definition.num_params != len(params):
                raise SimulationError(
                    f"gate {name!r} takes {definition.num_params} params, got {len(params)}"
                )
        self.instructions.append(
            Instruction(name, qs, tuple(float(p) for p in params), cs, label)
        )
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, ops={len(self.instructions)})"
        )

    # -- named gate helpers ---------------------------------------------------------
    def id(self, q: int) -> "Circuit":
        """Append a ``id`` (identity) gate; returns ``self`` for chaining."""
        return self.append("id", [q])

    def x(self, q: int) -> "Circuit":
        """Append a ``x`` (Pauli-X) gate; returns ``self`` for chaining."""
        return self.append("x", [q])

    def y(self, q: int) -> "Circuit":
        """Append a ``y`` (Pauli-Y) gate; returns ``self`` for chaining."""
        return self.append("y", [q])

    def z(self, q: int) -> "Circuit":
        """Append a ``z`` (Pauli-Z) gate; returns ``self`` for chaining."""
        return self.append("z", [q])

    def h(self, q: int) -> "Circuit":
        """Append a ``h`` (Hadamard) gate; returns ``self`` for chaining."""
        return self.append("h", [q])

    def s(self, q: int) -> "Circuit":
        """Append a ``s`` (S (sqrt-Z)) gate; returns ``self`` for chaining."""
        return self.append("s", [q])

    def sdg(self, q: int) -> "Circuit":
        """Append a ``sdg`` (S-dagger) gate; returns ``self`` for chaining."""
        return self.append("sdg", [q])

    def t(self, q: int) -> "Circuit":
        """Append a ``t`` (T) gate; returns ``self`` for chaining."""
        return self.append("t", [q])

    def tdg(self, q: int) -> "Circuit":
        """Append a ``tdg`` (T-dagger) gate; returns ``self`` for chaining."""
        return self.append("tdg", [q])

    def sx(self, q: int) -> "Circuit":
        """Append a ``sx`` (sqrt-X) gate; returns ``self`` for chaining."""
        return self.append("sx", [q])

    def sxdg(self, q: int) -> "Circuit":
        """Append a ``sxdg`` (sqrt-X-dagger) gate; returns ``self`` for chaining."""
        return self.append("sxdg", [q])

    def rx(self, theta: float, q: int) -> "Circuit":
        """Append a ``rx`` (X-rotation) gate; returns ``self`` for chaining."""
        return self.append("rx", [q], [theta])

    def ry(self, theta: float, q: int) -> "Circuit":
        """Append a ``ry`` (Y-rotation) gate; returns ``self`` for chaining."""
        return self.append("ry", [q], [theta])

    def rz(self, theta: float, q: int) -> "Circuit":
        """Append a ``rz`` (Z-rotation) gate; returns ``self`` for chaining."""
        return self.append("rz", [q], [theta])

    def p(self, theta: float, q: int) -> "Circuit":
        """Append a ``p`` (phase) gate; returns ``self`` for chaining."""
        return self.append("p", [q], [theta])

    def u(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        """Append a ``u`` (generic single-qubit U(theta, phi, lam)) gate; returns ``self`` for chaining."""
        return self.append("u", [q], [theta, phi, lam])

    def cx(self, control: int, target: int) -> "Circuit":
        """Append a ``cx`` (CNOT) gate; returns ``self`` for chaining."""
        return self.append("cx", [control, target])

    def cy(self, control: int, target: int) -> "Circuit":
        """Append a ``cy`` (controlled-Y) gate; returns ``self`` for chaining."""
        return self.append("cy", [control, target])

    def cz(self, control: int, target: int) -> "Circuit":
        """Append a ``cz`` (controlled-Z) gate; returns ``self`` for chaining."""
        return self.append("cz", [control, target])

    def ch(self, control: int, target: int) -> "Circuit":
        """Append a ``ch`` (controlled-Hadamard) gate; returns ``self`` for chaining."""
        return self.append("ch", [control, target])

    def cp(self, theta: float, control: int, target: int) -> "Circuit":
        """Append a ``cp`` (controlled-phase) gate; returns ``self`` for chaining."""
        return self.append("cp", [control, target], [theta])

    def crx(self, theta: float, control: int, target: int) -> "Circuit":
        """Append a ``crx`` (controlled X-rotation) gate; returns ``self`` for chaining."""
        return self.append("crx", [control, target], [theta])

    def cry(self, theta: float, control: int, target: int) -> "Circuit":
        """Append a ``cry`` (controlled Y-rotation) gate; returns ``self`` for chaining."""
        return self.append("cry", [control, target], [theta])

    def crz(self, theta: float, control: int, target: int) -> "Circuit":
        """Append a ``crz`` (controlled Z-rotation) gate; returns ``self`` for chaining."""
        return self.append("crz", [control, target], [theta])

    def swap(self, a: int, b: int) -> "Circuit":
        """Append a ``swap`` (SWAP) gate; returns ``self`` for chaining."""
        return self.append("swap", [a, b])

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        """Append a ``rzz`` (ZZ-interaction) gate; returns ``self`` for chaining."""
        return self.append("rzz", [a, b], [theta])

    def rxx(self, theta: float, a: int, b: int) -> "Circuit":
        """Append a ``rxx`` (XX-interaction) gate; returns ``self`` for chaining."""
        return self.append("rxx", [a, b], [theta])

    def ryy(self, theta: float, a: int, b: int) -> "Circuit":
        """Append a ``ryy`` (YY-interaction) gate; returns ``self`` for chaining."""
        return self.append("ryy", [a, b], [theta])

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        """Append a ``ccx`` (Toffoli) gate; returns ``self`` for chaining."""
        return self.append("ccx", [c1, c2, target])

    def ccz(self, c1: int, c2: int, target: int) -> "Circuit":
        """Append a ``ccz`` (doubly-controlled-Z) gate; returns ``self`` for chaining."""
        return self.append("ccz", [c1, c2, target])

    def cswap(self, control: int, a: int, b: int) -> "Circuit":
        """Append a ``cswap`` (Fredkin (controlled-SWAP)) gate; returns ``self`` for chaining."""
        return self.append("cswap", [control, a, b])

    # -- non-unitary operations -------------------------------------------------------
    def measure(self, qubit: int, clbit: int) -> "Circuit":
        """Measure *qubit* in the Z basis, storing the outcome in *clbit*."""
        return self.append("measure", [qubit], clbits=[clbit])

    def measure_all(self, qubits: Optional[Sequence[int]] = None) -> "Circuit":
        """Measure the given qubits (default: all) into matching clbits."""
        qubits = list(range(self.num_qubits)) if qubits is None else list(qubits)
        if self.num_clbits < len(qubits):
            raise SimulationError(
                f"measure_all needs {len(qubits)} clbits, circuit has {self.num_clbits}"
            )
        for i, q in enumerate(qubits):
            self.measure(q, i)
        return self

    def reset(self, qubit: int) -> "Circuit":
        """Reset *qubit* to |0>."""
        return self.append("reset", [qubit])

    def barrier(self, *qubits: int) -> "Circuit":
        """Insert a scheduling barrier (all qubits when none given)."""
        qs = list(qubits) if qubits else list(range(self.num_qubits))
        return self.append("barrier", qs)

    # -- structural queries ---------------------------------------------------------------
    def count_ops(self) -> Dict[str, int]:
        """Histogram of instruction names."""
        counts: Dict[str, int] = {}
        for inst in self.instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def num_gates(self) -> int:
        """Number of unitary gate instructions."""
        return sum(1 for inst in self.instructions if inst.is_gate and inst.name != "barrier")

    def num_twoq_gates(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(
            1
            for inst in self.instructions
            if inst.is_gate and inst.name != "barrier" and inst.num_qubits >= 2
        )

    def depth(self, *, include_measure: bool = True) -> int:
        """Circuit depth: length of the longest qubit/clbit dependency chain."""
        levels: Dict[Tuple[str, int], int] = {}
        depth = 0
        for inst in self.instructions:
            if inst.name == "barrier":
                continue
            if not include_measure and inst.name == "measure":
                continue
            wires = [("q", q) for q in inst.qubits] + [("c", c) for c in inst.clbits]
            level = 1 + max((levels.get(w, 0) for w in wires), default=0)
            for w in wires:
                levels[w] = level
            depth = max(depth, level)
        return depth

    def has_measurements(self) -> bool:
        """Whether any measurement instruction is present."""
        return any(inst.name == "measure" for inst in self.instructions)

    def measurements_are_terminal(self) -> bool:
        """True when no qubit is acted on after it has been measured or reset."""
        touched_after: set[int] = set()
        for inst in reversed(self.instructions):
            if inst.name == "measure":
                if any(q in touched_after for q in inst.qubits):
                    return False
            elif inst.name == "reset":
                return False
            elif inst.name != "barrier":
                touched_after.update(inst.qubits)
        return True

    def measurement_map(self) -> Dict[int, int]:
        """Mapping clbit -> measured qubit (last measurement wins)."""
        mapping: Dict[int, int] = {}
        for inst in self.instructions:
            if inst.name == "measure":
                mapping[inst.clbits[0]] = inst.qubits[0]
        return mapping

    # -- composition ------------------------------------------------------------------------
    def copy(self, *, name: Optional[str] = None) -> "Circuit":
        """A deep-enough copy (instructions are immutable)."""
        clone = Circuit(self.num_qubits, self.num_clbits, name=name or self.name)
        clone.instructions = list(self.instructions)
        clone.metadata = dict(self.metadata)
        return clone

    def compose(
        self,
        other: "Circuit",
        qubit_map: Optional[Sequence[int]] = None,
        clbit_map: Optional[Sequence[int]] = None,
    ) -> "Circuit":
        """Append *other*'s instructions, remapping its wires onto this circuit."""
        qubit_map = list(range(other.num_qubits)) if qubit_map is None else list(qubit_map)
        clbit_map = list(range(other.num_clbits)) if clbit_map is None else list(clbit_map)
        if len(qubit_map) != other.num_qubits:
            raise SimulationError("qubit_map must cover every qubit of the composed circuit")
        if len(clbit_map) != other.num_clbits:
            raise SimulationError("clbit_map must cover every clbit of the composed circuit")
        for inst in other.instructions:
            self.append(
                inst.name,
                [qubit_map[q] for q in inst.qubits],
                inst.params,
                [clbit_map[c] for c in inst.clbits],
                inst.label,
            )
        return self

    def inverse(self) -> "Circuit":
        """The inverse circuit (gates reversed and individually inverted)."""
        inv = Circuit(self.num_qubits, self.num_clbits, name=f"{self.name}_inv")
        for inst in reversed(self.instructions):
            if inst.name == "barrier":
                inv.append("barrier", inst.qubits)
                continue
            if not inst.is_gate:
                raise SimulationError("cannot invert a circuit containing measure/reset")
            name, params = inverse_gate(inst.name, inst.params)
            inv.append(name, inst.qubits, params)
        return inv

    def remapped(self, qubit_map: Sequence[int], num_qubits: Optional[int] = None) -> "Circuit":
        """A copy with every qubit ``q`` relabelled to ``qubit_map[q]``."""
        new_n = num_qubits if num_qubits is not None else self.num_qubits
        out = Circuit(new_n, self.num_clbits, name=self.name)
        out.metadata = dict(self.metadata)
        for inst in self.instructions:
            out.append(
                inst.name,
                [qubit_map[q] for q in inst.qubits],
                inst.params,
                inst.clbits,
                inst.label,
            )
        return out

    # -- serialization ---------------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dict form of the whole circuit."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "num_clbits": self.num_clbits,
            "instructions": [inst.to_dict() for inst in self.instructions],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Circuit":
        """Rebuild a :class:`Circuit` from its :meth:`to_dict` form."""
        circuit = cls(doc["num_qubits"], doc.get("num_clbits", 0), name=doc.get("name", "circuit"))
        circuit.metadata = dict(doc.get("metadata", {}))
        for inst_doc in doc.get("instructions", []):
            inst = Instruction.from_dict(inst_doc)
            circuit.append(inst.name, inst.qubits, inst.params, inst.clbits, inst.label)
        return circuit
