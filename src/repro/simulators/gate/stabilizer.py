"""Batched Aaronson–Gottesman stabilizer tableau engine for Clifford circuits.

The state-vector engines cap out near a dozen qubits; QEC workloads
(repetition/surface-code cycles) need hundreds.  For Clifford circuits the
Aaronson–Gottesman tableau representation tracks the state in ``O(n^2)`` bits
instead of ``2^n`` amplitudes: binary matrices ``x`` and ``z`` of shape
``(2n, n)`` hold the Pauli letter of every (de)stabilizer generator on every
qubit (rows ``0..n-1`` are destabilizers, rows ``n..2n-1`` stabilizers), and a
phase vector records each generator's sign.

Batched layout
--------------
This implementation exploits a structural fact of Clifford *programs with
Pauli noise*: conjugating the generators by a Pauli error never changes their
``x``/``z`` bits — only their signs.  Gate updates and the measurement pivot
choice depend **only** on the bits, so across a whole batch of Monte-Carlo
trajectories the bit matrices evolve identically and can be shared.  The
tableau therefore stores

* ``x``, ``z`` — shared ``(2n, n)`` ``uint8`` bit matrices (one copy per
  chunk, not per shot), and
* ``r`` — a per-shot ``(2n, batch)`` ``uint8`` phase matrix.

Gate bit-updates cost ``O(n)`` *once per chunk*; phase updates are one
vectorised XOR across the batch.  Memory is ``~(2n + width)`` bytes per shot
plus a fixed ``4 n^2`` bytes per chunk, so thousand-qubit, thousand-shot
chunks fit comfortably inside the default batch byte budget.  Sampling is
exact — this is the full tableau algorithm, not an approximate Pauli-frame
propagation — and measurement outcomes with genuinely random results consume
one fresh random bit per shot.

Primitive gate set: ``x``, ``y``, ``z``, ``h``, ``s``, ``sdg``, ``cx``,
``cz``, ``swap`` (the compile path in
:mod:`~repro.simulators.gate.fusion` lowers the wider Clifford library onto
these and rejects non-Clifford gates with a typed
:class:`~repro.core.errors.UnsupportedGateError`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...core.errors import SimulationError

__all__ = [
    "StabilizerTableau",
    "PRIMITIVE_GATES",
    "execute_stabilizer_program",
    "execute_stabilizer_program_segments",
]

#: Primitive Clifford gates the tableau applies directly (the stabilizer
#: compile path lowers everything else onto these).
PRIMITIVE_GATES = ("id", "x", "y", "z", "h", "s", "sdg", "cx", "cz", "swap")


class StabilizerTableau:
    """A batch of stabilizer states sharing one bit tableau.

    Parameters
    ----------
    num_qubits:
        Width of the register (no upper cap; memory is quadratic in the
        width and linear in the batch).
    batch_size:
        Number of simultaneous trajectories.  All gate and measurement
        structure is shared; only the per-shot phase matrix and measurement
        outcomes differ between trajectories.
    """

    def __init__(self, num_qubits: int, batch_size: int = 1):
        if num_qubits < 1:
            raise SimulationError("stabilizer tableau needs at least one qubit")
        if batch_size < 1:
            raise SimulationError("stabilizer batch size must be >= 1")
        n = num_qubits
        self.num_qubits = n
        self.batch_size = batch_size
        # Rows 0..n-1: destabilizers (X_i); rows n..2n-1: stabilizers (Z_i).
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros((2 * n, batch_size), dtype=np.uint8)
        self.x[np.arange(n), np.arange(n)] = 1
        self.z[n + np.arange(n), np.arange(n)] = 1

    # -- single-qubit gates ----------------------------------------------------------
    def h(self, q: int) -> None:
        """Hadamard: swap the X and Z letters, sign flip on Y rows."""
        self.r ^= (self.x[:, q] & self.z[:, q])[:, None]
        column = self.x[:, q].copy()
        self.x[:, q] = self.z[:, q]
        self.z[:, q] = column

    def s(self, q: int) -> None:
        """Phase gate: X -> Y, Y -> -X, Z -> Z."""
        self.r ^= (self.x[:, q] & self.z[:, q])[:, None]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        """Inverse phase gate: X -> -Y, Y -> X, Z -> Z."""
        self.r ^= (self.x[:, q] & (1 ^ self.z[:, q]))[:, None]
        self.z[:, q] ^= self.x[:, q]

    def apply_x(self, q: int) -> None:
        """Pauli X: sign flip on rows anticommuting with X (Z and Y letters)."""
        self.r ^= self.z[:, q][:, None]

    def apply_z(self, q: int) -> None:
        """Pauli Z: sign flip on rows anticommuting with Z (X and Y letters)."""
        self.r ^= self.x[:, q][:, None]

    def apply_y(self, q: int) -> None:
        """Pauli Y: sign flip on rows with an X or Z (but not Y) letter."""
        self.r ^= (self.x[:, q] ^ self.z[:, q])[:, None]

    # -- two-qubit gates -------------------------------------------------------------
    def cx(self, control: int, target: int) -> None:
        """Controlled-X with the standard Aaronson–Gottesman phase rule."""
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= (xc & zt & (xt ^ zc ^ 1))[:, None]
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def cz(self, control: int, target: int) -> None:
        """Controlled-Z via the H-conjugation identity ``CZ = H_t CX H_t``."""
        self.h(target)
        self.cx(control, target)
        self.h(target)

    def swap(self, a: int, b: int) -> None:
        """SWAP: exchange the two qubits' tableau columns (no phase change)."""
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    # -- dispatch --------------------------------------------------------------------
    def apply_gate(self, name: str, qubits: Tuple[int, ...]) -> None:
        """Apply one primitive Clifford gate by name (see ``PRIMITIVE_GATES``)."""
        if name == "cx":
            self.cx(qubits[0], qubits[1])
        elif name == "cz":
            self.cz(qubits[0], qubits[1])
        elif name == "swap":
            self.swap(qubits[0], qubits[1])
        elif name == "h":
            self.h(qubits[0])
        elif name == "s":
            self.s(qubits[0])
        elif name == "sdg":
            self.sdg(qubits[0])
        elif name == "x":
            self.apply_x(qubits[0])
        elif name == "y":
            self.apply_y(qubits[0])
        elif name == "z":
            self.apply_z(qubits[0])
        elif name == "id":
            pass
        else:
            raise SimulationError(f"{name!r} is not a primitive stabilizer gate")

    # -- Pauli-frame noise -----------------------------------------------------------
    def apply_pauli_masked(self, kind: str, qubit: int, mask: np.ndarray) -> None:
        """Apply Pauli *kind* on *qubit* to the shots selected by *mask*.

        Pauli conjugation never changes generator bits — it only flips the
        sign of every generator that anticommutes with the error — so a
        per-shot error is a single masked XOR into the phase matrix.
        """
        if kind == "x":
            rows = self.z[:, qubit]
        elif kind == "z":
            rows = self.x[:, qubit]
        elif kind == "y":
            rows = self.x[:, qubit] ^ self.z[:, qubit]
        else:
            raise SimulationError(f"{kind!r} is not a Pauli label")
        self.r ^= rows[:, None] & np.asarray(mask, dtype=np.uint8)[None, :]

    def apply_depolarizing(
        self,
        qubits: Tuple[int, ...],
        rate: float,
        rng: Optional[np.random.Generator],
        segments=None,
    ) -> None:
        """One depolarizing opportunity per qubit: strike with *rate*, draw a Pauli.

        Mirrors the trajectory engines' channel: each qubit the source gate
        touched is struck independently with probability *rate*, and a struck
        shot applies a uniformly drawn X, Y or Z.  The draw count per qubit is
        fixed (one uniform vector + one integer vector), so a chunk's RNG
        stream consumption is independent of which shots are struck.  With
        *segments* — ``(size, generator)`` pairs partitioning the batch axis
        of a merged run — each segment draws both vectors from its own
        generator, in the same order and with the same sizes a standalone
        chunk would, so per-job streams are untouched by merging.
        """
        for qubit in qubits:
            if segments is None:
                struck = rng.random(self.batch_size) < rate
                kinds = rng.integers(0, 3, size=self.batch_size)
            else:
                parts = []
                for size, gen in segments:
                    sub = gen.random(size) < rate
                    parts.append((sub, gen.integers(0, 3, size=size)))
                struck = np.concatenate([sub for sub, _ in parts])
                kinds = np.concatenate([kind for _, kind in parts])
            for kind, name in enumerate(("x", "y", "z")):
                mask = struck & (kinds == kind)
                if mask.any():
                    self.apply_pauli_masked(name, qubit, mask)

    # -- row arithmetic --------------------------------------------------------------
    def _phase_exponents(self, rows: np.ndarray, other: int) -> np.ndarray:
        """Mod-4 ``i``-exponents of multiplying row *other* onto each of *rows*.

        The Aaronson–Gottesman ``g`` function summed over qubit columns:
        ``g(x1, z1, x2, z2)`` is the exponent of ``i`` produced by multiplying
        the Pauli letter ``(x1, z1)`` (from row *other*, the left factor) onto
        ``(x2, z2)`` (from each accumulating row).  Depends only on the shared
        bits, so one scalar per row serves the whole batch.
        """
        x1 = self.x[other].astype(np.int64)
        z1 = self.z[other].astype(np.int64)
        x2 = self.x[rows].astype(np.int64)
        z2 = self.z[rows].astype(np.int64)
        term = (
            (x1 * z1) * (z2 - x2)
            + (x1 * (1 - z1)) * (z2 * (2 * x2 - 1))
            + ((1 - x1) * z1) * (x2 * (1 - 2 * z2))
        )
        return term.sum(axis=1) % 4

    def _rowsum_many(self, rows: np.ndarray, other: int) -> None:
        """Multiply row *other* onto every row in *rows* (vectorised rowsum).

        For each target row the product of two commuting-phase Pauli strings
        accumulates a real sign: ``2 r_h + 2 r_other + sum(g)`` is 0 or 2 mod
        4, so the new phase is ``r_h ^ r_other ^ (sum(g) mod 4 == 2)``.  The
        sign correction comes from shared bits (one scalar per row); the
        per-shot part is a batched XOR.
        """
        if rows.size == 0:
            return
        flips = (self._phase_exponents(rows, other) == 2).astype(np.uint8)
        self.r[rows] ^= self.r[other][None, :] ^ flips[:, None]
        self.x[rows] ^= self.x[other][None, :]
        self.z[rows] ^= self.z[other][None, :]

    def _deterministic_phase(self, qubit: int) -> np.ndarray:
        """Per-shot outcome of a deterministic Z measurement (no state change).

        Accumulates, destabilizer by destabilizer, the product of stabilizer
        rows whose destabilizer partner has an X letter on *qubit* — the
        scratch-row construction of the Aaronson–Gottesman measurement — and
        returns the product's ``(batch,)`` phase vector, which *is* the
        measurement outcome per shot.
        """
        n = self.num_qubits
        acc_x = np.zeros(n, dtype=np.int64)
        acc_z = np.zeros(n, dtype=np.int64)
        phase = np.zeros(self.batch_size, dtype=np.int64)  # i-exponent / 2 pairs
        exponent = 0
        for i in np.nonzero(self.x[:n, qubit])[0]:
            row = n + int(i)
            x1 = self.x[row].astype(np.int64)
            z1 = self.z[row].astype(np.int64)
            term = (
                (x1 * z1) * (acc_z - acc_x)
                + (x1 * (1 - z1)) * (acc_z * (2 * acc_x - 1))
                + ((1 - x1) * z1) * (acc_x * (1 - 2 * acc_z))
            )
            exponent = (exponent + int(term.sum())) % 4
            phase ^= self.r[row].astype(np.int64)
            acc_x ^= x1
            acc_z ^= z1
        return (phase ^ (1 if exponent == 2 else 0)).astype(np.uint8)

    # -- measurement -----------------------------------------------------------------
    def measurement_probabilities(self, qubit: int) -> np.ndarray:
        """Per-shot probability of measuring 1 on *qubit* — exactly 0, 0.5 or 1.

        Does not modify the state: a stabilizer state's single-qubit Z
        marginal is either uniformly random (some stabilizer anticommutes
        with ``Z_q``) or deterministic (``Z_q`` is itself in the group, up to
        sign).
        """
        n = self.num_qubits
        if self.x[n:, qubit].any():
            return np.full(self.batch_size, 0.5)
        return self._deterministic_phase(qubit).astype(np.float64)

    def measure(
        self, qubit: int, rng: Optional[np.random.Generator], segments=None
    ) -> np.ndarray:
        """Projectively measure *qubit* in the Z basis across the batch.

        Returns the ``(batch,)`` outcome vector and collapses the state.
        Whether the outcome is random is a property of the shared bits, so
        the whole batch takes the same branch: the random branch consumes one
        fresh random bit per shot, the deterministic branch consumes none.
        With *segments* the random bits come from each segment's own
        generator (branch choice is shared-bit structure, identical to the
        standalone run by construction).
        """
        n = self.num_qubits
        pivots = np.nonzero(self.x[n:, qubit])[0]
        if pivots.size == 0:
            return self._deterministic_phase(qubit)
        pivot = n + int(pivots[0])
        others = np.nonzero(self.x[:, qubit])[0]
        others = others[others != pivot]
        self._rowsum_many(others, pivot)
        # Old pivot row becomes its own destabilizer; the new pivot row is
        # (-1)^outcome Z_q with one fresh random bit per shot.
        self.x[pivot - n] = self.x[pivot]
        self.z[pivot - n] = self.z[pivot]
        self.r[pivot - n] = self.r[pivot]
        if segments is None:
            outcomes = rng.integers(0, 2, size=self.batch_size, dtype=np.uint8)
        else:
            outcomes = np.concatenate(
                [gen.integers(0, 2, size=size, dtype=np.uint8) for size, gen in segments]
            )
        self.x[pivot] = 0
        self.z[pivot] = 0
        self.z[pivot, qubit] = 1
        self.r[pivot] = outcomes
        return outcomes.copy()

    def reset(
        self, qubit: int, rng: Optional[np.random.Generator], segments=None
    ) -> None:
        """Measure *qubit*, then flip the shots that collapsed to 1 back to 0."""
        outcomes = self.measure(qubit, rng, segments=segments)
        self.apply_pauli_masked("x", qubit, outcomes)

    # -- invariants ------------------------------------------------------------------
    def is_symplectic(self) -> bool:
        """Whether the rows still form a valid symplectic generating set.

        Checks the full pairwise commutation structure: stabilizers commute
        among themselves, destabilizers commute among themselves, and
        destabilizer ``i`` anticommutes with stabilizer ``j`` exactly when
        ``i == j``.  Equivalently, the binary symplectic Gram matrix
        ``x z^T + z x^T (mod 2)`` must equal the canonical off-diagonal block
        form.  The matmul runs in float32 (exact for column sums below
        ``2^24``) so wide tableaus stay fast without int64 matmul loops.
        """
        x = self.x.astype(np.float32)
        z = self.z.astype(np.float32)
        gram = (x @ z.T + z @ x.T) % 2
        n = self.num_qubits
        expected = np.zeros((2 * n, 2 * n), dtype=np.float32)
        expected[:n, n:] = np.eye(n, dtype=np.float32)
        expected[n:, :n] = np.eye(n, dtype=np.float32)
        return bool(np.array_equal(gram, expected))


def execute_stabilizer_program(
    program, batch_size: int, rng: np.random.Generator, noise_model=None
) -> np.ndarray:
    """Run one chunk of trajectories through a compiled stabilizer program.

    Parameters
    ----------
    program:
        A :class:`~repro.simulators.gate.fusion.StabilizerProgram` (immutable,
        shared across chunks and threads).
    batch_size:
        Trajectories in this chunk; all advance through one shared-bit
        tableau.
    rng:
        The chunk's own seeded generator (spawned per chunk by the simulator,
        so seeded counts are bit-identical at every worker count).
    noise_model:
        Optional :class:`~repro.simulators.gate.noise.NoiseModel`; only its
        readout error is consulted here — gate noise was already lowered into
        the program's Pauli channel steps at compile time.

    Returns
    -------
    numpy.ndarray
        ``(batch, bits_width)`` ``uint8`` classical-bit rows, ready for
        :meth:`~repro.results.counts.Counts.from_array`.  Terminal
        measurements are sampled jointly (sequential tableau collapse is the
        chain rule of the joint outcome distribution), honouring the
        implicit-terminal-measurement contract.
    """
    from .fusion import CliffordStep, MeasureStep, PauliChannelStep, ResetStep

    tableau = StabilizerTableau(program.num_qubits, batch_size)
    bits = np.zeros((batch_size, program.bits_width), dtype=np.uint8)
    for step in program.steps:
        if isinstance(step, CliffordStep):
            tableau.apply_gate(step.name, step.qubits)
        elif isinstance(step, PauliChannelStep):
            tableau.apply_depolarizing(step.qubits, step.rate, rng)
        elif isinstance(step, MeasureStep):
            outcomes = tableau.measure(step.qubit, rng)
            if noise_model is not None:
                outcomes = noise_model.apply_readout_error_batched(outcomes, rng)
            bits[:, step.clbit] = outcomes
        elif isinstance(step, ResetStep):
            tableau.reset(step.qubit, rng)
        else:  # pragma: no cover - compiler invariant
            raise SimulationError(f"unknown stabilizer step {type(step).__name__}")
    if program.terminal is not None:
        for qubit, clbit in program.terminal.pairs:
            column = tableau.measure(qubit, rng)
            if noise_model is not None and not program.terminal.implicit:
                column = noise_model.apply_readout_error_batched(column, rng)
            bits[:, clbit] = column
    return bits


def execute_stabilizer_program_segments(program, segments, noise_model=None) -> np.ndarray:
    """Run one merged super-chunk: several jobs' chunks share one tableau.

    *segments* is a sequence of ``(size, generator)`` pairs partitioning the
    batch axis; each pair is one standalone chunk of one job, carrying that
    chunk's own seeded generator.  The shared bit matrices evolve identically
    at any batch width, and every random draw (Pauli channels, random-branch
    measurements, readout flips) is pulled per segment in standalone order —
    so slicing the returned rows back per segment reproduces each job's solo
    chunk bit for bit.

    Returns the concatenated ``(sum(sizes), bits_width)`` ``uint8`` rows in
    segment order.
    """
    from .fusion import CliffordStep, MeasureStep, PauliChannelStep, ResetStep

    total = sum(size for size, _ in segments)
    tableau = StabilizerTableau(program.num_qubits, total)
    bits = np.zeros((total, program.bits_width), dtype=np.uint8)
    for step in program.steps:
        if isinstance(step, CliffordStep):
            tableau.apply_gate(step.name, step.qubits)
        elif isinstance(step, PauliChannelStep):
            tableau.apply_depolarizing(step.qubits, step.rate, None, segments=segments)
        elif isinstance(step, MeasureStep):
            outcomes = tableau.measure(step.qubit, None, segments=segments)
            if noise_model is not None:
                outcomes = noise_model.apply_readout_error_segmented(outcomes, segments)
            bits[:, step.clbit] = outcomes
        elif isinstance(step, ResetStep):
            tableau.reset(step.qubit, None, segments=segments)
        else:  # pragma: no cover - compiler invariant
            raise SimulationError(f"unknown stabilizer step {type(step).__name__}")
    if program.terminal is not None:
        for qubit, clbit in program.terminal.pairs:
            column = tableau.measure(qubit, None, segments=segments)
            if noise_model is not None and not program.terminal.implicit:
                column = noise_model.apply_readout_error_segmented(column, segments)
            bits[:, clbit] = column
    return bits
