"""Canonical complex dtypes: the one module allowed to spell them out.

Everything outside the gate substrate's numeric core must route complex
dtypes through this module (invariant-lint rule ``DTYPE001``) so precision
policy has a single home: compiled matrices and plans are always
:data:`CANONICAL_COMPLEX`, while the batched trajectory engine's state dtype
is a run-time knob (``trajectory_dtype``) resolved by
:func:`complex_dtype`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["CANONICAL_COMPLEX", "BATCH_COMPLEX", "complex_dtype"]

#: Full-precision complex dtype of every compiled matrix, plan and oracle.
CANONICAL_COMPLEX = np.dtype(np.complex128)

#: Default state dtype of the bandwidth-bound batched trajectory engine.
BATCH_COMPLEX = np.dtype(np.complex64)

_NAMES = {
    "complex64": BATCH_COMPLEX,
    "complex128": CANONICAL_COMPLEX,
}


def complex_dtype(spec: Union[str, np.dtype, type]) -> np.dtype:
    """Resolve *spec* to one of the two supported complex dtypes.

    Accepts the exec-policy spellings (``"complex64"`` / ``"complex128"``)
    as well as NumPy dtypes/scalar types; anything else raises
    ``ValueError`` so precision bugs fail loudly at the boundary.
    """
    if isinstance(spec, str):
        try:
            return _NAMES[spec]
        except KeyError:
            raise ValueError(
                f"unsupported complex dtype {spec!r}; expected one of "
                f"{sorted(_NAMES)}"
            ) from None
    resolved = np.dtype(spec)
    if resolved not in (CANONICAL_COMPLEX, BATCH_COMPLEX):
        raise ValueError(
            f"unsupported complex dtype {resolved}; expected one of "
            f"{sorted(_NAMES)}"
        )
    return resolved
