"""Batched state-vector evolution: many trajectories in one tensor.

:class:`BatchedStatevector` carries ``batch_size`` independent n-qubit pure
states in a single C-contiguous tensor of shape ``(2, ..., 2, batch)`` —
qubit ``i`` on axis ``i`` (the same axis convention as the single-shot
:class:`~repro.simulators.gate.statevector.Statevector`) with the shot index
on the **trailing** axis.  Every operation (gate application, projective
measurement, reset, stochastic Pauli/unitary noise) advances *all*
trajectories simultaneously with vectorized NumPy, so the per-shot Python
interpreter cost of the reference trajectory loop is paid once per
instruction instead of once per instruction per shot.

Why batch-last?  Any axis prefix of the tensor reshapes for free into
``(A, 2, B)`` with the shot dimension folded into the *contiguous* tail
``B >= batch``.  Dense single-qubit gates therefore become a single
broadcast GEMM into a pre-allocated scratch buffer (double buffering), and
the structure-aware slice kernels of :mod:`~repro.simulators.gate.kernels`
apply unchanged (qubit ``i`` at axis ``i``, trailing axes broadcast through)
with long contiguous inner runs instead of stride-2 pathologies.

Precision: the tensor dtype is a constructor knob.  ``complex64`` halves the
memory traffic of this bandwidth-bound engine and is ample for sampling
workloads (the default trajectory engine uses it); ``complex128`` (the class
default) matches the single-shot reference exactly.

The RNG consumption pattern differs from the per-shot reference engine
(vector draws instead of scalar draws), so for a given seed the two engines
produce *distribution-equivalent*, not bit-identical, samples.

Threading: an instance owns its tensor and scratch buffer and is **confined
to one thread at a time** — the simulator's ``trajectory_workers`` pool
parallelises across *instances* (one per shot chunk, each with its own
spawned RNG stream), never within one.

Segmented (merged) execution
----------------------------
Every stochastic method (:meth:`BatchedStatevector.measure`,
:meth:`BatchedStatevector.reset`,
:meth:`BatchedStatevector.apply_noise_events`,
:meth:`BatchedStatevector.sample_all`) accepts an optional *segments*
argument: a sequence of ``(size, generator)`` pairs partitioning the batch
axis into contiguous runs that each draw from their **own** generator, in
segment order, with exactly the per-call vector sizes a standalone chunk of
that width would draw.  This is the RNG-partition half of the serving
layer's merged group execution: N coalesced jobs concatenate their
standalone shot chunks on the batch axis (one shared tensor evolution), and
because every per-segment generator sees the same call sequence it would
see standalone, each job's seeded outcomes are bit-identical to running it
alone.  ``segments=None`` (the default) keeps the classic whole-batch
draws from the single *rng* argument.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...core.errors import SimulationError
from .gates import cached_gate_matrix, cached_gate_plan
from .kernels import (
    DEFAULT_NOISE_GEMM_THRESHOLD,
    MatrixPlan,
    apply_diagonal_columns,
    apply_operator_columns,
    apply_plan_inplace,
    build_plan,
    operator_stack,
)
from .statevector import MAX_SIMULATED_QUBITS, Statevector

__all__ = ["BatchedStatevector", "DEFAULT_NOISE_GEMM_THRESHOLD"]


class BatchedStatevector:
    """``batch_size`` trajectories of an n-qubit state, evolved in lock-step."""

    def __init__(self, num_qubits: int, batch_size: int, dtype: np.dtype = np.complex128):
        if num_qubits < 1:
            raise SimulationError("batched statevector needs at least one qubit")
        if num_qubits > MAX_SIMULATED_QUBITS:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the simulator limit of {MAX_SIMULATED_QUBITS}"
            )
        if batch_size < 1:
            raise SimulationError("batch_size must be positive")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise SimulationError(f"unsupported batched dtype {dtype}")
        self.num_qubits = int(num_qubits)
        self.batch_size = int(batch_size)
        self.dim = 1 << num_qubits
        self.dtype = dtype
        self._tensor = np.zeros((2,) * num_qubits + (batch_size,), dtype=dtype)
        self._tensor.reshape(self.dim, batch_size)[0, :] = 1.0
        self._scratch = np.empty_like(self._tensor)

    # -- accessors ---------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Per-trajectory flat amplitudes, shape ``(batch, 2**n)`` (a copy)."""
        return np.ascontiguousarray(self._tensor.reshape(self.dim, self.batch_size).T)

    def extract(self, shot: int) -> Statevector:
        """A copy of one trajectory as a standalone :class:`Statevector`."""
        amplitudes = np.array(
            self._tensor.reshape(self.dim, self.batch_size)[:, shot], dtype=np.complex128
        )
        return Statevector(self.num_qubits, data=amplitudes)

    def norms(self) -> np.ndarray:
        """Per-trajectory 2-norms (should all be ~1)."""
        flat = self._tensor.reshape(self.dim, self.batch_size)
        return np.sqrt((np.abs(flat) ** 2).sum(axis=0, dtype=np.float64))

    # -- gate application -------------------------------------------------------
    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> "BatchedStatevector":
        """Apply a named library gate to every trajectory."""
        return self.apply_matrix(
            cached_gate_matrix(name, params), qubits, plan=cached_gate_plan(name, params)
        )

    def apply_matrix(
        self,
        matrix: np.ndarray,
        qubits: Sequence[int],
        plan: Optional[MatrixPlan] = None,
    ) -> "BatchedStatevector":
        """Apply a ``2^m x 2^m`` unitary to the given qubits (first = MSB)."""
        qubits = [int(q) for q in qubits]
        m = len(qubits)
        if matrix.shape != (1 << m, 1 << m):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {m} target qubits"
            )
        if len(set(qubits)) != m:
            raise SimulationError(f"duplicate qubits in {tuple(qubits)}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise SimulationError(f"qubit {q} out of range")
        if plan is None:
            plan = build_plan(matrix)
        if plan.is_dense_1q:
            self._apply_dense_1q(matrix, qubits[0])
        elif (
            plan.dim == 4
            and not plan.is_diagonal
            and len(plan.rows) >= 3
            and abs(qubits[0] - qubits[1]) == 1
        ):
            self._apply_dense_2q_adjacent(matrix, qubits[0], qubits[1])
        else:
            apply_plan_inplace(self._tensor, plan, qubits)
        return self

    def _apply_dense_1q(self, matrix: np.ndarray, qubit: int) -> None:
        """Dense 2x2 via one broadcast GEMM into the scratch buffer."""
        outer = 1 << qubit
        inner = (1 << (self.num_qubits - qubit - 1)) * self.batch_size
        view = self._tensor.reshape(outer, 2, inner)
        out = self._scratch.reshape(outer, 2, inner)
        np.matmul(matrix.astype(self.dtype, copy=False), view, out=out)
        self._tensor, self._scratch = self._scratch, self._tensor

    def _apply_dense_2q_adjacent(self, matrix: np.ndarray, qubit_a: int, qubit_b: int) -> None:
        """Dense 4x4 on axis-adjacent qubits via one broadcast GEMM.

        The two qubit axes are contiguous, so they reshape (for free) into a
        single length-4 axis.  When the gate's first qubit is the *later*
        axis, the matrix is conjugated by SWAP to match the axis bit order.
        """
        if qubit_a > qubit_b:
            swap = cached_gate_matrix("swap")
            matrix = swap @ matrix @ swap
        lo = min(qubit_a, qubit_b)
        outer = 1 << lo
        inner = (1 << (self.num_qubits - lo - 2)) * self.batch_size
        view = self._tensor.reshape(outer, 4, inner)
        out = self._scratch.reshape(outer, 4, inner)
        np.matmul(matrix.astype(self.dtype, copy=False), view, out=out)
        self._tensor, self._scratch = self._scratch, self._tensor

    # -- parameter-sweep (per-column) operations --------------------------------
    def fill_uniform(self) -> "BatchedStatevector":
        """Set every trajectory to the uniform superposition ``|+>^n``.

        One assignment instead of ``n`` Hadamard traversals — the state-
        preparation step of a batched variational sweep, where every column
        starts from the same ``PREP_UNIFORM`` state.
        """
        self._tensor[...] = self.dim ** -0.5
        return self

    def apply_diagonal_columns(
        self, diag: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedStatevector":
        """Apply a **per-column** diagonal gate to the given qubits.

        *diag* has shape ``(2**m, batch)``: column ``c`` is the diagonal of
        the gate applied to trajectory ``c`` (bit ``p`` of the row index
        addresses ``qubits[p]``, first = MSB).  This is how a parameter-grid
        sweep evolves a *different* ``rz``/``rzz`` angle on every column in
        one broadcast multiply; for column-independent diagonals use
        :meth:`apply_matrix` with a diagonal plan instead.
        """
        qubits = [int(q) for q in qubits]
        m = len(qubits)
        diag = np.asarray(diag, dtype=self.dtype)
        if diag.shape != (1 << m, self.batch_size):
            raise SimulationError(
                f"column diagonal shape {diag.shape} does not match "
                f"({1 << m}, {self.batch_size})"
            )
        if len(set(qubits)) != m:
            raise SimulationError(f"duplicate qubits in {tuple(qubits)}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise SimulationError(f"qubit {q} out of range")
        apply_diagonal_columns(self._tensor, diag, qubits)
        return self

    def apply_1q_columns(self, matrices: np.ndarray, qubit: int) -> "BatchedStatevector":
        """Apply a **per-column** dense 2x2 gate to *qubit*.

        *matrices* has shape ``(2, 2, batch)``: slice ``[:, :, c]`` is the
        gate applied to trajectory ``c``.  Used by parameter sweeps for
        non-diagonal rotations (an ``rx`` mixer with a different angle per
        column).  Implemented as broadcast elementwise multiplies/adds —
        never a GEMM — so results are bit-identical for every chunking of
        the batch axis (BLAS kernels may round differently per shape;
        elementwise IEEE arithmetic cannot).
        """
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        matrices = np.asarray(matrices, dtype=self.dtype)
        if matrices.shape != (2, 2, self.batch_size):
            raise SimulationError(
                f"column matrices shape {matrices.shape} does not match "
                f"(2, 2, {self.batch_size})"
            )
        view = self._split_view(qubit)
        v0, v1 = view[:, 0], view[:, 1]
        new0 = matrices[0, 0] * v0 + matrices[0, 1] * v1
        new1 = matrices[1, 0] * v0 + matrices[1, 1] * v1
        view[:, 0] = new0
        view[:, 1] = new1
        return self

    @staticmethod
    def _marginal_columns(probs: np.ndarray, axes: Sequence[int]) -> np.ndarray:
        """Sum the given axes out of *probs* one axis at a time.

        A fused multi-axis reduction lets NumPy pick an addition pairing
        that varies with the trailing batch extent (a 1-ulp wobble between
        chunk sizes); reducing axis by axis keeps every addition a
        sequential slice-add whose order is independent of the batch width,
        so per-column marginals are bit-identical under any chunking.
        """
        for axis in sorted(axes, reverse=True):
            probs = probs.sum(axis=axis, dtype=np.float64)
        return probs

    def probabilities_columns(self) -> np.ndarray:
        """Elementwise ``|amplitude|^2``, shape ``(2, ..., 2, batch)`` (a copy).

        Callers evaluating many observables on one state (e.g. every edge of
        an Ising energy) should compute this once and pass it to the
        ``expectation_*_columns`` methods, instead of paying one full-tensor
        traversal per term.
        """
        return np.abs(self._tensor) ** 2

    def expectation_z_columns(
        self, qubit: int, probs: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-trajectory ``<Z>`` on *qubit* as a float64 ``(batch,)`` array.

        Pass a precomputed :meth:`probabilities_columns` tensor as *probs*
        to share one traversal across many observable terms.
        """
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        if probs is None:
            probs = self.probabilities_columns()
        axes = tuple(a for a in range(self.num_qubits) if a != qubit)
        marginal = self._marginal_columns(probs, axes)
        return marginal[0] - marginal[1]

    def expectation_zz_columns(
        self, qubit_a: int, qubit_b: int, probs: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-trajectory ``<Z_a Z_b>`` as a float64 ``(batch,)`` array.

        Pass a precomputed :meth:`probabilities_columns` tensor as *probs*
        to share one traversal across many observable terms.
        """
        for q in (qubit_a, qubit_b):
            if not 0 <= q < self.num_qubits:
                raise SimulationError(f"qubit {q} out of range")
        if qubit_a == qubit_b:
            return np.ones(self.batch_size, dtype=np.float64)
        if probs is None:
            probs = self.probabilities_columns()
        axes = tuple(
            a for a in range(self.num_qubits) if a not in (qubit_a, qubit_b)
        )
        marginal = self._marginal_columns(probs, axes)
        # Axes survive in ascending order; the ZZ sign pattern is symmetric.
        return marginal[0, 0] + marginal[1, 1] - marginal[0, 1] - marginal[1, 0]

    # -- measurement / reset ----------------------------------------------------
    def _split_view(self, qubit: int) -> np.ndarray:
        """Contiguous reshape isolating *qubit*: ``(A, 2, B, batch)``."""
        outer = 1 << qubit
        inner = 1 << (self.num_qubits - qubit - 1)
        return self._tensor.reshape(outer, 2, inner, self.batch_size)

    def probability_one(self, qubit: int) -> np.ndarray:
        """Per-trajectory marginal probability of measuring *qubit* as 1."""
        view = self._split_view(qubit)
        p1 = (np.abs(view[:, 1]) ** 2).sum(axis=(0, 1), dtype=np.float64)
        return np.clip(p1, 0.0, 1.0)

    # -- segmented (merged-run) draw helpers -------------------------------------
    def _segment_uniform(self, rng, segments) -> np.ndarray:
        """One uniform vector over the batch: whole-batch or per-segment draws.

        With *segments* ``None`` this is the classic ``rng.random(batch)``
        call; otherwise each ``(size, generator)`` segment draws its own
        ``generator.random(size)`` — the identical call a standalone chunk
        of that width would make — and the draws concatenate in segment
        order.
        """
        if segments is None:
            return rng.random(self.batch_size)
        return np.concatenate([gen.random(size) for size, gen in segments])

    def _draw_noise_event(self, event, rng, segments):
        """One event's ``(struck, choice)`` draw with per-segment consumption.

        Preserves the standalone consumption pattern *per generator*: one
        uniform strike vector always, one integer operator-choice vector
        only when that generator's sub-batch was struck at all.  Unstruck
        segments contribute zero placeholders to *choice* (never read —
        application masks on *struck*).  Returns ``(struck, None)`` when no
        trajectory was struck.
        """
        if segments is None:
            struck = rng.random(self.batch_size) < event.rate
            if not struck.any():
                return struck, None
            return struck, rng.integers(0, len(event.operators), size=self.batch_size)
        parts = []
        for size, gen in segments:
            sub = gen.random(size) < event.rate
            if sub.any():
                choice = gen.integers(0, len(event.operators), size=size)
            else:
                choice = np.zeros(size, dtype=np.int64)
            parts.append((sub, choice))
        struck = np.concatenate([sub for sub, _ in parts])
        if not struck.any():
            return struck, None
        return struck, np.concatenate([choice for _, choice in parts])

    def measure(
        self, qubit: int, rng: Optional[np.random.Generator], segments=None
    ) -> np.ndarray:
        """Projectively measure *qubit* on every trajectory (collapse in place).

        Returns a ``(batch,)`` uint8 array of outcomes.  Collapse and
        renormalisation are fused into one broadcast multiply per shot by
        ``keep / sqrt(P(outcome))``.  *segments* switches the outcome draw
        to the per-segment generators of a merged run (see the module
        docstring); collapse itself is per-column arithmetic either way.
        """
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        p1 = self.probability_one(qubit)
        outcomes = (self._segment_uniform(rng, segments) < p1).astype(np.uint8)
        chosen = np.where(outcomes, p1, 1.0 - p1)
        if np.any(chosen <= 0.0):
            raise SimulationError("measurement produced a zero-norm state")
        scale = np.zeros((2, self.batch_size), dtype=np.float64)
        scale[outcomes, np.arange(self.batch_size)] = 1.0 / np.sqrt(chosen)
        self._split_view(qubit)[...] *= scale.reshape(1, 2, 1, self.batch_size)
        return outcomes

    def reset(
        self, qubit: int, rng: Optional[np.random.Generator], segments=None
    ) -> np.ndarray:
        """Measure *qubit*, then flip the trajectories that read 1 back to 0.

        The conditional flip streams as two broadcast multiplies: after the
        measurement collapse, outcome-1 shots have an empty ``|0>`` branch,
        so ``v0 += o * v1; v1 *= 1 - o`` moves their amplitude down without
        gathering columns.  *segments* forwards to :meth:`measure` for
        merged runs.
        """
        outcomes = self.measure(qubit, rng, segments=segments)
        if outcomes.any():
            view = self._split_view(qubit)
            # Match the tensor's precision (float32 for complex64, float64
            # for complex128) so no lower-precision operand enters the
            # complex128 path.  The weights are exact 0/1 either way.
            real_dtype = np.float32 if self.dtype == np.dtype(np.complex64) else np.float64
            weights = outcomes.astype(real_dtype).reshape(1, 1, self.batch_size)
            view[:, 0] += weights * view[:, 1]
            view[:, 1] *= 1.0 - weights
        return outcomes

    # -- per-shot noise ----------------------------------------------------------
    def apply_noise_events(
        self,
        events,
        rng: Optional[np.random.Generator],
        gemm_threshold: Optional[float] = None,
        segments=None,
    ) -> None:
        """Sample and apply a step's depolarizing-error events in order.

        Each event independently strikes every trajectory with its rate and
        draws one of its equiprobable operators (a ``(matrix, plan)`` pair
        acting on ``event.qubits``).  Two execution strategies produce bit-identical
        amplitudes from identical RNG draws:

        * **slice path** (low rates) — because one shot's amplitudes form a
          *strided column* of the batch-last tensor, all struck columns of
          the step are gathered into a small contiguous buffer *once*, every
          event transforms its own (tiny, compact) sub-selection in program
          order with the ordinary kernels, and the union is scattered back —
          two strided passes total instead of two per event.
        * **GEMM path** (high rates) — each event gathers one operator per
          column out of its identity-first stack (identity for unstruck
          shots) and applies them all in a single
          :func:`~repro.simulators.gate.kernels.apply_operator_columns`
          broadcast, trading per-branch masked gathers for one full-tensor
          traversal per event, which wins once most shots are struck.

        *gemm_threshold* selects the path: when the step's expected number
        of sampled operators in this chunk (``batch x sum(rates)``) reaches
        it, the GEMM path runs; ``None`` (the default) always keeps the
        slice path.  Seeded counts never depend on the choice.  *segments*
        switches every draw to the per-segment generators of a merged run
        (one strike vector per event per segment, a choice vector only for
        segments that were struck — the standalone consumption pattern);
        application on the concatenated batch is per-column either way.
        """
        if gemm_threshold is not None and events:
            expected = self.batch_size * sum(event.rate for event in events)
            if expected >= gemm_threshold:
                self._apply_noise_events_gemm(events, rng, segments)
                return
        draws = []
        union: Optional[np.ndarray] = None
        for event in events:
            struck, choice = self._draw_noise_event(event, rng, segments)
            if choice is None:
                continue
            draws.append((event, struck, choice))
            union = struck.copy() if union is None else (union | struck)
        if union is None:
            return
        selected = np.flatnonzero(union)
        flat = self._tensor.reshape(self.dim, self.batch_size)
        compact = flat[:, selected]  # (dim, nsel) gather
        for event, struck, choice in draws:
            sub = struck[selected]
            branch = choice[selected]
            for k in range(len(event.operators)):
                pick = sub & (branch == k)
                if not pick.any():
                    continue
                picked = compact[:, pick]
                tensor = picked.reshape((2,) * self.num_qubits + (-1,))
                apply_plan_inplace(tensor, event.operators[k][1], event.qubits)
                compact[:, pick] = picked
        flat[:, selected] = compact  # scatter back

    def _apply_noise_events_gemm(
        self, events, rng: Optional[np.random.Generator], segments=None
    ) -> None:
        """High-rate strategy: one per-column operator GEMM per struck event.

        Consumes the RNG identically to the slice path (one uniform vector
        per event; one integer vector only when the event struck at all —
        per segment in merged runs), so a seeded run samples the same
        errors on the same shots regardless of which path executed.
        """
        for event in events:
            struck, choice = self._draw_noise_event(event, rng, segments)
            if choice is None:
                continue
            stack = event.stack
            if stack is None or stack.dtype != self.dtype:
                # Program compiled without a trajectory dtype: build the
                # stack on the fly (same helper as the compiler, so the
                # values match a precompiled stack bit for bit).
                stack = operator_stack(event.operators, self.dtype)
            # Column c applies operators[choice[c]] when struck, identity
            # otherwise — the identity-first stack makes that one gather.
            selection = np.where(struck, choice + 1, 0)
            apply_operator_columns(self._tensor, stack[selection], event.qubits)

    # -- terminal sampling ------------------------------------------------------
    def sample_all(
        self, rng: Optional[np.random.Generator], segments=None
    ) -> np.ndarray:
        """Draw one full computational-basis outcome per trajectory.

        Returns a ``(batch,)`` array of flat basis indices (qubit 0 is the
        most significant bit), sampled by per-shot cumulative-probability
        inversion.  The state is *not* collapsed.  *segments* draws each
        merged segment's uniforms from its own generator; the inversion is
        per-column arithmetic, so per-segment outcomes match a standalone
        chunk bit for bit.
        """
        probs = np.abs(self._tensor.reshape(self.dim, self.batch_size)) ** 2
        shots = np.arange(self.batch_size)
        if self.dim <= 64:
            cumulative = np.cumsum(probs, axis=0, dtype=np.float64)
            draws = self._segment_uniform(rng, segments) * cumulative[-1]
            return np.minimum((cumulative < draws[None, :]).sum(axis=0), self.dim - 1)
        # Hierarchical inversion: a full cumulative sum over the strided
        # basis axis costs one cache miss per element.  Instead reduce to
        # per-block sums, pick a block per shot, then resolve the offset
        # inside the (tiny) gathered block.
        blocks = 64
        width = self.dim // blocks
        block_sums = probs.reshape(blocks, width, self.batch_size).sum(axis=1, dtype=np.float64)
        block_cum = np.cumsum(block_sums, axis=0)
        draws = self._segment_uniform(rng, segments) * block_cum[-1]
        block = np.minimum((block_cum < draws[None, :]).sum(axis=0), blocks - 1)
        previous = np.where(block > 0, block_cum[np.maximum(block - 1, 0), shots], 0.0)
        residual = draws - previous
        inside = probs.reshape(blocks, width, self.batch_size)[block, :, shots]  # (batch, width)
        inside_cum = np.cumsum(inside, axis=1, dtype=np.float64)
        offset = np.minimum((inside_cum < residual[:, None]).sum(axis=1), width - 1)
        return block * width + offset
