"""Persistent process pool for trajectory chunk execution.

The thread-pool chunk executor in :mod:`~repro.simulators.gate.statevector`
is break-even on CPython — the per-chunk Python bookkeeping between the
GIL-releasing NumPy kernels serialises the workers — so real scale-out needs
process-level parallelism.  This module owns that seam:

* a **persistent** ``ProcessPoolExecutor`` (forkserver start method where
  available, spawn otherwise), created on first use and reused across runs
  and jobs, so every worker keeps warm compile caches — the parent ships a
  circuit's :class:`~repro.simulators.gate.fusion.ParametricTemplate` once
  per structure and the workers only re-bind parameters afterwards;
* **chunk-grouped dispatch**: the parent's ``max_batch_memory`` chunk
  decomposition and per-chunk ``SeedSequence`` streams are computed exactly
  as on the thread path, then the chunks are dealt round-robin into at most
  ``workers`` groups.  Chunk ``i`` always consumes stream ``i`` and results
  reassemble in chunk order, so seeded counts are **bit-identical** to the
  thread executor (and to serial execution) at every worker count;
* **worker-crash recovery**: a dead worker breaks the whole
  ``ProcessPoolExecutor`` (every unfinished future raises
  ``BrokenProcessPool``), so the executors collect what completed, retire
  the broken pool, build a fresh one, and re-dispatch **only the lost chunk
  groups** — each group still carrying its original ``(chunk_id, size,
  stream)`` triples, so the recovered run re-draws from the same
  ``SeedSequence`` streams and seeded counts stay bit-identical to an
  uncrashed run.  Recovery is budgeted per run
  (:data:`MAX_POOL_REBUILDS`); exhaustion raises the transient
  :class:`~repro.core.errors.WorkerCrashError` for the serving layer's
  retry/degradation ladder.  Reassembly is validated: a chunk slot that was
  never filled raises the typed
  :class:`~repro.core.errors.ChunkReassemblyError` instead of passing
  ``None`` rows downstream.

The pool is generation-tagged and **leased**: callers acquire the current
generation, submit and collect against their leased executor, and release
it afterwards.  Growth (a request for more workers) starts a new generation
immediately but only shuts the old one down once its last lease is
released, so a concurrent in-flight run can never be stranded mid-collect.
A request for fewer workers reuses the existing (larger) generation —
effective parallelism is bounded by the group count, and shrinking would
throw away the workers' warm caches.  ``fork`` is deliberately not used
even where available: the workers must not inherit the parent's BLAS
thread pools or lock state mid-operation.

Deterministic fault injection (:mod:`~repro.simulators.gate.faults`) rides
the task payloads: a :class:`~repro.simulators.gate.faults.FaultPlan` fires
inside the worker immediately before a chunk executes, keyed on
``(chunk_id, attempt)`` — re-dispatched groups carry ``attempt + 1`` so an
injected crash fires once and the recovery runs clean.  Without a plan the
hot path pays one ``is None`` check per chunk.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.errors import ChunkReassemblyError, WorkerCrashError

__all__ = [
    "MAX_POOL_REBUILDS",
    "get_worker_pool",
    "shutdown_worker_pool",
    "worker_pool_info",
    "executor_health",
    "run_trajectory_chunks",
    "run_stabilizer_chunks",
    "run_merged_trajectory_chunks",
    "run_merged_stabilizer_chunks",
]

#: Pool rebuilds allowed within one ``run_*_chunks`` call before giving up
#: with :class:`WorkerCrashError`.  Two rebuilds tolerate an injected crash
#: plus one genuine flake without letting a deterministically crashing
#: workload spin forever.
MAX_POOL_REBUILDS = 2


class _PoolGeneration:
    """One generation of the worker pool: executor + lease bookkeeping."""

    def __init__(self, executor: ProcessPoolExecutor, workers: int, generation: int):
        self.executor = executor
        self.workers = workers
        self.generation = generation
        self.leases = 0
        self.retired = False


_CURRENT: Optional[_PoolGeneration] = None
_RETIRED: List[_PoolGeneration] = []
_GENERATION = 0
_POOL_LOCK = threading.Lock()
_HEALTH = {"pool_rebuilds": 0, "groups_redispatched": 0, "generations_retired": 0}


def _start_method() -> str:
    """Forkserver where the platform offers it (Linux), spawn otherwise."""
    return (
        "forkserver"
        if "forkserver" in mp.get_all_start_methods()
        else "spawn"
    )


def _new_generation(workers: int) -> _PoolGeneration:
    """Create a fresh pool generation (caller holds ``_POOL_LOCK``)."""
    global _GENERATION
    context = mp.get_context(_start_method())
    if hasattr(context, "set_forkserver_preload"):
        # Fork workers from a server that already imported this package (and
        # with it NumPy): per-worker startup drops from a full interpreter +
        # import chain to a fork.
        context.set_forkserver_preload(["repro.simulators.gate.procpool"])
    _GENERATION += 1
    return _PoolGeneration(
        ProcessPoolExecutor(max_workers=workers, mp_context=context),
        workers,
        _GENERATION,
    )


def _retire_locked(generation: _PoolGeneration) -> Optional[ProcessPoolExecutor]:
    """Mark *generation* retired; return its executor if it can shut down now."""
    generation.retired = True
    _HEALTH["generations_retired"] += 1
    if generation.leases == 0:
        return generation.executor
    _RETIRED.append(generation)
    return None


def _acquire_pool(workers: int) -> _PoolGeneration:
    """Lease the current pool generation, growing it if *workers* exceeds it.

    The returned generation's executor stays valid — even across a
    concurrent grow or crash-triggered replacement — until the matching
    :func:`_release_pool`.
    """
    global _CURRENT
    if workers < 1:
        raise ValueError(f"worker pool size must be >= 1, got {workers!r}")
    to_shutdown: Optional[ProcessPoolExecutor] = None
    with _POOL_LOCK:
        if _CURRENT is None or workers > _CURRENT.workers:
            if _CURRENT is not None:
                to_shutdown = _retire_locked(_CURRENT)
            _CURRENT = _new_generation(workers)
        _CURRENT.leases += 1
        handle = _CURRENT
    if to_shutdown is not None:
        to_shutdown.shutdown(wait=True)
    return handle


def _release_pool(handle: _PoolGeneration) -> None:
    """Release one lease; shut a retired generation down once it drains."""
    to_shutdown: Optional[ProcessPoolExecutor] = None
    with _POOL_LOCK:
        handle.leases -= 1
        if handle.retired and handle.leases == 0:
            if handle in _RETIRED:
                _RETIRED.remove(handle)
            to_shutdown = handle.executor
    if to_shutdown is not None:
        to_shutdown.shutdown(wait=True)


def _replace_broken(handle: _PoolGeneration) -> None:
    """Retire a broken generation so the next acquire builds a fresh pool.

    Idempotent across the threads that may observe the same breakage: only
    the first caller retires the generation and bumps the rebuild counter.
    """
    global _CURRENT
    with _POOL_LOCK:
        if handle.retired:
            return
        _HEALTH["pool_rebuilds"] += 1
        # A broken executor cannot run queued futures, so it is safe to shut
        # down immediately regardless of leases: shutdown on a broken pool
        # only reaps dead processes.
        handle.retired = True
        _HEALTH["generations_retired"] += 1
        if _CURRENT is handle:
            _CURRENT = None
    handle.executor.shutdown(wait=True)


def get_worker_pool(workers: int) -> ProcessPoolExecutor:
    """Return the current persistent pool, growing it if *workers* exceeds it.

    Introspective/legacy accessor: no lease is taken, so the returned
    executor may be retired by a later grow.  The chunk executors use the
    leased :func:`_acquire_pool` / :func:`_release_pool` pair instead, which
    guarantees the executor outlives the caller's in-flight futures.
    """
    handle = _acquire_pool(workers)
    _release_pool(handle)
    return handle.executor


def shutdown_worker_pool() -> None:
    """Tear every generation down (test isolation / interpreter exit)."""
    global _CURRENT
    with _POOL_LOCK:
        doomed = [gen.executor for gen in _RETIRED]
        if _CURRENT is not None:
            doomed.append(_CURRENT.executor)
        _RETIRED.clear()
        _CURRENT = None
    for executor in doomed:
        executor.shutdown(wait=True)


def worker_pool_info() -> Dict[str, int]:
    """Snapshot of the pool state: ``workers`` and ``started``."""
    with _POOL_LOCK:
        return {
            "workers": 0 if _CURRENT is None else _CURRENT.workers,
            "started": int(_CURRENT is not None),
        }


def executor_health() -> Dict[str, int]:
    """Process-lifetime recovery counters.

    ``pool_rebuilds`` (broken pools replaced), ``groups_redispatched``
    (chunk groups re-executed after a crash), ``generations_retired``
    (grow-driven and crash-driven retirements).  Monotonic; serving-level
    per-job accounting uses the per-run recovery dicts returned by the
    ``run_*_chunks`` executors instead.
    """
    with _POOL_LOCK:
        return dict(_HEALTH)


atexit.register(shutdown_worker_pool)


def _deal_chunks(
    sizes: Sequence[int], streams: Sequence[Any], workers: int
) -> List[List[Tuple[int, int, Any]]]:
    """Round-robin ``(chunk_id, size, stream)`` triples into worker groups.

    The grouping only decides *where* a chunk runs; chunk ``i`` carries
    stream ``i`` regardless, so the decomposition-to-stream mapping — the
    bit-identity contract — never depends on the worker count.
    """
    groups: List[List[Tuple[int, int, Any]]] = [[] for _ in range(workers)]
    for chunk_id, (size, stream) in enumerate(zip(sizes, streams)):
        groups[chunk_id % workers].append((chunk_id, size, stream))
    return [group for group in groups if group]


def _require_complete(rows: Sequence[Optional[np.ndarray]]) -> None:
    """Typed guard: every chunk slot must have been filled by some group."""
    missing = [chunk_id for chunk_id, bits in enumerate(rows) if bits is None]
    if missing:
        raise ChunkReassemblyError(missing, len(rows))


def _run_groups_with_recovery(pending, submit_group, workers: int):
    """Shared crash-recovery driver for both chunk executors.

    *pending* is a list of ``(group, attempt)`` pairs; *submit_group* maps
    a leased executor plus one pair to a future.  Runs every group to
    completion, rebuilding the pool and re-dispatching only the lost groups
    (``attempt + 1``) on breakage, up to :data:`MAX_POOL_REBUILDS` rebuilds
    per run.  Returns ``(results, recovery)``: the completed groups' return
    values (order unspecified — callers reassemble by chunk id) and the
    per-run recovery counters.
    """
    recovery = {"pool_rebuilds": 0, "groups_redispatched": 0}
    results = []
    while pending:
        handle = _acquire_pool(workers)
        broken = False
        lost: List[Tuple[Any, int]] = []
        try:
            submitted: List[Tuple[Any, Any, int]] = []
            for group, attempt in pending:
                try:
                    future = submit_group(handle.executor, group, attempt)
                except BrokenExecutor:
                    broken = True
                    lost.append((group, attempt + 1))
                    continue
                submitted.append((future, group, attempt))
            for future, group, attempt in submitted:
                try:
                    results.append(future.result())
                except BrokenExecutor:
                    broken = True
                    lost.append((group, attempt + 1))
        finally:
            if broken:
                _replace_broken(handle)
            _release_pool(handle)
        if broken:
            recovery["pool_rebuilds"] += 1
            recovery["groups_redispatched"] += len(lost)
            with _POOL_LOCK:
                _HEALTH["groups_redispatched"] += len(lost)
            if recovery["pool_rebuilds"] > MAX_POOL_REBUILDS:
                raise WorkerCrashError(
                    f"worker pool broke {recovery['pool_rebuilds']} times in one "
                    f"run (budget {MAX_POOL_REBUILDS} rebuilds); "
                    f"{len(lost)} chunk groups unrecovered",
                    rebuilds=recovery["pool_rebuilds"],
                )
        pending = lost
    return results, recovery


def _trajectory_task(payload: tuple):
    """Worker-side entry: bind (or adopt) the program, run a chunk group.

    Returns ``(rows, state_data, state_index)`` where *rows* is a list of
    ``(chunk_id, bits)`` and the state fields are populated only by the
    group holding the globally last chunk (the result-statevector contract).
    """
    (
        circuit,
        template,
        noise_model,
        dtype_str,
        gemm_threshold,
        blas_threads,
        chunks,
        state_chunk,
        fault_plan,
        attempt,
    ) = payload
    from .fusion import adopt_parametric_template, compile_trajectory_program_cached
    from .statevector import execute_program_chunk
    from .threads import limit_blas_threads

    if template is not None:
        adopt_parametric_template(circuit, template)
    dtype = np.dtype(dtype_str)
    # Mirror the parent compile exactly: a noiseless model compiles as None
    # but still reaches execution (its zero-rate readout path consumes the
    # same RNG draws as on the thread executor).
    compile_noise = noise_model
    if compile_noise is not None and compile_noise.is_noiseless:
        compile_noise = None
    program = compile_trajectory_program_cached(circuit, compile_noise, dtype=dtype)
    guard = (
        limit_blas_threads(blas_threads) if blas_threads is not None else nullcontext()
    )
    rows: List[Tuple[int, np.ndarray]] = []
    state_data: Optional[np.ndarray] = None
    state_index: Optional[int] = None
    with guard:
        for chunk_id, size, stream in chunks:
            if fault_plan is not None:
                fault_plan.fire(chunk_id, attempt, executor="process")
            bits, state, last_index = execute_program_chunk(
                program,
                size,
                np.random.default_rng(stream),
                noise_model=noise_model,
                dtype=dtype,
                gemm_threshold=gemm_threshold,
            )
            if chunk_id == state_chunk:
                state_data = state.extract(-1).data
                state_index = last_index
            rows.append((chunk_id, bits))
    return rows, state_data, state_index


def run_trajectory_chunks(
    circuit,
    template,
    noise_model,
    sizes: Sequence[int],
    streams: Sequence[Any],
    *,
    workers: int,
    dtype,
    gemm_threshold,
    blas_threads: Optional[int] = None,
    fault_plan=None,
) -> Tuple[List[np.ndarray], np.ndarray, Optional[int], Dict[str, int]]:
    """Execute a batched-engine chunk decomposition on the process pool.

    Returns ``(bits_rows, final_state_data, last_index, recovery)``: the
    per-chunk bit rows in chunk order, the last chunk's final
    single-trajectory state amplitudes and its sampled terminal index (for
    the parent's terminal collapse), plus the run's crash-recovery counters
    (``pool_rebuilds`` / ``groups_redispatched``, both 0 on a clean run).
    """
    workers = max(1, min(int(workers), len(sizes)))
    state_chunk = len(sizes) - 1
    dtype_str = str(np.dtype(dtype))

    def submit_group(executor, group, attempt):
        return executor.submit(
            _trajectory_task,
            (
                circuit,
                template,
                noise_model,
                dtype_str,
                gemm_threshold,
                blas_threads,
                group,
                state_chunk,
                fault_plan,
                attempt,
            ),
        )

    pending = [(group, 0) for group in _deal_chunks(sizes, streams, workers)]
    results, recovery = _run_groups_with_recovery(pending, submit_group, workers)
    bits_rows: List[Optional[np.ndarray]] = [None] * len(sizes)
    state_data: Optional[np.ndarray] = None
    last_index: Optional[int] = None
    for rows, data, index in results:
        for chunk_id, bits in rows:
            bits_rows[chunk_id] = bits
        if data is not None:
            state_data = data
            last_index = index
    _require_complete(bits_rows)
    return bits_rows, state_data, last_index, recovery


def _deal_merged_chunks(
    merged_chunks: Sequence[Sequence[tuple]], workers: int
) -> List[List[Tuple[int, Sequence[tuple]]]]:
    """Round-robin ``(merged_id, segments)`` pairs into worker groups.

    Mirrors :func:`_deal_chunks` for merged super-chunks: the grouping only
    decides *where* a super-chunk runs; every segment keeps its own
    ``(job, chunk_id, size, stream)`` identity, so dealing, crash recovery
    and reassembly stay bit-identical per job at every worker count.
    """
    groups: List[List[Tuple[int, Sequence[tuple]]]] = [[] for _ in range(workers)]
    for merged_id, segs in enumerate(merged_chunks):
        groups[merged_id % workers].append((merged_id, segs))
    return [group for group in groups if group]


def _require_merged_complete(
    rows: Sequence[tuple], merged_chunks: Sequence[Sequence[tuple]]
) -> None:
    """Typed guard: every ``(job, chunk_id)`` segment slot must be filled."""
    expected = {
        (job, chunk_id)
        for segs in merged_chunks
        for job, chunk_id, _, _ in segs
    }
    got = {(job, chunk_id) for job, chunk_id, _ in rows}
    missing = sorted(expected - got)
    if missing:
        raise ChunkReassemblyError(missing, len(expected))


def _merged_trajectory_task(payload: tuple) -> List[Tuple[int, int, np.ndarray]]:
    """Worker-side entry: run a group of merged super-chunks.

    Each super-chunk concatenates several jobs' standalone chunks on the
    batch axis; the worker rebuilds each segment's generator from its
    original ``SeedSequence`` stream, runs the shared evolution once, and
    slices the bit rows back per segment.  Returns ``(job, chunk_id, bits)``
    rows — merged runs carry no statevector.
    """
    (
        circuit,
        template,
        noise_model,
        dtype_str,
        gemm_threshold,
        blas_threads,
        chunks,
        fault_plan,
        attempt,
    ) = payload
    from .fusion import adopt_parametric_template, compile_trajectory_program_cached
    from .statevector import execute_program_segments
    from .threads import limit_blas_threads

    if template is not None:
        adopt_parametric_template(circuit, template)
    dtype = np.dtype(dtype_str)
    compile_noise = noise_model
    if compile_noise is not None and compile_noise.is_noiseless:
        compile_noise = None
    program = compile_trajectory_program_cached(circuit, compile_noise, dtype=dtype)
    guard = (
        limit_blas_threads(blas_threads) if blas_threads is not None else nullcontext()
    )
    rows: List[Tuple[int, int, np.ndarray]] = []
    with guard:
        for merged_id, segs in chunks:
            if fault_plan is not None:
                fault_plan.fire(merged_id, attempt, executor="process")
            segments = [
                (size, np.random.default_rng(stream)) for _, _, size, stream in segs
            ]
            bits = execute_program_segments(
                program,
                segments,
                noise_model=noise_model,
                dtype=dtype,
                gemm_threshold=gemm_threshold,
            )
            offset = 0
            for job, chunk_id, size, _ in segs:
                rows.append((job, chunk_id, bits[offset : offset + size]))
                offset += size
    return rows


def run_merged_trajectory_chunks(
    circuit,
    template,
    noise_model,
    merged_chunks: Sequence[Sequence[tuple]],
    *,
    workers: int,
    dtype,
    gemm_threshold,
    blas_threads: Optional[int] = None,
    fault_plan=None,
) -> Tuple[List[Tuple[int, int, np.ndarray]], Dict[str, int]]:
    """Execute a merged super-chunk plan on the process pool.

    *merged_chunks* is a list of super-chunks, each a list of
    ``(job, chunk_id, size, stream)`` segments.  Crash recovery re-dispatches
    only the lost super-chunks with their original streams (``attempt + 1``),
    so recovered per-job counts are bit-identical to an uncrashed run.
    Returns ``(rows, recovery)``: the flattened ``(job, chunk_id, bits)``
    rows (completeness-checked per segment slot) and the run's recovery
    counters.
    """
    workers = max(1, min(int(workers), len(merged_chunks)))
    dtype_str = str(np.dtype(dtype))

    def submit_group(executor, group, attempt):
        return executor.submit(
            _merged_trajectory_task,
            (
                circuit,
                template,
                noise_model,
                dtype_str,
                gemm_threshold,
                blas_threads,
                group,
                fault_plan,
                attempt,
            ),
        )

    pending = [(group, 0) for group in _deal_merged_chunks(merged_chunks, workers)]
    results, recovery = _run_groups_with_recovery(pending, submit_group, workers)
    rows = [row for group_rows in results for row in group_rows]
    _require_merged_complete(rows, merged_chunks)
    return rows, recovery


def _merged_stabilizer_task(payload: tuple) -> List[Tuple[int, int, np.ndarray]]:
    """Worker-side entry for merged tableau super-chunks (pre-compiled program)."""
    program, noise_model, chunks, fault_plan, attempt = payload
    from .stabilizer import execute_stabilizer_program_segments

    rows: List[Tuple[int, int, np.ndarray]] = []
    for merged_id, segs in chunks:
        if fault_plan is not None:
            fault_plan.fire(merged_id, attempt, executor="process")
        segments = [
            (size, np.random.default_rng(stream)) for _, _, size, stream in segs
        ]
        bits = execute_stabilizer_program_segments(program, segments, noise_model)
        offset = 0
        for job, chunk_id, size, _ in segs:
            rows.append((job, chunk_id, bits[offset : offset + size]))
            offset += size
    return rows


def run_merged_stabilizer_chunks(
    program,
    noise_model,
    merged_chunks: Sequence[Sequence[tuple]],
    *,
    workers: int,
    fault_plan=None,
) -> Tuple[List[Tuple[int, int, np.ndarray]], Dict[str, int]]:
    """Execute a merged stabilizer super-chunk plan on the process pool.

    The stabilizer analogue of :func:`run_merged_trajectory_chunks`; the
    compiled program ships directly (parameter-free, cheap to pickle).
    """
    workers = max(1, min(int(workers), len(merged_chunks)))

    def submit_group(executor, group, attempt):
        return executor.submit(
            _merged_stabilizer_task, (program, noise_model, group, fault_plan, attempt)
        )

    pending = [(group, 0) for group in _deal_merged_chunks(merged_chunks, workers)]
    results, recovery = _run_groups_with_recovery(pending, submit_group, workers)
    rows = [row for group_rows in results for row in group_rows]
    _require_merged_complete(rows, merged_chunks)
    return rows, recovery


def _stabilizer_task(payload: tuple) -> List[Tuple[int, np.ndarray]]:
    """Worker-side entry for tableau chunks (program ships pre-compiled)."""
    program, noise_model, chunks, fault_plan, attempt = payload
    from .stabilizer import execute_stabilizer_program

    rows: List[Tuple[int, np.ndarray]] = []
    for chunk_id, size, stream in chunks:
        if fault_plan is not None:
            fault_plan.fire(chunk_id, attempt, executor="process")
        rows.append(
            (
                chunk_id,
                execute_stabilizer_program(
                    program, size, np.random.default_rng(stream), noise_model
                ),
            )
        )
    return rows


def run_stabilizer_chunks(
    program,
    noise_model,
    sizes: Sequence[int],
    streams: Sequence[Any],
    *,
    workers: int,
    fault_plan=None,
) -> Tuple[List[np.ndarray], Dict[str, int]]:
    """Execute a stabilizer-engine chunk decomposition on the process pool.

    Returns the per-chunk outcome-bit matrices in chunk order plus the
    run's crash-recovery counters.  The compiled
    :class:`~repro.simulators.gate.fusion.StabilizerProgram` is parameter-free
    and cheap to pickle, so it ships directly instead of recompiling in the
    worker.
    """
    workers = max(1, min(int(workers), len(sizes)))

    def submit_group(executor, group, attempt):
        return executor.submit(
            _stabilizer_task, (program, noise_model, group, fault_plan, attempt)
        )

    pending = [(group, 0) for group in _deal_chunks(sizes, streams, workers)]
    results, recovery = _run_groups_with_recovery(pending, submit_group, workers)
    rows: List[Optional[np.ndarray]] = [None] * len(sizes)
    for group_rows in results:
        for chunk_id, bits in group_rows:
            rows[chunk_id] = bits
    _require_complete(rows)
    return rows, recovery
