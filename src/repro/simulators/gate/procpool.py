"""Persistent process pool for trajectory chunk execution.

The thread-pool chunk executor in :mod:`~repro.simulators.gate.statevector`
is break-even on CPython — the per-chunk Python bookkeeping between the
GIL-releasing NumPy kernels serialises the workers — so real scale-out needs
process-level parallelism.  This module owns that seam:

* a **persistent** ``ProcessPoolExecutor`` (forkserver start method where
  available, spawn otherwise), created on first use and reused across runs
  and jobs, so every worker keeps warm compile caches — the parent ships a
  circuit's :class:`~repro.simulators.gate.fusion.ParametricTemplate` once
  per structure and the workers only re-bind parameters afterwards;
* **chunk-grouped dispatch**: the parent's ``max_batch_memory`` chunk
  decomposition and per-chunk ``SeedSequence`` streams are computed exactly
  as on the thread path, then the chunks are dealt round-robin into at most
  ``workers`` groups.  Chunk ``i`` always consumes stream ``i`` and results
  reassemble in chunk order, so seeded counts are **bit-identical** to the
  thread executor (and to serial execution) at every worker count.

The pool is grow-only: a request for fewer workers reuses the existing
(larger) pool — effective parallelism is bounded by the group count, and
shrinking would throw away the workers' warm caches.  ``fork`` is
deliberately not used even where available: the workers must not inherit the
parent's BLAS thread pools or lock state mid-operation.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import threading
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "get_worker_pool",
    "shutdown_worker_pool",
    "worker_pool_info",
    "run_trajectory_chunks",
    "run_stabilizer_chunks",
]

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


def _start_method() -> str:
    """Forkserver where the platform offers it (Linux), spawn otherwise."""
    return (
        "forkserver"
        if "forkserver" in mp.get_all_start_methods()
        else "spawn"
    )


def get_worker_pool(workers: int) -> ProcessPoolExecutor:
    """Return the persistent pool, growing it if *workers* exceeds its size."""
    global _POOL, _POOL_WORKERS
    if workers < 1:
        raise ValueError(f"worker pool size must be >= 1, got {workers!r}")
    with _POOL_LOCK:
        if _POOL is None or workers > _POOL_WORKERS:
            if _POOL is not None:
                _POOL.shutdown(wait=True)
            context = mp.get_context(_start_method())
            if hasattr(context, "set_forkserver_preload"):
                # Fork workers from a server that already imported this
                # package (and with it NumPy): per-worker startup drops from
                # a full interpreter + import chain to a fork.
                context.set_forkserver_preload(["repro.simulators.gate.procpool"])
            _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            _POOL_WORKERS = workers
        return _POOL


def shutdown_worker_pool() -> None:
    """Tear the pool down (test isolation / interpreter exit)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


def worker_pool_info() -> Dict[str, int]:
    """Snapshot of the pool state: ``workers`` and ``started``."""
    with _POOL_LOCK:
        return {"workers": _POOL_WORKERS, "started": int(_POOL is not None)}


atexit.register(shutdown_worker_pool)


def _deal_chunks(
    sizes: Sequence[int], streams: Sequence[Any], workers: int
) -> List[List[Tuple[int, int, Any]]]:
    """Round-robin ``(chunk_id, size, stream)`` triples into worker groups.

    The grouping only decides *where* a chunk runs; chunk ``i`` carries
    stream ``i`` regardless, so the decomposition-to-stream mapping — the
    bit-identity contract — never depends on the worker count.
    """
    groups: List[List[Tuple[int, int, Any]]] = [[] for _ in range(workers)]
    for chunk_id, (size, stream) in enumerate(zip(sizes, streams)):
        groups[chunk_id % workers].append((chunk_id, size, stream))
    return [group for group in groups if group]


def _trajectory_task(payload: tuple):
    """Worker-side entry: bind (or adopt) the program, run a chunk group.

    Returns ``(rows, state_data, state_index)`` where *rows* is a list of
    ``(chunk_id, bits)`` and the state fields are populated only by the
    group holding the globally last chunk (the result-statevector contract).
    """
    (
        circuit,
        template,
        noise_model,
        dtype_str,
        gemm_threshold,
        blas_threads,
        chunks,
        state_chunk,
    ) = payload
    from .fusion import adopt_parametric_template, compile_trajectory_program_cached
    from .statevector import execute_program_chunk
    from .threads import limit_blas_threads

    if template is not None:
        adopt_parametric_template(circuit, template)
    dtype = np.dtype(dtype_str)
    # Mirror the parent compile exactly: a noiseless model compiles as None
    # but still reaches execution (its zero-rate readout path consumes the
    # same RNG draws as on the thread executor).
    compile_noise = noise_model
    if compile_noise is not None and compile_noise.is_noiseless:
        compile_noise = None
    program = compile_trajectory_program_cached(circuit, compile_noise, dtype=dtype)
    guard = (
        limit_blas_threads(blas_threads) if blas_threads is not None else nullcontext()
    )
    rows: List[Tuple[int, np.ndarray]] = []
    state_data: Optional[np.ndarray] = None
    state_index: Optional[int] = None
    with guard:
        for chunk_id, size, stream in chunks:
            bits, state, last_index = execute_program_chunk(
                program,
                size,
                np.random.default_rng(stream),
                noise_model=noise_model,
                dtype=dtype,
                gemm_threshold=gemm_threshold,
            )
            if chunk_id == state_chunk:
                state_data = state.extract(-1).data
                state_index = last_index
            rows.append((chunk_id, bits))
    return rows, state_data, state_index


def run_trajectory_chunks(
    circuit,
    template,
    noise_model,
    sizes: Sequence[int],
    streams: Sequence[Any],
    *,
    workers: int,
    dtype,
    gemm_threshold,
    blas_threads: Optional[int] = None,
) -> Tuple[List[np.ndarray], np.ndarray, Optional[int]]:
    """Execute a batched-engine chunk decomposition on the process pool.

    Returns ``(bits_rows, final_state_data, last_index)``: the per-chunk bit
    rows in chunk order, plus the last chunk's final single-trajectory state
    amplitudes and its sampled terminal index (for the parent's terminal
    collapse).
    """
    workers = max(1, min(int(workers), len(sizes)))
    pool = get_worker_pool(workers)
    state_chunk = len(sizes) - 1
    dtype_str = str(np.dtype(dtype))
    futures = [
        pool.submit(
            _trajectory_task,
            (
                circuit,
                template,
                noise_model,
                dtype_str,
                gemm_threshold,
                blas_threads,
                group,
                state_chunk,
            ),
        )
        for group in _deal_chunks(sizes, streams, workers)
    ]
    bits_rows: List[Optional[np.ndarray]] = [None] * len(sizes)
    state_data: Optional[np.ndarray] = None
    last_index: Optional[int] = None
    for future in futures:
        rows, data, index = future.result()
        for chunk_id, bits in rows:
            bits_rows[chunk_id] = bits
        if data is not None:
            state_data = data
            last_index = index
    return bits_rows, state_data, last_index


def _stabilizer_task(payload: tuple) -> List[Tuple[int, np.ndarray]]:
    """Worker-side entry for tableau chunks (program ships pre-compiled)."""
    program, noise_model, chunks = payload
    from .stabilizer import execute_stabilizer_program

    return [
        (
            chunk_id,
            execute_stabilizer_program(
                program, size, np.random.default_rng(stream), noise_model
            ),
        )
        for chunk_id, size, stream in chunks
    ]


def run_stabilizer_chunks(
    program,
    noise_model,
    sizes: Sequence[int],
    streams: Sequence[Any],
    *,
    workers: int,
) -> List[np.ndarray]:
    """Execute a stabilizer-engine chunk decomposition on the process pool.

    Returns the per-chunk outcome-bit matrices in chunk order.  The compiled
    :class:`~repro.simulators.gate.fusion.StabilizerProgram` is parameter-free
    and cheap to pickle, so it ships directly instead of recompiling in the
    worker.
    """
    workers = max(1, min(int(workers), len(sizes)))
    pool = get_worker_pool(workers)
    futures = [
        pool.submit(_stabilizer_task, (program, noise_model, group))
        for group in _deal_chunks(sizes, streams, workers)
    ]
    rows: List[Optional[np.ndarray]] = [None] * len(sizes)
    for future in futures:
        for chunk_id, bits in future.result():
            rows[chunk_id] = bits
    return rows
