"""Gate-model substrate: gates, circuits, state-vector simulation, transpiler."""

from .batched import BatchedStatevector
from .circuit import Circuit, Instruction
from .density import (
    MAX_DENSITY_QUBITS,
    DensityMatrix,
    DensityMatrixSimulator,
    pauli_terms,
)
from .fusion import (
    CLIFFORD_GATES,
    DEFAULT_COMPILE_CACHE_SIZE,
    StabilizerProgram,
    TrajectoryProgram,
    clear_compile_caches,
    compile_cache_info,
    compile_stabilizer_program,
    compile_stabilizer_program_cached,
    compile_trajectory_program,
    compile_trajectory_program_cached,
    is_clifford_circuit,
    parametric_cache_clear,
    parametric_cache_info,
    set_compile_cache_size,
)
from .faults import FAULT_KINDS, FaultEvent, FaultPlan
from .gates import GateDef, cached_gate_matrix, gate_matrix, get_gate, has_gate, list_gates
from .noise import NoiseModel
from .stabilizer import PRIMITIVE_GATES, StabilizerTableau, execute_stabilizer_program
from .threads import limit_blas_threads
from .statevector import (
    DEFAULT_MAX_BATCH_MEMORY,
    SimulationResult,
    Statevector,
    StatevectorSimulator,
    bits_to_index,
    index_to_bits,
)
from .kernels import DEFAULT_NOISE_GEMM_THRESHOLD
from .transpiler import Layout, TranspileResult, transpile, transpile_cached
from .unitary import circuit_unitary, equal_up_to_global_phase
from . import analysis
from .analysis import (
    IRDiagnostic,
    IRVerificationError,
    VerificationReport,
    set_verify_each,
    verify_each_enabled,
    verify_program,
    verify_stabilizer_program,
    verify_stage,
    verify_template,
)

__all__ = [
    "BatchedStatevector",
    "Circuit",
    "Instruction",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "MAX_DENSITY_QUBITS",
    "pauli_terms",
    "GateDef",
    "gate_matrix",
    "cached_gate_matrix",
    "get_gate",
    "has_gate",
    "list_gates",
    "NoiseModel",
    "FaultEvent",
    "FaultPlan",
    "FAULT_KINDS",
    "PRIMITIVE_GATES",
    "StabilizerTableau",
    "StabilizerProgram",
    "execute_stabilizer_program",
    "CLIFFORD_GATES",
    "is_clifford_circuit",
    "compile_stabilizer_program",
    "compile_stabilizer_program_cached",
    "TrajectoryProgram",
    "compile_trajectory_program",
    "compile_trajectory_program_cached",
    "compile_cache_info",
    "clear_compile_caches",
    "set_compile_cache_size",
    "parametric_cache_clear",
    "parametric_cache_info",
    "DEFAULT_COMPILE_CACHE_SIZE",
    "DEFAULT_NOISE_GEMM_THRESHOLD",
    "limit_blas_threads",
    "Statevector",
    "StatevectorSimulator",
    "SimulationResult",
    "DEFAULT_MAX_BATCH_MEMORY",
    "index_to_bits",
    "bits_to_index",
    "transpile",
    "transpile_cached",
    "TranspileResult",
    "Layout",
    "circuit_unitary",
    "equal_up_to_global_phase",
    "analysis",
    "IRDiagnostic",
    "IRVerificationError",
    "VerificationReport",
    "set_verify_each",
    "verify_each_enabled",
    "verify_program",
    "verify_stabilizer_program",
    "verify_template",
    "verify_stage",
]
