"""Exact unitary construction for small circuits.

Used by tests and the transpiler's verification utilities to check that
rewrites preserve the circuit's action up to a global phase.  The cost is
O(4^n) memory, so this is limited to small widths; the simulator proper never
needs the full unitary.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.errors import SimulationError
from .circuit import Circuit
from .fusion import compile_trajectory_program_cached
from .gates import gate_matrix
from .kernels import apply_plan_inplace

__all__ = ["circuit_unitary", "equal_up_to_global_phase"]

MAX_UNITARY_QUBITS = 12


def circuit_unitary(circuit: Circuit, *, fuse: bool = True) -> np.ndarray:
    """The ``2^n x 2^n`` unitary implemented by *circuit*.

    The column/row index follows the simulator's flat-index convention
    (qubit 0 is the most significant position).  Measurements and resets are
    rejected (barriers excepted — they are no-ops).

    The columns of U are the images of the basis states, evolved all at once
    by treating the column index as a trailing batch axis — the batched
    engine's exact layout.  With ``fuse=True`` (the default) the circuit is
    first compiled through the
    :func:`~repro.simulators.gate.fusion.compile_trajectory_program` fusion
    compiler and each fused step is applied with the in-place slice kernels,
    so a transpiled sweep costs one traversal per fused block instead of one
    ``moveaxis -> matmul -> moveaxis`` round trip per instruction.
    ``fuse=False`` keeps the instruction-by-instruction route as the
    executable specification.
    """
    n = circuit.num_qubits
    if n > MAX_UNITARY_QUBITS:
        raise SimulationError(
            f"circuit_unitary limited to {MAX_UNITARY_QUBITS} qubits, got {n}"
        )
    for inst in circuit.instructions:
        if inst.name != "barrier" and not inst.is_gate:
            raise SimulationError("circuit_unitary requires a purely unitary circuit")
    dim = 1 << n
    tensor = np.eye(dim, dtype=np.complex128).reshape((2,) * n + (dim,))
    if fuse:
        program = compile_trajectory_program_cached(circuit)
        for step in program.steps:
            apply_plan_inplace(tensor, step.plan, step.qubits)
        return tensor.reshape(dim, dim)
    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        matrix = gate_matrix(inst.name, inst.params)
        m = len(inst.qubits)
        moved = np.moveaxis(tensor, list(inst.qubits), range(m))
        shape = moved.shape
        moved = matrix @ moved.reshape(1 << m, -1)
        tensor = np.moveaxis(moved.reshape(shape), range(m), list(inst.qubits))
    return tensor.reshape(dim, dim)


def equal_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, *, atol: float = 1e-9
) -> bool:
    """Whether two unitaries differ only by a global phase factor."""
    if a.shape != b.shape:
        return False
    overlap = np.trace(a.conj().T @ b)
    if abs(overlap) < atol:
        return False
    phase = overlap / abs(overlap)
    return bool(np.allclose(a * phase, b, atol=atol))
