"""Fused in-place gate-application kernels and matrix structure plans.

The generic way to apply a ``2^m x 2^m`` unitary to a state tensor is
``moveaxis -> reshape -> matmul -> moveaxis``, which materialises two full
copies of the state per gate.  The kernels here never transpose: they read
and write axis-aligned *slices* of the original tensor, exploiting the
structure of the matrix:

* **fully diagonal** matrices (``z``, ``s``, ``t``, ``rz``, ``p``, ``cz``,
  ``rzz``, ...) become a single in-place broadcast multiply;
* **identity rows** (the untouched block of controlled gates such as ``cx``)
  are skipped entirely, so a CNOT touches only the two slices it permutes;
* remaining rows are evaluated as sparse linear combinations of the input
  slices (all reads complete before any write).

Because the matrix structure is the same for every application of a gate,
the analysis is factored into a :class:`MatrixPlan` that callers cache (see
:func:`~repro.simulators.gate.gates.cached_gate_plan`).

The kernels address qubits by *axis position* and leave any extra trailing
axes untouched, so the same code serves the single-shot
:class:`~repro.simulators.gate.statevector.Statevector` (qubit ``i`` at axis
``i``, no extra axes) and the batched engine's ``(2, ..., 2, batch)`` layout
(qubit ``i`` at axis ``i``, shots on the trailing axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_NOISE_GEMM_THRESHOLD",
    "MatrixPlan",
    "build_plan",
    "conjugate_plan",
    "apply_plan_inplace",
    "apply_matrix_inplace",
    "apply_diagonal_columns",
    "apply_operator_columns",
    "operator_stack",
]


#: Default crossover for the batched engine's GEMM noise path: when a step's
#: expected number of sampled error operators in one chunk
#: (``batch x sum(rates)``) reaches this value, per-column operator GEMMs
#: (:func:`apply_operator_columns`) beat the masked gather/scatter slice loop
#: (measured on a single-core x86 host at 8-12 qubits; tune per host with the
#: ``noise_gemm_threshold`` exec-policy knob).
DEFAULT_NOISE_GEMM_THRESHOLD = 64.0


@dataclass(frozen=True)
class MatrixPlan:
    """Structure analysis of one unitary matrix, reusable across applications.

    ``diagonal`` is the matrix diagonal (as a python-complex tuple, so that
    NumPy's weak scalar promotion preserves single-precision tensors) when the
    matrix is fully diagonal, else ``None``.  ``rows`` lists every
    *non-identity* row as ``(row, ((col, coeff), ...))`` with zero entries
    dropped; identity rows are omitted because their slices are untouched.
    """

    dim: int
    num_qubits: int
    diagonal: Optional[Tuple[complex, ...]]
    rows: Tuple[Tuple[int, Tuple[Tuple[int, complex], ...]], ...]

    @property
    def is_diagonal(self) -> bool:
        """Whether the matrix is fully diagonal (one broadcast multiply)."""
        return self.diagonal is not None

    @property
    def is_dense_1q(self) -> bool:
        """A 2x2 matrix with no exploitable sparsity (e.g. ``h``, ``rx``)."""
        return self.dim == 2 and self.diagonal is None and len(self.rows) == 2


def build_plan(matrix: np.ndarray) -> MatrixPlan:
    """Analyse *matrix* into a :class:`MatrixPlan` (exact zero tests)."""
    dim = matrix.shape[0]
    num_qubits = dim.bit_length() - 1
    if not matrix[~np.eye(dim, dtype=bool)].any():
        diagonal = tuple(complex(matrix[r, r]) for r in range(dim))
        return MatrixPlan(dim, num_qubits, diagonal, ())
    rows: List[Tuple[int, Tuple[Tuple[int, complex], ...]]] = []
    for r in range(dim):
        row = matrix[r]
        nonzero = tuple((c, complex(row[c])) for c in range(dim) if row[c] != 0)
        if nonzero == ((r, 1 + 0j),):
            continue  # identity row: slice r is untouched
        rows.append((r, nonzero))
    return MatrixPlan(dim, num_qubits, None, tuple(rows))


def conjugate_plan(plan: MatrixPlan) -> MatrixPlan:
    """The plan of the element-wise complex conjugate of a planned matrix.

    Conjugation preserves sparsity structure (zeros stay zero, identity rows
    stay identity rows), so the conjugate plan is derived entry-by-entry from
    an existing plan instead of re-analysing the matrix.  The density-matrix
    engine uses this to evolve ``rho -> U rho U^dagger`` with the same fused
    slice kernels as the state-vector engines: ``U``'s plan is applied to the
    row (ket) axes and ``conj(U)``'s plan to the column (bra) axes.
    """
    if plan.diagonal is not None:
        diagonal = tuple(entry.conjugate() for entry in plan.diagonal)
        return MatrixPlan(plan.dim, plan.num_qubits, diagonal, ())
    rows = tuple(
        (r, tuple((c, coeff.conjugate()) for c, coeff in terms))
        for r, terms in plan.rows
    )
    return MatrixPlan(plan.dim, plan.num_qubits, None, rows)


def _slice_index(ndim: int, axes: Sequence[int], bits: int) -> Tuple:
    """Index tuple fixing the qubit *axes* to the bits of *bits* (first = MSB)."""
    m = len(axes)
    index: List = [slice(None)] * ndim
    for pos, axis in enumerate(axes):
        index[axis] = (bits >> (m - 1 - pos)) & 1
    return tuple(index)


def _diagonal_operand(tensor: np.ndarray, plan: MatrixPlan, axes: Sequence[int]) -> np.ndarray:
    """The plan's diagonal reshaped for broadcasting over *tensor*'s axes."""
    m = plan.num_qubits
    diag = np.array(plan.diagonal).reshape((2,) * m)
    # Bit p of the diagonal index is qubit axes[p]; numpy broadcasting needs
    # the axes in ascending order, so permute the diagonal accordingly.
    order = sorted(range(m), key=lambda p: axes[p])
    diag = diag.transpose(order)
    shape = [1] * tensor.ndim
    for p in range(m):
        shape[axes[order[p]]] = 2
    return diag.reshape(shape)


def apply_plan_inplace(tensor: np.ndarray, plan: MatrixPlan, axes: Sequence[int]) -> None:
    """Apply a planned unitary to the qubit *axes* of *tensor*, in place."""
    if plan.is_diagonal:
        tensor *= _diagonal_operand(tensor, plan, axes)
        return
    read = {}
    for _, terms in plan.rows:
        for c, _ in terms:
            if c not in read:
                read[c] = tensor[_slice_index(tensor.ndim, axes, c)]
    # Evaluate every output slice before writing any of them back: the reads
    # above are views into *tensor*, so interleaving writes would corrupt
    # later inputs.
    updates = []
    for r, terms in plan.rows:
        acc = terms[0][1] * read[terms[0][0]]
        for c, coeff in terms[1:]:
            acc += coeff * read[c]
        updates.append((r, acc))
    for r, value in updates:
        tensor[_slice_index(tensor.ndim, axes, r)] = value


def apply_diagonal_columns(
    tensor: np.ndarray, diag: np.ndarray, axes: Sequence[int]
) -> None:
    """Multiply a **per-column** diagonal into the qubit *axes* of *tensor*.

    *tensor* is a batch-last state tensor (``(2, ..., 2, batch)`` — the
    :class:`~repro.simulators.gate.batched.BatchedStatevector` layout) and
    *diag* holds one diagonal per column, shape ``(2**m, batch)`` with bit
    ``p`` of the diagonal index addressing qubit ``axes[p]`` (first = MSB).
    This is the kernel behind batched parameter sweeps: a parameterized
    diagonal rotation (``rz``/``rzz``-style) with a *different angle per
    column* costs exactly one broadcast multiply over the tensor, the same
    as its fixed-angle counterpart.
    """
    m = len(axes)
    batch = tensor.shape[-1]
    diag = np.asarray(diag).reshape((2,) * m + (batch,))
    # Bit p of the diagonal index is qubit axes[p]; numpy broadcasting needs
    # the qubit axes in ascending order, so permute them (batch stays last).
    order = sorted(range(m), key=lambda p: axes[p])
    diag = diag.transpose(tuple(order) + (m,))
    shape = [1] * tensor.ndim
    for p in range(m):
        shape[axes[order[p]]] = 2
    shape[-1] = batch
    tensor *= diag.reshape(shape)


def operator_stack(operators, dtype: np.dtype) -> np.ndarray:
    """Identity-first ``(K + 1, d, d)`` stack of a noise event's operators.

    Slice 0 is the identity (the "not struck" branch); slice ``k + 1`` is
    the matrix of ``operators[k]`` (``(matrix, plan)`` pairs).  Built in
    ``complex128`` and cast once to the engine *dtype*, so the precompiled
    stacks the fusion compiler attaches at bind time and the on-the-fly
    fallback in the batched engine agree bit for bit.
    """
    matrices = [matrix for matrix, _ in operators]
    dim = matrices[0].shape[0]
    stack = np.empty((len(matrices) + 1, dim, dim), dtype=np.complex128)
    stack[0] = np.eye(dim)
    for k, matrix in enumerate(matrices):
        stack[k + 1] = matrix
    return np.ascontiguousarray(stack.astype(np.dtype(dtype), copy=False))


def apply_operator_columns(
    tensor: np.ndarray, matrices: np.ndarray, axes: Sequence[int]
) -> None:
    """Apply a **per-column** dense operator to the qubit *axes* of *tensor*.

    *tensor* is a batch-last state tensor (``(2, ..., 2, batch)``) and
    *matrices* holds one ``2^m x 2^m`` operator per column, shape
    ``(batch, 2**m, 2**m)`` with bit ``p`` of the row/column index addressing
    qubit ``axes[p]`` (first = MSB).  This is the GEMM kernel behind the
    batched engine's high-noise-rate path: one sampled error operator per
    trajectory applies in ``d^2`` broadcast multiply/adds over the tensor,
    instead of one masked gather/scatter per operator branch.

    Implemented as elementwise broadcast arithmetic — never a BLAS GEMM — in
    ascending column order with exact-zero contributions included, so for
    every column the accumulation order matches the slice kernels'
    (zero-skipping) order up to exact ``+0.0`` terms: amplitudes agree bit
    for bit with a per-column :func:`apply_plan_inplace` application, and
    identity columns pass through unchanged.
    """
    m = len(axes)
    dim = 1 << m
    batch = tensor.shape[-1]
    if matrices.shape != (batch, dim, dim):
        raise ValueError(
            f"column operator shape {matrices.shape} does not match ({batch}, {dim}, {dim})"
        )
    reads = [tensor[_slice_index(tensor.ndim, axes, c)] for c in range(dim)]
    # Evaluate every output slice before writing any back (reads are views).
    updates = []
    for r in range(dim):
        acc = matrices[:, r, 0] * reads[0]
        for c in range(1, dim):
            acc += matrices[:, r, c] * reads[c]
        updates.append(acc)
    for r, value in enumerate(updates):
        tensor[_slice_index(tensor.ndim, axes, r)] = value


def apply_matrix_inplace(
    tensor: np.ndarray,
    matrix: np.ndarray,
    axes: Sequence[int],
    plan: Optional[MatrixPlan] = None,
) -> None:
    """Apply *matrix* to the qubit *axes* of *tensor* in place.

    ``matrix`` must be ``2^m x 2^m`` for ``m = len(axes)``; pass a cached
    *plan* to skip the structure analysis on hot paths.
    """
    apply_plan_inplace(tensor, plan if plan is not None else build_plan(matrix), axes)
