"""A small thread-safe bounded LRU with hit/miss instrumentation.

One implementation behind the three compile-side caches (fusion templates,
bound trajectory programs, transpile routing templates), so lock discipline,
eviction order and counter semantics cannot drift between them.  Values must
be immutable (they are returned to concurrent callers unchanged).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["BoundedLRU", "DEFAULT_CACHE_SIZE"]

#: Default entry bound shared by every compile-side cache; reconfigure per
#: run through the ``compile_cache_size`` exec-policy knob.
DEFAULT_CACHE_SIZE = 256

#: Absence sentinel: distinguishes "key not stored" from a stored value that
#: happens to be falsy (``None``, ``0``, ``""``) so such values still hit.
_MISSING = object()


class BoundedLRU:
    """Ordered key -> value cache, evicting oldest-first beyond ``maxsize``."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._maxsize = int(maxsize)
        self._hits = 0
        self._misses = 0

    def lookup(self, key: Any) -> Optional[Any]:
        """Return the cached value (counted as a hit) or ``None`` (a miss)."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def __contains__(self, key: Any) -> bool:
        """Membership probe that does not touch the hit/miss counters."""
        with self._lock:
            return key in self._data

    def store(self, key: Any, value: Any) -> None:
        """Insert *value* as the newest entry, evicting beyond the bound."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def set_maxsize(self, maxsize: int) -> None:
        """Rebound the cache, evicting oldest-first immediately if shrunk."""
        with self._lock:
            self._maxsize = int(maxsize)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def info(self) -> Dict[str, int]:
        """Snapshot of ``hits`` / ``misses`` / ``entries`` / ``maxsize``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "entries": len(self._data),
                "maxsize": self._maxsize,
            }
