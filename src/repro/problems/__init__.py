"""Problem library: graph generators, Max-Cut instance and classical baselines."""

from .graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
    weighted_from_edges,
)
from .maxcut import MaxCutProblem

__all__ = [
    "MaxCutProblem",
    "cycle_graph",
    "complete_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "random_graph",
    "weighted_from_edges",
]
