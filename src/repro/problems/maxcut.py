"""Max-Cut: the proof-of-concept problem of the paper, plus classical baselines.

For an undirected weighted graph ``G = (V, E, w)`` the Max-Cut asks for the
partition ``V = S u S̄`` maximising the weight of edges crossing the cut.
:class:`MaxCutProblem` holds the graph, evaluates cuts, produces the Ising
formulation the quantum paths consume, and offers the classical baselines the
benchmarks compare against (exhaustive optimum, greedy local search, spectral
partitioning, random assignment).

Ising mapping
-------------
With spins ``s_i in {-1, +1}`` (``s_i = +1`` meaning node i in S) the cut is
``cut(s) = sum_{(i,j) in E} w_ij (1 - s_i s_j) / 2``.  Maximising the cut is
therefore minimising the Ising energy ``E(s) = sum w_ij s_i s_j`` with zero
fields, and ``cut = (W_total - E) / 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..core.errors import DescriptorError
from .graphs import cycle_graph

__all__ = ["MaxCutProblem", "Assignment"]

# A cut assignment: per-node binary labels (0/1), index = node id.
Assignment = Tuple[int, ...]


@dataclass
class MaxCutProblem:
    """A Max-Cut instance over nodes ``0..n-1``."""

    graph: nx.Graph

    def __post_init__(self) -> None:
        nodes = sorted(self.graph.nodes)
        if nodes != list(range(len(nodes))):
            raise DescriptorError("MaxCutProblem requires integer nodes 0..n-1")
        for _, _, data in self.graph.edges(data=True):
            data.setdefault("weight", 1.0)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def cycle(cls, n: int = 4) -> "MaxCutProblem":
        """The unit-weight n-cycle (n=4 is the paper's instance)."""
        return cls(cycle_graph(n))

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]] , weights: Optional[Sequence[float]] = None) -> "MaxCutProblem":
        graph = nx.Graph()
        edges = list(edges)
        weights = [1.0] * len(edges) if weights is None else list(weights)
        for (u, v), w in zip(edges, weights):
            graph.add_edge(int(u), int(v), weight=float(w))
        return cls(graph)

    # -- basic structure --------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return [(int(u), int(v)) for u, v in self.graph.edges]

    @property
    def weights(self) -> List[float]:
        return [float(d["weight"]) for _, _, d in self.graph.edges(data=True)]

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights))

    # -- cut evaluation ------------------------------------------------------------
    def _as_labels(self, assignment: Union[str, Sequence[int]]) -> np.ndarray:
        if isinstance(assignment, str):
            labels = np.array([int(c) for c in assignment], dtype=int)
        else:
            labels = np.asarray(list(assignment), dtype=int)
        if labels.shape != (self.num_nodes,):
            raise DescriptorError(
                f"assignment must label all {self.num_nodes} nodes, got {labels.shape}"
            )
        if not np.all(np.isin(labels, (0, 1))):
            # Accept spin labels too.
            if np.all(np.isin(labels, (-1, 1))):
                labels = (1 - labels) // 2
            else:
                raise DescriptorError("assignment labels must be 0/1 or +1/-1")
        return labels

    def cut_value(self, assignment: Union[str, Sequence[int]]) -> float:
        """Total weight of edges crossing the cut described by *assignment*."""
        labels = self._as_labels(assignment)
        return float(
            sum(
                w
                for (u, v), w in zip(self.edges, self.weights)
                if labels[u] != labels[v]
            )
        )

    def cut_from_energy(self, energy: float) -> float:
        """Convert an Ising energy (zero fields, J = w) into a cut value."""
        return (self.total_weight - float(energy)) / 2.0

    def energy_from_cut(self, cut: float) -> float:
        """Inverse of :meth:`cut_from_energy`."""
        return self.total_weight - 2.0 * float(cut)

    # -- Ising formulation ------------------------------------------------------------
    def to_ising(self) -> Tuple[List[float], List[Tuple[int, int]], List[float], float]:
        """``(h, edges, weights, constant)`` of the minimisation-form Ising problem."""
        return [0.0] * self.num_nodes, self.edges, self.weights, 0.0

    # -- classical baselines -------------------------------------------------------------
    def brute_force(self) -> Tuple[float, List[Assignment]]:
        """Exhaustive optimum: maximum cut value and every optimal assignment.

        Limited to 22 nodes; assignments are reported with node 0's label
        fixed only by enumeration (both complements appear).
        """
        n = self.num_nodes
        if n > 22:
            raise DescriptorError("brute force limited to 22 nodes")
        best_value = -1.0
        best: List[Assignment] = []
        for mask in range(1 << n):
            labels = tuple((mask >> i) & 1 for i in range(n))
            value = self.cut_value(labels)
            if value > best_value + 1e-12:
                best_value = value
                best = [labels]
            elif abs(value - best_value) <= 1e-12:
                best.append(labels)
        return best_value, best

    def greedy(self, *, seed: Optional[int] = None, restarts: int = 1) -> Tuple[float, Assignment]:
        """Greedy local search: flip any node that improves the cut, repeat."""
        rng = np.random.default_rng(seed)
        best_value, best_labels = -1.0, None
        adjacency = {
            node: [(nbr, float(self.graph[node][nbr]["weight"])) for nbr in self.graph[node]]
            for node in self.graph.nodes
        }
        for _ in range(max(1, restarts)):
            labels = rng.integers(0, 2, size=self.num_nodes)
            improved = True
            while improved:
                improved = False
                for node in range(self.num_nodes):
                    gain = sum(
                        w * (1 if labels[nbr] == labels[node] else -1)
                        for nbr, w in adjacency[node]
                    )
                    if gain > 1e-12:
                        labels[node] ^= 1
                        improved = True
            value = self.cut_value(labels)
            if value > best_value:
                best_value, best_labels = value, tuple(int(x) for x in labels)
        return best_value, best_labels

    def spectral(self) -> Tuple[float, Assignment]:
        """Spectral partition: sign of the largest Laplacian eigenvector entry."""
        laplacian = nx.laplacian_matrix(self.graph, weight="weight").toarray().astype(float)
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        leading = eigenvectors[:, -1]
        labels = tuple(int(x >= 0) for x in leading)
        return self.cut_value(labels), labels

    def random_assignment(self, *, seed: Optional[int] = None) -> Tuple[float, Assignment]:
        """Uniformly random cut (the 0.5-approximation baseline)."""
        rng = np.random.default_rng(seed)
        labels = tuple(int(x) for x in rng.integers(0, 2, size=self.num_nodes))
        return self.cut_value(labels), labels

    def expected_cut_from_distribution(self, distribution: Mapping[str, float]) -> float:
        """Probability-weighted average cut of a bitstring distribution.

        Keys are bitstrings whose character ``i`` labels node ``i`` — exactly
        what the middle layer's decoding produces for the Max-Cut register.
        """
        total = float(sum(distribution.values()))
        if total <= 0:
            raise DescriptorError("distribution has no probability mass")
        return sum(
            self.cut_value(bits) * weight for bits, weight in distribution.items()
        ) / total

    def approximation_ratio(self, value: float) -> float:
        """Ratio of *value* to the exhaustive optimum."""
        best, _ = self.brute_force()
        return float(value) / best if best else 0.0
