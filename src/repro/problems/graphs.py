"""Graph generators used by the optimisation problem library and benchmarks.

All generators return NetworkX graphs whose nodes are the integers
``0..n-1`` (the carrier indices of the spin register) and whose edges carry a
``weight`` attribute, so they can be fed directly to
:func:`repro.oplib.ising.ising_problem_from_graph`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..core.errors import DescriptorError

__all__ = [
    "cycle_graph",
    "complete_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "random_graph",
    "weighted_from_edges",
]


def _with_unit_weights(graph: nx.Graph) -> nx.Graph:
    for _, _, data in graph.edges(data=True):
        data.setdefault("weight", 1.0)
    return graph


def cycle_graph(n: int) -> nx.Graph:
    """The n-node cycle with unit weights (the paper's proof-of-concept graph is n=4)."""
    if n < 3:
        raise DescriptorError("a cycle needs at least 3 nodes")
    return _with_unit_weights(nx.cycle_graph(n))


def complete_graph(n: int) -> nx.Graph:
    """The complete graph K_n with unit weights."""
    return _with_unit_weights(nx.complete_graph(n))


def path_graph(n: int) -> nx.Graph:
    """The n-node path with unit weights."""
    return _with_unit_weights(nx.path_graph(n))


def star_graph(n: int) -> nx.Graph:
    """A star with one hub and ``n - 1`` leaves, unit weights."""
    return _with_unit_weights(nx.star_graph(n - 1))


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A rows x cols grid relabelled to integer nodes, unit weights."""
    grid = nx.grid_2d_graph(rows, cols)
    relabelled = nx.convert_node_labels_to_integers(grid, ordering="sorted")
    return _with_unit_weights(relabelled)


def random_graph(
    n: int,
    edge_probability: float = 0.5,
    *,
    seed: Optional[int] = None,
    weighted: bool = False,
    weight_range: Tuple[float, float] = (0.5, 1.5),
) -> nx.Graph:
    """Erdos-Renyi graph, optionally with uniform random edge weights."""
    if not 0.0 <= edge_probability <= 1.0:
        raise DescriptorError("edge_probability must lie in [0, 1]")
    graph = nx.gnp_random_graph(n, edge_probability, seed=seed)
    rng = np.random.default_rng(seed)
    for _, _, data in graph.edges(data=True):
        data["weight"] = (
            float(rng.uniform(*weight_range)) if weighted else 1.0
        )
    return graph


def weighted_from_edges(edges: Sequence[Tuple[int, int, float]]) -> nx.Graph:
    """Build a graph from explicit ``(u, v, weight)`` triples."""
    graph = nx.Graph()
    for u, v, w in edges:
        graph.add_edge(int(u), int(v), weight=float(w))
    return graph
