"""End-to-end workflows built on the middle layer's public API."""

from .job import read_artifacts, run_artifacts, write_artifacts
from .maxcut import (
    MaxCutSolution,
    build_anneal_bundle,
    build_qaoa_bundle,
    default_anneal_context,
    default_gate_context,
    maxcut_register,
    ring_coupling_map,
    solve_maxcut,
)
from .qaoa_optimizer import (
    QAOAOptimizationResult,
    VariationalEvaluator,
    evaluate_angles,
    optimize_qaoa,
)

__all__ = [
    "solve_maxcut",
    "MaxCutSolution",
    "build_qaoa_bundle",
    "build_anneal_bundle",
    "default_gate_context",
    "default_anneal_context",
    "maxcut_register",
    "ring_coupling_map",
    "optimize_qaoa",
    "evaluate_angles",
    "QAOAOptimizationResult",
    "VariationalEvaluator",
    "write_artifacts",
    "read_artifacts",
    "run_artifacts",
]
