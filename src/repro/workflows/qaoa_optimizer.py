"""Classical outer loop optimising QAOA angles through the middle layer.

The intent artifacts (typed register, problem graph, measurement schema) are
built **once per optimisation** by a :class:`VariationalEvaluator`; each
optimisation step only re-binds the angles — the late-binding pattern of
Section 3 — and re-evaluates on whatever engine the context names.  Both a
grid search and a Nelder-Mead refinement (SciPy) are provided.

Evaluation modes (exec-policy knob ``variational_evaluation``)
--------------------------------------------------------------
``"sampled"`` (default)
    The PR 3 behaviour: bind the angles into the descriptor stack, package,
    submit through the backend (lower, transpile, simulate, sample shots) and
    estimate the expected cut from the decoded histogram.  Exactly
    reproducible against earlier releases, but every evaluation pays a full
    compile + sample round trip and carries shot noise.
``"expectation"``
    The variational fast path: the QAOA state is evolved directly through
    the fusion compiler's parametric template cache (structure compiled
    once, angles re-bound per evaluation) and the energy is read off as an
    **exact expectation** of the Ising cost observable
    (:func:`~repro.oplib.ising.ising_cost_observable`) — variance-free, no
    transpilation, no sampling.  Requires a noiseless context, or
    ``trajectory_engine="density"`` to route noisy evaluations through the
    exact :class:`~repro.simulators.gate.density.DensityMatrixSimulator`
    oracle (readout error never enters an expectation — it is a classical
    channel on records, not on the state).

On top of the expectation mode, the **grid-search stage** of
:func:`optimize_qaoa` is executed as one batched evolution: the
:class:`~repro.simulators.gate.batched.BatchedStatevector`'s trailing batch
axis holds (gamma, beta) *candidates* instead of shots, parameterized cost
rotations apply as per-column diagonal phases (``rx`` mixers as per-column
dense 2x2 kernels), and every candidate's energy is a per-column
``<Z_i Z_j>`` reduction — hundreds of evaluations for the cost of one
chunked sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sciopt

from ..core.bundle import package
from ..core.context import ContextDescriptor
from ..core.errors import ContextError
from ..oplib.ising import ising_cost_observable
from ..oplib.qaoa import bind_qaoa_parameters, qaoa_sequence
from ..backends.runtime import submit
from ..problems.maxcut import MaxCutProblem
from ..simulators.gate.batched import BatchedStatevector
from ..simulators.gate.circuit import Circuit
from ..simulators.gate.dtypes import CANONICAL_COMPLEX
from ..simulators.gate.noise import NoiseModel
from ..simulators.gate.statevector import DEFAULT_MAX_BATCH_MEMORY, Statevector
from .maxcut import default_gate_context, maxcut_register

__all__ = [
    "QAOAOptimizationResult",
    "VariationalEvaluator",
    "evaluate_angles",
    "optimize_qaoa",
]

#: Accepted values of the ``variational_evaluation`` exec-policy option.
VARIATIONAL_MODES = ("sampled", "expectation")


@dataclass
class QAOAOptimizationResult:
    """Outcome of a QAOA angle optimisation run."""

    best_gammas: Tuple[float, ...]
    best_betas: Tuple[float, ...]
    best_expected_cut: float
    optimal_cut: float
    evaluations: int
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def approximation_ratio(self) -> float:
        return self.best_expected_cut / self.optimal_cut if self.optimal_cut else 0.0


def _rzz_column_diagonal(thetas: np.ndarray) -> np.ndarray:
    """Per-column ``rzz(theta_c)`` diagonals, shape ``(4, batch)``."""
    half = 0.5j * np.asarray(thetas, dtype=np.float64)
    ep, em = np.exp(-half), np.exp(half)
    return np.stack([ep, em, em, ep])


def _rx_column_matrices(thetas: np.ndarray) -> np.ndarray:
    """Per-column ``rx(theta_c)`` matrices, shape ``(2, 2, batch)``."""
    half = 0.5 * np.asarray(thetas, dtype=np.float64)
    c = np.cos(half).astype(CANONICAL_COMPLEX)
    s = -1j * np.sin(half)
    return np.stack([np.stack([c, s]), np.stack([s, c])])


class VariationalEvaluator:
    """One QAOA optimisation session over a fixed problem and context.

    Builds the intent artifacts — the typed register, the unbound QAOA
    descriptor template, the cost observable — **once** in the constructor;
    every :meth:`evaluate` call then only binds angles.  Combined with the
    fusion compiler's parametric template cache (which memoises the
    structural compilation of the per-evaluation circuits) this removes all
    per-evaluation rebuild work that PR 3's ``evaluate_angles`` paid on
    every call.

    The evaluation mode comes from the context's ``variational_evaluation``
    exec-policy option (see the module docstring); ``"expectation"``
    additionally unlocks :meth:`evaluate_grid`, the batched parameter-grid
    sweep used by :func:`optimize_qaoa`'s grid stage.
    """

    def __init__(
        self,
        problem: MaxCutProblem,
        *,
        reps: int = 1,
        context: Optional[ContextDescriptor] = None,
        register_id: str = "ising_vars",
    ):
        if reps < 1:
            raise ContextError("VariationalEvaluator needs reps >= 1")
        self.problem = problem
        self.reps = int(reps)
        self.context = context or default_gate_context(problem)
        options = self.context.exec.options
        mode = str(options.get("variational_evaluation", "sampled"))
        if mode not in VARIATIONAL_MODES:
            raise ContextError(
                f"unknown variational_evaluation mode {mode!r}; "
                f"expected one of {VARIATIONAL_MODES}"
            )
        self.mode = mode
        self.register_id = register_id
        self.qdt = maxcut_register(problem, register_id=register_id)
        self.template = qaoa_sequence(
            self.qdt, problem.edges, weights=problem.weights, reps=self.reps
        )
        noise = NoiseModel.from_dict(options.get("noise"))
        self.noise_model = None if noise is None or noise.is_noiseless else noise
        self.engine = str(options.get("trajectory_engine", "batched"))
        if self.mode == "expectation" and self.noise_model is not None and self.engine != "density":
            raise ContextError(
                "variational_evaluation='expectation' needs a noiseless context "
                "or trajectory_engine='density' (the exact-noise oracle); "
                "sampled trajectory engines cannot produce exact expectations"
            )
        self.observable = ising_cost_observable(
            problem.num_nodes, edges=problem.edges, weights=problem.weights
        )
        self.evaluations = 0

    # -- single-point evaluation ----------------------------------------------
    def evaluate(self, gammas: Sequence[float], betas: Sequence[float]) -> float:
        """Expected cut of one (gammas, betas) assignment in the session's mode."""
        gammas = [float(g) for g in gammas]
        betas = [float(b) for b in betas]
        if len(gammas) != self.reps or len(betas) != self.reps:
            raise ContextError(
                f"expected {self.reps} gammas and betas, "
                f"got {len(gammas)} and {len(betas)}"
            )
        self.evaluations += 1
        if self.mode == "expectation":
            return self._evaluate_expectation(gammas, betas)
        return self._evaluate_sampled(gammas, betas)

    def _evaluate_sampled(self, gammas: List[float], betas: List[float]) -> float:
        """PR 3 path: bind -> package -> submit -> decode -> expected cut."""
        bound = bind_qaoa_parameters(self.template, gammas, betas)
        bundle = package(
            self.qdt,
            bound,
            self.context,
            name="maxcut-qaoa-eval",
            producer="repro.workflows.qaoa_optimizer",
        )
        result = submit(bundle)
        decoded = result.decoded().single()
        distribution = {o.bits: o.probability for o in decoded.outcomes}
        return self.problem.expected_cut_from_distribution(distribution)

    def _qaoa_circuit(self, gammas: List[float], betas: List[float]) -> Circuit:
        """The measurement-free QAOA circuit (qubit ``i`` = node ``i``).

        Mirrors the gate realization rules exactly — ``H`` layer, per-edge
        ``rzz(2*gamma*w)``, per-qubit ``rx(2*beta)`` — without the backend
        round trip; exact simulation needs no basis/coupling transpilation.
        """
        n = self.problem.num_nodes
        circuit = Circuit(n, name="maxcut-qaoa-expectation")
        for q in range(n):
            circuit.h(q)
        edges, weights = self.problem.edges, self.problem.weights
        for layer in range(self.reps):
            for (i, j), w in zip(edges, weights):
                circuit.rzz(2.0 * gammas[layer] * w, i, j)
            for q in range(n):
                circuit.rx(2.0 * betas[layer], q)
        return circuit

    def _evaluate_expectation(self, gammas: List[float], betas: List[float]) -> float:
        """Exact energy expectation -> cut, via statevector or density oracle."""
        circuit = self._qaoa_circuit(gammas, betas)
        if self.noise_model is not None or self.engine == "density":
            from ..simulators.gate.density import DensityMatrixSimulator

            energy = DensityMatrixSimulator(noise_model=self.noise_model).expectation(
                circuit, self.observable
            )
        else:
            state = Statevector(circuit.num_qubits).evolve(circuit)
            energy = state.expectation(self.observable)
        return self.problem.cut_from_energy(energy)

    # -- batched grid sweep ------------------------------------------------------
    @property
    def supports_batched_grid(self) -> bool:
        """Whether :meth:`evaluate_grid` can vectorise over candidates.

        True for the pure-state expectation path (noiseless, non-density):
        the batch axis then holds parameter candidates and a whole grid
        evolves in one chunked sweep.  Other configurations fall back to
        per-candidate :meth:`evaluate` calls inside :meth:`evaluate_grid`.
        """
        return self.mode == "expectation" and self.noise_model is None and self.engine != "density"

    def evaluate_grid(
        self,
        gammas: Sequence,
        betas: Sequence,
        *,
        max_batch_memory: Optional[int] = None,
    ) -> np.ndarray:
        """Expected cut of every (gamma, beta) candidate, batched when possible.

        *gammas* / *betas* are per-candidate angles: 1-D arrays assign one
        angle to **all** layers of a candidate (the grid-search convention),
        2-D ``(candidates, reps)`` arrays give full per-layer control.  On
        the pure-state expectation path all candidates evolve simultaneously
        as columns of one :class:`BatchedStatevector` (chunked to the
        ``max_batch_memory`` byte budget, default from the context options):
        parameterized rotations are per-column diagonal phases and each
        candidate's energy is a per-column ``<Z_i Z_j>`` reduction.  Chunk
        decomposition never changes the values — per-column arithmetic is
        independent — so results are bit-identical for every budget.
        Other modes evaluate candidates sequentially via :meth:`evaluate`.
        """
        garr = self._candidate_angles(gammas, "gammas")
        barr = self._candidate_angles(betas, "betas")
        if garr.shape != barr.shape:
            raise ContextError(
                f"gamma candidates {garr.shape} and beta candidates "
                f"{barr.shape} do not match"
            )
        if len(garr) == 0:
            return np.zeros(0, dtype=np.float64)
        if not self.supports_batched_grid:
            return np.array(
                [
                    self.evaluate(tuple(garr[k]), tuple(barr[k]))
                    for k in range(len(garr))
                ]
            )
        if max_batch_memory is None:
            max_batch_memory = self.context.exec.options.get(
                "max_batch_memory", DEFAULT_MAX_BATCH_MEMORY
            )
        total = len(garr)
        if max_batch_memory is None:
            chunk = total
        else:
            bytes_per_column = 2 * 16 * (1 << self.problem.num_nodes)
            chunk = max(1, min(total, int(max_batch_memory) // bytes_per_column))
        values = [
            self._grid_chunk(garr[start : start + chunk], barr[start : start + chunk])
            for start in range(0, total, chunk)
        ]
        self.evaluations += total
        return np.concatenate(values)

    def _candidate_angles(self, angles: Sequence, label: str) -> np.ndarray:
        """Normalise candidate angles to a float64 ``(candidates, reps)`` array."""
        arr = np.asarray(angles, dtype=np.float64)
        if arr.ndim == 1:
            arr = np.repeat(arr[:, None], self.reps, axis=1)
        if arr.ndim != 2 or arr.shape[1] != self.reps:
            raise ContextError(
                f"{label} candidates must be 1-D or (candidates, {self.reps}), "
                f"got shape {arr.shape}"
            )
        return arr

    def _grid_chunk(self, garr: np.ndarray, barr: np.ndarray) -> np.ndarray:
        """Evolve one chunk of candidates and reduce to expected cuts."""
        n = self.problem.num_nodes
        batch = len(garr)
        state = BatchedStatevector(n, batch, dtype=CANONICAL_COMPLEX)
        state.fill_uniform()
        edges, weights = self.problem.edges, self.problem.weights
        for layer in range(self.reps):
            for (i, j), w in zip(edges, weights):
                state.apply_diagonal_columns(
                    _rzz_column_diagonal(2.0 * w * garr[:, layer]), (i, j)
                )
            mixer = _rx_column_matrices(2.0 * barr[:, layer])
            for q in range(n):
                state.apply_1q_columns(mixer, q)
        probs = state.probabilities_columns()  # one traversal for every edge
        energies = np.zeros(batch, dtype=np.float64)
        for (i, j), w in zip(edges, weights):
            energies += w * state.expectation_zz_columns(i, j, probs)
        return (self.problem.total_weight - energies) / 2.0


def evaluate_angles(
    problem: MaxCutProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
    *,
    context: Optional[ContextDescriptor] = None,
    register_id: str = "ising_vars",
) -> float:
    """Expected cut of one (gamma, beta) assignment on the configured engine.

    One-shot convenience wrapper over :class:`VariationalEvaluator`; inside
    an optimisation loop build the evaluator once instead, so the register,
    descriptor template and cost observable are not rebuilt per call.
    """
    evaluator = VariationalEvaluator(
        problem, reps=len(list(gammas)), context=context, register_id=register_id
    )
    return evaluator.evaluate(gammas, betas)


def optimize_qaoa(
    problem: MaxCutProblem,
    *,
    reps: int = 1,
    context: Optional[ContextDescriptor] = None,
    grid_resolution: int = 8,
    refine: bool = True,
    max_refine_iterations: int = 30,
    seed: Optional[int] = 7,
) -> QAOAOptimizationResult:
    """Optimise the QAOA angles for *problem*.

    Strategy: coarse grid search over ``[0, pi)`` per angle (first layer only;
    deeper layers reuse the first layer's grid optimum as a starting point),
    optionally followed by Nelder-Mead refinement of all ``2 * reps`` angles.

    The evaluation mode follows the context's ``variational_evaluation``
    option: under ``"expectation"`` (noiseless) the whole grid stage runs as
    **one batched evolution** — the candidate axis rides the batched
    engine's shot axis — and each refinement step is an exact, shot-free
    expectation, typically orders of magnitude faster than the default
    sampled mode (see ``benchmarks/bench_variational.py``).
    """
    evaluator = VariationalEvaluator(problem, reps=reps, context=context)
    optimal_cut, _ = problem.brute_force()
    history: List[Dict[str, float]] = []

    def record(gammas: Sequence[float], betas: Sequence[float], value: float) -> None:
        history.append(
            {
                "expected_cut": value,
                **{f"gamma_{i}": float(g) for i, g in enumerate(gammas)},
                **{f"beta_{i}": float(b) for i, b in enumerate(betas)},
            }
        )

    def objective(angles: np.ndarray) -> float:
        gammas = tuple(float(a) for a in angles[:reps])
        betas = tuple(float(a) for a in angles[reps:])
        value = evaluator.evaluate(gammas, betas)
        record(gammas, betas, value)
        return -value

    # Coarse grid over the first layer (every layer shares the grid angle).
    # evaluate_grid vectorises over candidates in expectation mode and
    # degrades to per-candidate evaluation otherwise — one code path.
    grid = np.linspace(0.0, np.pi, grid_resolution, endpoint=False)[1:]
    best_value = -np.inf
    best_angles = np.full(2 * reps, np.pi / 8)
    if len(grid):
        candidate_gammas = np.repeat(grid, len(grid))
        candidate_betas = np.tile(grid, len(grid))
        values = evaluator.evaluate_grid(candidate_gammas, candidate_betas)
        for gamma, beta, value in zip(candidate_gammas, candidate_betas, values):
            record((gamma,) * reps, (beta,) * reps, float(value))
        best_index = int(np.argmax(values))
        best_value = float(values[best_index])
        best_angles = np.concatenate(
            [
                np.full(reps, candidate_gammas[best_index]),
                np.full(reps, candidate_betas[best_index]),
            ]
        )

    if refine:
        refinement = sciopt.minimize(
            objective,
            best_angles,
            method="Nelder-Mead",
            options={"maxiter": max_refine_iterations, "xatol": 1e-3, "fatol": 1e-3},
        )
        if -refinement.fun > best_value:
            best_value = -refinement.fun
            best_angles = refinement.x

    return QAOAOptimizationResult(
        best_gammas=tuple(float(a) for a in best_angles[:reps]),
        best_betas=tuple(float(a) for a in best_angles[reps:]),
        best_expected_cut=float(best_value),
        optimal_cut=float(optimal_cut),
        evaluations=evaluator.evaluations,
        history=history,
    )
