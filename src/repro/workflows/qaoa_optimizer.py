"""Classical outer loop optimising QAOA angles through the middle layer.

The intent artifacts (typed register, problem graph, measurement schema) are
built once; each optimisation step only re-binds the angles — the late-binding
pattern of Section 3 — and re-submits the bundle to whatever engine the
context names.  Both a grid search and a Nelder-Mead refinement (SciPy) are
provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sciopt

from ..core.bundle import package
from ..core.context import ContextDescriptor
from ..oplib.qaoa import bind_qaoa_parameters, qaoa_sequence
from ..backends.runtime import submit
from ..problems.maxcut import MaxCutProblem
from .maxcut import default_gate_context, maxcut_register

__all__ = ["QAOAOptimizationResult", "evaluate_angles", "optimize_qaoa"]


@dataclass
class QAOAOptimizationResult:
    """Outcome of a QAOA angle optimisation run."""

    best_gammas: Tuple[float, ...]
    best_betas: Tuple[float, ...]
    best_expected_cut: float
    optimal_cut: float
    evaluations: int
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def approximation_ratio(self) -> float:
        return self.best_expected_cut / self.optimal_cut if self.optimal_cut else 0.0


def evaluate_angles(
    problem: MaxCutProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
    *,
    context: Optional[ContextDescriptor] = None,
    register_id: str = "ising_vars",
) -> float:
    """Expected cut of one (gamma, beta) assignment on the configured engine."""
    qdt = maxcut_register(problem, register_id=register_id)
    template = qaoa_sequence(qdt, problem.edges, weights=problem.weights, reps=len(gammas))
    bound = bind_qaoa_parameters(template, list(gammas), list(betas))
    bundle = package(
        qdt,
        bound,
        context or default_gate_context(problem),
        name="maxcut-qaoa-eval",
        producer="repro.workflows.qaoa_optimizer",
    )
    result = submit(bundle)
    decoded = result.decoded().single()
    distribution = {o.bits: o.probability for o in decoded.outcomes}
    return problem.expected_cut_from_distribution(distribution)


def optimize_qaoa(
    problem: MaxCutProblem,
    *,
    reps: int = 1,
    context: Optional[ContextDescriptor] = None,
    grid_resolution: int = 8,
    refine: bool = True,
    max_refine_iterations: int = 30,
    seed: Optional[int] = 7,
) -> QAOAOptimizationResult:
    """Optimise the QAOA angles for *problem*.

    Strategy: coarse grid search over ``[0, pi)`` per angle (first layer only;
    deeper layers reuse the first layer's grid optimum as a starting point),
    optionally followed by Nelder-Mead refinement of all ``2 * reps`` angles.
    """
    optimal_cut, _ = problem.brute_force()
    history: List[Dict[str, float]] = []
    evaluations = 0

    def objective(angles: np.ndarray) -> float:
        nonlocal evaluations
        gammas = tuple(float(a) for a in angles[:reps])
        betas = tuple(float(a) for a in angles[reps:])
        value = evaluate_angles(problem, gammas, betas, context=context)
        evaluations += 1
        history.append(
            {"expected_cut": value, **{f"gamma_{i}": g for i, g in enumerate(gammas)},
             **{f"beta_{i}": b for i, b in enumerate(betas)}}
        )
        return -value

    # Coarse grid over the first layer.
    grid = np.linspace(0.0, np.pi, grid_resolution, endpoint=False)[1:]
    best_value = -np.inf
    best_angles = np.full(2 * reps, np.pi / 8)
    for gamma in grid:
        for beta in grid:
            candidate = np.full(2 * reps, 0.0)
            candidate[:reps] = gamma
            candidate[reps:] = beta
            value = -objective(candidate)
            if value > best_value:
                best_value = value
                best_angles = candidate

    if refine:
        refinement = sciopt.minimize(
            objective,
            best_angles,
            method="Nelder-Mead",
            options={"maxiter": max_refine_iterations, "xatol": 1e-3, "fatol": 1e-3},
        )
        if -refinement.fun > best_value:
            best_value = -refinement.fun
            best_angles = refinement.x

    return QAOAOptimizationResult(
        best_gammas=tuple(float(a) for a in best_angles[:reps]),
        best_betas=tuple(float(a) for a in best_angles[reps:]),
        best_expected_cut=float(best_value),
        optimal_cut=float(optimal_cut),
        evaluations=evaluations,
        history=history,
    )
