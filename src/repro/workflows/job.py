"""Artifact-directory workflows: the QDT.json / QOP.json / CTX.json / job.json flow.

Figures 2 and 3 of the paper show the proof-of-concept moving JSON files
between the middle-layer components and the backend.  These helpers write and
read exactly that layout, so the same workflow can be demonstrated (and
tested) on disk:

```
<directory>/
  QDT_<register>.json      one file per quantum data type
  QOP_<index>_<name>.json  one file per operator descriptor
  CTX.json                 the execution context
  job.json                 the packaged submission bundle
```
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.bundle import JobBundle, package
from ..core.context import ContextDescriptor
from ..core.qdt import QuantumDataType
from ..core.qod import OperatorSequence, QuantumOperatorDescriptor
from ..core.serialization import load_json, save_json
from ..backends.base import ExecutionResult
from ..backends.runtime import submit

__all__ = ["write_artifacts", "read_artifacts", "run_artifacts"]

PathLike = Union[str, Path]


def _qop_sort_key(path: Path) -> tuple:
    """Numeric-index sort key for ``QOP_<index>_<name>.json`` files.

    Lexicographic order breaks past the zero-padding width (``QOP_1000_*``
    sorts before ``QOP_999_*``), so the index is parsed as an integer; files
    with an unparsable index sort after the numbered ones, by name.
    """
    parts = path.name.split("_", 2)
    if len(parts) >= 2 and parts[1].isdigit():
        return (0, int(parts[1]), path.name)
    return (1, 0, path.name)


def write_artifacts(bundle: JobBundle, directory: PathLike) -> Dict[str, List[str]]:
    """Write the bundle and its individual descriptors into *directory*.

    Returns a manifest mapping artifact kinds to the written file names.
    Artifacts left over from a previous (larger) write — files a
    ``job.json``-less :func:`read_artifacts` would otherwise fold into the
    rebuilt bundle — are removed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, List[str]] = {"qdt": [], "qop": [], "ctx": [], "job": []}

    for qdt in bundle.qdts.values():
        path = directory / f"QDT_{qdt.id}.json"
        save_json(qdt.to_dict(), path)
        manifest["qdt"].append(path.name)
    for index, op in enumerate(bundle.operators):
        path = directory / f"QOP_{index:05d}_{op.name}.json"
        save_json(op.to_dict(), path)
        manifest["qop"].append(path.name)
    if bundle.context is not None:
        path = directory / "CTX.json"
        save_json(bundle.context.to_dict(), path)
        manifest["ctx"].append(path.name)
    job_path = directory / "job.json"
    bundle.save(job_path)
    manifest["job"].append(job_path.name)
    save_json(manifest, directory / "manifest.json")

    written = {name for names in manifest.values() for name in names}
    for stale in directory.glob("Q*_*.json"):
        if stale.name not in written:
            stale.unlink()
    if "CTX.json" not in written and (directory / "CTX.json").exists():
        (directory / "CTX.json").unlink()
    return manifest


def read_artifacts(directory: PathLike) -> JobBundle:
    """Rebuild a bundle from an artifact directory.

    The packaged ``job.json`` is authoritative; when absent, the bundle is
    reassembled from the individual QDT/QOP/CTX files.
    """
    directory = Path(directory)
    job_path = directory / "job.json"
    if job_path.exists():
        return JobBundle.load(job_path)

    qdts = [
        QuantumDataType.from_dict(load_json(path))
        for path in sorted(directory.glob("QDT_*.json"))
    ]
    operators = OperatorSequence(
        QuantumOperatorDescriptor.from_dict(load_json(path))
        for path in sorted(directory.glob("QOP_*.json"), key=_qop_sort_key)
    )
    ctx_path = directory / "CTX.json"
    context: Optional[ContextDescriptor] = (
        ContextDescriptor.from_dict(load_json(ctx_path)) if ctx_path.exists() else None
    )
    return package(qdts, operators, context, name=directory.name)


def run_artifacts(directory: PathLike) -> ExecutionResult:
    """Load the bundle stored in *directory* and submit it."""
    return submit(read_artifacts(directory))
