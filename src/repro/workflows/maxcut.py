"""End-to-end Max-Cut workflows: the paper's proof of concept as one call.

Two bundle builders produce the two formulations of Section 5 from the *same*
typed register:

* :func:`build_qaoa_bundle` — the gate path (Fig. 2): a QAOA descriptor stack
  plus a gate execution context.
* :func:`build_anneal_bundle` — the annealing path (Fig. 3): a single
  ``ISING_PROBLEM`` descriptor plus an anneal context.

:func:`solve_maxcut` packages, submits and decodes either path and reports the
statistics the paper quotes (optimal assignments, expected cut).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bundle import JobBundle, package
from ..core.context import AnnealPolicy, ContextDescriptor, ExecPolicy, TargetSpec
from ..core.qdt import QuantumDataType, ising_register
from ..core.qod import OperatorSequence
from ..backends.base import ExecutionResult
from ..backends.runtime import submit
from ..oplib.ising import ising_problem_operator
from ..oplib.qaoa import qaoa_sequence
from ..problems.maxcut import MaxCutProblem

__all__ = [
    "maxcut_register",
    "ring_coupling_map",
    "default_gate_context",
    "default_anneal_context",
    "build_qaoa_bundle",
    "build_anneal_bundle",
    "MaxCutSolution",
    "solve_maxcut",
]

# Optimal single-layer QAOA angles for the unit-weight 4-cycle under this
# library's phase convention (cost layer e^{-i*gamma*ZZ}, mixer e^{-i*beta*X}):
# expected cut ~= 3.0, the lower edge of the 3.0-3.2 window the paper reports.
DEFAULT_GAMMAS = (-0.39269908169872414,)  # -pi / 8
DEFAULT_BETAS = (0.39269908169872414,)  # pi / 8


def maxcut_register(problem: MaxCutProblem, *, register_id: str = "ising_vars") -> QuantumDataType:
    """The shared quantum data type of the proof of concept.

    Four decision variables with ``ISING_SPIN`` encoding, ``LSB_0`` ordering
    and ``AS_BOOL`` measurement semantics (Section 5) — generalised to the
    problem's node count.
    """
    return ising_register(register_id, problem.num_nodes, name="s")


def ring_coupling_map(n: int) -> List[Tuple[int, int]]:
    """The n-qubit ring coupling map (0-1-2-...-(n-1)-0) used by the gate context."""
    return [(i, (i + 1) % n) for i in range(n)]


def default_gate_context(
    problem: MaxCutProblem,
    *,
    samples: int = 4096,
    seed: Optional[int] = 42,
    constrain_target: bool = True,
    optimization_level: int = 2,
    variational_evaluation: Optional[str] = None,
) -> ContextDescriptor:
    """The Qiskit-style execution context of Fig. 2 (ring coupling map).

    ``variational_evaluation`` optionally selects the evaluation mode of the
    QAOA outer loop (``"sampled"`` | ``"expectation"``; see
    :mod:`repro.workflows.qaoa_optimizer`) — ``"expectation"`` turns every
    optimisation step into an exact, shot-free observable expectation and
    unlocks the batched parameter-grid sweep.  ``None`` (the default) leaves
    the option unset, which means sampled.
    """
    target = (
        TargetSpec(
            basis_gates=["sx", "rz", "cx"],
            coupling_map=ring_coupling_map(problem.num_nodes),
        )
        if constrain_target
        else None
    )
    options: Dict[str, object] = {"optimization_level": optimization_level}
    if variational_evaluation is not None:
        options["variational_evaluation"] = str(variational_evaluation)
    return ContextDescriptor(
        exec=ExecPolicy(
            engine="gate.aer_simulator",
            samples=samples,
            seed=seed,
            target=target,
            options=options,
        )
    )


def default_anneal_context(
    *,
    num_reads: int = 1000,
    num_sweeps: int = 1000,
    seed: Optional[int] = 42,
) -> ContextDescriptor:
    """The D-Wave-Ocean-style execution context of Fig. 3."""
    return ContextDescriptor(
        exec=ExecPolicy(engine="anneal.simulated_annealer", samples=num_reads, seed=seed),
        anneal=AnnealPolicy(num_reads=num_reads, num_sweeps=num_sweeps, seed=seed),
    )


def build_qaoa_bundle(
    problem: MaxCutProblem,
    *,
    gammas: Sequence[float] = DEFAULT_GAMMAS,
    betas: Sequence[float] = DEFAULT_BETAS,
    context: Optional[ContextDescriptor] = None,
    register_id: str = "ising_vars",
    name: str = "maxcut-qaoa",
) -> JobBundle:
    """Package the gate-path formulation: QAOA stack + gate context."""
    qdt = maxcut_register(problem, register_id=register_id)
    sequence = qaoa_sequence(
        qdt,
        problem.edges,
        weights=problem.weights,
        gammas=list(gammas),
        betas=list(betas),
    )
    return package(
        qdt,
        sequence,
        context or default_gate_context(problem),
        name=name,
        producer="repro.workflows.maxcut",
        metadata={"problem": "maxcut", "nodes": problem.num_nodes, "formulation": "qaoa"},
    )


def build_anneal_bundle(
    problem: MaxCutProblem,
    *,
    context: Optional[ContextDescriptor] = None,
    register_id: str = "ising_vars",
    name: str = "maxcut-ising",
) -> JobBundle:
    """Package the annealing-path formulation: one Ising descriptor + anneal context."""
    qdt = maxcut_register(problem, register_id=register_id)
    h, edges, weights, constant = problem.to_ising()
    operator = ising_problem_operator(
        qdt, h=h, edges=edges, weights=weights, constant=constant, name="maxcut_ising"
    )
    return package(
        qdt,
        OperatorSequence([operator]),
        context or default_anneal_context(),
        name=name,
        producer="repro.workflows.maxcut",
        metadata={"problem": "maxcut", "nodes": problem.num_nodes, "formulation": "ising"},
    )


@dataclass
class MaxCutSolution:
    """Decoded outcome of one Max-Cut execution."""

    problem: MaxCutProblem
    result: ExecutionResult
    expected_cut: float
    best_cut: float
    best_assignments: List[str]
    optimal_cut: float
    cut_distribution: Dict[str, float] = field(default_factory=dict)

    @property
    def approximation_ratio(self) -> float:
        """Expected cut divided by the exhaustive optimum."""
        return self.expected_cut / self.optimal_cut if self.optimal_cut else 0.0

    @property
    def found_optimum(self) -> bool:
        """Whether at least one observed assignment achieves the optimal cut."""
        return abs(self.best_cut - self.optimal_cut) < 1e-9


def _summarise(problem: MaxCutProblem, result: ExecutionResult) -> MaxCutSolution:
    decoded = result.decoded().single()
    distribution: Dict[str, float] = {}
    for outcome in decoded.outcomes:
        distribution[outcome.bits] = distribution.get(outcome.bits, 0.0) + outcome.probability
    expected_cut = problem.expected_cut_from_distribution(distribution)
    best_bits = max(distribution, key=lambda bits: problem.cut_value(bits))
    best_cut = problem.cut_value(best_bits)
    best_assignments = sorted(
        bits for bits in distribution if abs(problem.cut_value(bits) - best_cut) < 1e-9
    )
    optimal_cut, _ = problem.brute_force()
    return MaxCutSolution(
        problem=problem,
        result=result,
        expected_cut=expected_cut,
        best_cut=best_cut,
        best_assignments=best_assignments,
        optimal_cut=optimal_cut,
        cut_distribution=distribution,
    )


def solve_maxcut(
    problem: MaxCutProblem,
    *,
    formulation: str = "qaoa",
    context: Optional[ContextDescriptor] = None,
    gammas: Sequence[float] = DEFAULT_GAMMAS,
    betas: Sequence[float] = DEFAULT_BETAS,
) -> MaxCutSolution:
    """Run the proof of concept on one path and summarise the decoded results.

    ``formulation`` selects the operator formulation: ``"qaoa"`` (gate path)
    or ``"ising"`` (annealing path).  Everything else — the typed register,
    the decoding schema, the problem graph — is shared.
    """
    if formulation == "qaoa":
        bundle = build_qaoa_bundle(problem, gammas=gammas, betas=betas, context=context)
    elif formulation == "ising":
        bundle = build_anneal_bundle(problem, context=context)
    else:
        raise ValueError(f"unknown formulation {formulation!r}; use 'qaoa' or 'ising'")
    result = submit(bundle)
    return _summarise(problem, result)
