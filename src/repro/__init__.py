"""repro — a technology-agnostic quantum middle layer.

Reproduction of Markidis, Netzer, Pennati & Peng, *An HPC-Inspired Blueprint
for a Technology-Agnostic Quantum Middle Layer* (SC Workshops '25).

The public API follows the paper's four components:

* **Quantum data types** (:mod:`repro.core.qdt`) — typed registers with
  explicit meaning.
* **Quantum operator descriptors** (:mod:`repro.core.qod`,
  :mod:`repro.oplib`) — logical transformations with parameters, cost hints
  and result schemas.
* **Context descriptors** (:mod:`repro.core.context`) — execution policy,
  orthogonal to semantics, plus orthogonal context services
  (:mod:`repro.services`).
* **Algorithmic libraries and packaging** (:mod:`repro.oplib`,
  :mod:`repro.core.bundle`) — constructors that emit descriptor sequences and
  bundle them into ``job.json`` submissions consumed by backends
  (:mod:`repro.backends`).

Quickstart::

    from repro import MaxCutProblem, solve_maxcut

    problem = MaxCutProblem.cycle(4)
    gate = solve_maxcut(problem, formulation="qaoa")
    anneal = solve_maxcut(problem, formulation="ising")
    print(gate.expected_cut, anneal.best_assignments)
"""

from .core import (
    AnnealPolicy,
    BitOrder,
    CommPolicy,
    ContextDescriptor,
    CostHint,
    EncodingKind,
    ExecPolicy,
    JobBundle,
    MeasurementSemantics,
    MiddleLayerError,
    OperatorSequence,
    PulsePolicy,
    QECPolicy,
    QuantumDataType,
    QuantumOperatorDescriptor,
    ResultSchema,
    TargetSpec,
    boolean_register,
    integer_register,
    ising_register,
    package,
    phase_register,
    verify,
)
from .backends import ExecutionResult, get_backend, list_engines, register_backend, submit
from .oplib import (
    ising_problem_operator,
    measurement,
    prep_uniform,
    qaoa_sequence,
    qft_operator,
)
from .problems import MaxCutProblem
from .results import Counts, SampleSet, decode_counts
from .workflows import solve_maxcut

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core descriptors
    "QuantumDataType",
    "EncodingKind",
    "BitOrder",
    "MeasurementSemantics",
    "QuantumOperatorDescriptor",
    "OperatorSequence",
    "ResultSchema",
    "CostHint",
    "ContextDescriptor",
    "ExecPolicy",
    "TargetSpec",
    "QECPolicy",
    "AnnealPolicy",
    "CommPolicy",
    "PulsePolicy",
    "JobBundle",
    "package",
    "verify",
    "MiddleLayerError",
    # register constructors
    "phase_register",
    "integer_register",
    "boolean_register",
    "ising_register",
    # algorithmic libraries
    "qft_operator",
    "qaoa_sequence",
    "ising_problem_operator",
    "prep_uniform",
    "measurement",
    # execution
    "submit",
    "get_backend",
    "list_engines",
    "register_backend",
    "ExecutionResult",
    # results
    "Counts",
    "SampleSet",
    "decode_counts",
    # problems & workflows
    "MaxCutProblem",
    "solve_maxcut",
]
