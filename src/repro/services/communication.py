"""Orthogonal communication service: multi-QPU partitioning and teleportation.

When the execution context declares a distributed policy (``comm`` block:
several QPUs of bounded capacity, teleportation allowed), this service decides
which register carriers live on which QPU and counts the entangling
operations that cross the partition — each crossing needs one EPR pair and a
teleported (remote) gate.  The output is a plan the scheduler and cost model
can consume; no actual networking is simulated, matching the blueprint's
scope (communication is a *service the context binds*, not program
semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from ..core.bundle import JobBundle
from ..core.context import CommPolicy
from ..core.errors import ServiceError

__all__ = ["CommunicationPlan", "CommunicationService", "interaction_graph"]


def interaction_graph(bundle: JobBundle) -> nx.Graph:
    """Carrier-level interaction graph of a bundle.

    Nodes are global carrier indices (registers allocated contiguously in
    declaration order); an edge's weight counts how many two-carrier
    interactions the operator sequence requests between them.
    """
    offsets: Dict[str, int] = {}
    next_index = 0
    for register_id, qdt in bundle.qdts.items():
        offsets[register_id] = next_index
        next_index += qdt.width
    graph = nx.Graph()
    graph.add_nodes_from(range(next_index))

    def add(u: int, v: int) -> None:
        if graph.has_edge(u, v):
            graph[u][v]["weight"] += 1.0
        else:
            graph.add_edge(u, v, weight=1.0)

    for op in bundle.operators:
        register = op.primary_register
        base = offsets[register]
        edges = op.params.get("edges")
        if edges:
            for i, j in edges:
                add(base + int(i), base + int(j))
            continue
        if op.rep_kind == "QFT_TEMPLATE":
            width = bundle.qdts[register].width
            for i in range(width):
                for j in range(i + 1, width):
                    add(base + i, base + j)
            continue
        if len(op.registers) > 1:
            # Cross-register operators couple carriers pairwise by index.
            registers = op.registers
            for a_idx in range(len(registers) - 1):
                reg_a, reg_b = registers[a_idx], registers[a_idx + 1]
                width = min(bundle.qdts[reg_a].width, bundle.qdts[reg_b].width)
                for c in range(width):
                    add(offsets[reg_a] + c, offsets[reg_b] + c)
    return graph


@dataclass
class CommunicationPlan:
    """Partitioning decision plus its communication cost."""

    num_qpus: int
    assignment: Dict[int, int]  # carrier -> QPU index
    cut_edges: List[Tuple[int, int]] = field(default_factory=list)
    epr_pairs: int = 0
    teleported_gates: int = 0
    estimated_fidelity: float = 1.0

    def carriers_on(self, qpu: int) -> List[int]:
        return sorted(c for c, q in self.assignment.items() if q == qpu)

    @property
    def is_distributed(self) -> bool:
        return self.num_qpus > 1 and bool(self.cut_edges)


class CommunicationService:
    """Partition bundles across QPUs under a :class:`CommPolicy`."""

    def plan(self, bundle: JobBundle, policy: Optional[CommPolicy] = None) -> CommunicationPlan:
        """Assign carriers to QPUs and count the resulting remote operations."""
        if policy is None:
            policy = bundle.context.comm if bundle.context is not None else None
        if policy is None:
            policy = CommPolicy()

        graph = interaction_graph(bundle)
        total_carriers = graph.number_of_nodes()
        required_qpus = max(1, -(-total_carriers // policy.qpu_capacity))  # ceil division
        if required_qpus > policy.max_qpus:
            raise ServiceError(
                f"{total_carriers} carriers need {required_qpus} QPUs of capacity "
                f"{policy.qpu_capacity}, but the policy allows only {policy.max_qpus}"
            )
        num_qpus = required_qpus
        if num_qpus == 1:
            assignment = {c: 0 for c in graph.nodes}
            return CommunicationPlan(num_qpus=1, assignment=assignment)

        if not policy.allow_teleportation:
            raise ServiceError(
                "the bundle does not fit on a single QPU and teleportation is disallowed"
            )

        assignment = self._partition(graph, num_qpus, policy.qpu_capacity)
        cut_edges = [
            (u, v) for u, v in graph.edges if assignment[u] != assignment[v]
        ]
        teleported = int(sum(graph[u][v]["weight"] for u, v in cut_edges))
        fidelity = policy.epr_fidelity ** teleported
        return CommunicationPlan(
            num_qpus=num_qpus,
            assignment=assignment,
            cut_edges=cut_edges,
            epr_pairs=teleported,
            teleported_gates=teleported,
            estimated_fidelity=fidelity,
        )

    def _partition(
        self, graph: nx.Graph, num_qpus: int, capacity: int
    ) -> Dict[int, int]:
        """Recursive Kernighan-Lin bisection into balanced, capacity-bounded parts."""
        parts: List[List[int]] = [list(graph.nodes)]
        while len(parts) < num_qpus:
            # Split the largest part.
            parts.sort(key=len, reverse=True)
            largest = parts.pop(0)
            if len(largest) <= 1:
                parts.append(largest)
                break
            subgraph = graph.subgraph(largest)
            left, right = nx.algorithms.community.kernighan_lin_bisection(
                subgraph, weight="weight", seed=0
            )
            parts.extend([sorted(left), sorted(right)])
        # Enforce capacity by moving overflow carriers to the emptiest part.
        parts.sort(key=len, reverse=True)
        for part in parts:
            while len(part) > capacity:
                target = min(parts, key=len)
                if target is part:
                    raise ServiceError("cannot satisfy QPU capacity constraints")
                target.append(part.pop())
        assignment: Dict[int, int] = {}
        for index, part in enumerate(parts):
            for carrier in part:
                assignment[carrier] = index
        return assignment
