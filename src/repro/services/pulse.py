"""Orthogonal pulse service: lowering circuits to device-level pulse schedules.

The pulse path is one of the "realization hooks" the blueprint anticipates:
calibrated, device-specific realizations reached through an explicit pulse
context, never implicitly.  Without hardware, the service produces a timed
schedule — which channel plays which envelope when — using the context's
``dt`` and per-gate durations, with ASAP (as-soon-as-possible) scheduling per
qubit.  Its output feeds duration estimates back into cost hints and the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.context import PulsePolicy
from ..core.errors import ServiceError
from ..simulators.gate.circuit import Circuit

__all__ = ["PulseInstruction", "PulseSchedule", "PulseService", "DEFAULT_GATE_DURATIONS_NS"]

# Typical transmon-era gate durations (nanoseconds).  ``rz`` is virtual.
DEFAULT_GATE_DURATIONS_NS: Dict[str, float] = {
    "rz": 0.0,
    "p": 0.0,
    "z": 0.0,
    "s": 0.0,
    "sdg": 0.0,
    "t": 0.0,
    "tdg": 0.0,
    "id": 0.0,
    "x": 35.5,
    "y": 35.5,
    "sx": 35.5,
    "sxdg": 35.5,
    "h": 71.0,
    "rx": 71.0,
    "ry": 71.0,
    "u": 71.0,
    "cx": 300.0,
    "cz": 300.0,
    "cy": 300.0,
    "ch": 340.0,
    "cp": 340.0,
    "crx": 340.0,
    "cry": 340.0,
    "crz": 340.0,
    "swap": 900.0,
    "iswap": 600.0,
    "rzz": 340.0,
    "rxx": 340.0,
    "ryy": 340.0,
    "ccx": 1200.0,
    "ccz": 1200.0,
    "cswap": 1500.0,
    "measure": 1000.0,
    "reset": 1000.0,
}


@dataclass(frozen=True)
class PulseInstruction:
    """One scheduled envelope on one drive/control channel."""

    channel: str
    gate: str
    qubits: Tuple[int, ...]
    start_ns: float
    duration_ns: float
    shape: str
    params: Tuple[float, ...] = ()

    @property
    def stop_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass
class PulseSchedule:
    """A timed list of pulse instructions."""

    instructions: List[PulseInstruction] = field(default_factory=list)
    dt_ns: float = 0.222

    @property
    def duration_ns(self) -> float:
        """Total schedule duration (end of the latest instruction)."""
        return max((inst.stop_ns for inst in self.instructions), default=0.0)

    @property
    def num_samples(self) -> int:
        """Duration expressed in sampler ticks of size ``dt_ns``."""
        return int(round(self.duration_ns / self.dt_ns)) if self.dt_ns > 0 else 0

    def on_channel(self, channel: str) -> List[PulseInstruction]:
        return [inst for inst in self.instructions if inst.channel == channel]

    def channels(self) -> List[str]:
        return sorted({inst.channel for inst in self.instructions})


class PulseService:
    """Lower gate circuits into ASAP-scheduled pulse schedules."""

    def __init__(self, policy: Optional[PulsePolicy] = None):
        self.policy = policy or PulsePolicy()

    def _duration(self, name: str) -> float:
        overrides = self.policy.gate_durations_ns
        if name in overrides:
            return float(overrides[name])
        if name in DEFAULT_GATE_DURATIONS_NS:
            return DEFAULT_GATE_DURATIONS_NS[name]
        raise ServiceError(f"no pulse duration known for gate {name!r}")

    def schedule(self, circuit: Circuit) -> PulseSchedule:
        """ASAP-schedule every instruction of *circuit* onto drive channels.

        Single-qubit gates play on ``d<q>``; multi-qubit gates occupy the
        control channel ``u<q0>_<q1>`` *and* block every involved qubit;
        measurements play on ``m<q>``.
        """
        qubit_free_at: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
        schedule = PulseSchedule(dt_ns=self.policy.dt_ns)
        for inst in circuit.instructions:
            if inst.name == "barrier":
                barrier_time = max((qubit_free_at[q] for q in inst.qubits), default=0.0)
                for q in inst.qubits:
                    qubit_free_at[q] = barrier_time
                continue
            duration = self._duration(inst.name)
            start = max(qubit_free_at[q] for q in inst.qubits)
            if inst.name == "measure":
                channel = f"m{inst.qubits[0]}"
            elif len(inst.qubits) == 1:
                channel = f"d{inst.qubits[0]}"
            else:
                channel = "u" + "_".join(str(q) for q in inst.qubits)
            if duration > 0.0:
                schedule.instructions.append(
                    PulseInstruction(
                        channel=channel,
                        gate=inst.name,
                        qubits=inst.qubits,
                        start_ns=start,
                        duration_ns=duration,
                        shape=self.policy.shape,
                        params=inst.params,
                    )
                )
            for q in inst.qubits:
                qubit_free_at[q] = start + duration
        return schedule

    def estimated_duration_ns(self, circuit: Circuit) -> float:
        """Total wall-clock duration of the pulse realization of *circuit*."""
        return self.schedule(circuit).duration_ns
