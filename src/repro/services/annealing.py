"""Orthogonal annealing service: hardware-graph embedding and submission.

Real annealers expose a fixed hardware topology (D-Wave's Chimera/Pegasus);
logical problem variables must be *minor-embedded* onto chains of physical
qubits before submission.  This service provides:

* :func:`chimera_graph` — a Chimera-style target topology generator,
* :class:`EmbeddingService` — a greedy path-based minor embedder that reports
  the chains, physical qubit usage and maximum chain length,
* :class:`AnnealingSubmissionService` — applies the embedding bookkeeping and
  forwards the (logical) problem to the simulated annealer, mirroring how the
  middle layer would hand an ``ISING_PROBLEM`` descriptor to a hardware
  backend while keeping the descriptor itself untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.errors import ServiceError
from ..results.sampleset import SampleSet
from ..simulators.anneal.bqm import BinaryQuadraticModel
from ..simulators.anneal.sampler import SimulatedAnnealingSampler

__all__ = ["chimera_graph", "Embedding", "EmbeddingService", "AnnealingSubmissionService"]


def chimera_graph(rows: int, cols: Optional[int] = None, shore: int = 4) -> nx.Graph:
    """A Chimera-like topology: a rows x cols grid of K_{shore,shore} unit cells.

    Within a cell, every "left" qubit couples to every "right" qubit; left
    qubits couple to the matching left qubits of vertical neighbours, right
    qubits to horizontal neighbours (the D-Wave Chimera wiring).
    """
    cols = rows if cols is None else cols
    if rows < 1 or cols < 1 or shore < 1:
        raise ServiceError("chimera_graph needs positive dimensions")
    graph = nx.Graph()

    def node(r: int, c: int, side: int, k: int) -> int:
        return ((r * cols + c) * 2 + side) * shore + k

    for r in range(rows):
        for c in range(cols):
            for k_left in range(shore):
                for k_right in range(shore):
                    graph.add_edge(node(r, c, 0, k_left), node(r, c, 1, k_right))
            if r + 1 < rows:
                for k in range(shore):
                    graph.add_edge(node(r, c, 0, k), node(r + 1, c, 0, k))
            if c + 1 < cols:
                for k in range(shore):
                    graph.add_edge(node(r, c, 1, k), node(r, c + 1, 1, k))
    return graph


@dataclass
class Embedding:
    """A minor embedding: each logical variable owns a chain of physical qubits."""

    chains: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def num_logical(self) -> int:
        return len(self.chains)

    @property
    def num_physical(self) -> int:
        return sum(len(chain) for chain in self.chains.values())

    @property
    def max_chain_length(self) -> int:
        return max((len(chain) for chain in self.chains.values()), default=0)

    def physical_qubits(self) -> List[int]:
        return sorted(q for chain in self.chains.values() for q in chain)

    def validate(self, problem_graph: nx.Graph, target_graph: nx.Graph) -> None:
        """Check the defining properties of a minor embedding."""
        used: Dict[int, int] = {}
        for variable, chain in self.chains.items():
            if not chain:
                raise ServiceError(f"variable {variable} has an empty chain")
            for qubit in chain:
                if qubit in used:
                    raise ServiceError(
                        f"physical qubit {qubit} used by variables {used[qubit]} and {variable}"
                    )
                used[qubit] = variable
            if len(chain) > 1 and not nx.is_connected(target_graph.subgraph(chain)):
                raise ServiceError(f"chain of variable {variable} is not connected")
        for u, v in problem_graph.edges:
            if not any(
                target_graph.has_edge(a, b)
                for a in self.chains[u]
                for b in self.chains[v]
            ):
                raise ServiceError(f"problem edge ({u}, {v}) has no physical coupler")


class EmbeddingService:
    """Greedy path-based minor embedding onto a target hardware graph."""

    def embed(self, problem_graph: nx.Graph, target_graph: nx.Graph) -> Embedding:
        """Embed *problem_graph* into *target_graph*, growing chains as needed."""
        if problem_graph.number_of_nodes() > target_graph.number_of_nodes():
            raise ServiceError("target graph has fewer qubits than the problem has variables")
        order = sorted(problem_graph.nodes, key=lambda n: -problem_graph.degree[n])
        chains: Dict[int, List[int]] = {}
        used: set[int] = set()

        for variable in order:
            mapped_neighbors = [n for n in problem_graph.neighbors(variable) if n in chains]
            if not mapped_neighbors:
                candidate = max(
                    (n for n in target_graph.nodes if n not in used),
                    key=lambda n: target_graph.degree[n],
                    default=None,
                )
                if candidate is None:
                    raise ServiceError("ran out of physical qubits during embedding")
                chains[variable] = [candidate]
                used.add(candidate)
                continue
            chain, extra_used = self._grow_chain(
                target_graph, used, [chains[n] for n in mapped_neighbors]
            )
            chains[variable] = chain
            used.update(extra_used)

        embedding = Embedding(chains=chains)
        embedding.validate(problem_graph, target_graph)
        return embedding

    def _grow_chain(
        self,
        target: nx.Graph,
        used: set,
        neighbor_chains: Sequence[List[int]],
    ) -> Tuple[List[int], List[int]]:
        """Pick a free root adjacent-or-near every mapped neighbour chain.

        The chain starts at the free qubit minimising total shortest-path
        distance to the neighbour chains (paths through free qubits only),
        then absorbs the interior qubits of those paths.
        """
        free_nodes = [n for n in target.nodes if n not in used]
        if not free_nodes:
            raise ServiceError("ran out of physical qubits during embedding")
        free_graph_nodes = set(free_nodes)

        best_root, best_paths, best_score = None, None, None
        for root in free_nodes:
            paths = []
            score = 0
            feasible = True
            for chain in neighbor_chains:
                # Shortest path from root to any qubit of the neighbour chain,
                # travelling through free qubits (plus the chain endpoints).
                allowed = free_graph_nodes | set(chain)
                sub = target.subgraph(allowed)
                try:
                    path = min(
                        (nx.shortest_path(sub, root, q) for q in chain if q in sub),
                        key=len,
                    )
                except (ValueError, nx.NetworkXNoPath, nx.NodeNotFound):
                    feasible = False
                    break
                paths.append(path)
                score += len(path)
            if feasible and (best_score is None or score < best_score):
                best_root, best_paths, best_score = root, paths, score
        if best_root is None:
            raise ServiceError("could not embed: no connected placement found")

        chain = [best_root]
        extra = [best_root]
        for path in best_paths:
            # Interior nodes of the path (excluding the root and the neighbour's qubit)
            for node in path[1:-1]:
                if node not in chain:
                    chain.append(node)
                    extra.append(node)
        return chain, extra


class AnnealingSubmissionService:
    """Embed (for accounting) and submit an Ising problem to the annealer."""

    def __init__(self, sampler: Optional[SimulatedAnnealingSampler] = None):
        self.sampler = sampler or SimulatedAnnealingSampler()
        self.embedder = EmbeddingService()

    def submit(
        self,
        bqm: BinaryQuadraticModel,
        *,
        target_graph: Optional[nx.Graph] = None,
        num_reads: int = 1000,
        num_sweeps: int = 1000,
        seed: Optional[int] = None,
    ) -> Tuple[SampleSet, Optional[Embedding]]:
        """Sample *bqm*; when a target graph is given, also report the embedding."""
        embedding = None
        if target_graph is not None:
            problem_graph = nx.Graph()
            problem_graph.add_nodes_from(range(bqm.num_variables))
            index = {v: i for i, v in enumerate(bqm.variables)}
            for (u, v), _ in bqm.quadratic.items():
                problem_graph.add_edge(index[u], index[v])
            embedding = self.embedder.embed(problem_graph, target_graph)
        sampleset = self.sampler.sample(
            bqm, num_reads=num_reads, num_sweeps=num_sweeps, seed=seed
        )
        return sampleset, embedding
