"""Orthogonal QEC service: surface-code resource and logical-error modelling.

The middle layer treats error correction as an execution context (Section
4.3.2, Listing 5): operator descriptors stay purely logical, and an
orthogonal QEC service binds logical registers to code patches, counts
syndrome-extraction rounds and estimates logical error rates.  Since no
fault-tolerant hardware is available, the service is a *resource model*: it
answers the questions the middle layer and its scheduler actually ask —
how many physical qubits, how long, and with what logical failure
probability — using the standard surface-code scaling laws.

Model
-----
* physical qubits per logical patch (rotated surface code): ``2 d^2 - 1``,
* logical error rate per patch per round:
  ``p_L = A * (p / p_th)^((d + 1) / 2)`` with ``A = 0.1`` and threshold
  ``p_th = 1e-2``,
* syndrome rounds per logical operation layer: ``d``.

Executable cycles
-----------------
Since PR 7 the service is no longer *only* a closed-form model: the
stabilizer tableau engine (``trajectory_engine="stabilizer"``) executes real
repetition-code and rotated-surface-code syndrome-extraction cycles at
50-1000+ qubits.  :func:`repetition_code_circuit`,
:func:`code_capacity_repetition_circuit` and
:func:`surface_code_cycle_circuit` build the Clifford cycle circuits;
:meth:`QECService.run_repetition_memory` samples them under depolarizing
noise, majority-vote decodes the final data readout (exact minimum-weight
decoding for the repetition code) and reports the measured logical error
rate next to the closed-form prediction of :class:`RepetitionCodeModel` —
the anchor the QEC regression tests and ``benchmarks/bench_stabilizer.py``
hold the engine against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..core.bundle import JobBundle
from ..core.context import QECPolicy
from ..core.cost import CostHint
from ..core.errors import ServiceError
from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from ..simulators.gate.circuit import Circuit
from ..simulators.gate.noise import NoiseModel
from ..simulators.gate.statevector import StatevectorSimulator

__all__ = [
    "SurfaceCodeModel",
    "RepetitionCodeModel",
    "QECPlan",
    "QECCycleResult",
    "QECService",
    "repetition_code_circuit",
    "code_capacity_repetition_circuit",
    "surface_code_cycle_circuit",
    "surface_code_stabilizers",
]

_DEFAULT_THRESHOLD = 1e-2
_DEFAULT_PREFACTOR = 0.1


@dataclass
class SurfaceCodeModel:
    """Scaling laws of a (rotated) surface code."""

    threshold: float = _DEFAULT_THRESHOLD
    prefactor: float = _DEFAULT_PREFACTOR

    def physical_qubits_per_logical(self, distance: int) -> int:
        """Data + syndrome qubits of one distance-d patch."""
        self._check_distance(distance)
        return 2 * distance * distance - 1

    def logical_error_rate(self, distance: int, physical_error_rate: float) -> float:
        """Logical error probability per patch per syndrome round."""
        self._check_distance(distance)
        if not 0 < physical_error_rate <= 1:
            raise ServiceError("physical_error_rate must lie in (0, 1]")
        ratio = physical_error_rate / self.threshold
        return float(self.prefactor * ratio ** ((distance + 1) / 2))

    def distance_for_target(
        self, physical_error_rate: float, target_logical_rate: float, *, max_distance: int = 101
    ) -> int:
        """Smallest odd distance achieving *target_logical_rate* per round."""
        if physical_error_rate >= self.threshold:
            raise ServiceError(
                "physical error rate is at or above threshold; no distance suffices"
            )
        for distance in range(3, max_distance + 1, 2):
            if self.logical_error_rate(distance, physical_error_rate) <= target_logical_rate:
                return distance
        raise ServiceError(
            f"no distance <= {max_distance} reaches logical rate {target_logical_rate}"
        )

    @staticmethod
    def _check_distance(distance: int) -> None:
        if distance < 3 or distance % 2 == 0:
            raise ServiceError("surface-code distance must be an odd integer >= 3")


@dataclass
class RepetitionCodeModel:
    """Closed-form logical error rate of the bit-flip repetition code.

    Under code-capacity depolarizing noise (one independent depolarizing
    opportunity of strength ``p`` per data qubit, perfect measurement), a
    data qubit suffers a *bit flip* with probability ``q = 2 p / 3`` (the X
    and Y branches of the channel; Z acts trivially on the Z-basis readout).
    Majority-vote decoding — exact minimum-weight decoding for this code —
    fails exactly when more than ``(d - 1) / 2`` of the ``d`` data qubits
    flipped, so the logical error rate is the binomial tail
    ``sum_{k > (d-1)/2} C(d, k) q^k (1 - q)^(d - k)``.  This is the exact
    distribution the stabilizer engine samples in code-capacity mode, which
    makes it a tight statistical anchor for the QEC regression tests.
    """

    def bitflip_probability(self, physical_error_rate: float) -> float:
        """The per-qubit Z-readout flip probability ``q = 2 p / 3``."""
        if not 0 <= physical_error_rate <= 1:
            raise ServiceError("physical_error_rate must lie in [0, 1]")
        return 2.0 * physical_error_rate / 3.0

    def logical_error_rate(self, distance: int, physical_error_rate: float) -> float:
        """Exact majority-vote failure probability at code capacity."""
        if distance < 3 or distance % 2 == 0:
            raise ServiceError("repetition-code distance must be an odd integer >= 3")
        q = self.bitflip_probability(physical_error_rate)
        return float(
            sum(
                math.comb(distance, k) * q**k * (1.0 - q) ** (distance - k)
                for k in range((distance + 1) // 2, distance + 1)
            )
        )


@dataclass
class QECPlan:
    """Resource plan produced by :meth:`QECService.plan`."""

    policy: QECPolicy
    logical_qubits: int
    physical_qubits_per_logical: int
    total_physical_qubits: int
    logical_depth: int
    syndrome_rounds: int
    execution_time_us: float
    logical_error_rate_per_round: float
    failure_probability: float
    patch_assignment: Dict[str, List[int]] = field(default_factory=dict)
    unsupported_logical_gates: List[str] = field(default_factory=list)

    @property
    def overhead_factor(self) -> float:
        """Physical qubits per logical qubit actually used."""
        return self.total_physical_qubits / max(1, self.logical_qubits)


@dataclass
class QECCycleResult:
    """One executed memory experiment on the stabilizer engine.

    ``logical_error_rate`` is the fraction of (shot, patch) instances whose
    majority-vote-decoded data readout differs from the encoded logical 0;
    ``predicted_logical_error_rate`` is the closed-form anchor (exact for
    code-capacity runs, ``None`` for circuit-level runs where no closed form
    applies).
    """

    distance: int
    rounds: int
    patches: int
    num_qubits: int
    shots: int
    physical_error_rate: float
    logical_failures: int
    logical_error_rate: float
    predicted_logical_error_rate: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)


def repetition_code_circuit(distance: int, rounds: int = 1, patches: int = 1) -> Circuit:
    """Bit-flip repetition-code memory circuit (circuit-level cycles).

    Each of the *patches* independent patches uses ``d`` data qubits plus
    ``d - 1`` syndrome ancillas (``2 d - 1`` physical qubits per patch — four
    distance-7 patches cross the 50-qubit line).  Every round extracts each
    neighbouring-pair ZZ parity with two CX gates into a fresh ancilla,
    measures and resets it; after the last round every data qubit is read
    out.  Clbit layout per patch: ``rounds * (d - 1)`` syndrome bits (round
    major, ancilla minor) followed by the ``d`` data bits.  All gates are
    Clifford, so the circuit runs on the stabilizer engine at any width.
    """
    if distance < 3 or distance % 2 == 0:
        raise ServiceError("repetition-code distance must be an odd integer >= 3")
    if rounds < 1 or patches < 1:
        raise ServiceError("rounds and patches must be >= 1")
    qubits_per_patch = 2 * distance - 1
    clbits_per_patch = rounds * (distance - 1) + distance
    circuit = Circuit(
        patches * qubits_per_patch,
        patches * clbits_per_patch,
        name=f"repetition_d{distance}_r{rounds}x{patches}",
    )
    for patch in range(patches):
        q0 = patch * qubits_per_patch
        c0 = patch * clbits_per_patch
        data = [q0 + j for j in range(distance)]
        ancilla = [q0 + distance + j for j in range(distance - 1)]
        for rnd in range(rounds):
            for j in range(distance - 1):
                circuit.cx(data[j], ancilla[j])
                circuit.cx(data[j + 1], ancilla[j])
                circuit.measure(ancilla[j], c0 + rnd * (distance - 1) + j)
                circuit.reset(ancilla[j])
        for j in range(distance):
            circuit.measure(data[j], c0 + rounds * (distance - 1) + j)
    return circuit


def code_capacity_repetition_circuit(distance: int, patches: int = 1) -> Circuit:
    """Code-capacity repetition-code probe: one noisy ``id`` per data qubit.

    No ancillas and no mid-circuit measurement — each patch is ``d`` data
    qubits that suffer exactly one depolarizing opportunity (the simulator
    attaches its per-gate channel to the ``id``) and are then read out.
    The decoded logical error rate of this circuit follows the
    :class:`RepetitionCodeModel` binomial tail *exactly*, which is what the
    tight statistical regression tests assert.  Clbit layout per patch: the
    ``d`` data bits.
    """
    if distance < 3 or distance % 2 == 0:
        raise ServiceError("repetition-code distance must be an odd integer >= 3")
    if patches < 1:
        raise ServiceError("patches must be >= 1")
    circuit = Circuit(
        patches * distance,
        patches * distance,
        name=f"repetition_cc_d{distance}x{patches}",
    )
    for patch in range(patches):
        for j in range(distance):
            qubit = patch * distance + j
            circuit.append("id", [qubit])
            circuit.measure(qubit, qubit)
    return circuit


def surface_code_stabilizers(distance: int) -> List[tuple]:
    """The ``d^2 - 1`` stabilizers of a rotated distance-d surface code.

    Returns ``(kind, data_qubits)`` tuples with ``kind`` in ``("x", "z")``
    and data qubit ``(row, col)`` mapped to index ``row * d + col``.  Bulk
    plaquettes anchored at ``(r, c)`` (``r, c`` in ``0..d-2``) act on their
    four corners and are X-type when ``r + c`` is even; the checkerboard
    extends to weight-2 boundary stabilizers (X-type on the top/bottom rows,
    Z-type on the left/right columns), giving ``(d^2 - 1) / 2`` of each type.
    """
    if distance < 3 or distance % 2 == 0:
        raise ServiceError("surface-code distance must be an odd integer >= 3")
    d = distance
    stabilizers: List[tuple] = []
    for r in range(d - 1):
        for c in range(d - 1):
            corners = [r * d + c, r * d + c + 1, (r + 1) * d + c, (r + 1) * d + c + 1]
            stabilizers.append(("x" if (r + c) % 2 == 0 else "z", corners))
    for c in range(d - 1):
        if c % 2 == 1:  # virtual row -1: X-type where (-1 + c) is even
            stabilizers.append(("x", [c, c + 1]))
        if (d - 1 + c) % 2 == 0:  # virtual row d-1 below the lattice
            stabilizers.append(("x", [(d - 1) * d + c, (d - 1) * d + c + 1]))
    for r in range(d - 1):
        if r % 2 == 0:  # virtual column -1: Z-type where (r - 1) is odd
            stabilizers.append(("z", [r * d, (r + 1) * d]))
        if (r + d - 1) % 2 == 1:  # virtual column d-1 right of the lattice
            stabilizers.append(("z", [r * d + d - 1, (r + 1) * d + d - 1]))
    if len(stabilizers) != d * d - 1:  # pragma: no cover - layout invariant
        raise ServiceError(
            f"surface-code layout produced {len(stabilizers)} stabilizers, "
            f"expected {d * d - 1}"
        )
    return stabilizers


def surface_code_cycle_circuit(distance: int, rounds: int = 1) -> Circuit:
    """Rotated surface-code syndrome-extraction cycles (``2 d^2 - 1`` qubits).

    Data qubits ``0 .. d^2 - 1`` (row-major), one ancilla per stabilizer at
    ``d^2 + s``.  Each round measures every Z-type stabilizer with CX gates
    into its ancilla and every X-type stabilizer through the standard
    H-conjugated circuit, then measures and resets the ancilla; after the
    last round the data qubits are read out in the Z basis.  Clbit layout:
    ``rounds * (d^2 - 1)`` syndrome bits (round major, stabilizer minor)
    followed by the ``d^2`` data bits.  Distance 13 reaches 337 physical
    qubits; the stabilizer engine executes it in well under a second.
    """
    if rounds < 1:
        raise ServiceError("rounds must be >= 1")
    stabilizers = surface_code_stabilizers(distance)
    d = distance
    num_stab = len(stabilizers)
    circuit = Circuit(
        d * d + num_stab,
        rounds * num_stab + d * d,
        name=f"surface_d{distance}_r{rounds}",
    )
    for rnd in range(rounds):
        for s, (kind, data) in enumerate(stabilizers):
            ancilla = d * d + s
            if kind == "x":
                circuit.h(ancilla)
                for qubit in data:
                    circuit.cx(ancilla, qubit)
                circuit.h(ancilla)
            else:
                for qubit in data:
                    circuit.cx(qubit, ancilla)
            circuit.measure(ancilla, rnd * num_stab + s)
            circuit.reset(ancilla)
    for j in range(d * d):
        circuit.measure(j, rounds * num_stab + j)
    return circuit


# Logical gates each rep_kind needs from the fault-tolerant gate set.
_REQUIRED_LOGICAL_GATES: Dict[str, List[str]] = {
    "PREP_UNIFORM": ["H"],
    "PREP_BASIS_STATE": ["X"],
    "PREP_ANGLE": ["RY"],
    "QFT_TEMPLATE": ["H", "S", "T", "CNOT"],
    "ISING_COST_PHASE": ["CNOT", "RZ"],
    "MIXER_RX": ["RX"],
    "ISING_EVOLUTION": ["CNOT", "RZ"],
    "ADDER_TEMPLATE": ["H", "S", "T", "CNOT"],
    "CONTROLLED_PHASE": ["CNOT", "T"],
    "SWAP_TEST": ["H", "CNOT"],
    "CSWAP_TEMPLATE": ["CNOT", "T", "H"],
    "MEASUREMENT": ["MEASURE_Z"],
}

# Gates that a Clifford+T logical set can synthesise (rotations via T-count).
_SYNTHESISABLE_WITH_T = {"RZ", "RX", "RY"}


class QECService:
    """Bind a QEC policy to a bundle and report the fault-tolerant resources."""

    def __init__(self, model: Optional[SurfaceCodeModel] = None):
        self.model = model or SurfaceCodeModel()

    def plan(self, bundle: JobBundle, policy: Optional[QECPolicy] = None) -> QECPlan:
        """Resource plan for executing *bundle* under *policy* (or the bundle's own)."""
        if policy is None:
            if bundle.context is None or bundle.context.qec is None:
                raise ServiceError("no QEC policy supplied and the bundle context has none")
            policy = bundle.context.qec
        if policy.code_family != "surface":
            raise ServiceError(
                f"the reference QEC service models the surface code, not {policy.code_family!r}"
            )

        logical_qubits = bundle.total_width
        per_logical = self.model.physical_qubits_per_logical(policy.distance)
        total_physical = logical_qubits * per_logical

        total_cost = bundle.operators.total_cost()
        logical_depth = max(1, int(math.ceil(total_cost.get("depth", 1.0))))
        syndrome_rounds = logical_depth * policy.distance

        per_round = self.model.logical_error_rate(policy.distance, policy.physical_error_rate)
        # Union bound over patches and rounds.
        exponent = logical_qubits * syndrome_rounds
        failure = 1.0 - (1.0 - per_round) ** exponent

        execution_time_us = syndrome_rounds * policy.cycle_time_ns / 1000.0

        patch_assignment: Dict[str, List[int]] = {}
        next_patch = 0
        for register_id, qdt in bundle.qdts.items():
            patch_assignment[register_id] = list(range(next_patch, next_patch + qdt.width))
            next_patch += qdt.width

        unsupported = self._unsupported_gates(bundle.operators, policy)

        return QECPlan(
            policy=policy,
            logical_qubits=logical_qubits,
            physical_qubits_per_logical=per_logical,
            total_physical_qubits=total_physical,
            logical_depth=logical_depth,
            syndrome_rounds=syndrome_rounds,
            execution_time_us=execution_time_us,
            logical_error_rate_per_round=per_round,
            failure_probability=failure,
            patch_assignment=patch_assignment,
            unsupported_logical_gates=unsupported,
        )

    def _unsupported_gates(
        self, operators: Iterable[QuantumOperatorDescriptor], policy: QECPolicy
    ) -> List[str]:
        available = {g.upper() for g in policy.logical_gate_set}
        can_synthesise_rotations = "T" in available and "H" in available
        unsupported: List[str] = []
        for op in operators:
            for gate in _REQUIRED_LOGICAL_GATES.get(op.rep_kind, []):
                gate = gate.upper()
                if gate in available:
                    continue
                if gate in _SYNTHESISABLE_WITH_T and can_synthesise_rotations:
                    continue
                if gate == "CNOT" and "CX" in available:
                    continue
                if gate not in unsupported:
                    unsupported.append(gate)
        return sorted(unsupported)

    def run_repetition_memory(
        self,
        distance: int,
        *,
        physical_error_rate: float,
        rounds: int = 1,
        patches: int = 1,
        shots: int = 1024,
        seed: Optional[int] = None,
        code_capacity: bool = False,
        trajectory_workers: int = 1,
    ) -> QECCycleResult:
        """Execute a repetition-code memory experiment on the stabilizer engine.

        Builds the cycle circuit (:func:`repetition_code_circuit`, or the
        single-error-opportunity :func:`code_capacity_repetition_circuit`
        when *code_capacity* is true), runs it with a depolarizing
        :class:`~repro.simulators.gate.noise.NoiseModel` of strength
        *physical_error_rate* on ``trajectory_engine="stabilizer"``, and
        majority-vote decodes each patch's final data readout against the
        encoded logical 0.  Majority vote is exact minimum-weight decoding
        for the repetition code, so in code-capacity mode the measured rate
        converges on :class:`RepetitionCodeModel`'s closed form (stamped in
        ``predicted_logical_error_rate``); circuit-level rounds have no
        closed form and are validated by their monotone decrease with
        distance.  Seeded runs are deterministic, and *trajectory_workers*
        never changes the sampled counts.
        """
        if shots < 1:
            raise ServiceError("shots must be >= 1")
        if code_capacity:
            if rounds != 1:
                raise ServiceError("code-capacity mode has no syndrome rounds")
            circuit = code_capacity_repetition_circuit(distance, patches)
            predicted: Optional[float] = RepetitionCodeModel().logical_error_rate(
                distance, physical_error_rate
            )
            data_offsets = [patch * distance for patch in range(patches)]
        else:
            circuit = repetition_code_circuit(distance, rounds, patches)
            predicted = None
            clbits_per_patch = rounds * (distance - 1) + distance
            data_offsets = [
                patch * clbits_per_patch + rounds * (distance - 1)
                for patch in range(patches)
            ]
        noise = NoiseModel(
            oneq_error=physical_error_rate, twoq_error=physical_error_rate
        )
        simulator = StatevectorSimulator(
            noise_model=noise,
            trajectory_engine="stabilizer",
            trajectory_workers=trajectory_workers,
        )
        result = simulator.run(circuit, shots=shots, seed=seed)
        failures = 0
        for key, multiplicity in result.counts.items():
            for offset in data_offsets:
                ones = key[offset : offset + distance].count("1")
                if ones > distance // 2:
                    failures += multiplicity
        return QECCycleResult(
            distance=distance,
            rounds=rounds,
            patches=patches,
            num_qubits=circuit.num_qubits,
            shots=shots,
            physical_error_rate=physical_error_rate,
            logical_failures=failures,
            logical_error_rate=failures / (shots * patches),
            predicted_logical_error_rate=predicted,
            metadata=dict(result.metadata),
        )

    def compare_distances(
        self, bundle: JobBundle, distances: Iterable[int], *, physical_error_rate: float = 1e-3
    ) -> List[QECPlan]:
        """Plans for several distances — the Listing-5 style sweep used in benchmarks."""
        plans = []
        for distance in distances:
            policy = QECPolicy(
                code_family="surface",
                distance=distance,
                physical_error_rate=physical_error_rate,
            )
            plans.append(self.plan(bundle, policy))
        return plans
