"""Orthogonal QEC service: surface-code resource and logical-error modelling.

The middle layer treats error correction as an execution context (Section
4.3.2, Listing 5): operator descriptors stay purely logical, and an
orthogonal QEC service binds logical registers to code patches, counts
syndrome-extraction rounds and estimates logical error rates.  Since no
fault-tolerant hardware is available, the service is a *resource model*: it
answers the questions the middle layer and its scheduler actually ask —
how many physical qubits, how long, and with what logical failure
probability — using the standard surface-code scaling laws.

Model
-----
* physical qubits per logical patch (rotated surface code): ``2 d^2 - 1``,
* logical error rate per patch per round:
  ``p_L = A * (p / p_th)^((d + 1) / 2)`` with ``A = 0.1`` and threshold
  ``p_th = 1e-2``,
* syndrome rounds per logical operation layer: ``d``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..core.bundle import JobBundle
from ..core.context import QECPolicy
from ..core.cost import CostHint
from ..core.errors import ServiceError
from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor

__all__ = ["SurfaceCodeModel", "QECPlan", "QECService"]

_DEFAULT_THRESHOLD = 1e-2
_DEFAULT_PREFACTOR = 0.1


@dataclass
class SurfaceCodeModel:
    """Scaling laws of a (rotated) surface code."""

    threshold: float = _DEFAULT_THRESHOLD
    prefactor: float = _DEFAULT_PREFACTOR

    def physical_qubits_per_logical(self, distance: int) -> int:
        """Data + syndrome qubits of one distance-d patch."""
        self._check_distance(distance)
        return 2 * distance * distance - 1

    def logical_error_rate(self, distance: int, physical_error_rate: float) -> float:
        """Logical error probability per patch per syndrome round."""
        self._check_distance(distance)
        if not 0 < physical_error_rate <= 1:
            raise ServiceError("physical_error_rate must lie in (0, 1]")
        ratio = physical_error_rate / self.threshold
        return float(self.prefactor * ratio ** ((distance + 1) / 2))

    def distance_for_target(
        self, physical_error_rate: float, target_logical_rate: float, *, max_distance: int = 101
    ) -> int:
        """Smallest odd distance achieving *target_logical_rate* per round."""
        if physical_error_rate >= self.threshold:
            raise ServiceError(
                "physical error rate is at or above threshold; no distance suffices"
            )
        for distance in range(3, max_distance + 1, 2):
            if self.logical_error_rate(distance, physical_error_rate) <= target_logical_rate:
                return distance
        raise ServiceError(
            f"no distance <= {max_distance} reaches logical rate {target_logical_rate}"
        )

    @staticmethod
    def _check_distance(distance: int) -> None:
        if distance < 3 or distance % 2 == 0:
            raise ServiceError("surface-code distance must be an odd integer >= 3")


@dataclass
class QECPlan:
    """Resource plan produced by :meth:`QECService.plan`."""

    policy: QECPolicy
    logical_qubits: int
    physical_qubits_per_logical: int
    total_physical_qubits: int
    logical_depth: int
    syndrome_rounds: int
    execution_time_us: float
    logical_error_rate_per_round: float
    failure_probability: float
    patch_assignment: Dict[str, List[int]] = field(default_factory=dict)
    unsupported_logical_gates: List[str] = field(default_factory=list)

    @property
    def overhead_factor(self) -> float:
        """Physical qubits per logical qubit actually used."""
        return self.total_physical_qubits / max(1, self.logical_qubits)


# Logical gates each rep_kind needs from the fault-tolerant gate set.
_REQUIRED_LOGICAL_GATES: Dict[str, List[str]] = {
    "PREP_UNIFORM": ["H"],
    "PREP_BASIS_STATE": ["X"],
    "PREP_ANGLE": ["RY"],
    "QFT_TEMPLATE": ["H", "S", "T", "CNOT"],
    "ISING_COST_PHASE": ["CNOT", "RZ"],
    "MIXER_RX": ["RX"],
    "ISING_EVOLUTION": ["CNOT", "RZ"],
    "ADDER_TEMPLATE": ["H", "S", "T", "CNOT"],
    "CONTROLLED_PHASE": ["CNOT", "T"],
    "SWAP_TEST": ["H", "CNOT"],
    "CSWAP_TEMPLATE": ["CNOT", "T", "H"],
    "MEASUREMENT": ["MEASURE_Z"],
}

# Gates that a Clifford+T logical set can synthesise (rotations via T-count).
_SYNTHESISABLE_WITH_T = {"RZ", "RX", "RY"}


class QECService:
    """Bind a QEC policy to a bundle and report the fault-tolerant resources."""

    def __init__(self, model: Optional[SurfaceCodeModel] = None):
        self.model = model or SurfaceCodeModel()

    def plan(self, bundle: JobBundle, policy: Optional[QECPolicy] = None) -> QECPlan:
        """Resource plan for executing *bundle* under *policy* (or the bundle's own)."""
        if policy is None:
            if bundle.context is None or bundle.context.qec is None:
                raise ServiceError("no QEC policy supplied and the bundle context has none")
            policy = bundle.context.qec
        if policy.code_family != "surface":
            raise ServiceError(
                f"the reference QEC service models the surface code, not {policy.code_family!r}"
            )

        logical_qubits = bundle.total_width
        per_logical = self.model.physical_qubits_per_logical(policy.distance)
        total_physical = logical_qubits * per_logical

        total_cost = bundle.operators.total_cost()
        logical_depth = max(1, int(math.ceil(total_cost.get("depth", 1.0))))
        syndrome_rounds = logical_depth * policy.distance

        per_round = self.model.logical_error_rate(policy.distance, policy.physical_error_rate)
        # Union bound over patches and rounds.
        exponent = logical_qubits * syndrome_rounds
        failure = 1.0 - (1.0 - per_round) ** exponent

        execution_time_us = syndrome_rounds * policy.cycle_time_ns / 1000.0

        patch_assignment: Dict[str, List[int]] = {}
        next_patch = 0
        for register_id, qdt in bundle.qdts.items():
            patch_assignment[register_id] = list(range(next_patch, next_patch + qdt.width))
            next_patch += qdt.width

        unsupported = self._unsupported_gates(bundle.operators, policy)

        return QECPlan(
            policy=policy,
            logical_qubits=logical_qubits,
            physical_qubits_per_logical=per_logical,
            total_physical_qubits=total_physical,
            logical_depth=logical_depth,
            syndrome_rounds=syndrome_rounds,
            execution_time_us=execution_time_us,
            logical_error_rate_per_round=per_round,
            failure_probability=failure,
            patch_assignment=patch_assignment,
            unsupported_logical_gates=unsupported,
        )

    def _unsupported_gates(
        self, operators: Iterable[QuantumOperatorDescriptor], policy: QECPolicy
    ) -> List[str]:
        available = {g.upper() for g in policy.logical_gate_set}
        can_synthesise_rotations = "T" in available and "H" in available
        unsupported: List[str] = []
        for op in operators:
            for gate in _REQUIRED_LOGICAL_GATES.get(op.rep_kind, []):
                gate = gate.upper()
                if gate in available:
                    continue
                if gate in _SYNTHESISABLE_WITH_T and can_synthesise_rotations:
                    continue
                if gate == "CNOT" and "CX" in available:
                    continue
                if gate not in unsupported:
                    unsupported.append(gate)
        return sorted(unsupported)

    def compare_distances(
        self, bundle: JobBundle, distances: Iterable[int], *, physical_error_rate: float = 1e-3
    ) -> List[QECPlan]:
        """Plans for several distances — the Listing-5 style sweep used in benchmarks."""
        plans = []
        for distance in distances:
            policy = QECPolicy(
                code_family="surface",
                distance=distance,
                physical_error_rate=physical_error_rate,
            )
            plans.append(self.plan(bundle, policy))
        return plans
