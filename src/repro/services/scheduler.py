"""Cost-hint-aware scheduler: the HPC-style consumer of operator cost metadata.

Section 2 of the paper argues that without cost hints "a scheduler cannot
choose an appropriate backend and topology, or estimate queue and runtime".
This service closes that loop: given a set of packaged bundles and the
registered engines, it estimates the runtime of each bundle on each capable
engine from the bundles' cost hints, then assigns bundles to engines with a
greedy longest-processing-time list schedule and reports the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.bundle import JobBundle
from ..core.errors import ServiceError
from ..backends.registry import get_backend, list_engines

__all__ = ["EnginePerformanceModel", "ScheduledJob", "Schedule", "CostAwareScheduler"]


@dataclass(frozen=True)
class EnginePerformanceModel:
    """Per-engine timing coefficients used to turn cost hints into seconds."""

    engine: str
    seconds_per_layer_shot: float = 2e-7  # gate engines: depth x shots
    seconds_per_sweep_read_variable: float = 5e-8  # annealers: sweeps x reads x variables
    seconds_per_state: float = 2e-8  # exact solvers: 2^n states
    fixed_overhead_s: float = 0.05  # queueing / compilation overhead

    @property
    def family(self) -> str:
        return self.engine.split(".", 1)[0]


DEFAULT_MODELS: Dict[str, EnginePerformanceModel] = {
    "gate.aer_simulator": EnginePerformanceModel("gate.aer_simulator"),
    "gate.statevector_simulator": EnginePerformanceModel("gate.statevector_simulator"),
    "anneal.simulated_annealer": EnginePerformanceModel("anneal.simulated_annealer"),
    "anneal.neal": EnginePerformanceModel("anneal.neal"),
    "exact.brute_force": EnginePerformanceModel("exact.brute_force"),
}


@dataclass
class ScheduledJob:
    """One bundle's placement in the schedule."""

    bundle_name: str
    engine: str
    estimated_runtime_s: float
    start_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.estimated_runtime_s


@dataclass
class Schedule:
    """Assignment of every bundle to an engine plus the predicted makespan."""

    jobs: List[ScheduledJob] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max((job.end_s for job in self.jobs), default=0.0)

    def on_engine(self, engine: str) -> List[ScheduledJob]:
        return [job for job in self.jobs if job.engine == engine]

    def engine_of(self, bundle_name: str) -> str:
        for job in self.jobs:
            if job.bundle_name == bundle_name:
                return job.engine
        raise ServiceError(f"bundle {bundle_name!r} is not in the schedule")


class CostAwareScheduler:
    """Estimate runtimes from cost hints and assign bundles to engines."""

    def __init__(
        self,
        engines: Optional[Sequence[str]] = None,
        models: Optional[Mapping[str, EnginePerformanceModel]] = None,
    ):
        self.engines = list(engines) if engines is not None else list_engines()
        self.models = dict(DEFAULT_MODELS)
        if models:
            self.models.update(models)

    # -- per-bundle estimation -----------------------------------------------------
    def capable_engines(self, bundle: JobBundle) -> List[str]:
        """Engines whose backend supports every rep_kind in the bundle."""
        capable = []
        for engine in self.engines:
            backend = get_backend(engine)
            if all(backend.supports(op.rep_kind) for op in bundle.operators):
                capable.append(engine)
        return capable

    def estimate_runtime(self, bundle: JobBundle, engine: str) -> float:
        """Estimated execution time of *bundle* on *engine*, in seconds."""
        model = self.models.get(engine, EnginePerformanceModel(engine))
        total = bundle.operators.total_cost()
        samples = bundle.context.exec.samples if bundle.context is not None else 1024
        family = model.family
        if family == "gate":
            depth = max(1.0, total.get("depth", 1.0))
            # Statevector cost also grows with register width.
            width_factor = 2 ** min(bundle.total_width, 24) / 1024.0
            return model.fixed_overhead_s + model.seconds_per_layer_shot * depth * samples * max(
                1.0, width_factor
            )
        if family == "anneal":
            variables = max(1.0, total.get("variables", bundle.total_width))
            anneal = bundle.context.anneal if bundle.context is not None else None
            reads = anneal.num_reads if anneal is not None else samples
            sweeps = anneal.num_sweeps if anneal is not None else 1000
            return model.fixed_overhead_s + model.seconds_per_sweep_read_variable * reads * sweeps * variables
        if family == "exact":
            return model.fixed_overhead_s + model.seconds_per_state * (2 ** bundle.total_width)
        return model.fixed_overhead_s

    def choose_engine(self, bundle: JobBundle) -> Tuple[str, float]:
        """The capable engine with the smallest estimated runtime."""
        capable = self.capable_engines(bundle)
        if not capable:
            raise ServiceError(
                f"no registered engine can execute bundle {bundle.name!r} "
                f"(rep_kinds {[op.rep_kind for op in bundle.operators]})"
            )
        estimates = [(self.estimate_runtime(bundle, engine), engine) for engine in capable]
        runtime, engine = min(estimates)
        return engine, runtime

    # -- fleet scheduling ----------------------------------------------------------------
    def schedule(self, bundles: Iterable[JobBundle]) -> Schedule:
        """Greedy longest-processing-time list schedule over the engine fleet.

        Bundle names must be unique: :meth:`Schedule.engine_of` and every
        name-keyed consumer (the serving queue's result lookup) would
        silently resolve only the first placement of a duplicated name, so
        duplicates raise :class:`~repro.core.errors.ServiceError` up front.
        """
        placements: List[Tuple[JobBundle, str, float]] = []
        seen: Dict[str, int] = {}
        for bundle in bundles:
            if bundle.name in seen:
                raise ServiceError(
                    f"duplicate bundle name {bundle.name!r} in schedule request; "
                    "name-keyed placement lookup requires unique names"
                )
            seen[bundle.name] = 1
            engine, runtime = self.choose_engine(bundle)
            placements.append((bundle, engine, runtime))
        # Longest jobs first onto their chosen engine's queue.
        placements.sort(key=lambda item: -item[2])
        engine_free_at: Dict[str, float] = {}
        schedule = Schedule()
        for bundle, engine, runtime in placements:
            start = engine_free_at.get(engine, 0.0)
            schedule.jobs.append(
                ScheduledJob(
                    bundle_name=bundle.name,
                    engine=engine,
                    estimated_runtime_s=runtime,
                    start_s=start,
                )
            )
            engine_free_at[engine] = start + runtime
        return schedule
