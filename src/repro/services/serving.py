"""Async job service: the multi-user serving queue over the bundle flow.

:class:`JobService` is the middle layer's front door for concurrent use:
many callers submit packaged :class:`~repro.core.bundle.JobBundle`\\ s, the
service admits and places each one through the
:class:`~repro.services.scheduler.CostAwareScheduler`, executes on the
registered backends, and streams per-job results back as they complete.

Three properties matter at serving scale:

* **Admission control** — a submission with no capable engine (or a job
  name already queued) fails synchronously with
  :class:`~repro.core.errors.ServiceError`, before anything is enqueued,
  so the queue never holds work that cannot run.  With ``max_pending``
  set, admission is additionally **bounded**: submissions past the live
  budget fail synchronously with
  :class:`~repro.core.errors.QueueFullError` — backpressure instead of an
  unbounded queue.
* **Coalescing** — structurally identical circuits from different users
  (a sampled variational sweep, a class of students running the same
  template) are grouped on the structure-keyed compile-cache key
  (:func:`~repro.simulators.gate.fusion.structure_key` of the lowered
  circuit).  A group executes back-to-back on one lane: the first job pays
  the fusion/transpile analysis, the rest re-bind parameters out of the
  warm caches — N submissions, one compile, N independent result streams.
* **Merged execution** — with ``coalesce_merge`` on (the default), the
  merge-eligible slice of a coalesced group (matching
  :meth:`~repro.backends.gate_backend.GateBackend.merge_key`) executes as
  **one** backend invocation on the batch axis instead of back-to-back:
  one compile, one tensor evolution over the concatenated shots, counts
  split back per ticket.  The segmented chunk plan keeps every member's
  seeded counts bit-identical to a standalone run, and failure isolation
  guarantees one member's deadline or crash never poisons the rest — the
  survivors fall back to the ordinary solo attempt loop.  The lowering
  artifact computed for the coalescing key is cached on the ticket and
  reused at execution time, so no job is lowered twice.
* **Streaming** — :meth:`JobService.as_completed` yields tickets in
  completion order; each :class:`JobTicket` is also a future-like handle
  (``done()`` / ``result()`` / ``exception()`` / ``cancel()``) for point
  lookups, and :meth:`JobService.ticket` resolves a handle by job name.

Fault tolerance (PR 9) adds the policies production schedulers treat as
table stakes, built on the transient/permanent error taxonomy of
:mod:`repro.core.errors`:

* **Deadlines** — a job whose bundle carries ``deadline_s`` (or a
  service-wide ``default_deadline_s``) is abandoned cooperatively when it
  runs over: the ticket fails with
  :class:`~repro.core.errors.DeadlineExceededError` and the lane moves on
  (the runaway attempt finishes on a detached daemon thread and its
  result is discarded).  Deadline failures are permanent — they never
  enter the retry loop.
* **Retries** — a :class:`RetryPolicy` re-executes **transient** failures
  only (:func:`~repro.core.errors.is_transient_error`): bounded attempts,
  exponential backoff, and *seeded deterministic* jitter so a retry
  schedule replays exactly from ``(policy seed, job id, attempt)``.
* **Degradation** — repeated worker-pool breakage
  (:func:`~repro.core.errors.is_pool_breakage`, counting both in-run
  recovered crashes and unrecovered ones) flips the service to forcing
  ``trajectory_executor="thread"`` on subsequent executions: slower but
  immune to process death.  The flip is recorded in each result's
  ``metadata["serving"]["executor_fallback"]`` and in the stats surface.
* **Observability** — :meth:`JobService.stats` /
  :meth:`JobService.service_stats` expose the recovery counters
  (``retries``, ``crashes_recovered``, ``deadline_kills``, ``cancelled``,
  ``rejected``, ``pool_breakages``, ``executor_fallback``) next to the
  original throughput counters.

The service performs no wall-clock reads of its own: per-job timing comes
from the submission runtime's existing instrumentation
(``metadata["wall_time_s"]``), deadlines and backoffs are event waits, and
throughput accounting belongs to the caller (see
``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import queue as queue_module
import threading
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..backends.base import ExecutionResult
from ..backends.registry import get_backend
from ..backends.runtime import submit as runtime_submit
from ..backends.runtime import submit_merged as runtime_submit_merged
from ..core.bundle import JobBundle
from ..core.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceError,
    is_pool_breakage,
    is_transient_error,
)
from .scheduler import CostAwareScheduler

__all__ = ["JobTicket", "JobService", "RetryPolicy", "ServiceStats"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, transient-only retry with seeded deterministic backoff.

    Parameters
    ----------
    max_attempts:
        Total executions allowed per job (first attempt included); ``1``
        disables retries.
    backoff_s:
        Base delay before the first retry; attempt *k*'s delay is
        ``backoff_s * multiplier**k`` before jitter.
    multiplier:
        Exponential growth factor per retry.
    jitter:
        Relative jitter amplitude in ``[0, 1)``: the delay is scaled by a
        factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.  The draw
        is **deterministic** — seeded from ``(seed, job_id, attempt)`` — so
        a retry schedule replays bit-identically, in keeping with the
        repo's seeded-determinism discipline.
    seed:
        Non-negative jitter seed.

    Only failures classified transient by
    :func:`~repro.core.errors.is_transient_error` are retried; permanent
    failures (including deadline expiry) surface immediately.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.max_attempts, int) or isinstance(self.max_attempts, bool):
            raise ServiceError("RetryPolicy.max_attempts must be an int >= 1")
        if self.max_attempts < 1:
            raise ServiceError("RetryPolicy.max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ServiceError("RetryPolicy.backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ServiceError("RetryPolicy.multiplier must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ServiceError("RetryPolicy.jitter must be in [0, 1)")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ServiceError("RetryPolicy.seed must be a non-negative int")

    def delay_s(self, job_id: int, attempt: int) -> float:
        """The deterministic backoff before retrying *attempt* of *job_id*.

        *attempt* is zero-based: the delay after the first failure is
        ``delay_s(job_id, 0)``.  Identical ``(seed, job_id, attempt)``
        triples always produce identical delays.
        """
        base = self.backoff_s * self.multiplier ** attempt
        if base <= 0.0 or self.jitter == 0.0:
            return base
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, int(job_id), int(attempt)])
        )
        return base * (1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0))


@dataclass(frozen=True)
class ServiceStats:
    """Typed snapshot of the service counters (see :meth:`JobService.stats`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    groups: int = 0
    coalesced: int = 0
    merged_groups: int = 0
    merged_jobs: int = 0
    retries: int = 0
    crashes_recovered: int = 0
    deadline_kills: int = 0
    cancelled: int = 0
    rejected: int = 0
    pool_breakages: int = 0
    executor_fallback: bool = False


@dataclass
class JobTicket:
    """Handle for one submitted job: placement facts plus a result future."""

    job_id: int
    name: str
    engine: str
    estimated_runtime_s: float
    coalesce_key: Any = field(repr=False, default=None)
    _bundle: Optional[JobBundle] = field(repr=False, default=None)
    _lowered: Optional[tuple] = field(repr=False, default=None)
    _future: Future = field(repr=False, default_factory=Future)
    _service: Optional["JobService"] = field(repr=False, default=None)
    _cancel_noted: bool = field(repr=False, default=False)

    def done(self) -> bool:
        """Whether the job has finished (successfully, failed, or cancelled)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        """Block for the job's :class:`ExecutionResult` (re-raises failures)."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """Block for the job's failure, or ``None`` if it succeeded.

        A cancelled ticket raises :class:`concurrent.futures.CancelledError`
        (future semantics), it does not *return* it.
        """
        return self._future.exception(timeout)

    def cancel(self) -> bool:
        """Cancel the job if it has not started executing.

        Returns ``True`` when the job was (or already had been) cancelled:
        the ticket's future fails with
        :class:`concurrent.futures.CancelledError`, the job is skipped by
        its lane, and it still appears once in the
        :meth:`JobService.as_completed` stream.  A job that is already
        running or finished returns ``False`` — execution is cooperative,
        never interrupted mid-flight.
        """
        cancelled = self._future.cancel()
        if cancelled and self._service is not None:
            self._service._note_cancelled(self)
        return cancelled


class JobService:
    """Queued, coalescing, scheduler-placed execution of job bundles.

    Parameters
    ----------
    scheduler:
        Admission/placement policy; defaults to a fresh
        :class:`~repro.services.scheduler.CostAwareScheduler` over every
        registered engine.
    lanes:
        Number of concurrent execution lanes (threads running backend
        calls).  Within one lane a coalesced group runs back-to-back so its
        cache locality is preserved; distinct groups spread across lanes.
    coalesce:
        When ``True`` (default), jobs whose lowered circuits share a
        structure key execute as one group (one compile); ``False`` gives
        every job its own group.
    coalesce_merge:
        When ``True`` (default), the merge-eligible slice of each coalesced
        group — members whose
        :meth:`~repro.backends.gate_backend.GateBackend.merge_key` values
        match — executes as **one** merged backend run on the batch axis,
        with counts split back per ticket (bit-identical to standalone
        execution by the segmented chunk-plan contract).  ``False`` keeps
        groups back-to-back: one backend call per member.  Individual jobs
        opt out with a falsy ``coalesce_merge`` exec option.
    exec_options:
        Extra ``context.exec.options`` entries merged into every submitted
        bundle (submission wins on conflicts is **not** the rule — the
        service's entries override, so operators can force e.g.
        ``trajectory_executor="process"`` fleet-wide).
    retry_policy:
        Optional :class:`RetryPolicy`.  Transient failures
        (:func:`~repro.core.errors.is_transient_error`) re-execute with
        exponential, deterministically jittered backoff; ``None`` (default)
        surfaces every failure on its first occurrence.
    max_pending:
        Optional bound on **live** jobs (queued or running, not yet
        settled).  Admission past the bound fails synchronously with
        :class:`~repro.core.errors.QueueFullError`; ``submit_many`` is
        all-or-nothing against the bound.  ``None`` (default) leaves the
        queue unbounded.
    default_deadline_s:
        Optional service-wide deadline applied to jobs whose bundles do not
        carry their own ``deadline_s`` exec option.  A job running past its
        deadline fails with
        :class:`~repro.core.errors.DeadlineExceededError` and frees its
        lane; the abandoned attempt finishes on a detached daemon thread.
    fallback_after:
        Pool-breakage budget of the degradation ladder (default ``3``):
        once the cumulative count of worker-pool breakages — in-run
        recovered crashes plus unrecovered ones — reaches this value, the
        service forces ``trajectory_executor="thread"`` on every subsequent
        execution (recorded in result metadata and
        ``stats()["executor_fallback"]``).

    Use as a context manager or call :meth:`close` to stop the dispatcher
    and wait for in-flight work; ``close(drain=False)`` cancels every job
    that has not started instead of running the queue dry.
    """

    def __init__(
        self,
        *,
        scheduler: Optional[CostAwareScheduler] = None,
        lanes: int = 1,
        coalesce: bool = True,
        coalesce_merge: bool = True,
        exec_options: Optional[Dict[str, Any]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_pending: Optional[int] = None,
        default_deadline_s: Optional[float] = None,
        fallback_after: int = 3,
    ):
        if lanes < 1:
            raise ServiceError("job service needs at least one execution lane")
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise ServiceError(
                f"retry_policy must be a RetryPolicy or None, got {retry_policy!r}"
            )
        if max_pending is not None:
            if not isinstance(max_pending, int) or isinstance(max_pending, bool):
                raise ServiceError("max_pending must be a positive int or None")
            if max_pending < 1:
                raise ServiceError("max_pending must be >= 1 (or None)")
        if default_deadline_s is not None and not (
            isinstance(default_deadline_s, (int, float))
            and not isinstance(default_deadline_s, bool)
            and default_deadline_s > 0
        ):
            raise ServiceError("default_deadline_s must be a positive number or None")
        if not isinstance(fallback_after, int) or isinstance(fallback_after, bool):
            raise ServiceError("fallback_after must be an int >= 1")
        if fallback_after < 1:
            raise ServiceError("fallback_after must be >= 1")
        self._scheduler = scheduler or CostAwareScheduler()
        self._coalesce = bool(coalesce)
        self._coalesce_merge = bool(coalesce_merge)
        self._exec_options = dict(exec_options or {})
        self._retry_policy = retry_policy
        self._max_pending = max_pending
        self._default_deadline_s = (
            None if default_deadline_s is None else float(default_deadline_s)
        )
        self._fallback_after = fallback_after
        self._wake = threading.Condition()
        self._pending: List[JobTicket] = []
        self._all: List[JobTicket] = []
        self._by_name: Dict[str, JobTicket] = {}
        self._events: "queue_module.Queue[JobTicket]" = queue_module.Queue()
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "groups": 0,
            "coalesced": 0,
            "merged_groups": 0,
            "merged_jobs": 0,
            "retries": 0,
            "crashes_recovered": 0,
            "deadline_kills": 0,
            "cancelled": 0,
            "rejected": 0,
            "pool_breakages": 0,
            "executor_fallback": 0,
        }
        self._live = 0
        self._streamed = 0
        self._job_counter = 0
        self._closed = False
        self._drain_on_close = True
        self._stop_event = threading.Event()
        self._lanes = ThreadPoolExecutor(
            max_workers=lanes, thread_name_prefix="serving-lane"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serving-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- submission ------------------------------------------------------------------
    def submit(self, bundle: JobBundle) -> JobTicket:
        """Admit one bundle: place it, enqueue it, return its ticket.

        Raises :class:`ServiceError` synchronously when no registered
        engine can execute the bundle, when the bundle has no execution
        context, when its name is already queued or running, or when the
        service is closed — and :class:`QueueFullError` (a
        :class:`ServiceError`) when ``max_pending`` live jobs are already
        in flight.
        """
        bundle = self._admit(bundle)
        engine, estimate = self._scheduler.choose_engine(bundle)
        return self._enqueue(bundle, engine, estimate)

    def submit_many(self, bundles: Sequence[JobBundle]) -> List[JobTicket]:
        """Admit a batch atomically through the fleet scheduler.

        The whole batch is placed with
        :meth:`CostAwareScheduler.schedule` (which rejects duplicate bundle
        names) and enqueued under one lock, so a coalescable batch reaches
        the dispatcher as one unit.  Against ``max_pending`` the batch is
        all-or-nothing: if it does not fit, nothing is enqueued and
        :class:`QueueFullError` is raised.  Tickets return in input order.
        """
        admitted = [self._admit(bundle) for bundle in bundles]
        schedule = self._scheduler.schedule(admitted)
        placed = {job.bundle_name: job for job in schedule.jobs}
        keys = [
            self._coalesce_key(bundle, placed[bundle.name].engine)
            for bundle in admitted
        ]
        with self._wake:
            if (
                self._max_pending is not None
                and self._live + len(admitted) > self._max_pending
            ):
                with self._stats_lock:
                    self._stats["rejected"] += len(admitted)
                raise QueueFullError(
                    f"batch of {len(admitted)} does not fit: {self._live} live "
                    f"jobs against max_pending={self._max_pending}"
                )
            tickets = [
                self._enqueue_locked(
                    bundle,
                    placed[bundle.name].engine,
                    placed[bundle.name].estimated_runtime_s,
                    key,
                    lowered,
                )
                for bundle, (key, lowered) in zip(admitted, keys)
            ]
            self._wake.notify()
        return tickets

    def _admit(self, bundle: JobBundle) -> JobBundle:
        """Pre-queue checks plus the service-wide exec-option merge."""
        if self._closed:
            raise ServiceError("job service is closed")
        if bundle.context is None:
            raise ServiceError(
                f"bundle {bundle.name!r} has no execution context; the serving "
                "queue requires an explicit exec policy"
            )
        if self._exec_options:
            exec_policy = replace(
                bundle.context.exec,
                options={**bundle.context.exec.options, **self._exec_options},
            )
            bundle = bundle.with_context(replace(bundle.context, exec=exec_policy))
        deadline = bundle.context.exec.options.get(
            "deadline_s", self._default_deadline_s
        )
        if deadline is not None and not (
            isinstance(deadline, (int, float))
            and not isinstance(deadline, bool)
            and deadline > 0
        ):
            raise ServiceError(
                f"bundle {bundle.name!r} has an invalid deadline_s {deadline!r}; "
                "expected a positive number of seconds"
            )
        return bundle

    def _coalesce_key(
        self, bundle: JobBundle, engine: str
    ) -> Tuple[Any, Optional[tuple]]:
        """Structure-keyed grouping key plus the lowering artifact it cost.

        Returns ``(key, lowered)`` where ``lowered`` is the backend's
        ``(circuit, allocation)`` pair when the key required lowering the
        bundle (``None`` otherwise).  The artifact is cached on the ticket
        and reused at execution time, so keying a job never doubles its
        lowering work.
        """
        if self._coalesce:
            backend = get_backend(engine)
            builder = getattr(backend, "build_circuit", None)
            if builder is not None:
                from ..simulators.gate.fusion import structure_key

                lowered = builder(bundle)
                return (engine, structure_key(lowered[0])), lowered
        return object(), None  # key never equal to another: a group of one

    def _enqueue(self, bundle: JobBundle, engine: str, estimate: float) -> JobTicket:
        key, lowered = self._coalesce_key(bundle, engine)
        with self._wake:
            ticket = self._enqueue_locked(bundle, engine, estimate, key, lowered)
            self._wake.notify()
        return ticket

    def _enqueue_locked(
        self,
        bundle: JobBundle,
        engine: str,
        estimate: float,
        key: Any,
        lowered: Optional[tuple] = None,
    ) -> JobTicket:
        """Queue one placed bundle; caller holds ``self._wake``."""
        if self._closed:
            raise ServiceError("job service is closed")
        if self._max_pending is not None and self._live >= self._max_pending:
            with self._stats_lock:
                self._stats["rejected"] += 1
            raise QueueFullError(
                f"job {bundle.name!r} rejected: {self._live} live jobs against "
                f"max_pending={self._max_pending}; back off and resubmit"
            )
        active = self._by_name.get(bundle.name)
        if active is not None and not active.done():
            raise ServiceError(
                f"job name {bundle.name!r} is already queued or running; "
                "results are looked up by name, so names must be unique "
                "among live jobs"
            )
        self._job_counter += 1
        ticket = JobTicket(
            job_id=self._job_counter,
            name=bundle.name,
            engine=engine,
            estimated_runtime_s=estimate,
            coalesce_key=key,
            _bundle=bundle,
            _lowered=lowered,
            _service=self,
        )
        self._by_name[bundle.name] = ticket
        self._all.append(ticket)
        self._pending.append(ticket)
        self._live += 1
        with self._stats_lock:
            self._stats["submitted"] += 1
        return ticket

    # -- dispatch --------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Drain the pending queue, group by coalescing key, fan out lanes."""
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if self._closed and not self._drain_on_close:
                    # close(drain=False) already cancelled these tickets.
                    self._pending.clear()
                    return
                if not self._pending and self._closed:
                    return
                batch = list(self._pending)
                self._pending.clear()
            groups: Dict[Any, List[JobTicket]] = {}
            for ticket in batch:
                groups.setdefault(ticket.coalesce_key, []).append(ticket)
            for tickets in groups.values():
                with self._stats_lock:
                    self._stats["groups"] += 1
                    self._stats["coalesced"] += len(tickets) - 1
                self._lanes.submit(self._run_group, tickets)

    def _run_group(self, tickets: List[JobTicket]) -> None:
        """Execute one coalesced group on this lane, merging where eligible."""
        positions = {id(ticket): i for i, ticket in enumerate(tickets)}
        for subgroup in self._merge_subgroups(tickets):
            live = [
                ticket
                for ticket in subgroup
                if ticket._future.set_running_or_notify_cancel()
                # Cancelled before start; cancel() already settled the ticket.
            ]
            if not live:
                continue
            if len(live) == 1:
                ticket = live[0]
                self._run_job(ticket, len(tickets), positions[id(ticket)])
                self._settle(ticket)
            else:
                self._run_merged_group(live, len(tickets), positions)

    def _merge_subgroups(self, tickets: List[JobTicket]) -> List[List[JobTicket]]:
        """Partition a coalesced group into merge-eligible runs, order kept.

        Tickets whose backends report equal merge keys land in one subgroup
        (a single merged execution); a ticket with no merge key — merging
        disabled service-wide, opted out per job, a non-lowering backend, or
        a ``merge_key`` failure — becomes a singleton and runs solo exactly
        as before.
        """
        if not self._coalesce_merge or len(tickets) < 2:
            return [[ticket] for ticket in tickets]
        subgroups: Dict[Any, List[JobTicket]] = {}
        order: List[Any] = []
        for ticket in tickets:
            key = self._merge_key_for(ticket)
            if key is None:
                key = ("solo", id(ticket))
            if key not in subgroups:
                subgroups[key] = []
                order.append(key)
            subgroups[key].append(ticket)
        return [subgroups[key] for key in order]

    def _merge_key_for(self, ticket: JobTicket) -> Optional[Any]:
        """The ticket's merge-eligibility key, or ``None`` to force solo."""
        bundle = ticket._bundle
        if not bundle.context.exec.options.get("coalesce_merge", True):
            return None
        if ticket._lowered is None:
            return None
        merge_key = getattr(get_backend(ticket.engine), "merge_key", None)
        if merge_key is None:
            return None
        try:
            return (ticket.engine, merge_key(bundle, ticket._lowered))
        except Exception:  # noqa: BLE001 - an unkeyable job simply runs solo
            return None

    def _run_merged_group(
        self,
        tickets: List[JobTicket],
        group_size: int,
        positions: Dict[int, int],
    ) -> None:
        """One merged execution for a subgroup, with solo-fallback isolation.

        The whole subgroup runs as a single backend invocation
        (:func:`~repro.backends.runtime.submit_merged`).  Failure isolation:
        a deadline expiry fails only the members whose own deadline is
        spent, and any other failure sends **every** member back through the
        ordinary standalone attempt loop (deadline, retries, degradation) —
        one bad job never poisons the rest of the group.
        """
        with self._stats_lock:
            degraded = bool(self._stats["executor_fallback"])
        bundles = [
            self._degrade_bundle(ticket._bundle) if degraded else ticket._bundle
            for ticket in tickets
        ]
        deadlines = [
            bundle.context.exec.options.get("deadline_s", self._default_deadline_s)
            for bundle in bundles
        ]
        limits = [float(d) for d in deadlines if d is not None]
        effective = min(limits) if limits else None
        lowered = [ticket._lowered for ticket in tickets]
        backend = get_backend(tickets[0].engine)
        try:
            if effective is None:
                results = runtime_submit_merged(
                    bundles, backend=backend, validate=False, lowered=lowered
                )
            else:
                results = self._merged_with_deadline(
                    bundles, lowered, backend, effective
                )
        except DeadlineExceededError:
            survivors: List[JobTicket] = []
            for ticket, deadline in zip(tickets, deadlines):
                if deadline is not None and float(deadline) <= effective:
                    # This member's own deadline is the one that expired.
                    with self._stats_lock:
                        self._stats["deadline_kills"] += 1
                        self._stats["failed"] += 1
                    ticket._future.set_exception(
                        DeadlineExceededError(
                            f"job {ticket.name!r} exceeded its {deadline}s "
                            "deadline during a merged group run; the attempt "
                            "was abandoned and its lane freed"
                        )
                    )
                    self._settle(ticket)
                else:
                    survivors.append(ticket)
            for ticket in survivors:
                self._run_job(ticket, group_size, positions[id(ticket)])
                self._settle(ticket)
            return
        except BaseException as exc:  # noqa: BLE001 - every member re-runs solo
            if is_pool_breakage(exc):
                self._note_pool_breakage()
            for ticket in tickets:
                self._run_job(ticket, group_size, positions[id(ticket)])
                self._settle(ticket)
            return
        recovery = results[0].metadata.get("executor_recovery") or {}
        rebuilds = int(recovery.get("pool_rebuilds") or 0)
        if rebuilds:
            # One shared run: its rebuilds count once, not per member.
            self._note_pool_breakage(count=rebuilds, recovered=True)
        with self._stats_lock:
            self._stats["merged_groups"] += 1
            self._stats["merged_jobs"] += len(tickets)
            self._stats["completed"] += len(tickets)
        for ticket, result in zip(tickets, results):
            result.metadata["serving"] = {
                "job_id": ticket.job_id,
                "engine": ticket.engine,
                "group_size": group_size,
                "group_position": positions[id(ticket)],
                "attempts": 1,
                "executor_fallback": degraded,
                "merged": True,
            }
            ticket._future.set_result(result)
            self._settle(ticket)

    def _merged_with_deadline(
        self,
        bundles: List[JobBundle],
        lowered: List[Optional[tuple]],
        backend: Any,
        deadline: float,
    ) -> List[ExecutionResult]:
        """Run one merged attempt under the subgroup's tightest deadline."""
        box: Dict[str, Any] = {}
        finished = threading.Event()

        def run_attempt() -> None:
            try:
                box["results"] = runtime_submit_merged(
                    bundles, backend=backend, validate=False, lowered=lowered
                )
            except BaseException as exc:  # noqa: BLE001 - shipped to the lane
                box["error"] = exc
            finally:
                finished.set()

        worker = threading.Thread(
            target=run_attempt,
            name="serving-merged-deadline",
            daemon=True,  # an abandoned attempt must not block interpreter exit
        )
        worker.start()
        if not finished.wait(deadline):
            raise DeadlineExceededError(
                f"merged group of {len(bundles)} exceeded its tightest "
                f"{deadline}s deadline; the attempt was abandoned"
            )
        if "error" in box:
            raise box["error"]
        return box["results"]

    def _run_job(self, ticket: JobTicket, group_size: int, position: int) -> None:
        """One job's attempt loop: deadline, transient retry, degradation."""
        policy = self._retry_policy
        max_attempts = policy.max_attempts if policy is not None else 1
        attempt = 0
        while True:
            try:
                result, degraded = self._execute_attempt(ticket)
            except DeadlineExceededError as exc:
                # Permanent by classification: the deadline is already spent.
                with self._stats_lock:
                    self._stats["deadline_kills"] += 1
                    self._stats["failed"] += 1
                ticket._future.set_exception(exc)
                return
            except BaseException as exc:  # noqa: BLE001 - routed to the ticket
                if is_pool_breakage(exc):
                    self._note_pool_breakage()
                if not (attempt + 1 < max_attempts and is_transient_error(exc)):
                    with self._stats_lock:
                        self._stats["failed"] += 1
                    ticket._future.set_exception(exc)
                    return
                with self._stats_lock:
                    self._stats["retries"] += 1
                delay = policy.delay_s(ticket.job_id, attempt)
                if delay > 0:
                    # Interruptible backoff: close() sets the stop event.
                    self._stop_event.wait(delay)
                attempt += 1
                continue
            recovery = result.metadata.get("executor_recovery") or {}
            rebuilds = int(recovery.get("pool_rebuilds") or 0)
            if rebuilds:
                # Recovered in-run crashes still count toward degradation.
                self._note_pool_breakage(count=rebuilds, recovered=True)
            result.metadata["serving"] = {
                "job_id": ticket.job_id,
                "engine": ticket.engine,
                "group_size": group_size,
                "group_position": position,
                "attempts": attempt + 1,
                "executor_fallback": degraded,
                "merged": False,
            }
            with self._stats_lock:
                self._stats["completed"] += 1
            ticket._future.set_result(result)
            return

    def _execute_attempt(self, ticket: JobTicket) -> Tuple[ExecutionResult, bool]:
        """Run one execution attempt, honouring degradation and the deadline."""
        bundle = ticket._bundle
        with self._stats_lock:
            degraded = bool(self._stats["executor_fallback"])
        if degraded:
            bundle = self._degrade_bundle(bundle)
        deadline = bundle.context.exec.options.get(
            "deadline_s", self._default_deadline_s
        )
        if deadline is None:
            result = runtime_submit(
                bundle,
                backend=get_backend(ticket.engine),
                validate=False,
                lowered=ticket._lowered,
            )
            return result, degraded
        box: Dict[str, Any] = {}
        finished = threading.Event()

        def run_attempt() -> None:
            try:
                box["result"] = runtime_submit(
                    bundle,
                    backend=get_backend(ticket.engine),
                    validate=False,
                    lowered=ticket._lowered,
                )
            except BaseException as exc:  # noqa: BLE001 - shipped to the lane
                box["error"] = exc
            finally:
                finished.set()

        worker = threading.Thread(
            target=run_attempt,
            name=f"serving-deadline-{ticket.job_id}",
            daemon=True,  # an abandoned attempt must not block interpreter exit
        )
        worker.start()
        if not finished.wait(float(deadline)):
            raise DeadlineExceededError(
                f"job {ticket.name!r} exceeded its {deadline}s deadline; "
                "the attempt was abandoned and its lane freed"
            )
        if "error" in box:
            raise box["error"]
        return box["result"], degraded

    def _degrade_bundle(self, bundle: JobBundle) -> JobBundle:
        """Force the thread executor on a bundle after pool-breakage fallback."""
        options = bundle.context.exec.options
        if options.get("trajectory_executor", "thread") == "thread":
            return bundle
        exec_policy = replace(
            bundle.context.exec,
            options={**options, "trajectory_executor": "thread"},
        )
        return bundle.with_context(replace(bundle.context, exec=exec_policy))

    def _note_pool_breakage(self, *, count: int = 1, recovered: bool = False) -> None:
        """Count pool breakage toward the degradation ladder; flip if spent."""
        with self._stats_lock:
            if recovered:
                self._stats["crashes_recovered"] += count
            self._stats["pool_breakages"] += count
            if self._stats["pool_breakages"] >= self._fallback_after:
                self._stats["executor_fallback"] = 1

    def _note_cancelled(self, ticket: JobTicket) -> None:
        """Record a successful cancellation exactly once and settle the ticket."""
        with self._wake:
            if ticket._cancel_noted:
                return
            ticket._cancel_noted = True
        with self._stats_lock:
            self._stats["cancelled"] += 1
        self._settle(ticket)

    def _settle(self, ticket: JobTicket) -> None:
        """A ticket reached a terminal state: stream it, release its slot."""
        with self._wake:
            self._live -= 1
        self._events.put(ticket)

    # -- results ---------------------------------------------------------------------
    def as_completed(self, timeout: Optional[float] = None) -> Iterator[JobTicket]:
        """Yield tickets in completion order until every submission is seen.

        Cancelled tickets appear in the stream like any other terminal
        state.  Single-consumer: the stream cursor is service-global.
        *timeout* bounds the wait for **each** next completion; expiry
        raises :class:`TimeoutError` *without* losing the cursor position —
        a later ``as_completed()`` call resumes exactly where the stream
        stopped.
        """
        while True:
            with self._stats_lock:
                remaining = self._stats["submitted"] - self._streamed
            if remaining == 0:
                return
            try:
                ticket = self._events.get(timeout=timeout)
            except queue_module.Empty:
                raise TimeoutError(
                    f"no job completed within {timeout}s ({remaining} "
                    "outstanding); the stream cursor is preserved — call "
                    "as_completed() again to resume"
                ) from None
            with self._stats_lock:
                self._streamed += 1
            yield ticket

    def ticket(self, name: str) -> JobTicket:
        """Look up the (most recent) ticket submitted under *name*."""
        with self._wake:
            ticket = self._by_name.get(name)
        if ticket is None:
            raise ServiceError(f"no job named {name!r} has been submitted")
        return ticket

    def cancel(self, name: str) -> bool:
        """Cancel the not-yet-started job *name* (see :meth:`JobTicket.cancel`)."""
        return self.ticket(name).cancel()

    def drain(self) -> List[JobTicket]:
        """Block until every submitted job settled; tickets in job order.

        Cancelled tickets count as settled; ``drain`` never re-raises.
        """
        with self._wake:
            tickets = list(self._all)
        for ticket in tickets:
            try:
                ticket.exception()  # waits; does not re-raise failures
            except CancelledError:
                pass
        return tickets

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: throughput plus the fault-tolerance counters.

        Keys: ``submitted`` / ``completed`` / ``failed`` / ``groups`` /
        ``coalesced`` (as before) plus ``merged_groups`` / ``merged_jobs``
        (merged batch-axis executions and the jobs they absorbed),
        ``retries`` (transient re-executions),
        ``crashes_recovered`` (in-run pool rebuilds that still produced the
        job's result), ``deadline_kills``, ``cancelled``, ``rejected``
        (queue-full admissions), ``pool_breakages`` (degradation-ladder
        count) and ``executor_fallback`` (``1`` once the service forces the
        thread executor).  :meth:`service_stats` returns the same snapshot
        as a typed :class:`ServiceStats`.
        """
        with self._stats_lock:
            return dict(self._stats)

    def service_stats(self) -> ServiceStats:
        """The :meth:`stats` snapshot as a typed :class:`ServiceStats`."""
        snapshot = self.stats()
        snapshot["executor_fallback"] = bool(snapshot["executor_fallback"])
        return ServiceStats(**snapshot)

    # -- lifecycle -------------------------------------------------------------------
    def close(self, *, drain: bool = True) -> None:
        """Stop accepting work and release the lanes.

        ``drain=True`` (default) runs the queue dry first.  ``drain=False``
        cancels every job that has not started — their tickets fail with
        :class:`concurrent.futures.CancelledError` and still appear in the
        :meth:`as_completed` stream — and waits only for attempts already
        running on a lane, so callers blocked on outstanding tickets fail
        fast instead of hanging.
        """
        with self._wake:
            self._closed = True
            self._drain_on_close = bool(drain)
            self._wake.notify_all()
            tickets = list(self._all) if not drain else []
        if not drain:
            self._stop_event.set()  # cut retry backoffs short
            for ticket in tickets:
                ticket.cancel()
        self._dispatcher.join()
        self._lanes.shutdown(wait=True)

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
