"""Async job service: the multi-user serving queue over the bundle flow.

:class:`JobService` is the middle layer's front door for concurrent use:
many callers submit packaged :class:`~repro.core.bundle.JobBundle`\\ s, the
service admits and places each one through the
:class:`~repro.services.scheduler.CostAwareScheduler`, executes on the
registered backends, and streams per-job results back as they complete.

Three properties matter at serving scale:

* **Admission control** — a submission with no capable engine (or a job
  name already queued) fails synchronously with
  :class:`~repro.core.errors.ServiceError`, before anything is enqueued,
  so the queue never holds work that cannot run.
* **Coalescing** — structurally identical circuits from different users
  (a sampled variational sweep, a class of students running the same
  template) are grouped on the structure-keyed compile-cache key
  (:func:`~repro.simulators.gate.fusion.structure_key` of the lowered
  circuit).  A group executes back-to-back on one lane: the first job pays
  the fusion/transpile analysis, the rest re-bind parameters out of the
  warm caches — N submissions, one compile, N independent result streams.
* **Streaming** — :meth:`JobService.as_completed` yields tickets in
  completion order; each :class:`JobTicket` is also a future-like handle
  (``done()`` / ``result()`` / ``exception()``) for point lookups, and
  :meth:`JobService.ticket` resolves a handle by job name.

The service performs no wall-clock reads of its own: per-job timing comes
from the submission runtime's existing instrumentation
(``metadata["wall_time_s"]``), and throughput accounting belongs to the
caller (see ``benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import queue as queue_module
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..backends.base import ExecutionResult
from ..backends.registry import get_backend
from ..backends.runtime import submit as runtime_submit
from ..core.bundle import JobBundle
from ..core.errors import ServiceError
from .scheduler import CostAwareScheduler

__all__ = ["JobTicket", "JobService"]


@dataclass
class JobTicket:
    """Handle for one submitted job: placement facts plus a result future."""

    job_id: int
    name: str
    engine: str
    estimated_runtime_s: float
    coalesce_key: Any = field(repr=False, default=None)
    _bundle: Optional[JobBundle] = field(repr=False, default=None)
    _future: Future = field(repr=False, default_factory=Future)

    def done(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        """Block for the job's :class:`ExecutionResult` (re-raises failures)."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """Block for the job's failure, or ``None`` if it succeeded."""
        return self._future.exception(timeout)


class JobService:
    """Queued, coalescing, scheduler-placed execution of job bundles.

    Parameters
    ----------
    scheduler:
        Admission/placement policy; defaults to a fresh
        :class:`~repro.services.scheduler.CostAwareScheduler` over every
        registered engine.
    lanes:
        Number of concurrent execution lanes (threads running backend
        calls).  Within one lane a coalesced group runs back-to-back so its
        cache locality is preserved; distinct groups spread across lanes.
    coalesce:
        When ``True`` (default), jobs whose lowered circuits share a
        structure key execute as one group (one compile); ``False`` gives
        every job its own group.
    exec_options:
        Extra ``context.exec.options`` entries merged into every submitted
        bundle (submission wins on conflicts is **not** the rule — the
        service's entries override, so operators can force e.g.
        ``trajectory_executor="process"`` fleet-wide).

    Use as a context manager or call :meth:`close` to stop the dispatcher
    and wait for in-flight work.
    """

    def __init__(
        self,
        *,
        scheduler: Optional[CostAwareScheduler] = None,
        lanes: int = 1,
        coalesce: bool = True,
        exec_options: Optional[Dict[str, Any]] = None,
    ):
        if lanes < 1:
            raise ServiceError("job service needs at least one execution lane")
        self._scheduler = scheduler or CostAwareScheduler()
        self._coalesce = bool(coalesce)
        self._exec_options = dict(exec_options or {})
        self._wake = threading.Condition()
        self._pending: List[JobTicket] = []
        self._all: List[JobTicket] = []
        self._by_name: Dict[str, JobTicket] = {}
        self._events: "queue_module.Queue[JobTicket]" = queue_module.Queue()
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "groups": 0,
            "coalesced": 0,
        }
        self._streamed = 0
        self._job_counter = 0
        self._closed = False
        self._lanes = ThreadPoolExecutor(
            max_workers=lanes, thread_name_prefix="serving-lane"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serving-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- submission ------------------------------------------------------------------
    def submit(self, bundle: JobBundle) -> JobTicket:
        """Admit one bundle: place it, enqueue it, return its ticket.

        Raises :class:`ServiceError` synchronously when no registered
        engine can execute the bundle, when the bundle has no execution
        context, when its name is already queued or running, or when the
        service is closed.
        """
        bundle = self._admit(bundle)
        engine, estimate = self._scheduler.choose_engine(bundle)
        return self._enqueue(bundle, engine, estimate)

    def submit_many(self, bundles: Sequence[JobBundle]) -> List[JobTicket]:
        """Admit a batch atomically through the fleet scheduler.

        The whole batch is placed with
        :meth:`CostAwareScheduler.schedule` (which rejects duplicate bundle
        names) and enqueued under one lock, so a coalescable batch reaches
        the dispatcher as one unit.  Tickets return in input order.
        """
        admitted = [self._admit(bundle) for bundle in bundles]
        schedule = self._scheduler.schedule(admitted)
        placed = {job.bundle_name: job for job in schedule.jobs}
        keys = [
            self._coalesce_key(bundle, placed[bundle.name].engine)
            for bundle in admitted
        ]
        with self._wake:
            tickets = [
                self._enqueue_locked(
                    bundle,
                    placed[bundle.name].engine,
                    placed[bundle.name].estimated_runtime_s,
                    key,
                )
                for bundle, key in zip(admitted, keys)
            ]
            self._wake.notify()
        return tickets

    def _admit(self, bundle: JobBundle) -> JobBundle:
        """Pre-queue checks plus the service-wide exec-option merge."""
        if self._closed:
            raise ServiceError("job service is closed")
        if bundle.context is None:
            raise ServiceError(
                f"bundle {bundle.name!r} has no execution context; the serving "
                "queue requires an explicit exec policy"
            )
        if not self._exec_options:
            return bundle
        exec_policy = replace(
            bundle.context.exec,
            options={**bundle.context.exec.options, **self._exec_options},
        )
        return bundle.with_context(replace(bundle.context, exec=exec_policy))

    def _coalesce_key(self, bundle: JobBundle, engine: str) -> Any:
        """Structure-keyed grouping key; unique object when not coalescable."""
        if self._coalesce:
            backend = get_backend(engine)
            builder = getattr(backend, "build_circuit", None)
            if builder is not None:
                from ..simulators.gate.fusion import structure_key

                circuit, _ = builder(bundle)
                return (engine, structure_key(circuit))
        return object()  # never equal to another key: a group of one

    def _enqueue(self, bundle: JobBundle, engine: str, estimate: float) -> JobTicket:
        key = self._coalesce_key(bundle, engine)
        with self._wake:
            ticket = self._enqueue_locked(bundle, engine, estimate, key)
            self._wake.notify()
        return ticket

    def _enqueue_locked(
        self, bundle: JobBundle, engine: str, estimate: float, key: Any
    ) -> JobTicket:
        """Queue one placed bundle; caller holds ``self._wake``."""
        if self._closed:
            raise ServiceError("job service is closed")
        active = self._by_name.get(bundle.name)
        if active is not None and not active.done():
            raise ServiceError(
                f"job name {bundle.name!r} is already queued or running; "
                "results are looked up by name, so names must be unique "
                "among live jobs"
            )
        self._job_counter += 1
        ticket = JobTicket(
            job_id=self._job_counter,
            name=bundle.name,
            engine=engine,
            estimated_runtime_s=estimate,
            coalesce_key=key,
            _bundle=bundle,
        )
        self._by_name[bundle.name] = ticket
        self._all.append(ticket)
        self._pending.append(ticket)
        with self._stats_lock:
            self._stats["submitted"] += 1
        return ticket

    # -- dispatch --------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Drain the pending queue, group by coalescing key, fan out lanes."""
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if not self._pending and self._closed:
                    return
                batch = list(self._pending)
                self._pending.clear()
            groups: Dict[Any, List[JobTicket]] = {}
            for ticket in batch:
                groups.setdefault(ticket.coalesce_key, []).append(ticket)
            for tickets in groups.values():
                with self._stats_lock:
                    self._stats["groups"] += 1
                    self._stats["coalesced"] += len(tickets) - 1
                self._lanes.submit(self._run_group, tickets)

    def _run_group(self, tickets: List[JobTicket]) -> None:
        """Execute one coalesced group back-to-back on this lane."""
        for position, ticket in enumerate(tickets):
            try:
                result = runtime_submit(
                    ticket._bundle,
                    backend=get_backend(ticket.engine),
                    validate=False,
                )
                result.metadata["serving"] = {
                    "job_id": ticket.job_id,
                    "engine": ticket.engine,
                    "group_size": len(tickets),
                    "group_position": position,
                }
            except BaseException as exc:  # noqa: BLE001 - routed to the ticket
                with self._stats_lock:
                    self._stats["failed"] += 1
                ticket._future.set_exception(exc)
            else:
                with self._stats_lock:
                    self._stats["completed"] += 1
                ticket._future.set_result(result)
            self._events.put(ticket)

    # -- results ---------------------------------------------------------------------
    def as_completed(self, timeout: Optional[float] = None) -> Iterator[JobTicket]:
        """Yield tickets in completion order until every submission is seen.

        Single-consumer: the stream cursor is service-global.  *timeout*
        bounds the wait for **each** next completion; expiry raises
        :class:`queue.Empty`.
        """
        while True:
            with self._stats_lock:
                remaining = self._stats["submitted"] - self._streamed
            if remaining == 0:
                return
            ticket = self._events.get(timeout=timeout)
            with self._stats_lock:
                self._streamed += 1
            yield ticket

    def ticket(self, name: str) -> JobTicket:
        """Look up the (most recent) ticket submitted under *name*."""
        with self._wake:
            ticket = self._by_name.get(name)
        if ticket is None:
            raise ServiceError(f"no job named {name!r} has been submitted")
        return ticket

    def drain(self) -> List[JobTicket]:
        """Block until every submitted job finished; tickets in job order."""
        with self._wake:
            tickets = list(self._all)
        for ticket in tickets:
            ticket.exception()  # waits; does not re-raise
        return tickets

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: submitted/completed/failed/groups/coalesced."""
        with self._stats_lock:
            return dict(self._stats)

    # -- lifecycle -------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work, run the queue dry, release the lanes."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        self._dispatcher.join()
        self._lanes.shutdown(wait=True)

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
