"""Orthogonal context services: QEC, communication, pulse, annealing, scheduling.

These are the system-level capabilities Section 4.3.1 of the paper separates
from operator semantics: algorithmic libraries and backends *consult* them
through explicit calls, so programs stay portable while the caller controls
resources and platform-specific behaviour.
"""

from .annealing import AnnealingSubmissionService, Embedding, EmbeddingService, chimera_graph
from .communication import CommunicationPlan, CommunicationService, interaction_graph
from .pulse import DEFAULT_GATE_DURATIONS_NS, PulseInstruction, PulseSchedule, PulseService
from .qec import QECPlan, QECService, SurfaceCodeModel
from .serving import JobService, JobTicket, RetryPolicy, ServiceStats
from .scheduler import (
    CostAwareScheduler,
    EnginePerformanceModel,
    Schedule,
    ScheduledJob,
)

__all__ = [
    "QECService",
    "QECPlan",
    "SurfaceCodeModel",
    "CommunicationService",
    "CommunicationPlan",
    "interaction_graph",
    "PulseService",
    "PulseSchedule",
    "PulseInstruction",
    "DEFAULT_GATE_DURATIONS_NS",
    "EmbeddingService",
    "Embedding",
    "AnnealingSubmissionService",
    "chimera_graph",
    "CostAwareScheduler",
    "EnginePerformanceModel",
    "Schedule",
    "ScheduledJob",
    "JobService",
    "JobTicket",
    "RetryPolicy",
    "ServiceStats",
]
