"""Quantum Operator Descriptors: logical transformations, not gates.

A :class:`QuantumOperatorDescriptor` (QOD) names *what* must happen to typed
quantum data — a QFT, a QAOA cost layer, an Ising problem — together with its
parameters, an optional device-independent :class:`~repro.core.cost.CostHint`,
and an explicit :class:`~repro.core.result_schema.ResultSchema` when readout
is involved (Listing 3 of the paper).  It says nothing about gates, pulses or
device details; backends decide the realization from their lowering registry.

:class:`OperatorSequence` is the composition primitive: an ordered list of
descriptors with helpers for inversion, cost accumulation and validation
against the declared registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from .cost import CostHint
from .errors import CompatibilityError, DescriptorError
from .qdt import QuantumDataType
from .registry import get_rep_kind
from .result_schema import ResultSchema
from .schemas import QOD_SCHEMA_ID, validate_document
from .serialization import load_json, save_json

__all__ = ["QuantumOperatorDescriptor", "OperatorSequence"]


def _as_id_list(value: Union[str, Sequence[str], None]) -> List[str]:
    if value is None:
        return []
    if isinstance(value, str):
        return [value]
    return list(value)


@dataclass
class QuantumOperatorDescriptor:
    """One logical transformation on typed quantum registers.

    Parameters
    ----------
    name:
        Human-readable operator name (``"QFT"``, ``"maxcut_cost"``...).
    rep_kind:
        Representation kind naming the logical transformation
        (``"QFT_TEMPLATE"``, ``"ISING_PROBLEM"``, ...); see
        :mod:`repro.core.registry`.
    domain_qdt / codomain_qdt:
        Id(s) of the input/output registers.  Equal ids mean the operation is
        logically in place.  ``codomain_qdt`` defaults to ``domain_qdt``.
    params:
        Operator parameters (angles, graphs, moduli, ...).  Pure data — must
        be JSON-serialisable.
    cost_hint:
        Optional device-independent resource estimate.
    result_schema:
        Decoding rule, required for measuring operators.
    """

    name: str
    rep_kind: str
    domain_qdt: Union[str, Sequence[str]]
    codomain_qdt: Union[str, Sequence[str], None] = None
    params: Dict[str, Any] = field(default_factory=dict)
    cost_hint: Optional[CostHint] = None
    result_schema: Optional[ResultSchema] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptorError("operator descriptor needs a non-empty name")
        if not self.rep_kind:
            raise DescriptorError("operator descriptor needs a rep_kind")
        self.domain_qdt = _as_id_list(self.domain_qdt)
        if not self.domain_qdt:
            raise DescriptorError(f"operator {self.name!r} must reference at least one domain QDT")
        self.codomain_qdt = _as_id_list(self.codomain_qdt) or list(self.domain_qdt)
        self.params = dict(self.params)
        if isinstance(self.cost_hint, Mapping):
            self.cost_hint = CostHint.from_dict(self.cost_hint)
        if isinstance(self.result_schema, Mapping):
            self.result_schema = ResultSchema.from_dict(self.result_schema)
        info = get_rep_kind(self.rep_kind)
        for key, value in info.default_params.items():
            self.params.setdefault(key, value)

    # -- semantic queries ----------------------------------------------------
    @property
    def info(self):
        """Registry information for this descriptor's rep_kind."""
        return get_rep_kind(self.rep_kind)

    @property
    def is_measurement(self) -> bool:
        """Whether the operator performs a measurement."""
        return self.info.measures

    @property
    def is_reset(self) -> bool:
        """Whether the operator resets carriers."""
        return self.info.resets

    @property
    def is_unitary(self) -> bool:
        """Whether the operator is a unitary transformation."""
        return self.info.unitary

    @property
    def registers(self) -> List[str]:
        """All distinct register ids the operator touches."""
        seen: List[str] = []
        for reg in list(self.domain_qdt) + list(self.codomain_qdt):
            if reg not in seen:
                seen.append(reg)
        return seen

    @property
    def primary_register(self) -> str:
        """The first domain register (the usual single-register case)."""
        return self.domain_qdt[0]

    def missing_params(self) -> List[str]:
        """Required parameters (per the registry) not present in ``params``."""
        return [p for p in self.info.required_params if p not in self.params]

    # -- functional updates ----------------------------------------------------
    def with_params(self, **updates: Any) -> "QuantumOperatorDescriptor":
        """Return a copy with ``params`` updated (late parameter binding)."""
        params = dict(self.params)
        params.update(updates)
        return QuantumOperatorDescriptor(
            name=self.name,
            rep_kind=self.rep_kind,
            domain_qdt=list(self.domain_qdt),
            codomain_qdt=list(self.codomain_qdt),
            params=params,
            cost_hint=self.cost_hint,
            result_schema=self.result_schema,
            metadata=dict(self.metadata),
        )

    def with_cost_hint(self, cost_hint: CostHint) -> "QuantumOperatorDescriptor":
        """Return a copy carrying *cost_hint*."""
        clone = self.with_params()
        clone.cost_hint = cost_hint
        return clone

    def with_result_schema(self, schema: ResultSchema) -> "QuantumOperatorDescriptor":
        """Return a copy carrying *schema*."""
        clone = self.with_params()
        clone.result_schema = schema
        return clone

    def inverse(self) -> "QuantumOperatorDescriptor":
        """Logical inverse of the operator.

        For invertible kinds the convention is a boolean ``inverse`` parameter
        that is toggled; parameterised layers additionally negate their angle
        parameters (``gamma``, ``beta``, ``angle``, ``time``).
        """
        if not self.info.invertible:
            raise DescriptorError(f"operator {self.name!r} ({self.rep_kind}) is not invertible")
        params = dict(self.params)
        params["inverse"] = not bool(params.get("inverse", False))
        for angle_key in ("gamma", "beta", "angle", "time"):
            if angle_key in params and isinstance(params[angle_key], (int, float)):
                params[angle_key] = -params[angle_key]
        clone = self.with_params(**params)
        clone.name = f"{self.name}_inv" if not self.name.endswith("_inv") else self.name[:-4]
        return clone

    # -- validation ------------------------------------------------------------
    def validate(self, qdts: Optional[Mapping[str, QuantumDataType]] = None) -> None:
        """Schema-validate the descriptor and optionally cross-check registers."""
        validate_document(self.to_dict(), QOD_SCHEMA_ID)
        missing = self.missing_params()
        if missing:
            raise DescriptorError(
                f"operator {self.name!r} ({self.rep_kind}) missing required params {missing}"
            )
        if self.is_measurement and self.result_schema is None:
            raise DescriptorError(
                f"measuring operator {self.name!r} must declare a result_schema"
            )
        if qdts is not None:
            for reg in self.registers:
                if reg not in qdts:
                    raise CompatibilityError(
                        f"operator {self.name!r} references undeclared register {reg!r}"
                    )
            if self.result_schema is not None:
                self.result_schema.validate_against(dict(qdts))

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Render as a JSON-ready dictionary (Listing 3)."""
        def _collapse(ids: List[str]) -> Union[str, List[str]]:
            return ids[0] if len(ids) == 1 else list(ids)

        doc: Dict[str, Any] = {
            "$schema": QOD_SCHEMA_ID,
            "name": self.name,
            "rep_kind": self.rep_kind,
            "domain_qdt": _collapse(list(self.domain_qdt)),
            "codomain_qdt": _collapse(list(self.codomain_qdt)),
        }
        if self.params:
            doc["params"] = dict(self.params)
        if self.cost_hint is not None and not self.cost_hint.is_empty():
            doc["cost_hint"] = self.cost_hint.to_dict()
        if self.result_schema is not None:
            doc["result_schema"] = self.result_schema.to_dict()
        if self.metadata:
            doc["metadata"] = dict(self.metadata)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "QuantumOperatorDescriptor":
        """Build a descriptor from its dictionary form, validating the schema."""
        validate_document(dict(doc), QOD_SCHEMA_ID)
        return cls(
            name=doc["name"],
            rep_kind=doc["rep_kind"],
            domain_qdt=doc["domain_qdt"],
            codomain_qdt=doc.get("codomain_qdt"),
            params=dict(doc.get("params", {})),
            cost_hint=CostHint.from_dict(doc.get("cost_hint")),
            result_schema=ResultSchema.from_dict(doc.get("result_schema")),
            metadata=dict(doc.get("metadata", {})),
        )

    def save(self, path) -> None:
        """Write the descriptor as a ``QOP.json``-style file."""
        save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path) -> "QuantumOperatorDescriptor":
        """Load a descriptor from a JSON file."""
        return cls.from_dict(load_json(path))


class OperatorSequence:
    """An ordered composition of operator descriptors.

    The sequence is the unit the algorithmic libraries emit (e.g. the QAOA
    stack PREP_UNIFORM -> ISING_COST_PHASE -> MIXER_RX -> ... -> MEASUREMENT)
    and the unit backends lower.  It behaves like a list but adds the
    middle-layer composition rules.
    """

    def __init__(self, operators: Optional[Iterable[QuantumOperatorDescriptor]] = None):
        self._operators: List[QuantumOperatorDescriptor] = list(operators or [])

    # -- list-like behaviour ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._operators)

    def __iter__(self) -> Iterator[QuantumOperatorDescriptor]:
        return iter(self._operators)

    def __getitem__(self, item):
        result = self._operators[item]
        if isinstance(item, slice):
            return OperatorSequence(result)
        return result

    def append(self, operator: QuantumOperatorDescriptor) -> "OperatorSequence":
        """Append an operator and return ``self`` for chaining."""
        self._operators.append(operator)
        return self

    def extend(self, operators: Iterable[QuantumOperatorDescriptor]) -> "OperatorSequence":
        """Append several operators and return ``self``."""
        self._operators.extend(operators)
        return self

    def __add__(self, other: "OperatorSequence") -> "OperatorSequence":
        return OperatorSequence(list(self) + list(other))

    # -- middle-layer helpers ----------------------------------------------------
    @property
    def operators(self) -> List[QuantumOperatorDescriptor]:
        """The underlying descriptor list (a shallow copy)."""
        return list(self._operators)

    def registers(self) -> List[str]:
        """Distinct register ids referenced by the sequence, in order."""
        seen: List[str] = []
        for op in self._operators:
            for reg in op.registers:
                if reg not in seen:
                    seen.append(reg)
        return seen

    def total_cost(self) -> CostHint:
        """Sequentially accumulated cost hint of the whole sequence."""
        return CostHint.total(op.cost_hint for op in self._operators)

    def measurements(self) -> List[QuantumOperatorDescriptor]:
        """All measuring operators in the sequence."""
        return [op for op in self._operators if op.is_measurement]

    def inverse(self) -> "OperatorSequence":
        """The inverse sequence (reversed order, each operator inverted).

        Raises :class:`DescriptorError` when any member is not invertible
        (measurements and problem descriptors cannot be undone).
        """
        return OperatorSequence([op.inverse() for op in reversed(self._operators)])

    def validate(self, qdts: Mapping[str, QuantumDataType]) -> None:
        """Validate every member and the sequence-level composition rules.

        Enforced rules (Section 4.4 "non-interference"):

        * every referenced register is declared,
        * no operator acts on a register after it has been measured
          (measurement must be explicit and terminal per register),
        * measuring operators carry a result schema,
        * unitary templates marked in-place have identical domain/codomain.
        """
        measured: set[str] = set()
        for position, op in enumerate(self._operators):
            op.validate(qdts)
            for reg in op.registers:
                if reg in measured and not op.is_measurement:
                    raise CompatibilityError(
                        f"operator #{position} ({op.name!r}) acts on register {reg!r} "
                        "after it has been measured"
                    )
            if op.is_measurement or op.is_reset:
                measured.update(op.registers)

    def to_list(self) -> List[Dict[str, Any]]:
        """JSON-ready list of operator dictionaries."""
        return [op.to_dict() for op in self._operators]

    @classmethod
    def from_list(cls, docs: Iterable[Mapping[str, Any]]) -> "OperatorSequence":
        """Rebuild a sequence from JSON dictionaries."""
        return cls(QuantumOperatorDescriptor.from_dict(doc) for doc in docs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(op.rep_kind for op in self._operators)
        return f"OperatorSequence([{kinds}])"
