"""Cross-descriptor validation: the middle layer's "catch mismatches early".

Schema validation (per document) lives next to the schemas; this module
implements the *semantic* checks the paper assigns to the algorithmic
libraries (Section 4.4): quantum data type compatibility, non-interference
rules (no hidden measurement/reset), context/operator consistency, and the
width/index checks that make results decodable.

Two styles are offered:

* ``check_*`` functions raise on the first problem — for library code.
* :func:`verify` returns a :class:`ValidationReport` collecting every issue —
  for tooling and tests that want the full picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from .context import ContextDescriptor
from .errors import CompatibilityError, ContextError, DescriptorError
from .qdt import EncodingKind, QuantumDataType
from .qod import OperatorSequence, QuantumOperatorDescriptor

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "check_registers",
    "check_operator",
    "check_sequence",
    "check_context",
    "verify",
]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found during verification."""

    severity: str  # "error" | "warning"
    location: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"[{self.severity}] {self.location}: {self.message}"


@dataclass
class ValidationReport:
    """Aggregated result of :func:`verify`."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings are allowed)."""
        return not self.errors

    def add_error(self, location: str, message: str) -> None:
        self.issues.append(ValidationIssue("error", location, message))

    def add_warning(self, location: str, message: str) -> None:
        self.issues.append(ValidationIssue("warning", location, message))

    def raise_if_failed(self) -> None:
        """Raise :class:`CompatibilityError` summarising all errors."""
        if not self.ok:
            summary = "; ".join(str(issue) for issue in self.errors)
            raise CompatibilityError(f"bundle validation failed: {summary}")


# -- raising checks -----------------------------------------------------------

def check_registers(qdts: Mapping[str, QuantumDataType]) -> None:
    """Check the register table itself: unique ids matching their keys."""
    for key, qdt in qdts.items():
        if key != qdt.id:
            raise DescriptorError(f"register table key {key!r} != descriptor id {qdt.id!r}")
        qdt.validate()


def check_operator(
    op: QuantumOperatorDescriptor, qdts: Mapping[str, QuantumDataType]
) -> None:
    """Check a single operator against the declared registers."""
    op.validate(qdts)
    # Width-sensitive parameter checks for the standard optimisation kinds.
    if op.rep_kind in ("ISING_COST_PHASE", "ISING_PROBLEM", "ISING_EVOLUTION"):
        width = qdts[op.primary_register].width
        edges = op.params.get("edges") or []
        for edge in edges:
            i, j = int(edge[0]), int(edge[1])
            if not (0 <= i < width and 0 <= j < width) or i == j:
                raise CompatibilityError(
                    f"operator {op.name!r}: edge ({i}, {j}) invalid for width-{width} register"
                )
        h = op.params.get("h")
        if h is not None and len(h) != width:
            raise CompatibilityError(
                f"operator {op.name!r}: |h| = {len(h)} does not match register width {width}"
            )
        J = op.params.get("J")
        if isinstance(J, Sequence) and not isinstance(J, Mapping):
            if len(J) != width or any(len(row) != width for row in J):
                raise CompatibilityError(
                    f"operator {op.name!r}: J must be a {width}x{width} matrix"
                )
    if op.rep_kind == "PREP_BASIS_STATE":
        qdt = qdts[op.primary_register]
        value = op.params.get("value")
        try:
            qdt.encode_value(value)
        except DescriptorError as exc:
            raise CompatibilityError(
                f"operator {op.name!r}: value {value!r} not encodable in register "
                f"{qdt.id!r}: {exc}"
            ) from exc
    if op.rep_kind == "MIXER_RX" or op.rep_kind == "ISING_COST_PHASE":
        for key in ("beta", "gamma"):
            if key in op.params and not isinstance(op.params[key], (int, float)):
                raise CompatibilityError(
                    f"operator {op.name!r}: parameter {key!r} must be numeric "
                    "(late binding must be resolved before validation)"
                )


def check_sequence(
    operators: Iterable[QuantumOperatorDescriptor],
    qdts: Mapping[str, QuantumDataType],
) -> None:
    """Check per-operator compatibility plus sequence-level interference rules."""
    seq = operators if isinstance(operators, OperatorSequence) else OperatorSequence(operators)
    check_registers(qdts)
    for op in seq:
        check_operator(op, qdts)
    seq.validate(qdts)


def check_context(
    context: Optional[ContextDescriptor],
    operators: Iterable[QuantumOperatorDescriptor],
    qdts: Mapping[str, QuantumDataType],
) -> None:
    """Check that the execution context can, in principle, serve the operators.

    The context stays orthogonal to semantics, but obvious mismatches are
    caught here: an annealing engine asked to run gate templates, a coupling
    map smaller than the widest register, QEC requested for an annealer.
    """
    if context is None:
        return
    context.validate()
    ops = list(operators)
    kinds = {op.rep_kind for op in ops}
    family = context.exec.engine_family
    problem_kinds = {"ISING_PROBLEM", "QUBO_PROBLEM"}
    if family == "anneal":
        non_problem = kinds - problem_kinds - {"MEASUREMENT", "BARRIER", "IDENTITY"}
        if non_problem:
            raise ContextError(
                f"annealing engine {context.engine!r} cannot realise gate templates "
                f"{sorted(non_problem)}"
            )
        if context.uses_qec:
            raise ContextError("QEC context is not applicable to annealing engines")
    if family == "gate":
        target = context.exec.target
        if target is not None and target.coupling_map is not None:
            needed = sum(q.width for q in qdts.values())
            available = (target.max_qubit() or -1) + 1
            if target.num_qubits is not None:
                available = max(available, target.num_qubits)
            if available < needed:
                raise ContextError(
                    f"target provides {available} qubits but the declared registers "
                    f"need {needed}"
                )


# -- aggregating verification ---------------------------------------------------

def verify(
    qdts: Mapping[str, QuantumDataType],
    operators: Iterable[QuantumOperatorDescriptor],
    context: Optional[ContextDescriptor] = None,
) -> ValidationReport:
    """Run every check, collecting issues instead of raising.

    Returns a :class:`ValidationReport`; call ``report.raise_if_failed()`` to
    convert it back into an exception.
    """
    report = ValidationReport()
    ops = list(operators)

    try:
        check_registers(qdts)
    except Exception as exc:  # noqa: BLE001 - collected into the report
        report.add_error("registers", str(exc))
        return report

    for index, op in enumerate(ops):
        try:
            check_operator(op, qdts)
        except Exception as exc:  # noqa: BLE001
            report.add_error(f"operators[{index}] ({op.name})", str(exc))

    try:
        OperatorSequence(ops).validate(qdts)
    except Exception as exc:  # noqa: BLE001
        report.add_error("sequence", str(exc))

    try:
        check_context(context, ops, qdts)
    except Exception as exc:  # noqa: BLE001
        report.add_error("context", str(exc))

    # Non-fatal advisory checks.
    if not any(op.is_measurement for op in ops) and not any(
        op.rep_kind in ("ISING_PROBLEM", "QUBO_PROBLEM") for op in ops
    ):
        report.add_warning(
            "sequence", "no measurement or problem descriptor present; results will be empty"
        )
    for index, op in enumerate(ops):
        if op.cost_hint is None and op.rep_kind not in ("MEASUREMENT", "BARRIER", "IDENTITY"):
            report.add_warning(
                f"operators[{index}] ({op.name})",
                "no cost_hint attached; schedulers cannot plan this operator",
            )
    spin_registers = [
        q.id for q in qdts.values() if q.encoding_kind is EncodingKind.ISING_SPIN
    ]
    if context is not None and context.exec.engine_family == "anneal" and not spin_registers:
        report.add_warning(
            "context",
            "annealing engine selected but no ISING_SPIN register is declared",
        )
    return report
