"""Execution context descriptors: *how* to run, never *what* it means.

A :class:`ContextDescriptor` captures execution policy orthogonally to the
quantum data types and operator descriptors (Section 4.3, Listings 4 and 5):
which engine executes the bundle, how many samples/reads to draw, target
constraints for compilation (basis gates, coupling map), transpiler options,
an optional QEC policy, annealer settings, distributed-execution policy and
pulse-level options.  Swapping the context re-targets a program without
touching its intent artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .errors import ContextError
from .schemas import CTX_SCHEMA_ID, validate_document
from .serialization import load_json, save_json

__all__ = [
    "TargetSpec",
    "ExecPolicy",
    "QECPolicy",
    "AnnealPolicy",
    "CommPolicy",
    "PulsePolicy",
    "ContextDescriptor",
]


@dataclass
class TargetSpec:
    """Compilation target constraints (Listing 4's ``target`` block).

    Omitting the coupling map means an ideal all-to-all device; omitting the
    basis gates means the backend's native basis is used unchanged.
    """

    basis_gates: Optional[List[str]] = None
    coupling_map: Optional[List[Tuple[int, int]]] = None
    num_qubits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.coupling_map is not None:
            self.coupling_map = [(int(a), int(b)) for a, b in self.coupling_map]
            for a, b in self.coupling_map:
                if a == b or a < 0 or b < 0:
                    raise ContextError(f"invalid coupling map edge ({a}, {b})")
        if self.basis_gates is not None:
            self.basis_gates = [str(g) for g in self.basis_gates]

    @property
    def is_all_to_all(self) -> bool:
        """True when no connectivity constraint has been declared."""
        return self.coupling_map is None

    def max_qubit(self) -> Optional[int]:
        """Largest qubit index mentioned in the coupling map, if any."""
        if not self.coupling_map:
            return None
        return max(max(a, b) for a, b in self.coupling_map)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        if self.basis_gates is not None:
            doc["basis_gates"] = list(self.basis_gates)
        if self.coupling_map is not None:
            doc["coupling_map"] = [[a, b] for a, b in self.coupling_map]
        if self.num_qubits is not None:
            doc["num_qubits"] = self.num_qubits
        return doc

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["TargetSpec"]:
        if doc is None:
            return None
        return cls(
            basis_gates=doc.get("basis_gates"),
            coupling_map=[tuple(e) for e in doc["coupling_map"]] if "coupling_map" in doc else None,
            num_qubits=doc.get("num_qubits"),
        )


@dataclass
class ExecPolicy:
    """Engine selection and sampling policy (Listing 4's ``exec`` block)."""

    engine: str = "gate.statevector_simulator"
    samples: int = 1024
    seed: Optional[int] = None
    target: Optional[TargetSpec] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.engine:
            raise ContextError("exec policy requires an engine name")
        if self.samples < 1:
            raise ContextError("samples must be >= 1")
        if isinstance(self.target, Mapping):
            self.target = TargetSpec.from_dict(self.target)

    @property
    def engine_family(self) -> str:
        """Engine family prefix, e.g. ``gate`` for ``gate.aer_simulator``."""
        return self.engine.split(".", 1)[0]

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"engine": self.engine, "samples": self.samples}
        if self.seed is not None:
            doc["seed"] = self.seed
        if self.target is not None:
            target = self.target.to_dict()
            if target:
                doc["target"] = target
        if self.options:
            doc["options"] = dict(self.options)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ExecPolicy":
        return cls(
            engine=doc.get("engine", "gate.statevector_simulator"),
            samples=int(doc.get("samples", doc.get("shots", 1024))),
            seed=doc.get("seed"),
            target=TargetSpec.from_dict(doc.get("target")),
            options=dict(doc.get("options", {})),
        )


@dataclass
class QECPolicy:
    """Error-correction policy carried orthogonally to semantics (Listing 5)."""

    code_family: str = "surface"
    distance: int = 3
    allocator: str = "auto"
    decoder: str = "mwpm"
    logical_gate_set: List[str] = field(default_factory=lambda: ["H", "S", "CNOT", "T", "MEASURE_Z"])
    physical_error_rate: float = 1e-3
    cycle_time_ns: float = 1000.0

    def __post_init__(self) -> None:
        if self.distance < 1 or self.distance % 2 == 0:
            raise ContextError("surface-code distance must be a positive odd integer")
        if not (0 < self.physical_error_rate <= 1):
            raise ContextError("physical_error_rate must lie in (0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code_family": self.code_family,
            "distance": self.distance,
            "allocator": self.allocator,
            "decoder": self.decoder,
            "logical_gate_set": list(self.logical_gate_set),
            "physical_error_rate": self.physical_error_rate,
            "cycle_time_ns": self.cycle_time_ns,
        }

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["QECPolicy"]:
        if doc is None:
            return None
        return cls(
            code_family=doc.get("code_family", "surface"),
            distance=int(doc.get("distance", 3)),
            allocator=doc.get("allocator", "auto"),
            decoder=doc.get("decoder", "mwpm"),
            logical_gate_set=list(doc.get("logical_gate_set", ["H", "S", "CNOT", "T", "MEASURE_Z"])),
            physical_error_rate=float(doc.get("physical_error_rate", 1e-3)),
            cycle_time_ns=float(doc.get("cycle_time_ns", 1000.0)),
        )


@dataclass
class AnnealPolicy:
    """Annealer execution settings (the Fig. 3 ``anneal`` context)."""

    num_reads: int = 1000
    num_sweeps: int = 1000
    beta_range: Optional[Tuple[float, float]] = None
    schedule: str = "geometric"
    seed: Optional[int] = None
    embedding: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_reads < 1:
            raise ContextError("num_reads must be >= 1")
        if self.num_sweeps < 1:
            raise ContextError("num_sweeps must be >= 1")
        if self.schedule not in ("geometric", "linear"):
            raise ContextError(f"unknown anneal schedule {self.schedule!r}")
        if self.beta_range is not None:
            lo, hi = self.beta_range
            if lo <= 0 or hi <= 0 or hi < lo:
                raise ContextError("beta_range must be positive and increasing")
            self.beta_range = (float(lo), float(hi))

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "num_reads": self.num_reads,
            "num_sweeps": self.num_sweeps,
            "schedule": self.schedule,
        }
        if self.beta_range is not None:
            doc["beta_range"] = [self.beta_range[0], self.beta_range[1]]
        if self.seed is not None:
            doc["seed"] = self.seed
        if self.embedding:
            doc["embedding"] = dict(self.embedding)
        return doc

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["AnnealPolicy"]:
        if doc is None:
            return None
        return cls(
            num_reads=int(doc.get("num_reads", 1000)),
            num_sweeps=int(doc.get("num_sweeps", 1000)),
            beta_range=tuple(doc["beta_range"]) if doc.get("beta_range") else None,
            schedule=doc.get("schedule", "geometric"),
            seed=doc.get("seed"),
            embedding=dict(doc.get("embedding", {})),
        )


@dataclass
class CommPolicy:
    """Distributed-execution policy (multi-QPU, teleportation allowance)."""

    allow_teleportation: bool = True
    max_qpus: int = 1
    qpu_capacity: int = 32
    epr_fidelity: float = 1.0

    def __post_init__(self) -> None:
        if self.max_qpus < 1 or self.qpu_capacity < 1:
            raise ContextError("max_qpus and qpu_capacity must be >= 1")
        if not (0 < self.epr_fidelity <= 1):
            raise ContextError("epr_fidelity must lie in (0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "allow_teleportation": self.allow_teleportation,
            "max_qpus": self.max_qpus,
            "qpu_capacity": self.qpu_capacity,
            "epr_fidelity": self.epr_fidelity,
        }

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["CommPolicy"]:
        if doc is None:
            return None
        return cls(
            allow_teleportation=bool(doc.get("allow_teleportation", True)),
            max_qpus=int(doc.get("max_qpus", 1)),
            qpu_capacity=int(doc.get("qpu_capacity", 32)),
            epr_fidelity=float(doc.get("epr_fidelity", 1.0)),
        )


@dataclass
class PulsePolicy:
    """Pulse/control options for calibrated, device-specific realizations."""

    dt_ns: float = 0.222
    shape: str = "drag"
    gate_durations_ns: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dt_ns <= 0:
            raise ContextError("pulse dt_ns must be positive")

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"dt_ns": self.dt_ns, "shape": self.shape}
        if self.gate_durations_ns:
            doc["gate_durations_ns"] = dict(self.gate_durations_ns)
        return doc

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["PulsePolicy"]:
        if doc is None:
            return None
        return cls(
            dt_ns=float(doc.get("dt_ns", 0.222)),
            shape=doc.get("shape", "drag"),
            gate_durations_ns=dict(doc.get("gate_durations_ns", {})),
        )


@dataclass
class ContextDescriptor:
    """The complete execution-policy record attached to a job bundle."""

    exec: ExecPolicy = field(default_factory=ExecPolicy)
    qec: Optional[QECPolicy] = None
    anneal: Optional[AnnealPolicy] = None
    comm: Optional[CommPolicy] = None
    pulse: Optional[PulsePolicy] = None
    extensions: Dict[str, Any] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.exec, Mapping):
            self.exec = ExecPolicy.from_dict(self.exec)
        if isinstance(self.qec, Mapping):
            self.qec = QECPolicy.from_dict(self.qec)
        if isinstance(self.anneal, Mapping):
            self.anneal = AnnealPolicy.from_dict(self.anneal)
        if isinstance(self.comm, Mapping):
            self.comm = CommPolicy.from_dict(self.comm)
        if isinstance(self.pulse, Mapping):
            self.pulse = PulsePolicy.from_dict(self.pulse)

    # -- convenience ----------------------------------------------------------
    @property
    def engine(self) -> str:
        """Selected execution engine name."""
        return self.exec.engine

    @property
    def samples(self) -> int:
        """Number of shots/samples requested."""
        return self.exec.samples

    @property
    def uses_qec(self) -> bool:
        """Whether a QEC policy is attached."""
        return self.qec is not None

    def with_engine(self, engine: str, **exec_updates: Any) -> "ContextDescriptor":
        """Return a copy re-targeted to *engine* (everything else preserved)."""
        new_exec = ExecPolicy(
            engine=engine,
            samples=exec_updates.get("samples", self.exec.samples),
            seed=exec_updates.get("seed", self.exec.seed),
            target=exec_updates.get("target", self.exec.target),
            options=dict(exec_updates.get("options", self.exec.options)),
        )
        return ContextDescriptor(
            exec=new_exec,
            qec=self.qec,
            anneal=self.anneal,
            comm=self.comm,
            pulse=self.pulse,
            extensions=dict(self.extensions),
            metadata=dict(self.metadata),
        )

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Render as a JSON-ready dictionary (Listings 4 and 5)."""
        doc: Dict[str, Any] = {"$schema": CTX_SCHEMA_ID, "exec": self.exec.to_dict()}
        if self.qec is not None:
            doc["qec"] = self.qec.to_dict()
        if self.anneal is not None:
            doc["anneal"] = self.anneal.to_dict()
        if self.comm is not None:
            doc["comm"] = self.comm.to_dict()
        if self.pulse is not None:
            doc["pulse"] = self.pulse.to_dict()
        if self.extensions:
            doc["extensions"] = dict(self.extensions)
        if self.metadata:
            doc["metadata"] = dict(self.metadata)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ContextDescriptor":
        """Build a context from its dictionary form.

        Accepts both the flat layout (``{"exec": ..., "anneal": ...}``) and
        the nested ``{"contexts": {"anneal": ...}}`` form the paper's Fig. 3
        sketches for the D-Wave path.
        """
        validate_document(dict(doc), CTX_SCHEMA_ID)
        nested = doc.get("contexts", {}) or {}
        anneal_doc = doc.get("anneal", nested.get("anneal"))
        exec_doc = doc.get("exec", nested.get("exec"))
        if exec_doc is None:
            # An anneal-only context still needs an engine; default to the
            # bundled simulated annealer.
            exec_doc = {"engine": "anneal.simulated_annealer", "samples": 1000}
        return cls(
            exec=ExecPolicy.from_dict(exec_doc),
            qec=QECPolicy.from_dict(doc.get("qec", nested.get("qec"))),
            anneal=AnnealPolicy.from_dict(anneal_doc),
            comm=CommPolicy.from_dict(doc.get("comm", nested.get("comm"))),
            pulse=PulsePolicy.from_dict(doc.get("pulse", nested.get("pulse"))),
            extensions=dict(doc.get("extensions", {})),
            metadata=dict(doc.get("metadata", {})),
        )

    def validate(self) -> None:
        """Validate against the embedded context schema."""
        validate_document(self.to_dict(), CTX_SCHEMA_ID)

    def save(self, path) -> None:
        """Write the context as a ``CTX.json``-style file."""
        save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path) -> "ContextDescriptor":
        """Load a context from a JSON file."""
        return cls.from_dict(load_json(path))
