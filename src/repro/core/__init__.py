"""Core middle-layer abstractions: descriptors, validation, packaging.

This package is the paper's primary contribution — the backend-neutral,
context-aware middle layer.  Everything here is pure data plus validation:
no gates, pulses, annealing schedules or device details appear below
:mod:`repro.backends`.
"""

from .bundle import JobBundle, package
from .context import (
    AnnealPolicy,
    CommPolicy,
    ContextDescriptor,
    ExecPolicy,
    PulsePolicy,
    QECPolicy,
    TargetSpec,
)
from .cost import CostHint
from .errors import (
    BackendError,
    CapabilityError,
    ChunkReassemblyError,
    CompatibilityError,
    ContextError,
    DeadlineExceededError,
    DecodingError,
    DescriptorError,
    LoweringError,
    MiddleLayerError,
    PackagingError,
    QueueFullError,
    SchemaValidationError,
    ServiceError,
    SimulationError,
    TranspilerError,
    TransientExecutionError,
    WorkerCrashError,
)
from .provenance import Provenance, build_provenance
from .qdt import (
    BitOrder,
    Carrier,
    EncodingKind,
    MeasurementSemantics,
    QuantumDataType,
    boolean_register,
    fixed_point_register,
    integer_register,
    ising_register,
    phase_register,
)
from .qod import OperatorSequence, QuantumOperatorDescriptor
from .registry import RepKindInfo, get_rep_kind, has_rep_kind, list_rep_kinds, register_rep_kind
from .result_schema import ClbitRef, ResultSchema
from .schemas import (
    CTX_SCHEMA_ID,
    JOB_SCHEMA_ID,
    QDT_SCHEMA_ID,
    QOD_SCHEMA_ID,
    get_schema,
    validate_document,
)
from .validation import ValidationIssue, ValidationReport, check_sequence, verify

__all__ = [
    # bundle / packaging
    "JobBundle",
    "package",
    # context
    "ContextDescriptor",
    "ExecPolicy",
    "TargetSpec",
    "QECPolicy",
    "AnnealPolicy",
    "CommPolicy",
    "PulsePolicy",
    # cost & provenance
    "CostHint",
    "Provenance",
    "build_provenance",
    # data types
    "QuantumDataType",
    "EncodingKind",
    "BitOrder",
    "MeasurementSemantics",
    "Carrier",
    "phase_register",
    "integer_register",
    "boolean_register",
    "ising_register",
    "fixed_point_register",
    # operators
    "QuantumOperatorDescriptor",
    "OperatorSequence",
    "ResultSchema",
    "ClbitRef",
    # registry
    "RepKindInfo",
    "register_rep_kind",
    "get_rep_kind",
    "has_rep_kind",
    "list_rep_kinds",
    # schemas & validation
    "QDT_SCHEMA_ID",
    "QOD_SCHEMA_ID",
    "CTX_SCHEMA_ID",
    "JOB_SCHEMA_ID",
    "get_schema",
    "validate_document",
    "verify",
    "check_sequence",
    "ValidationReport",
    "ValidationIssue",
    # errors
    "MiddleLayerError",
    "SchemaValidationError",
    "DescriptorError",
    "CompatibilityError",
    "ContextError",
    "PackagingError",
    "DecodingError",
    "LoweringError",
    "CapabilityError",
    "BackendError",
    "ServiceError",
    "TranspilerError",
    "SimulationError",
    "TransientExecutionError",
    "WorkerCrashError",
    "ChunkReassemblyError",
    "DeadlineExceededError",
    "QueueFullError",
]
