"""Exception hierarchy for the quantum middle layer.

Every error raised by :mod:`repro` derives from :class:`MiddleLayerError` so
applications can catch middle-layer failures with a single ``except`` clause
while still being able to distinguish schema problems, descriptor
incompatibilities, lowering failures, and backend execution errors.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

__all__ = [
    "MiddleLayerError",
    "SchemaValidationError",
    "DescriptorError",
    "CompatibilityError",
    "ContextError",
    "PackagingError",
    "DecodingError",
    "LoweringError",
    "CapabilityError",
    "BackendError",
    "ServiceError",
    "TranspilerError",
    "SimulationError",
    "UnsupportedGateError",
    "TransientExecutionError",
    "WorkerCrashError",
    "ChunkReassemblyError",
    "DeadlineExceededError",
    "QueueFullError",
    "is_transient_error",
    "is_pool_breakage",
]


class MiddleLayerError(Exception):
    """Base class for every error raised by the middle layer."""


class SchemaValidationError(MiddleLayerError):
    """A JSON document failed validation against its declared JSON Schema.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    path:
        JSON-pointer-like path (``$.exec.samples``) to the offending element.
    schema_path:
        Path within the schema that produced the failure.
    """

    def __init__(self, message: str, path: str = "$", schema_path: str = "#"):
        super().__init__(f"{path}: {message}")
        self.message = message
        self.path = path
        self.schema_path = schema_path


class DescriptorError(MiddleLayerError):
    """A descriptor (QDT, QOD, context) is structurally or semantically invalid."""


class CompatibilityError(MiddleLayerError):
    """Two descriptors cannot be combined (e.g. operator vs. register width)."""


class ContextError(MiddleLayerError):
    """An execution context is invalid or inconsistent with the operators."""


class PackagingError(MiddleLayerError):
    """A job bundle could not be assembled or parsed."""


class DecodingError(MiddleLayerError):
    """Measured results could not be decoded under the declared result schema."""


class LoweringError(MiddleLayerError):
    """An operator descriptor has no realization rule for the selected backend."""


class CapabilityError(MiddleLayerError):
    """A backend does not support a requested rep_kind, encoding, or policy."""


class BackendError(MiddleLayerError):
    """A backend failed while executing a submitted bundle."""


class ServiceError(MiddleLayerError):
    """An orthogonal context service (QEC, communication, pulse, ...) failed."""


class TranspilerError(MiddleLayerError):
    """The gate-model transpiler could not satisfy the target constraints."""


class SimulationError(MiddleLayerError):
    """A simulator substrate failed (invalid circuit, dimension mismatch, ...)."""


class UnsupportedGateError(SimulationError):
    """A circuit contains a gate an engine cannot execute (e.g. non-Clifford).

    Raised by the stabilizer compile path when a circuit contains a gate
    outside the Clifford lowering table.  Carries enough provenance for
    engine selection and fallback: the backend registry's auto-selection
    routes such circuits to the batched engine instead of crashing, and the
    gate backend re-raises this type unchanged (never wrapped in a generic
    :class:`BackendError`).

    Parameters
    ----------
    gate:
        Name of the offending gate.
    index:
        Zero-based position of the gate in the circuit's effective
        (barrier-free) instruction stream.
    reason:
        Optional human-readable explanation appended to the message.
    """

    def __init__(self, gate: str, index: int, reason: str = ""):
        message = f"gate {gate!r} at step {index} is not supported"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.gate = gate
        self.index = index


class TransientExecutionError(SimulationError):
    """An execution failure that is expected to succeed on a clean retry.

    The transient/permanent split is the serving layer's retry contract:
    only this type (and executor-level pool breakage, see
    :func:`is_transient_error`) is eligible for
    :class:`~repro.services.serving.RetryPolicy` re-execution.  Anything
    else — a bad circuit, a schema violation, a deterministic simulator
    error — would fail identically on every attempt and is surfaced
    immediately.  The deterministic fault injector
    (:class:`~repro.simulators.gate.faults.FaultPlan`) raises exactly this
    type for its ``"raise"`` faults so recovery paths are testable.
    """


class WorkerCrashError(TransientExecutionError):
    """A worker process died and in-run recovery was exhausted.

    Raised by the process-pool chunk executors
    (:mod:`~repro.simulators.gate.procpool`) when the pool broke more times
    than the per-run rebuild budget.  Transient by definition — a fresh pool
    on a retry may well succeed — and classified as *pool breakage* for the
    serving layer's process→thread degradation ladder.
    """

    def __init__(self, message: str, *, rebuilds: int = 0):
        super().__init__(message)
        self.rebuilds = rebuilds


class ChunkReassemblyError(SimulationError):
    """A chunked run lost one or more chunk results during reassembly.

    Raised instead of passing ``None`` bit rows downstream when a chunk slot
    was never filled — a lost future, a worker that returned a partial
    group, a bookkeeping bug.  Carries the missing chunk ids for diagnosis:
    plain ints for standalone chunk plans, ``(job, chunk_id)`` pairs for
    merged-group plans.
    """

    def __init__(self, missing, total: int):
        self.missing = tuple(
            tuple(int(part) for part in c) if isinstance(c, tuple) else int(c)
            for c in missing
        )
        self.total = int(total)
        super().__init__(
            f"chunk reassembly lost {len(self.missing)} of {self.total} "
            f"chunks (missing chunk ids: {list(self.missing)})"
        )


class DeadlineExceededError(ServiceError):
    """A served job ran past its cooperative deadline and was abandoned.

    Permanent by classification (retrying a job that just burned its
    deadline would burn another), so it never enters the retry loop: the
    ticket fails and the lane is freed.
    """


class QueueFullError(ServiceError):
    """Admission rejected a submission because the pending queue is full.

    The synchronous backpressure signal of
    :class:`~repro.services.serving.JobService`: raised from ``submit`` /
    ``submit_many`` while the number of live (queued or running) jobs is at
    ``max_pending``.  Callers should back off and resubmit.
    """


def is_transient_error(exc: BaseException) -> bool:
    """Whether *exc* is retry-eligible under the transient/permanent taxonomy.

    Transient: :class:`TransientExecutionError` (including
    :class:`WorkerCrashError`) and executor pool breakage
    (:class:`concurrent.futures.BrokenExecutor`, which
    ``BrokenProcessPool`` subclasses).  Everything else — including
    :class:`DeadlineExceededError` — is permanent.
    """
    return isinstance(exc, (TransientExecutionError, BrokenExecutor))


def is_pool_breakage(exc: BaseException) -> bool:
    """Whether *exc* signals worker-process death (pool breakage).

    The serving layer counts these toward its process→thread executor
    degradation ladder; plain transient errors do not.
    """
    return isinstance(exc, (WorkerCrashError, BrokenExecutor))
