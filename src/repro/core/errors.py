"""Exception hierarchy for the quantum middle layer.

Every error raised by :mod:`repro` derives from :class:`MiddleLayerError` so
applications can catch middle-layer failures with a single ``except`` clause
while still being able to distinguish schema problems, descriptor
incompatibilities, lowering failures, and backend execution errors.
"""

from __future__ import annotations

__all__ = [
    "MiddleLayerError",
    "SchemaValidationError",
    "DescriptorError",
    "CompatibilityError",
    "ContextError",
    "PackagingError",
    "DecodingError",
    "LoweringError",
    "CapabilityError",
    "BackendError",
    "ServiceError",
    "TranspilerError",
    "SimulationError",
    "UnsupportedGateError",
]


class MiddleLayerError(Exception):
    """Base class for every error raised by the middle layer."""


class SchemaValidationError(MiddleLayerError):
    """A JSON document failed validation against its declared JSON Schema.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    path:
        JSON-pointer-like path (``$.exec.samples``) to the offending element.
    schema_path:
        Path within the schema that produced the failure.
    """

    def __init__(self, message: str, path: str = "$", schema_path: str = "#"):
        super().__init__(f"{path}: {message}")
        self.message = message
        self.path = path
        self.schema_path = schema_path


class DescriptorError(MiddleLayerError):
    """A descriptor (QDT, QOD, context) is structurally or semantically invalid."""


class CompatibilityError(MiddleLayerError):
    """Two descriptors cannot be combined (e.g. operator vs. register width)."""


class ContextError(MiddleLayerError):
    """An execution context is invalid or inconsistent with the operators."""


class PackagingError(MiddleLayerError):
    """A job bundle could not be assembled or parsed."""


class DecodingError(MiddleLayerError):
    """Measured results could not be decoded under the declared result schema."""


class LoweringError(MiddleLayerError):
    """An operator descriptor has no realization rule for the selected backend."""


class CapabilityError(MiddleLayerError):
    """A backend does not support a requested rep_kind, encoding, or policy."""


class BackendError(MiddleLayerError):
    """A backend failed while executing a submitted bundle."""


class ServiceError(MiddleLayerError):
    """An orthogonal context service (QEC, communication, pulse, ...) failed."""


class TranspilerError(MiddleLayerError):
    """The gate-model transpiler could not satisfy the target constraints."""


class SimulationError(MiddleLayerError):
    """A simulator substrate failed (invalid circuit, dimension mismatch, ...)."""


class UnsupportedGateError(SimulationError):
    """A circuit contains a gate an engine cannot execute (e.g. non-Clifford).

    Raised by the stabilizer compile path when a circuit contains a gate
    outside the Clifford lowering table.  Carries enough provenance for
    engine selection and fallback: the backend registry's auto-selection
    routes such circuits to the batched engine instead of crashing, and the
    gate backend re-raises this type unchanged (never wrapped in a generic
    :class:`BackendError`).

    Parameters
    ----------
    gate:
        Name of the offending gate.
    index:
        Zero-based position of the gate in the circuit's effective
        (barrier-free) instruction stream.
    reason:
        Optional human-readable explanation appended to the message.
    """

    def __init__(self, gate: str, index: int, reason: str = ""):
        message = f"gate {gate!r} at step {index} is not supported"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)
        self.gate = gate
        self.index = index
