"""Job bundles: the packaging step that produces ``job.json``.

The algorithmic libraries finish with "a packaging utility to finally combine
the quantum data type, operators, and optional context into a submission
bundle (job.json)" (Section 4.4).  :class:`JobBundle` is that artifact: the
complete, backend-neutral description of one submission.  Backends consume a
bundle and return results; nothing else crosses the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from .context import ContextDescriptor
from .errors import PackagingError
from .provenance import Provenance, build_provenance
from .qdt import QuantumDataType
from .qod import OperatorSequence, QuantumOperatorDescriptor
from .schemas import JOB_SCHEMA_ID, validate_document
from .serialization import digest, load_json, save_json
from .validation import ValidationReport, verify

__all__ = ["JobBundle", "package"]


@dataclass
class JobBundle:
    """A packaged submission: registers + operators + optional context."""

    qdts: Dict[str, QuantumDataType]
    operators: OperatorSequence
    context: Optional[ContextDescriptor] = None
    name: str = "job"
    provenance: Optional[Provenance] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.operators, OperatorSequence):
            self.operators = OperatorSequence(self.operators)
        if isinstance(self.qdts, (list, tuple)):
            self.qdts = {q.id: q for q in self.qdts}
        if not self.qdts:
            raise PackagingError("a job bundle needs at least one quantum data type")
        if len(self.operators) == 0:
            raise PackagingError("a job bundle needs at least one operator descriptor")

    # -- accessors -------------------------------------------------------------
    def register(self, register_id: str) -> QuantumDataType:
        """Look up a declared register by id."""
        try:
            return self.qdts[register_id]
        except KeyError:
            raise PackagingError(f"bundle declares no register {register_id!r}") from None

    @property
    def total_width(self) -> int:
        """Total number of logical carriers across all registers."""
        return sum(q.width for q in self.qdts.values())

    @property
    def engine(self) -> Optional[str]:
        """The engine requested by the context, if any."""
        return self.context.engine if self.context is not None else None

    def result_schemas(self) -> List[Any]:
        """Every result schema attached to operators, in sequence order."""
        return [op.result_schema for op in self.operators if op.result_schema is not None]

    # -- validation --------------------------------------------------------------
    def verify(self) -> ValidationReport:
        """Full semantic verification; returns the report without raising."""
        return verify(self.qdts, self.operators, self.context)

    def validate(self) -> None:
        """Schema + semantic validation; raises on the first error."""
        validate_document(self.to_dict(), JOB_SCHEMA_ID)
        self.verify().raise_if_failed()

    # -- serialization -------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Render the full ``job.json`` document."""
        doc: Dict[str, Any] = {
            "$schema": JOB_SCHEMA_ID,
            "name": self.name,
            "qdts": [q.to_dict() for q in self.qdts.values()],
            "operators": self.operators.to_list(),
        }
        if self.context is not None:
            doc["context"] = self.context.to_dict()
        if self.provenance is not None:
            doc["provenance"] = self.provenance.to_dict()
        if self.metadata:
            doc["metadata"] = dict(self.metadata)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobBundle":
        """Rebuild a bundle from a ``job.json`` document."""
        validate_document(dict(doc), JOB_SCHEMA_ID)
        qdts = {d["id"]: QuantumDataType.from_dict(d) for d in doc["qdts"]}
        operators = OperatorSequence.from_list(doc["operators"])
        context = (
            ContextDescriptor.from_dict(doc["context"]) if doc.get("context") is not None else None
        )
        return cls(
            qdts=qdts,
            operators=operators,
            context=context,
            name=doc.get("name", "job"),
            provenance=Provenance.from_dict(doc.get("provenance")),
            metadata=dict(doc.get("metadata", {})),
        )

    def save(self, path) -> None:
        """Write the bundle to ``job.json``."""
        save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path) -> "JobBundle":
        """Load a bundle from a ``job.json`` file."""
        return cls.from_dict(load_json(path))

    def digest(self) -> str:
        """Content digest of the bundle body (excluding provenance)."""
        body = self.to_dict()
        body.pop("provenance", None)
        return digest(body)

    # -- functional updates ----------------------------------------------------------
    def with_context(self, context: ContextDescriptor) -> "JobBundle":
        """Return a copy of the bundle re-targeted with *context*.

        This is the paper's central portability move: intent artifacts stay
        untouched, only the context changes.
        """
        return JobBundle(
            qdts=dict(self.qdts),
            operators=OperatorSequence(self.operators.operators),
            context=context,
            name=self.name,
            provenance=self.provenance,
            metadata=dict(self.metadata),
        )


def package(
    qdts: Union[QuantumDataType, Iterable[QuantumDataType], Mapping[str, QuantumDataType]],
    operators: Union[OperatorSequence, Iterable[QuantumOperatorDescriptor]],
    context: Optional[ContextDescriptor] = None,
    *,
    name: str = "job",
    producer: str = "",
    validate: bool = True,
    metadata: Optional[Mapping[str, Any]] = None,
) -> JobBundle:
    """Package registers, operators and an optional context into a bundle.

    This is the one-call packaging utility of Section 4.4.  With
    ``validate=True`` (the default) the bundle is schema- and
    semantically-validated before it is returned, so invalid submissions fail
    at packaging time rather than at the backend.
    """
    if isinstance(qdts, QuantumDataType):
        qdt_map: Dict[str, QuantumDataType] = {qdts.id: qdts}
    elif isinstance(qdts, Mapping):
        qdt_map = dict(qdts)
    else:
        qdt_map = {q.id: q for q in qdts}

    sequence = operators if isinstance(operators, OperatorSequence) else OperatorSequence(operators)
    bundle = JobBundle(
        qdts=qdt_map,
        operators=sequence,
        context=context,
        name=name,
        metadata=dict(metadata or {}),
    )
    body = bundle.to_dict()
    body.pop("provenance", None)
    bundle.provenance = build_provenance(body, producer=producer)
    if validate:
        bundle.validate()
    return bundle
