"""JSON serialization helpers shared by every descriptor.

The middle layer's interchange format is plain JSON (the paper's
proof-of-concept stores QDT.json, QOP.json, CTX.json and job.json).  This
module centralises how Python objects become JSON text so that digests are
stable and files are reproducible byte-for-byte:

* :func:`canonical_dumps` — sorted keys, no insignificant whitespace drift.
* :func:`digest` — SHA-256 of the canonical form, used for provenance.
* :func:`save_json` / :func:`load_json` — file I/O with UTF-8 and a trailing
  newline so artifacts diff cleanly.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Union

import numpy as np

__all__ = [
    "JSONEncoder",
    "canonical_dumps",
    "pretty_dumps",
    "digest",
    "save_json",
    "load_json",
]

PathLike = Union[str, Path]


class JSONEncoder(json.JSONEncoder):
    """JSON encoder aware of the value types used by descriptors.

    * :class:`fractions.Fraction` is rendered as ``"p/q"`` (the paper writes
      ``phase_scale`` as ``"1/1024"``).
    * NumPy scalars and arrays are converted to native Python numbers/lists.
    """

    def default(self, o: Any) -> Any:  # noqa: D102 - documented on class
        if isinstance(o, Fraction):
            return f"{o.numerator}/{o.denominator}"
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if isinstance(o, (set, frozenset)):
            return sorted(o)
        if hasattr(o, "to_dict"):
            return o.to_dict()
        return super().default(o)


def canonical_dumps(obj: Any) -> str:
    """Serialize *obj* deterministically (sorted keys, compact separators)."""
    return json.dumps(obj, cls=JSONEncoder, sort_keys=True, separators=(",", ":"))


def pretty_dumps(obj: Any) -> str:
    """Serialize *obj* for humans (two-space indentation, stable key order)."""
    return json.dumps(obj, cls=JSONEncoder, sort_keys=True, indent=2)


def digest(obj: Any) -> str:
    """Return the SHA-256 hex digest of the canonical JSON form of *obj*."""
    return hashlib.sha256(canonical_dumps(obj).encode("utf-8")).hexdigest()


def save_json(obj: Any, path: PathLike) -> Path:
    """Write *obj* to *path* as pretty JSON and return the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(pretty_dumps(obj) + "\n", encoding="utf-8")
    return path


def load_json(path: PathLike) -> Any:
    """Load a JSON document from *path*."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
