"""Result schemas: how a measurement's classical outcome must be decoded.

An operator descriptor that measures (or is followed by a measurement) must
declare an explicit :class:`ResultSchema` (Listing 3 of the paper): the
measurement basis, the datatype the bitstring encodes, the bit significance,
and ``clbit_order`` — the sequence of logical register indices whose outcomes
are mapped to successive classical bits.

Decoding of actual counts lives in :mod:`repro.results.decoding`; this module
only carries the declarative record and the parsing of ``"reg[idx]"``
references.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .errors import DescriptorError
from .qdt import BitOrder, MeasurementSemantics, QuantumDataType

__all__ = ["ClbitRef", "ResultSchema"]

_CLBIT_RE = re.compile(r"^(?P<reg>[A-Za-z_][\w.-]*)\[(?P<idx>\d+)\]$")


@dataclass(frozen=True)
class ClbitRef:
    """A reference to one logical carrier, e.g. ``reg_phase[3]``."""

    register: str
    index: int

    @classmethod
    def parse(cls, text: str) -> "ClbitRef":
        """Parse a ``"register[index]"`` reference string."""
        match = _CLBIT_RE.match(text.strip())
        if not match:
            raise DescriptorError(f"invalid clbit reference {text!r}; expected 'reg[i]'")
        return cls(register=match.group("reg"), index=int(match.group("idx")))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.register}[{self.index}]"


@dataclass
class ResultSchema:
    """Declarative decoding rule for measured classical bits.

    Parameters
    ----------
    basis:
        Measurement basis, ``"Z"`` (computational), ``"X"`` or ``"Y"``.
    datatype:
        Measurement semantics applied to the decoded bitstring
        (``AS_PHASE``, ``AS_BOOL``, ...); usually mirrors the register's QDT.
    bit_significance:
        Significance convention of the decoded string (``LSB_0``/``MSB_0``).
    clbit_order:
        For classical bit ``c`` (in increasing order), ``clbit_order[c]`` is
        the logical carrier whose outcome is stored there.
    """

    basis: str = "Z"
    datatype: MeasurementSemantics = MeasurementSemantics.AS_RAW
    bit_significance: BitOrder = BitOrder.LSB_0
    clbit_order: List[str] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.datatype = MeasurementSemantics(self.datatype)
        self.bit_significance = BitOrder(self.bit_significance)
        if self.basis not in ("Z", "X", "Y"):
            raise DescriptorError(f"unsupported measurement basis {self.basis!r}")
        self.clbit_order = [str(ref) for ref in self.clbit_order]
        # Validate references eagerly so errors surface at construction time.
        for ref in self.clbit_order:
            ClbitRef.parse(ref)

    # -- construction helpers ------------------------------------------------
    @classmethod
    def for_register(
        cls,
        qdt: QuantumDataType,
        *,
        basis: str = "Z",
        datatype: Optional[MeasurementSemantics] = None,
    ) -> "ResultSchema":
        """Default schema measuring every carrier of *qdt* in register order."""
        return cls(
            basis=basis,
            datatype=datatype or qdt.measurement_semantics,
            bit_significance=qdt.bit_order,
            clbit_order=[f"{qdt.id}[{i}]" for i in range(qdt.width)],
        )

    # -- accessors -----------------------------------------------------------
    @property
    def num_clbits(self) -> int:
        """Number of classical bits the schema describes."""
        return len(self.clbit_order)

    def references(self) -> List[ClbitRef]:
        """Parsed clbit references in classical-bit order."""
        return [ClbitRef.parse(ref) for ref in self.clbit_order]

    def registers(self) -> List[str]:
        """Distinct register ids referenced, in first-appearance order."""
        seen: List[str] = []
        for ref in self.references():
            if ref.register not in seen:
                seen.append(ref.register)
        return seen

    def clbits_for_register(self, register_id: str) -> List[Tuple[int, int]]:
        """Pairs ``(classical_bit, carrier_index)`` belonging to *register_id*."""
        return [
            (clbit, ref.index)
            for clbit, ref in enumerate(self.references())
            if ref.register == register_id
        ]

    def register_bits(self, bitstring: str, qdt: QuantumDataType) -> str:
        """Extract the register-order bitstring of *qdt* from a raw clbit string.

        *bitstring* is indexed by classical bit (character ``c`` is clbit
        ``c``); the result is indexed by carrier index of *qdt*.  Carriers the
        schema does not measure default to ``'0'``.
        """
        if len(bitstring) != self.num_clbits:
            raise DescriptorError(
                f"bitstring length {len(bitstring)} != num_clbits {self.num_clbits}"
            )
        chars = ["0"] * qdt.width
        for clbit, carrier in self.clbits_for_register(qdt.id):
            if carrier >= qdt.width:
                raise DescriptorError(
                    f"clbit reference {qdt.id}[{carrier}] exceeds register width {qdt.width}"
                )
            chars[carrier] = bitstring[clbit]
        return "".join(chars)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary matching Listing 3's ``result_schema`` block."""
        doc: Dict[str, Any] = {
            "basis": self.basis,
            "datatype": self.datatype.value,
            "bit_significance": self.bit_significance.value,
            "clbit_order": list(self.clbit_order),
        }
        if self.metadata:
            doc["metadata"] = dict(self.metadata)
        return doc

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["ResultSchema"]:
        """Build a schema from its dictionary form; ``None`` passes through."""
        if doc is None:
            return None
        return cls(
            basis=doc.get("basis", "Z"),
            datatype=doc.get("datatype", "AS_RAW"),
            bit_significance=doc.get("bit_significance", "LSB_0"),
            clbit_order=list(doc.get("clbit_order", [])),
            metadata=dict(doc.get("metadata", {})),
        )

    def validate_against(self, qdts: Mapping[str, QuantumDataType]) -> None:
        """Check that every referenced carrier exists in the declared QDTs."""
        for ref in self.references():
            if ref.register not in qdts:
                raise DescriptorError(
                    f"result schema references unknown register {ref.register!r}"
                )
            width = qdts[ref.register].width
            if ref.index >= width:
                raise DescriptorError(
                    f"result schema references {ref} but register width is {width}"
                )
