"""Embedded JSON Schemas for the middle-layer interchange artifacts.

The paper's descriptors each name their schema through a ``$schema`` field
(``qdt-core.schema.json``, ``qod.schema.json``, ``ctx.schema.json``); job
bundles add ``job.schema.json``.  This module embeds those schemas so the
library is self-contained and descriptor files can be validated offline.

The schemas are deliberately permissive where the paper leaves room for
evolution (``params`` and ``extensions`` are open objects) and strict where
ambiguity would break composability (encoding kinds, bit order, measurement
semantics are closed enums).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from .errors import SchemaValidationError
from .jsonschema import JSONSchemaValidator

__all__ = [
    "QDT_SCHEMA_ID",
    "QOD_SCHEMA_ID",
    "CTX_SCHEMA_ID",
    "JOB_SCHEMA_ID",
    "QDT_SCHEMA",
    "QOD_SCHEMA",
    "CTX_SCHEMA",
    "JOB_SCHEMA",
    "SCHEMAS",
    "ENCODING_KINDS",
    "BIT_ORDERS",
    "MEASUREMENT_SEMANTICS",
    "MEASUREMENT_BASES",
    "get_schema",
    "get_validator",
    "validate_document",
]

# Canonical "$schema" identifiers, matching the listings in the paper.
QDT_SCHEMA_ID = "qdt-core.schema.json"
QOD_SCHEMA_ID = "qod.schema.json"
CTX_SCHEMA_ID = "ctx.schema.json"
JOB_SCHEMA_ID = "job.schema.json"

# Closed vocabularies (Section 4.1 of the paper plus the ISING_SPIN kind used
# by the proof of concept in Section 5).
ENCODING_KINDS = [
    "INT_REGISTER",
    "UINT_REGISTER",
    "BOOL_REGISTER",
    "ISING_SPIN",
    "QUBO_BINARY",
    "PHASE_REGISTER",
    "FIXED_POINT_REGISTER",
    "AMPLITUDE_REGISTER",
    "ANGLE_REGISTER",
]

BIT_ORDERS = ["LSB_0", "MSB_0"]

MEASUREMENT_SEMANTICS = [
    "AS_INT",
    "AS_UINT",
    "AS_BOOL",
    "AS_SPIN",
    "AS_PHASE",
    "AS_FIXED_POINT",
    "AS_AMPLITUDE",
    "AS_RAW",
]

MEASUREMENT_BASES = ["Z", "X", "Y"]

_COST_HINT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "oneq": {"type": "number", "minimum": 0},
        "twoq": {"type": "number", "minimum": 0},
        "depth": {"type": "number", "minimum": 0},
        "ancilla": {"type": "number", "minimum": 0},
        "communication": {"type": "number", "minimum": 0},
        "duration_ns": {"type": "number", "minimum": 0},
        "shots": {"type": "number", "minimum": 0},
        "reads": {"type": "number", "minimum": 0},
        "variables": {"type": "number", "minimum": 0},
        "couplers": {"type": "number", "minimum": 0},
        "extras": {"type": "object"},
    },
    "additionalProperties": True,
}

_RESULT_SCHEMA_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "basis": {"type": "string", "enum": MEASUREMENT_BASES},
        "datatype": {"type": "string", "enum": MEASUREMENT_SEMANTICS},
        "bit_significance": {"type": "string", "enum": BIT_ORDERS},
        "clbit_order": {
            "type": "array",
            "items": {"type": "string", "minLength": 1},
            "minItems": 1,
        },
    },
    "required": ["basis", "datatype", "clbit_order"],
    "additionalProperties": True,
}

QDT_SCHEMA: Dict[str, Any] = {
    "$id": QDT_SCHEMA_ID,
    "title": "Quantum Data Type descriptor",
    "type": "object",
    "properties": {
        "$schema": {"type": "string"},
        "id": {"type": "string", "minLength": 1},
        "name": {"type": "string", "minLength": 1},
        "width": {"type": "integer", "minimum": 1},
        "encoding_kind": {"type": "string", "enum": ENCODING_KINDS},
        "bit_order": {"type": "string", "enum": BIT_ORDERS},
        "measurement_semantics": {"type": "string", "enum": MEASUREMENT_SEMANTICS},
        "phase_scale": {"type": "string", "pattern": r"^\d+\s*/\s*\d+$"},
        "signed": {"type": "boolean"},
        "fraction_bits": {"type": "integer", "minimum": 0},
        "carrier": {"type": "string", "enum": ["qubit", "qumode", "spin", "logical"]},
        "metadata": {"type": "object"},
    },
    "required": ["id", "width", "encoding_kind", "bit_order", "measurement_semantics"],
    "additionalProperties": False,
}

QOD_SCHEMA: Dict[str, Any] = {
    "$id": QOD_SCHEMA_ID,
    "title": "Quantum Operator Descriptor",
    "type": "object",
    "properties": {
        "$schema": {"type": "string"},
        "name": {"type": "string", "minLength": 1},
        "rep_kind": {"type": "string", "minLength": 1},
        "domain_qdt": {
            "anyOf": [
                {"type": "string", "minLength": 1},
                {"type": "array", "items": {"type": "string", "minLength": 1}},
            ]
        },
        "codomain_qdt": {
            "anyOf": [
                {"type": "string", "minLength": 1},
                {"type": "array", "items": {"type": "string", "minLength": 1}},
            ]
        },
        "params": {"type": "object"},
        "cost_hint": _COST_HINT_SCHEMA,
        "result_schema": _RESULT_SCHEMA_SCHEMA,
        "metadata": {"type": "object"},
    },
    "required": ["name", "rep_kind", "domain_qdt"],
    "additionalProperties": False,
}

_TARGET_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "basis_gates": {"type": "array", "items": {"type": "string"}},
        "coupling_map": {
            "type": "array",
            "items": {
                "type": "array",
                "items": {"type": "integer", "minimum": 0},
                "minItems": 2,
                "maxItems": 2,
            },
        },
        "num_qubits": {"type": "integer", "minimum": 1},
    },
    "additionalProperties": True,
}

_EXEC_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "engine": {"type": "string", "minLength": 1},
        "samples": {"type": "integer", "minimum": 1},
        "seed": {"type": "integer"},
        "target": _TARGET_SCHEMA,
        "options": {"type": "object"},
    },
    "required": ["engine"],
    "additionalProperties": True,
}

_QEC_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "code_family": {"type": "string"},
        "distance": {"type": "integer", "minimum": 1},
        "allocator": {"type": "string"},
        "decoder": {"type": "string"},
        "logical_gate_set": {"type": "array", "items": {"type": "string"}},
        "physical_error_rate": {"type": "number", "exclusiveMinimum": 0, "maximum": 1},
        "cycle_time_ns": {"type": "number", "exclusiveMinimum": 0},
    },
    "required": ["code_family", "distance"],
    "additionalProperties": True,
}

_ANNEAL_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "num_reads": {"type": "integer", "minimum": 1},
        "num_sweeps": {"type": "integer", "minimum": 1},
        "beta_range": {
            "type": "array",
            "items": {"type": "number", "exclusiveMinimum": 0},
            "minItems": 2,
            "maxItems": 2,
        },
        "schedule": {"type": "string", "enum": ["geometric", "linear"]},
        "seed": {"type": "integer"},
        "embedding": {"type": "object"},
    },
    "additionalProperties": True,
}

_COMM_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "allow_teleportation": {"type": "boolean"},
        "max_qpus": {"type": "integer", "minimum": 1},
        "qpu_capacity": {"type": "integer", "minimum": 1},
        "epr_fidelity": {"type": "number", "exclusiveMinimum": 0, "maximum": 1},
    },
    "additionalProperties": True,
}

_PULSE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "dt_ns": {"type": "number", "exclusiveMinimum": 0},
        "shape": {"type": "string"},
        "gate_durations_ns": {"type": "object"},
    },
    "additionalProperties": True,
}

CTX_SCHEMA: Dict[str, Any] = {
    "$id": CTX_SCHEMA_ID,
    "title": "Execution Context descriptor",
    "type": "object",
    "properties": {
        "$schema": {"type": "string"},
        "exec": _EXEC_SCHEMA,
        "qec": _QEC_SCHEMA,
        "anneal": _ANNEAL_SCHEMA,
        "comm": _COMM_SCHEMA,
        "pulse": _PULSE_SCHEMA,
        # The paper's Fig. 3 nests anneal settings under "contexts".
        "contexts": {"type": "object"},
        "extensions": {"type": "object"},
        "metadata": {"type": "object"},
    },
    "additionalProperties": False,
}

JOB_SCHEMA: Dict[str, Any] = {
    "$id": JOB_SCHEMA_ID,
    "title": "Middle-layer submission bundle (job.json)",
    "type": "object",
    "properties": {
        "$schema": {"type": "string"},
        "name": {"type": "string"},
        "qdts": {"type": "array", "items": QDT_SCHEMA, "minItems": 1},
        "operators": {"type": "array", "items": QOD_SCHEMA, "minItems": 1},
        "context": CTX_SCHEMA,
        "provenance": {"type": "object"},
        "metadata": {"type": "object"},
    },
    "required": ["qdts", "operators"],
    "additionalProperties": False,
}

SCHEMAS: Dict[str, Dict[str, Any]] = {
    QDT_SCHEMA_ID: QDT_SCHEMA,
    QOD_SCHEMA_ID: QOD_SCHEMA,
    CTX_SCHEMA_ID: CTX_SCHEMA,
    JOB_SCHEMA_ID: JOB_SCHEMA,
}

_VALIDATORS: Dict[str, JSONSchemaValidator] = {}


def get_schema(schema_id: str) -> Dict[str, Any]:
    """Return the embedded schema registered under *schema_id*."""
    try:
        return SCHEMAS[schema_id]
    except KeyError:
        raise SchemaValidationError(f"unknown schema id {schema_id!r}") from None


def get_validator(schema_id: str) -> JSONSchemaValidator:
    """Return (and cache) a validator for the schema *schema_id*."""
    if schema_id not in _VALIDATORS:
        _VALIDATORS[schema_id] = JSONSchemaValidator(get_schema(schema_id))
    return _VALIDATORS[schema_id]


def validate_document(document: Mapping[str, Any], schema_id: str | None = None) -> None:
    """Validate *document* against *schema_id* or its own ``$schema`` field."""
    if schema_id is None:
        schema_id = document.get("$schema")  # type: ignore[assignment]
        if not schema_id:
            raise SchemaValidationError("document has no $schema field and no schema_id given")
    get_validator(schema_id).validate(document)
