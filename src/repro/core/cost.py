"""Device-independent cost hints attached to operator descriptors.

The paper argues (Section 2, "The cost information is not visible") that a
technology-agnostic middle layer should expose cost metadata analogous to
FLOP counts in HPC schedulers: two-qubit gate counts, depth, ancilla demand,
communication volume, expected duration.  :class:`CostHint` is that record.

Cost hints are *estimates supplied by the algorithmic library*; backends may
refine or ignore them.  They compose: sequential composition adds counts and
depths, parallel composition adds counts but takes the maximum depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = ["CostHint"]

_NUMERIC_FIELDS = (
    "oneq",
    "twoq",
    "depth",
    "ancilla",
    "communication",
    "duration_ns",
    "shots",
    "reads",
    "variables",
    "couplers",
)


@dataclass
class CostHint:
    """Optional, device-independent resource estimate for one operator.

    All fields default to ``None`` meaning "no estimate provided"; arithmetic
    treats missing values as zero (for additive fields) so partially-known
    hints still compose.
    """

    oneq: Optional[float] = None
    twoq: Optional[float] = None
    depth: Optional[float] = None
    ancilla: Optional[float] = None
    communication: Optional[float] = None
    duration_ns: Optional[float] = None
    shots: Optional[float] = None
    reads: Optional[float] = None
    variables: Optional[float] = None
    couplers: Optional[float] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary, omitting unset fields."""
        doc: Dict[str, Any] = {}
        for name in _NUMERIC_FIELDS:
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        if self.extras:
            doc["extras"] = dict(self.extras)
        return doc

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["CostHint"]:
        """Build a hint from a dictionary; ``None``/empty input yields ``None``."""
        if not doc:
            return None
        known = {k: doc[k] for k in _NUMERIC_FIELDS if k in doc}
        extras = dict(doc.get("extras", {}))
        # Unknown numeric keys are preserved in extras rather than dropped.
        for key, value in doc.items():
            if key not in _NUMERIC_FIELDS and key != "extras":
                extras[key] = value
        return cls(extras=extras, **known)

    # -- algebra ------------------------------------------------------------
    def _binary(self, other: "CostHint", mode: str) -> "CostHint":
        result: Dict[str, Optional[float]] = {}
        for name in _NUMERIC_FIELDS:
            a, b = getattr(self, name), getattr(other, name)
            if a is None and b is None:
                result[name] = None
                continue
            a = a or 0.0
            b = b or 0.0
            if mode == "max" and name == "depth":
                result[name] = max(a, b)
            else:
                result[name] = a + b
        extras = dict(self.extras)
        extras.update(other.extras)
        return CostHint(extras=extras, **result)

    def sequential(self, other: "CostHint") -> "CostHint":
        """Compose two hints executed one after the other (everything adds)."""
        return self._binary(other, "add")

    def parallel(self, other: "CostHint") -> "CostHint":
        """Compose two hints executed concurrently (depth takes the maximum)."""
        return self._binary(other, "max")

    def __add__(self, other: "CostHint") -> "CostHint":
        return self.sequential(other)

    def scaled(self, factor: float) -> "CostHint":
        """Multiply every numeric estimate by *factor* (e.g. repeated layers)."""
        values = {
            name: (getattr(self, name) * factor if getattr(self, name) is not None else None)
            for name in _NUMERIC_FIELDS
        }
        return CostHint(extras=dict(self.extras), **values)

    @staticmethod
    def total(hints: Iterable[Optional["CostHint"]]) -> "CostHint":
        """Sequentially accumulate an iterable of hints, ignoring ``None``."""
        acc = CostHint()
        for hint in hints:
            if hint is not None:
                acc = acc.sequential(hint)
        return acc

    # -- convenience --------------------------------------------------------
    def get(self, name: str, default: float = 0.0) -> float:
        """Numeric field accessor treating missing values as *default*."""
        value = getattr(self, name, None)
        return default if value is None else float(value)

    def is_empty(self) -> bool:
        """True when no estimate at all has been provided."""
        return all(getattr(self, name) is None for name in _NUMERIC_FIELDS) and not self.extras
