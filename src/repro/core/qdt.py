"""Quantum Data Type descriptors (the semantic contract for a register).

A :class:`QuantumDataType` tells every component of the stack what a quantum
register *means*: how many logical carriers it spans, how basis states map to
classical values (integer, boolean, Ising spin, fixed-point phase, ...),
which index is least significant, and how measured bitstrings must be
interpreted.  This is the direct analogue of MPI datatypes / HDF5 dataset
metadata that the paper draws on (Section 4.1, Listing 2).

Bitstring convention
--------------------
Throughout :mod:`repro` a *bitstring* is a ``str`` of ``'0'``/``'1'``
characters in **register-index order**: character ``i`` is the readout of
logical carrier ``i``.  ``bit_order`` then assigns significance:

* ``LSB_0`` — carrier ``i`` has weight ``2**i`` (the paper's default),
* ``MSB_0`` — carrier ``0`` is the most-significant bit.

This keeps the string layout independent of significance, which is exactly
the ambiguity the paper's motivational example calls out in Qiskit programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from .errors import DescriptorError
from .schemas import QDT_SCHEMA_ID, validate_document
from .serialization import load_json, save_json

__all__ = [
    "EncodingKind",
    "BitOrder",
    "MeasurementSemantics",
    "Carrier",
    "QuantumDataType",
    "phase_register",
    "integer_register",
    "boolean_register",
    "ising_register",
    "fixed_point_register",
]


class EncodingKind(str, Enum):
    """How basis states of the register are interpreted."""

    INT_REGISTER = "INT_REGISTER"
    UINT_REGISTER = "UINT_REGISTER"
    BOOL_REGISTER = "BOOL_REGISTER"
    ISING_SPIN = "ISING_SPIN"
    QUBO_BINARY = "QUBO_BINARY"
    PHASE_REGISTER = "PHASE_REGISTER"
    FIXED_POINT_REGISTER = "FIXED_POINT_REGISTER"
    AMPLITUDE_REGISTER = "AMPLITUDE_REGISTER"
    ANGLE_REGISTER = "ANGLE_REGISTER"


class BitOrder(str, Enum):
    """Significance convention for carrier indices."""

    LSB_0 = "LSB_0"
    MSB_0 = "MSB_0"


class MeasurementSemantics(str, Enum):
    """How Z-basis readout of the register is decoded downstream."""

    AS_INT = "AS_INT"
    AS_UINT = "AS_UINT"
    AS_BOOL = "AS_BOOL"
    AS_SPIN = "AS_SPIN"
    AS_PHASE = "AS_PHASE"
    AS_FIXED_POINT = "AS_FIXED_POINT"
    AS_AMPLITUDE = "AS_AMPLITUDE"
    AS_RAW = "AS_RAW"


class Carrier(str, Enum):
    """Physical/logical information carrier the register is realised on."""

    QUBIT = "qubit"
    QUMODE = "qumode"
    SPIN = "spin"
    LOGICAL = "logical"


def _parse_fraction(value: Union[str, Fraction, float, int, None]) -> Optional[Fraction]:
    if value is None:
        return None
    if isinstance(value, Fraction):
        return value
    if isinstance(value, str):
        parts = value.split("/")
        if len(parts) == 2:
            return Fraction(int(parts[0].strip()), int(parts[1].strip()))
        return Fraction(value.strip())
    return Fraction(value).limit_denominator(1 << 62)


@dataclass
class QuantumDataType:
    """Declarative description of what a quantum register means.

    Parameters
    ----------
    id:
        Unique identifier used by operator descriptors (``domain_qdt``).
    width:
        Number of logical carriers (qubits, qumodes, logical qubits...).
    encoding_kind:
        Member of :class:`EncodingKind`.
    bit_order:
        Member of :class:`BitOrder`; default ``LSB_0``.
    measurement_semantics:
        Member of :class:`MeasurementSemantics`.
    name:
        Human-readable register name (defaults to ``id``).
    phase_scale:
        For ``PHASE_REGISTER``: fraction of a full turn represented by basis
        state ``|1>`` of the least-significant carrier, e.g. ``1/1024``.
    signed:
        For integer registers: two's-complement interpretation.
    fraction_bits:
        For fixed-point registers: number of fractional bits.
    carrier:
        Member of :class:`Carrier`; informational only.
    metadata:
        Free-form, carried through packaging untouched.
    """

    id: str
    width: int
    encoding_kind: EncodingKind
    bit_order: BitOrder = BitOrder.LSB_0
    measurement_semantics: MeasurementSemantics = MeasurementSemantics.AS_RAW
    name: Optional[str] = None
    phase_scale: Optional[Fraction] = None
    signed: bool = False
    fraction_bits: int = 0
    carrier: Carrier = Carrier.QUBIT
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.encoding_kind = EncodingKind(self.encoding_kind)
        self.bit_order = BitOrder(self.bit_order)
        self.measurement_semantics = MeasurementSemantics(self.measurement_semantics)
        self.carrier = Carrier(self.carrier)
        self.phase_scale = _parse_fraction(self.phase_scale)
        if self.name is None:
            self.name = self.id
        if not isinstance(self.width, int) or self.width < 1:
            raise DescriptorError(f"QDT {self.id!r}: width must be a positive integer")
        if self.encoding_kind is EncodingKind.PHASE_REGISTER and self.phase_scale is None:
            self.phase_scale = Fraction(1, 1 << self.width)
        if self.fraction_bits < 0 or self.fraction_bits > self.width:
            raise DescriptorError(
                f"QDT {self.id!r}: fraction_bits must lie in [0, width]"
            )

    # -- derived properties -------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of computational basis states of the register."""
        return 1 << self.width

    @property
    def is_binary_optimization(self) -> bool:
        """True for registers holding Ising spins or QUBO binaries."""
        return self.encoding_kind in (
            EncodingKind.ISING_SPIN,
            EncodingKind.QUBO_BINARY,
            EncodingKind.BOOL_REGISTER,
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Render the descriptor as a JSON-ready dictionary (Listing 2)."""
        doc: Dict[str, Any] = {
            "$schema": QDT_SCHEMA_ID,
            "id": self.id,
            "name": self.name,
            "width": self.width,
            "encoding_kind": self.encoding_kind.value,
            "bit_order": self.bit_order.value,
            "measurement_semantics": self.measurement_semantics.value,
        }
        if self.phase_scale is not None:
            doc["phase_scale"] = f"{self.phase_scale.numerator}/{self.phase_scale.denominator}"
        if self.signed:
            doc["signed"] = True
        if self.fraction_bits:
            doc["fraction_bits"] = self.fraction_bits
        if self.carrier is not Carrier.QUBIT:
            doc["carrier"] = self.carrier.value
        if self.metadata:
            doc["metadata"] = dict(self.metadata)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "QuantumDataType":
        """Build a descriptor from its JSON dictionary form, validating it."""
        validate_document(dict(doc), QDT_SCHEMA_ID)
        return cls(
            id=doc["id"],
            name=doc.get("name"),
            width=doc["width"],
            encoding_kind=doc["encoding_kind"],
            bit_order=doc.get("bit_order", "LSB_0"),
            measurement_semantics=doc["measurement_semantics"],
            phase_scale=doc.get("phase_scale"),
            signed=doc.get("signed", False),
            fraction_bits=doc.get("fraction_bits", 0),
            carrier=doc.get("carrier", "qubit"),
            metadata=dict(doc.get("metadata", {})),
        )

    def validate(self) -> None:
        """Validate the descriptor against the embedded QDT schema."""
        validate_document(self.to_dict(), QDT_SCHEMA_ID)

    def save(self, path) -> None:
        """Write the descriptor as ``QDT.json``-style file."""
        save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path) -> "QuantumDataType":
        """Load a descriptor from a JSON file."""
        return cls.from_dict(load_json(path))

    # -- value <-> bitstring mapping ----------------------------------------
    def _check_bits(self, bits: str) -> str:
        if len(bits) != self.width or any(c not in "01" for c in bits):
            raise DescriptorError(
                f"QDT {self.id!r}: bitstring {bits!r} is not a width-{self.width} binary string"
            )
        return bits

    def bits_to_index(self, bits: str) -> int:
        """Map a register-order bitstring to the basis-state index it denotes."""
        self._check_bits(bits)
        if self.bit_order is BitOrder.LSB_0:
            return sum(1 << i for i, c in enumerate(bits) if c == "1")
        return int(bits, 2)

    def index_to_bits(self, index: int) -> str:
        """Map a basis-state index to its register-order bitstring."""
        if not 0 <= index < self.num_states:
            raise DescriptorError(
                f"QDT {self.id!r}: basis index {index} out of range [0, {self.num_states})"
            )
        msb_first = format(index, f"0{self.width}b")
        if self.bit_order is BitOrder.LSB_0:
            return msb_first[::-1]
        return msb_first

    def decode_bits(self, bits: str) -> Any:
        """Decode a measured bitstring according to ``measurement_semantics``.

        Returns an ``int`` for integer semantics, a tuple of ``0``/``1`` for
        ``AS_BOOL``, a tuple of ``+1``/``-1`` spins for ``AS_SPIN`` (bit
        ``0 -> +1``, ``1 -> -1``), a :class:`fractions.Fraction` of a full
        turn for ``AS_PHASE``, a float for ``AS_FIXED_POINT``, and the raw
        bitstring otherwise.
        """
        self._check_bits(bits)
        sem = self.measurement_semantics
        if sem in (MeasurementSemantics.AS_UINT, MeasurementSemantics.AS_AMPLITUDE):
            return self.bits_to_index(bits)
        if sem is MeasurementSemantics.AS_INT:
            value = self.bits_to_index(bits)
            if self.signed and value >= self.num_states // 2:
                value -= self.num_states
            return value
        if sem is MeasurementSemantics.AS_BOOL:
            return tuple(int(c) for c in bits)
        if sem is MeasurementSemantics.AS_SPIN:
            return tuple(1 - 2 * int(c) for c in bits)
        if sem is MeasurementSemantics.AS_PHASE:
            scale = self.phase_scale or Fraction(1, self.num_states)
            return self.bits_to_index(bits) * scale
        if sem is MeasurementSemantics.AS_FIXED_POINT:
            value = self.bits_to_index(bits)
            if self.signed and value >= self.num_states // 2:
                value -= self.num_states
            return value / float(1 << self.fraction_bits)
        return bits

    def encode_value(self, value: Any) -> str:
        """Encode a classical value as a register-order bitstring.

        The inverse of :meth:`decode_bits` for every deterministic semantics.
        """
        sem = self.measurement_semantics
        if sem is MeasurementSemantics.AS_RAW:
            return self._check_bits(str(value))
        if sem is MeasurementSemantics.AS_BOOL:
            bits = self._iterable_to_bits(value, {0: "0", 1: "1", False: "0", True: "1"})
            return bits
        if sem is MeasurementSemantics.AS_SPIN:
            bits = self._iterable_to_bits(value, {1: "0", -1: "1"})
            return bits
        if sem is MeasurementSemantics.AS_PHASE:
            scale = self.phase_scale or Fraction(1, self.num_states)
            index = Fraction(value) / scale
            if index.denominator != 1:
                raise DescriptorError(
                    f"QDT {self.id!r}: phase {value} is not a multiple of {scale}"
                )
            return self.index_to_bits(int(index) % self.num_states)
        if sem is MeasurementSemantics.AS_FIXED_POINT:
            index = int(round(float(value) * (1 << self.fraction_bits)))
            if index < 0:
                index += self.num_states
            return self.index_to_bits(index)
        index = int(value)
        if index < 0:
            if not self.signed:
                raise DescriptorError(f"QDT {self.id!r}: negative value for unsigned register")
            index += self.num_states
        return self.index_to_bits(index)

    def _iterable_to_bits(self, values: Iterable[Any], mapping: Dict[Any, str]) -> str:
        seq = list(values)
        if len(seq) != self.width:
            raise DescriptorError(
                f"QDT {self.id!r}: expected {self.width} values, got {len(seq)}"
            )
        try:
            return "".join(mapping[v] for v in seq)
        except KeyError as exc:
            raise DescriptorError(
                f"QDT {self.id!r}: value {exc.args[0]!r} not encodable"
            ) from None

    def all_values(self) -> Tuple[Any, ...]:
        """Enumerate the decoded value of every basis state (small registers)."""
        if self.width > 20:
            raise DescriptorError("all_values() limited to width <= 20 registers")
        return tuple(self.decode_bits(self.index_to_bits(i)) for i in range(self.num_states))

    # -- compatibility ------------------------------------------------------
    def compatible_with(self, other: "QuantumDataType") -> bool:
        """Whether two registers share width, encoding, ordering and semantics."""
        return (
            self.width == other.width
            and self.encoding_kind == other.encoding_kind
            and self.bit_order == other.bit_order
            and self.measurement_semantics == other.measurement_semantics
        )


# -- convenience constructors ------------------------------------------------

def phase_register(
    id: str,
    width: int,
    *,
    name: Optional[str] = None,
    phase_scale: Union[str, Fraction, None] = None,
    bit_order: Union[str, BitOrder] = BitOrder.LSB_0,
) -> QuantumDataType:
    """A fixed-point phase accumulator register (the QFT's natural datatype)."""
    return QuantumDataType(
        id=id,
        name=name,
        width=width,
        encoding_kind=EncodingKind.PHASE_REGISTER,
        bit_order=bit_order,
        measurement_semantics=MeasurementSemantics.AS_PHASE,
        phase_scale=phase_scale if phase_scale is not None else Fraction(1, 1 << width),
    )


def integer_register(
    id: str,
    width: int,
    *,
    name: Optional[str] = None,
    signed: bool = False,
    bit_order: Union[str, BitOrder] = BitOrder.LSB_0,
) -> QuantumDataType:
    """An integer register decoded with ``AS_INT`` semantics."""
    return QuantumDataType(
        id=id,
        name=name,
        width=width,
        encoding_kind=EncodingKind.INT_REGISTER,
        bit_order=bit_order,
        measurement_semantics=MeasurementSemantics.AS_INT,
        signed=signed,
    )


def boolean_register(
    id: str,
    width: int,
    *,
    name: Optional[str] = None,
    bit_order: Union[str, BitOrder] = BitOrder.LSB_0,
) -> QuantumDataType:
    """A register of independent boolean flags decoded with ``AS_BOOL``."""
    return QuantumDataType(
        id=id,
        name=name,
        width=width,
        encoding_kind=EncodingKind.BOOL_REGISTER,
        bit_order=bit_order,
        measurement_semantics=MeasurementSemantics.AS_BOOL,
    )


def ising_register(
    id: str,
    width: int,
    *,
    name: Optional[str] = None,
    measurement_semantics: Union[str, MeasurementSemantics] = MeasurementSemantics.AS_BOOL,
    bit_order: Union[str, BitOrder] = BitOrder.LSB_0,
) -> QuantumDataType:
    """Logical Ising spins ``s_i in {-1,+1}`` read out as boolean labels.

    The proof of concept of the paper (Section 5) declares the Max-Cut
    decision variables exactly this way: ``encoding_kind = ISING_SPIN`` with
    ``measurement_semantics = AS_BOOL``.
    """
    return QuantumDataType(
        id=id,
        name=name,
        width=width,
        encoding_kind=EncodingKind.ISING_SPIN,
        bit_order=bit_order,
        measurement_semantics=measurement_semantics,
    )


def fixed_point_register(
    id: str,
    width: int,
    fraction_bits: int,
    *,
    name: Optional[str] = None,
    signed: bool = False,
    bit_order: Union[str, BitOrder] = BitOrder.LSB_0,
) -> QuantumDataType:
    """A fixed-point real register with ``fraction_bits`` fractional bits."""
    return QuantumDataType(
        id=id,
        name=name,
        width=width,
        encoding_kind=EncodingKind.FIXED_POINT_REGISTER,
        bit_order=bit_order,
        measurement_semantics=MeasurementSemantics.AS_FIXED_POINT,
        signed=signed,
        fraction_bits=fraction_bits,
    )
