"""A small, dependency-free JSON Schema validator.

The middle layer keeps descriptors as plain JSON documents (the paper's
Listings 2--5).  Each document names its schema via ``$schema`` and is
validated before it is consumed.  The validator implements the subset of
JSON Schema draft-07 that the embedded schemas in :mod:`repro.core.schemas`
use:

``type`` (including union types), ``properties``, ``required``,
``additionalProperties``, ``enum``, ``const``, ``items``,
``minItems``/``maxItems``, ``minimum``/``maximum``,
``exclusiveMinimum``/``exclusiveMaximum``, ``minLength``/``maxLength``,
``pattern``, ``anyOf``, ``oneOf``, ``allOf``, ``not`` and local ``$ref``
references of the form ``#/definitions/<name>``.

It is intentionally small, predictable, and fast enough to validate every
descriptor on every packaging step (the overhead is measured by the
``bench_ablation_overhead`` benchmark).
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Sequence

from .errors import SchemaValidationError

__all__ = ["validate", "is_valid", "iter_errors", "JSONSchemaValidator"]

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, (list, tuple)),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _type_matches(value: Any, type_name: str) -> bool:
    check = _TYPE_CHECKS.get(type_name)
    if check is None:
        raise SchemaValidationError(f"unknown schema type {type_name!r}")
    return check(value)


class JSONSchemaValidator:
    """Validate JSON-like Python objects against a JSON Schema document.

    Parameters
    ----------
    schema:
        The schema document.  ``definitions`` at the top level are resolvable
        through ``$ref`` references of the form ``#/definitions/<name>``.
    """

    def __init__(self, schema: Mapping[str, Any]):
        if not isinstance(schema, Mapping):
            raise SchemaValidationError("schema must be a JSON object")
        self.schema = schema
        self._definitions = schema.get("definitions", {})

    # -- public API ---------------------------------------------------------
    def validate(self, instance: Any) -> None:
        """Raise :class:`SchemaValidationError` on the first violation."""
        errors = list(self.iter_errors(instance))
        if errors:
            raise errors[0]

    def is_valid(self, instance: Any) -> bool:
        """Return ``True`` when *instance* satisfies the schema."""
        return not list(self.iter_errors(instance))

    def iter_errors(self, instance: Any):
        """Yield every :class:`SchemaValidationError` found in *instance*."""
        yield from self._validate(instance, self.schema, "$", "#")

    # -- internals ----------------------------------------------------------
    def _resolve_ref(self, ref: str) -> Mapping[str, Any]:
        if not ref.startswith("#/"):
            raise SchemaValidationError(f"only local $ref supported, got {ref!r}")
        node: Any = self.schema
        for part in ref[2:].split("/"):
            if not isinstance(node, Mapping) or part not in node:
                raise SchemaValidationError(f"unresolvable $ref {ref!r}")
            node = node[part]
        return node

    def _validate(self, value: Any, schema: Any, path: str, spath: str):
        if schema is True or schema == {}:
            return
        if schema is False:
            yield SchemaValidationError("schema forbids any value", path, spath)
            return
        if not isinstance(schema, Mapping):
            raise SchemaValidationError(f"invalid schema node at {spath}")

        if "$ref" in schema:
            ref_schema = self._resolve_ref(schema["$ref"])
            yield from self._validate(value, ref_schema, path, schema["$ref"])
            return

        yield from self._check_type(value, schema, path, spath)
        yield from self._check_enum_const(value, schema, path, spath)
        yield from self._check_combinators(value, schema, path, spath)

        if isinstance(value, Mapping):
            yield from self._check_object(value, schema, path, spath)
        if isinstance(value, (list, tuple)):
            yield from self._check_array(value, schema, path, spath)
        if isinstance(value, str):
            yield from self._check_string(value, schema, path, spath)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            yield from self._check_number(value, schema, path, spath)

    def _check_type(self, value, schema, path, spath):
        if "type" not in schema:
            return
        expected = schema["type"]
        names = [expected] if isinstance(expected, str) else list(expected)
        if not any(_type_matches(value, name) for name in names):
            yield SchemaValidationError(
                f"expected type {expected!r}, got {type(value).__name__}",
                path,
                f"{spath}/type",
            )

    def _check_enum_const(self, value, schema, path, spath):
        if "enum" in schema and value not in schema["enum"]:
            yield SchemaValidationError(
                f"value {value!r} not in enum {schema['enum']!r}", path, f"{spath}/enum"
            )
        if "const" in schema and value != schema["const"]:
            yield SchemaValidationError(
                f"value {value!r} != const {schema['const']!r}", path, f"{spath}/const"
            )

    def _check_combinators(self, value, schema, path, spath):
        if "allOf" in schema:
            for i, sub in enumerate(schema["allOf"]):
                yield from self._validate(value, sub, path, f"{spath}/allOf/{i}")
        if "anyOf" in schema:
            subs = schema["anyOf"]
            if all(list(self._validate(value, sub, path, f"{spath}/anyOf/{i}"))
                   for i, sub in enumerate(subs)):
                yield SchemaValidationError(
                    "value does not satisfy any subschema of anyOf", path, f"{spath}/anyOf"
                )
        if "oneOf" in schema:
            subs = schema["oneOf"]
            matches = sum(
                not list(self._validate(value, sub, path, f"{spath}/oneOf/{i}"))
                for i, sub in enumerate(subs)
            )
            if matches != 1:
                yield SchemaValidationError(
                    f"value satisfies {matches} subschemas of oneOf (need exactly 1)",
                    path,
                    f"{spath}/oneOf",
                )
        if "not" in schema:
            if not list(self._validate(value, schema["not"], path, f"{spath}/not")):
                yield SchemaValidationError(
                    "value must not satisfy the 'not' subschema", path, f"{spath}/not"
                )

    def _check_object(self, value: Mapping, schema, path, spath):
        properties = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in value:
                yield SchemaValidationError(
                    f"missing required property {name!r}", path, f"{spath}/required"
                )
        for name, sub in properties.items():
            if name in value:
                yield from self._validate(
                    value[name], sub, f"{path}.{name}", f"{spath}/properties/{name}"
                )
        additional = schema.get("additionalProperties", True)
        if additional is False:
            extra = [k for k in value if k not in properties]
            if extra:
                yield SchemaValidationError(
                    f"additional properties not allowed: {sorted(extra)!r}",
                    path,
                    f"{spath}/additionalProperties",
                )
        elif isinstance(additional, Mapping):
            for k, v in value.items():
                if k not in properties:
                    yield from self._validate(
                        v, additional, f"{path}.{k}", f"{spath}/additionalProperties"
                    )

    def _check_array(self, value: Sequence, schema, path, spath):
        if "minItems" in schema and len(value) < schema["minItems"]:
            yield SchemaValidationError(
                f"array has {len(value)} items, minimum is {schema['minItems']}",
                path,
                f"{spath}/minItems",
            )
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            yield SchemaValidationError(
                f"array has {len(value)} items, maximum is {schema['maxItems']}",
                path,
                f"{spath}/maxItems",
            )
        items = schema.get("items")
        if items is not None:
            if isinstance(items, Mapping) or items in (True, False):
                for i, element in enumerate(value):
                    yield from self._validate(
                        element, items, f"{path}[{i}]", f"{spath}/items"
                    )
            else:  # positional tuple validation
                for i, (element, sub) in enumerate(zip(value, items)):
                    yield from self._validate(
                        element, sub, f"{path}[{i}]", f"{spath}/items/{i}"
                    )

    def _check_string(self, value: str, schema, path, spath):
        if "minLength" in schema and len(value) < schema["minLength"]:
            yield SchemaValidationError(
                f"string shorter than minLength {schema['minLength']}",
                path,
                f"{spath}/minLength",
            )
        if "maxLength" in schema and len(value) > schema["maxLength"]:
            yield SchemaValidationError(
                f"string longer than maxLength {schema['maxLength']}",
                path,
                f"{spath}/maxLength",
            )
        if "pattern" in schema and not re.search(schema["pattern"], value):
            yield SchemaValidationError(
                f"string does not match pattern {schema['pattern']!r}",
                path,
                f"{spath}/pattern",
            )

    def _check_number(self, value, schema, path, spath):
        if "minimum" in schema and value < schema["minimum"]:
            yield SchemaValidationError(
                f"value {value} below minimum {schema['minimum']}",
                path,
                f"{spath}/minimum",
            )
        if "maximum" in schema and value > schema["maximum"]:
            yield SchemaValidationError(
                f"value {value} above maximum {schema['maximum']}",
                path,
                f"{spath}/maximum",
            )
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            yield SchemaValidationError(
                f"value {value} not above exclusiveMinimum {schema['exclusiveMinimum']}",
                path,
                f"{spath}/exclusiveMinimum",
            )
        if "exclusiveMaximum" in schema and value >= schema["exclusiveMaximum"]:
            yield SchemaValidationError(
                f"value {value} not below exclusiveMaximum {schema['exclusiveMaximum']}",
                path,
                f"{spath}/exclusiveMaximum",
            )


def validate(instance: Any, schema: Mapping[str, Any]) -> None:
    """Validate *instance* against *schema*, raising on the first error."""
    JSONSchemaValidator(schema).validate(instance)


def is_valid(instance: Any, schema: Mapping[str, Any]) -> bool:
    """Return ``True`` when *instance* satisfies *schema*."""
    return JSONSchemaValidator(schema).is_valid(instance)


def iter_errors(instance: Any, schema: Mapping[str, Any]):
    """Yield every validation error of *instance* against *schema*."""
    return JSONSchemaValidator(schema).iter_errors(instance)
