"""Registry of operator representation kinds (``rep_kind``) and engines.

The middle layer names logical transformations by a ``rep_kind`` string
(``QFT_TEMPLATE``, ``ISING_PROBLEM``, ``MIXER_RX``...).  The registry records,
for each kind, the semantic facts the validator and composition helpers need
*without* saying anything about realization:

* is it unitary / invertible,
* does it measure or reset (so "no hidden measurement" rules can be enforced),
* which parameters are required,
* a category used for documentation and capability negotiation.

Backends separately register which rep_kinds they can lower (see
:mod:`repro.backends.lowering`); keeping the two registries apart is what
makes the descriptors technology-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .errors import DescriptorError

__all__ = [
    "RepKindInfo",
    "register_rep_kind",
    "get_rep_kind",
    "has_rep_kind",
    "list_rep_kinds",
    "STANDARD_REP_KINDS",
]


@dataclass(frozen=True)
class RepKindInfo:
    """Semantic facts about one operator representation kind."""

    name: str
    category: str
    unitary: bool = True
    invertible: bool = True
    measures: bool = False
    resets: bool = False
    required_params: Tuple[str, ...] = ()
    description: str = ""
    default_params: Dict[str, object] = field(default_factory=dict)


_REGISTRY: Dict[str, RepKindInfo] = {}


def register_rep_kind(info: RepKindInfo, *, replace: bool = False) -> RepKindInfo:
    """Add *info* to the global registry.

    Registering an already-known kind raises unless ``replace=True`` so that
    extensions cannot silently change the semantics libraries rely on.
    """
    if info.name in _REGISTRY and not replace:
        raise DescriptorError(f"rep_kind {info.name!r} already registered")
    _REGISTRY[info.name] = info
    return info


def get_rep_kind(name: str) -> RepKindInfo:
    """Look up a rep_kind; unknown kinds get permissive defaults.

    Unknown kinds are allowed (the blueprint is extendable), but they are
    treated conservatively: assumed non-unitary and non-invertible so the
    validator will not silently compose them.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]
    return RepKindInfo(
        name=name,
        category="extension",
        unitary=False,
        invertible=False,
        description="unregistered extension rep_kind",
    )


def has_rep_kind(name: str) -> bool:
    """Whether *name* has been explicitly registered."""
    return name in _REGISTRY


def list_rep_kinds(category: Optional[str] = None) -> Tuple[str, ...]:
    """Names of registered kinds, optionally filtered by category."""
    names: Iterable[str] = (
        k for k, v in _REGISTRY.items() if category is None or v.category == category
    )
    return tuple(sorted(names))


# ---------------------------------------------------------------------------
# Standard vocabulary used by the algorithmic libraries shipped with repro.
# ---------------------------------------------------------------------------

STANDARD_REP_KINDS: Tuple[RepKindInfo, ...] = (
    # phase / transform templates --------------------------------------------
    RepKindInfo(
        name="QFT_TEMPLATE",
        category="phase",
        required_params=(),
        default_params={"approx_degree": 0, "do_swaps": True, "inverse": False},
        description="Quantum Fourier Transform template (Listing 3).",
    ),
    RepKindInfo(
        name="QPE_TEMPLATE",
        category="phase",
        required_params=("unitary",),
        description="Quantum phase estimation scaffolding over a phase register.",
    ),
    RepKindInfo(
        name="CONTROLLED_PHASE",
        category="phase",
        required_params=("angle",),
        description="Controlled phase / kickback gadget between two carriers.",
    ),
    RepKindInfo(
        name="SWAP_TEST",
        category="phase",
        measures=True,
        invertible=False,
        description="SWAP test producing an overlap estimate on an ancilla.",
    ),
    # state preparation --------------------------------------------------------
    RepKindInfo(
        name="PREP_UNIFORM",
        category="stateprep",
        invertible=True,
        description="Uniform superposition preparation (Hadamard on every carrier).",
    ),
    RepKindInfo(
        name="PREP_BASIS_STATE",
        category="stateprep",
        required_params=("value",),
        description="Prepare a computational basis state encoding a typed value.",
    ),
    RepKindInfo(
        name="PREP_AMPLITUDE",
        category="stateprep",
        required_params=("amplitudes",),
        description="Amplitude encoding of a normalised classical vector.",
    ),
    RepKindInfo(
        name="PREP_ANGLE",
        category="stateprep",
        required_params=("angles",),
        description="Angle encoding: one RY rotation per carrier.",
    ),
    # optimisation / Hamiltonian ----------------------------------------------
    RepKindInfo(
        name="ISING_COST_PHASE",
        category="optimization",
        required_params=("gamma",),
        description="QAOA cost layer: e^{-i gamma H_C} for an Ising Hamiltonian.",
    ),
    RepKindInfo(
        name="MIXER_RX",
        category="optimization",
        required_params=("beta",),
        description="QAOA transverse-field mixer layer: RX(2*beta) on every carrier.",
    ),
    RepKindInfo(
        name="ISING_PROBLEM",
        category="optimization",
        unitary=False,
        invertible=False,
        required_params=("h", "J"),
        description="Ising energy E(s) = sum h_i s_i + sum J_ij s_i s_j (Fig. 3).",
    ),
    RepKindInfo(
        name="QUBO_PROBLEM",
        category="optimization",
        unitary=False,
        invertible=False,
        required_params=("Q",),
        description="Quadratic unconstrained binary optimisation problem.",
    ),
    RepKindInfo(
        name="ISING_EVOLUTION",
        category="optimization",
        required_params=("time",),
        description="Time evolution under an Ising Hamiltonian for a given duration.",
    ),
    # arithmetic ----------------------------------------------------------------
    RepKindInfo(
        name="ADDER_TEMPLATE",
        category="arithmetic",
        description="In-place addition of a classical constant or second register.",
    ),
    RepKindInfo(
        name="MODULAR_ADDER_TEMPLATE",
        category="arithmetic",
        required_params=("modulus",),
        description="Addition modulo a classical modulus (Shor primitive).",
    ),
    RepKindInfo(
        name="MODULAR_MULT_TEMPLATE",
        category="arithmetic",
        required_params=("multiplier", "modulus"),
        description="Multiplication by a classical constant modulo a modulus.",
    ),
    RepKindInfo(
        name="COMPARATOR_TEMPLATE",
        category="arithmetic",
        required_params=("threshold",),
        description="Comparison against a classical threshold onto a flag carrier.",
    ),
    # boolean / conditional ------------------------------------------------------
    RepKindInfo(
        name="CONTROLLED_TEMPLATE",
        category="boolean",
        required_params=("target_rep_kind",),
        description="Controlled version of another operator descriptor.",
    ),
    RepKindInfo(
        name="CSWAP_TEMPLATE",
        category="boolean",
        description="Controlled-SWAP (Fredkin) between two registers.",
    ),
    RepKindInfo(
        name="MULTIPLEXER_TEMPLATE",
        category="boolean",
        required_params=("cases",),
        description="Select one of several operators based on a control register.",
    ),
    # measurement / structural ---------------------------------------------------
    RepKindInfo(
        name="MEASUREMENT",
        category="measurement",
        unitary=False,
        invertible=False,
        measures=True,
        description="Explicit measurement with an attached result schema.",
    ),
    RepKindInfo(
        name="RESET",
        category="structural",
        unitary=False,
        invertible=False,
        resets=True,
        description="Explicit reset of a register to |0...0>.",
    ),
    RepKindInfo(
        name="BARRIER",
        category="structural",
        unitary=True,
        invertible=True,
        description="Scheduling barrier; no semantic effect.",
    ),
    RepKindInfo(
        name="IDENTITY",
        category="structural",
        description="Identity transformation (useful for padding and tests).",
    ),
    # error correction -----------------------------------------------------------
    RepKindInfo(
        name="REPETITION_MEMORY",
        category="qec",
        unitary=False,
        invertible=False,
        measures=True,
        resets=True,
        required_params=("distance",),
        default_params={"rounds": 1},
        description=(
            "Bit-flip repetition-code memory: per-round ZZ syndrome "
            "extraction with ancilla measure+reset, then final data readout "
            "(all Clifford; runs on the stabilizer engine at any width)."
        ),
    ),
)

for _info in STANDARD_REP_KINDS:
    register_rep_kind(_info)
