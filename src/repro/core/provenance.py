"""Provenance records attached to job bundles.

The algorithmic libraries may attach metadata such as cost hints and
provenance (Section 4.4).  A :class:`Provenance` record captures who produced
a bundle, when, from which inputs (content digests), so downstream tooling can
reproduce or audit a submission without re-running the producer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, Mapping, Optional

from .serialization import digest

__all__ = ["Provenance", "build_provenance"]

TOOL_NAME = "repro-quantum-middle-layer"
TOOL_VERSION = "1.0.0"


@dataclass
class Provenance:
    """Who/when/what-of record for a packaged artifact."""

    tool: str = TOOL_NAME
    version: str = TOOL_VERSION
    created_at: str = ""
    inputs_digest: str = ""
    producer: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.created_at:
            # Provenance stamps record when an artifact was produced; a
            # wall-clock timestamp is the whole point here.
            self.created_at = datetime.now(timezone.utc).isoformat(  # lint: allow(TIME001)
                timespec="seconds"
            )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "tool": self.tool,
            "version": self.version,
            "created_at": self.created_at,
        }
        if self.inputs_digest:
            doc["inputs_digest"] = self.inputs_digest
        if self.producer:
            doc["producer"] = self.producer
        if self.extra:
            doc["extra"] = dict(self.extra)
        return doc

    @classmethod
    def from_dict(cls, doc: Optional[Mapping[str, Any]]) -> Optional["Provenance"]:
        if doc is None:
            return None
        return cls(
            tool=doc.get("tool", TOOL_NAME),
            version=doc.get("version", TOOL_VERSION),
            created_at=doc.get("created_at", ""),
            inputs_digest=doc.get("inputs_digest", ""),
            producer=doc.get("producer", ""),
            extra=dict(doc.get("extra", {})),
        )


def build_provenance(content: Any, *, producer: str = "", **extra: Any) -> Provenance:
    """Create a provenance record whose digest covers *content*.

    *content* is any JSON-serialisable object (typically the bundle body
    without the provenance block itself, so the digest is stable).
    """
    return Provenance(inputs_digest=digest(content), producer=producer, extra=dict(extra))
