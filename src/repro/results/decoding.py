"""Decoding measured results through result schemas and quantum data types.

This module closes the loop the paper insists on: results must never be
interpreted implicitly.  Given a :class:`~repro.results.counts.Counts`
histogram, the explicit :class:`~repro.core.result_schema.ResultSchema`
attached to the measuring operator, and the declared
:class:`~repro.core.qdt.QuantumDataType` table, decoding produces typed
values (integers, phases, spin vectors...) with their observed statistics —
no guessing about endianness or number representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.errors import DecodingError
from ..core.qdt import QuantumDataType
from ..core.result_schema import ResultSchema
from .counts import Counts

__all__ = ["DecodedOutcome", "RegisterDecoding", "DecodedResult", "decode_counts"]


@dataclass(frozen=True)
class DecodedOutcome:
    """One decoded outcome of one register."""

    value: Any
    bits: str
    count: int
    probability: float


@dataclass
class RegisterDecoding:
    """All decoded outcomes of a single register."""

    register_id: str
    outcomes: List[DecodedOutcome] = field(default_factory=list)

    @property
    def shots(self) -> int:
        return sum(o.count for o in self.outcomes)

    def most_likely(self) -> DecodedOutcome:
        """The highest-probability outcome."""
        if not self.outcomes:
            raise DecodingError(f"register {self.register_id!r} has no outcomes")
        return max(self.outcomes, key=lambda o: (o.count, o.bits))

    def expectation(self, value_fn: Optional[Callable[[Any], float]] = None) -> float:
        """Probability-weighted mean of (a function of) the decoded values."""
        if not self.outcomes:
            raise DecodingError(f"register {self.register_id!r} has no outcomes")
        fn = value_fn or (lambda v: float(v))
        return sum(fn(o.value) * o.probability for o in self.outcomes)

    def distribution(self) -> Dict[Any, float]:
        """Map decoded value -> probability (merging equal values)."""
        dist: Dict[Any, float] = {}
        for outcome in self.outcomes:
            dist[outcome.value] = dist.get(outcome.value, 0.0) + outcome.probability
        return dist


@dataclass
class DecodedResult:
    """Decoded outcomes for every register referenced by a result schema."""

    registers: Dict[str, RegisterDecoding] = field(default_factory=dict)
    raw_counts: Optional[Counts] = None

    def __getitem__(self, register_id: str) -> RegisterDecoding:
        try:
            return self.registers[register_id]
        except KeyError:
            raise DecodingError(f"no decoded data for register {register_id!r}") from None

    def register_ids(self) -> List[str]:
        return list(self.registers)

    def single(self) -> RegisterDecoding:
        """The only register decoding (common single-register case)."""
        if len(self.registers) != 1:
            raise DecodingError(
                f"expected exactly one register, found {sorted(self.registers)}"
            )
        return next(iter(self.registers.values()))


def decode_bits_for(qdt: QuantumDataType, register_bits: str) -> Any:
    """Decode a register-order bitstring for *qdt* (thin wrapper for symmetry)."""
    return qdt.decode_bits(register_bits)


def decode_counts(
    counts: Counts,
    schema: ResultSchema,
    qdts: Mapping[str, QuantumDataType],
) -> DecodedResult:
    """Decode a counts histogram under an explicit result schema.

    For every register referenced by ``schema.clbit_order`` the clbit outcomes
    are gathered into a register-order bitstring and decoded according to the
    register's measurement semantics.  Registers are decoded independently
    (marginal statistics); the raw joint histogram is preserved on the result
    for callers that need correlations.
    """
    if counts.num_clbits and counts.num_clbits != schema.num_clbits:
        raise DecodingError(
            f"counts have {counts.num_clbits} clbits but the result schema declares "
            f"{schema.num_clbits}"
        )
    schema.validate_against(qdts)

    result = DecodedResult(raw_counts=counts)
    total = counts.shots
    for register_id in schema.registers():
        qdt = qdts[register_id]
        per_bits: Dict[str, int] = {}
        for bitstring, count in counts.items():
            register_bits = schema.register_bits(bitstring, qdt)
            per_bits[register_bits] = per_bits.get(register_bits, 0) + count
        outcomes = [
            DecodedOutcome(
                value=qdt.decode_bits(bits),
                bits=bits,
                count=count,
                probability=count / total if total else 0.0,
            )
            for bits, count in sorted(per_bits.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
        result.registers[register_id] = RegisterDecoding(register_id, outcomes)
    return result
