"""Measurement count histograms returned by gate-model backends.

A :class:`Counts` object maps classical bitstrings to the number of shots
that produced them.  **Convention:** character ``c`` of a key is the outcome
stored in classical bit ``c`` (clbit order), matching the ``clbit_order``
array of the result schema.  No implicit endianness is applied — decoding is
always driven by the explicit result schema (that is the point of the paper).
"""

from __future__ import annotations

import numbers
from collections import Counter
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import DecodingError

__all__ = ["Counts"]


def _as_count(key: str, value: object) -> int:
    """Validate one histogram value: an integral, non-negative count.

    Integer-valued floats (e.g. ``600.0`` out of a JSON decoder) are
    accepted; fractional or non-numeric values raise :class:`DecodingError`
    instead of being silently truncated.
    """
    if isinstance(value, numbers.Integral):
        count = int(value)
    elif isinstance(value, numbers.Real):
        real = float(value)
        if not real.is_integer():
            raise DecodingError(f"count for {key!r} must be an integer, got {value!r}")
        count = int(real)
    else:
        raise DecodingError(
            f"count for {key!r} must be an integer, got {type(value).__name__}"
        )
    if count < 0:
        raise DecodingError(f"negative count for {key!r}")
    return count


class Counts(Mapping[str, int]):
    """Histogram of measured bitstrings (clbit-ordered keys)."""

    def __init__(self, data: Optional[Mapping[str, int]] = None):
        self._data: Dict[str, int] = {}
        if data:
            width = None
            for key, value in data.items():
                key = str(key)
                if width is None:
                    width = len(key)
                elif len(key) != width:
                    raise DecodingError(
                        f"inconsistent bitstring widths in counts: {len(key)} vs {width}"
                    )
                if any(c not in "01" for c in key):
                    raise DecodingError(f"counts key {key!r} is not a bitstring")
                count = _as_count(key, value)
                if count:
                    self._data[key] = self._data.get(key, 0) + count

    # -- Mapping protocol -----------------------------------------------------
    def __getitem__(self, key: str) -> int:
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = dict(self.most_common(4))
        return f"Counts(shots={self.shots}, top={head})"

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_samples(cls, samples: Iterable[str]) -> "Counts":
        """Build counts from an iterable of bitstring samples."""
        return cls(Counter(str(s) for s in samples))

    @classmethod
    def from_array(cls, bits: np.ndarray) -> "Counts":
        """Build counts from a 2-D ``{0,1}`` array (rows are shots, cols clbits)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 2:
            raise DecodingError("expected a 2-D array of bits")
        bits = (bits != 0).astype(np.uint8)  # coerce truthy values to 1, like the row-join path
        shots, width = bits.shape
        if width == 0 or width > 62:
            # Degenerate or wider-than-int64 rows: fall back to string rows.
            strings = ["".join("1" if b else "0" for b in row) for row in bits]
            return cls.from_samples(strings)
        # Pack each row into an integer so the histogram is one np.unique call
        # instead of a python loop over shots.
        weights = (1 << np.arange(width - 1, -1, -1)).astype(np.int64)
        codes = bits.astype(np.int64) @ weights
        values, multiplicities = np.unique(codes, return_counts=True)
        return cls(
            {
                format(int(v), f"0{width}b"): int(m)
                for v, m in zip(values, multiplicities)
            }
        )

    # -- basic statistics ----------------------------------------------------------
    @property
    def shots(self) -> int:
        """Total number of recorded shots."""
        return sum(self._data.values())

    @property
    def num_clbits(self) -> int:
        """Width of the bitstrings (0 for an empty histogram)."""
        return len(next(iter(self._data))) if self._data else 0

    def probability(self, key: str) -> float:
        """Empirical probability of *key* (0.0 when never observed)."""
        total = self.shots
        return self._data.get(key, 0) / total if total else 0.0

    def probabilities(self) -> Dict[str, float]:
        """Empirical probability of every observed bitstring."""
        total = self.shots
        return {k: v / total for k, v in self._data.items()} if total else {}

    def most_common(self, n: Optional[int] = None) -> List[Tuple[str, int]]:
        """The *n* most frequent outcomes (all of them when *n* is None)."""
        ordered = sorted(self._data.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered if n is None else ordered[:n]

    def argmax(self) -> str:
        """The single most frequent bitstring."""
        if not self._data:
            raise DecodingError("cannot take argmax of empty counts")
        return self.most_common(1)[0][0]

    # -- transformations --------------------------------------------------------------
    def marginal(self, clbits: Sequence[int]) -> "Counts":
        """Marginalise onto the given classical bits (in the given order)."""
        width = self.num_clbits
        for c in clbits:
            if not 0 <= c < width:
                raise DecodingError(f"clbit {c} out of range for width-{width} counts")
        out: Dict[str, int] = {}
        for key, value in self._data.items():
            sub = "".join(key[c] for c in clbits)
            out[sub] = out.get(sub, 0) + value
        return Counts(out)

    def merge(self, other: "Counts") -> "Counts":
        """Sum two histograms key-by-key (same bitstring width required).

        This adds the per-key totals of two already-aggregated histograms —
        there is no shot-level pairing involved.
        """
        if self._data and other._data and self.num_clbits != other.num_clbits:
            raise DecodingError("cannot merge counts of different widths")
        merged = dict(self._data)
        for key, value in other._data.items():
            merged[key] = merged.get(key, 0) + value
        return Counts(merged)

    def expectation(self, value_fn: Callable[[str], float]) -> float:
        """Shot-weighted average of ``value_fn(bitstring)``."""
        total = self.shots
        if total == 0:
            raise DecodingError("cannot take expectation of empty counts")
        return sum(value_fn(key) * count for key, count in self._data.items()) / total

    def to_dict(self) -> Dict[str, int]:
        """Plain dictionary copy (for JSON serialisation)."""
        return dict(self._data)
