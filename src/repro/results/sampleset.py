"""Sample sets returned by annealing backends.

A :class:`SampleSet` is the annealer-side analogue of a counts histogram: a
table of spin configurations with their Ising energies and occurrence counts,
mirroring what D-Wave Ocean's samplers return.  Spins are stored as ``+1/-1``
integers; conversion to boolean labels follows the middle-layer convention
``+1 -> 0`` and ``-1 -> 1`` so that Ising registers decode consistently with
gate-model counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import DecodingError
from .counts import Counts

__all__ = ["SampleRecord", "SampleSet"]


@dataclass(frozen=True)
class SampleRecord:
    """One aggregated sample: spin assignment, energy, multiplicity."""

    sample: Tuple[int, ...]
    energy: float
    num_occurrences: int

    def as_dict(self, variables: Sequence[str]) -> Dict[str, int]:
        """Map variable names to spin values."""
        return dict(zip(variables, self.sample))


class SampleSet:
    """A collection of annealer samples over named spin variables."""

    def __init__(
        self,
        samples: np.ndarray,
        energies: np.ndarray,
        num_occurrences: Optional[np.ndarray] = None,
        variables: Optional[Sequence[str]] = None,
    ):
        samples = np.asarray(samples, dtype=np.int8)
        if samples.ndim != 2:
            raise DecodingError("samples must be a 2-D array (records x variables)")
        if not np.all(np.isin(samples, (-1, 1))):
            raise DecodingError("samples must contain only +1/-1 spins")
        energies = np.asarray(energies, dtype=float)
        if energies.shape != (samples.shape[0],):
            raise DecodingError("energies must have one entry per sample record")
        if num_occurrences is None:
            num_occurrences = np.ones(samples.shape[0], dtype=np.int64)
        num_occurrences = np.asarray(num_occurrences, dtype=np.int64)
        if num_occurrences.shape != (samples.shape[0],):
            raise DecodingError("num_occurrences must have one entry per sample record")
        if variables is None:
            variables = [str(i) for i in range(samples.shape[1])]
        if len(variables) != samples.shape[1]:
            raise DecodingError("variables must name every sample column")

        self._samples = samples
        self._energies = energies
        self._num_occurrences = num_occurrences
        self._variables = [str(v) for v in variables]

    # -- accessors -----------------------------------------------------------
    @property
    def samples(self) -> np.ndarray:
        """Spin matrix, shape (records, variables)."""
        return self._samples

    @property
    def energies(self) -> np.ndarray:
        """Ising energy of every record."""
        return self._energies

    @property
    def num_occurrences(self) -> np.ndarray:
        """Multiplicity of every record."""
        return self._num_occurrences

    @property
    def variables(self) -> List[str]:
        """Variable names, one per column."""
        return list(self._variables)

    @property
    def num_reads(self) -> int:
        """Total number of underlying reads (sum of multiplicities)."""
        return int(self._num_occurrences.sum())

    def __len__(self) -> int:
        return self._samples.shape[0]

    def __iter__(self) -> Iterable[SampleRecord]:
        for row, energy, occ in zip(self._samples, self._energies, self._num_occurrences):
            yield SampleRecord(tuple(int(s) for s in row), float(energy), int(occ))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampleSet(records={len(self)}, reads={self.num_reads}, "
            f"best_energy={self.first.energy if len(self) else None})"
        )

    # -- statistics -----------------------------------------------------------
    @property
    def first(self) -> SampleRecord:
        """The lowest-energy record (ties broken by first appearance)."""
        if len(self) == 0:
            raise DecodingError("empty sample set has no lowest-energy record")
        index = int(np.argmin(self._energies))
        return SampleRecord(
            tuple(int(s) for s in self._samples[index]),
            float(self._energies[index]),
            int(self._num_occurrences[index]),
        )

    def lowest(self, n: int = 1) -> "SampleSet":
        """A sample set containing only the *n* lowest-energy records."""
        order = np.argsort(self._energies, kind="stable")[:n]
        return SampleSet(
            self._samples[order],
            self._energies[order],
            self._num_occurrences[order],
            self._variables,
        )

    def mean_energy(self) -> float:
        """Occurrence-weighted mean energy."""
        if self.num_reads == 0:
            raise DecodingError("empty sample set has no mean energy")
        return float(np.average(self._energies, weights=self._num_occurrences))

    def ground_state_probability(self, tolerance: float = 1e-9) -> float:
        """Fraction of reads whose energy equals the observed minimum."""
        if self.num_reads == 0:
            raise DecodingError("empty sample set")
        minimum = self._energies.min()
        mask = self._energies <= minimum + tolerance
        return float(self._num_occurrences[mask].sum() / self.num_reads)

    # -- transformations ---------------------------------------------------------
    def aggregate(self) -> "SampleSet":
        """Merge duplicate spin assignments, summing their multiplicities."""
        seen: Dict[Tuple[int, ...], int] = {}
        energies: List[float] = []
        rows: List[Tuple[int, ...]] = []
        occurrences: List[int] = []
        for record in self:
            if record.sample in seen:
                occurrences[seen[record.sample]] += record.num_occurrences
            else:
                seen[record.sample] = len(rows)
                rows.append(record.sample)
                energies.append(record.energy)
                occurrences.append(record.num_occurrences)
        return SampleSet(
            np.array(rows, dtype=np.int8),
            np.array(energies, dtype=float),
            np.array(occurrences, dtype=np.int64),
            self._variables,
        )

    def to_counts(self) -> Counts:
        """Convert spins to a bitstring histogram (``+1 -> '0'``, ``-1 -> '1'``).

        Character ``i`` of every key corresponds to variable/column ``i``,
        matching the clbit-order convention of gate-model counts.
        """
        data: Dict[str, int] = {}
        for record in self:
            key = "".join("0" if s == 1 else "1" for s in record.sample)
            data[key] = data.get(key, 0) + record.num_occurrences
        return Counts(data)

    def truncate(self, max_records: int) -> "SampleSet":
        """Keep only the first *max_records* records (in energy order)."""
        return self.lowest(max_records)

    # -- construction helpers -------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Sequence[Sequence[int]],
        energy_fn,
        variables: Optional[Sequence[str]] = None,
    ) -> "SampleSet":
        """Build a set from raw spin rows, computing energies with *energy_fn*."""
        array = np.asarray(samples, dtype=np.int8)
        energies = np.array([energy_fn(row) for row in array], dtype=float)
        return cls(array, energies, variables=variables).aggregate()
