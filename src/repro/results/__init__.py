"""Result containers and schema-driven decoding."""

from .counts import Counts
from .decoding import DecodedOutcome, DecodedResult, RegisterDecoding, decode_counts
from .sampleset import SampleRecord, SampleSet

__all__ = [
    "Counts",
    "SampleSet",
    "SampleRecord",
    "DecodedOutcome",
    "DecodedResult",
    "RegisterDecoding",
    "decode_counts",
]
