"""The gate-model reference backend (Aer-simulator stand-in).

Execution pipeline for one bundle:

1. allocate circuit qubits to register carriers (contiguous blocks in
   declaration order) and classical bits to each measuring operator,
2. lower every operator descriptor through the gate realization rules,
3. transpile against the context's ``target`` block (basis gates, coupling
   map, optimisation level) through the structure-keyed transpile cache, so
   re-running the same circuit shape with fresh parameters (a sampled
   variational loop) skips layout selection and SWAP routing,
4. run the state-vector simulator with the requested samples/seed/noise,
5. return counts, transpilation metrics and the result schemas needed to
   decode.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.bundle import JobBundle
from ..core.context import ContextDescriptor, ExecPolicy
from ..core.errors import BackendError, UnsupportedGateError
from ..results.counts import Counts
from ..simulators.gate.circuit import Circuit
from ..simulators.gate.noise import NoiseModel
from ..simulators.gate.kernels import DEFAULT_NOISE_GEMM_THRESHOLD
from ..simulators.gate.statevector import DEFAULT_MAX_BATCH_MEMORY, StatevectorSimulator
from ..simulators.gate.transpiler import transpile_cached
from .base import Backend, ExecutionResult
from .lowering import GATE_LOWERING_RULES, QubitAllocation, lower_operator

__all__ = ["GateBackend"]


def _freeze(value: Any) -> Any:
    """Recursively convert *value* into a hashable merge-key component.

    Mappings become sorted ``(key, frozen value)`` tuples, sequences become
    tuples, primitives pass through; anything else falls back to its
    ``repr`` (identity-ish semantics — unknown objects only compare equal
    when they print equal, which is the conservative direction for merge
    eligibility).
    """
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return tuple(_freeze(v) for v in items)
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    return ("repr", repr(value))


class GateBackend(Backend):
    """Backend realising operator descriptors as circuits on the state-vector simulator."""

    name = "gate.reference"
    engines = (
        "gate.statevector_simulator",
        "gate.aer_simulator",
        "gate.reference",
    )

    def __init__(self) -> None:
        self.supported_rep_kinds = tuple(sorted(GATE_LOWERING_RULES))

    # -- bundle -> circuit ---------------------------------------------------------
    def allocate(self, bundle: JobBundle) -> QubitAllocation:
        """Contiguous qubit blocks per register, clbit blocks per measuring op."""
        qubit_map: Dict[str, List[int]] = {}
        next_qubit = 0
        for register_id, qdt in bundle.qdts.items():
            qubit_map[register_id] = list(range(next_qubit, next_qubit + qdt.width))
            next_qubit += qdt.width
        clbit_offsets: Dict[str, int] = {}
        next_clbit = 0
        for op in bundle.operators:
            if op.result_schema is not None and (op.is_measurement or op.info.measures):
                clbit_offsets[op.name] = next_clbit
                next_clbit += op.result_schema.num_clbits
        return QubitAllocation(
            qubit_map=qubit_map,
            clbit_offsets=clbit_offsets,
            num_qubits=next_qubit,
            num_clbits=max(next_clbit, 1),
        )

    def build_circuit(self, bundle: JobBundle) -> Tuple[Circuit, QubitAllocation]:
        """Lower the full operator sequence into one circuit."""
        allocation = self.allocate(bundle)
        circuit = Circuit(allocation.num_qubits, allocation.num_clbits, name=bundle.name)
        for op in bundle.operators:
            offset = allocation.clbit_offsets.get(op.name, 0)
            lower_operator(op, bundle.qdts, allocation, circuit, offset)
        return circuit, allocation

    # -- execution ----------------------------------------------------------------------
    def run(self, bundle: JobBundle, lowered: Optional[tuple] = None) -> ExecutionResult:
        """Execute *bundle* end to end and return decoded-ready counts.

        *lowered* optionally supplies an already-built ``(circuit,
        allocation)`` pair for this bundle (the serving layer lowers once to
        compute its coalescing key and passes the artifact through, instead
        of lowering the same bundle twice).

        Simulator knobs are read from ``context.exec.options`` (all
        optional; unknown keys are ignored).  The serving layer additionally
        reads ``deadline_s`` and ``coalesce_merge`` from the same mapping;
        both are scheduling-only knobs that never change executed counts, so
        they are excluded from the merge eligibility key
        (:attr:`MERGE_NEUTRAL_OPTIONS`).  Knobs consumed here:

        ``optimization_level`` (int, default ``1``)
            Transpiler effort passed to
            :func:`~repro.simulators.gate.transpiler.transpile`.
        ``noise`` (mapping, default ``None``)
            :class:`~repro.simulators.gate.noise.NoiseModel` rates
            (``oneq_error`` / ``twoq_error`` / ``readout_error``); any
            nonzero rate forces the trajectory path.
        ``max_batch_memory`` (int bytes or ``None``, default 16 MiB)
            Byte budget for the batched engine's per-chunk working set;
            ``None`` disables chunking.
        ``trajectory_engine`` (``"batched"`` | ``"reference"`` |
            ``"density"`` | ``"stabilizer"`` | ``"auto"``, default
            ``"batched"``)
            Which engine executes noisy / mid-circuit-measuring circuits.
            ``"density"`` routes the whole run through the exact
            density-matrix oracle (closed-form probabilities, noise as CPTP
            maps; capped at
            :data:`~repro.simulators.gate.density.MAX_DENSITY_QUBITS`
            qubits).  ``"stabilizer"`` runs the whole circuit on the
            batched Clifford tableau engine — no width cap (hundreds of
            qubits for QEC cycles), but a non-Clifford gate raises the
            typed :class:`~repro.core.errors.UnsupportedGateError`
            (re-raised as-is, never wrapped in a
            :class:`~repro.core.errors.BackendError`).  ``"auto"`` resolves
            against the *transpiled* circuit via
            :func:`~repro.backends.registry.resolve_trajectory_engine`:
            stabilizer when every gate is Clifford, batched otherwise.
        ``trajectory_dtype`` (``"complex64"`` | ``"complex128"``, default
            ``"complex64"``)
            State dtype of the batched engine.
        ``density_sampling`` (``"multinomial"`` | ``"deterministic"``,
            default ``"multinomial"``)
            How the density engine converts exact probabilities to counts:
            seeded multinomial draws, or RNG-free largest-remainder
            apportionment.  Ignored by the other engines.
        ``trajectory_workers`` (int >= 1 or ``"auto"``, default ``1``)
            Thread count for parallel chunk execution in the batched
            engine.  Seeded results are bit-identical for every value; the
            effective parallelism is capped by the number of chunks
            ``max_batch_memory`` produces.
        ``trajectory_executor`` (``"thread"`` | ``"process"`` | ``"auto"``,
            default ``"thread"``)
            How trajectory chunks are dispatched across
            ``trajectory_workers``: the in-process thread pool, or the
            persistent forkserver worker pool of
            :mod:`~repro.simulators.gate.procpool` (per-worker warm compile
            caches; real parallelism past the GIL).  Seeded counts are
            bit-identical across both executors at every worker count.
            ``"auto"`` resolves via
            :func:`~repro.backends.registry.resolve_trajectory_executor`:
            ``"process"`` on multi-core hosts, ``"thread"`` on one core.
        ``pin_blas_threads`` (bool, default ``True``)
            Cap the host BLAS/OpenMP pools at ``cores // workers`` threads
            while the ``trajectory_workers`` pool is active, preventing the
            ``workers x cores`` oversubscription that would otherwise erase
            the parallel speedup.  Best-effort without ``threadpoolctl``
            (see :mod:`~repro.simulators.gate.threads`).
        ``noise_gemm_threshold`` (float ``>= 0`` or ``None``, default
            :data:`~repro.simulators.gate.kernels.DEFAULT_NOISE_GEMM_THRESHOLD`)
            Crossover for the batched engine's high-noise GEMM path: once a
            step's expected sampled error operators per chunk reach the
            threshold, noise applies as per-column operator GEMMs instead
            of masked slice updates.  Both paths are seeded-count
            bit-identical; ``None`` pins the slice path.
        ``compile_cache_size`` (int ``>= 1`` or ``None``, default ``None``)
            Bound on the process-global compile caches (fusion templates,
            bound trajectory programs, transpile templates; see
            :func:`~repro.simulators.gate.fusion.set_compile_cache_size`).
            ``None`` keeps the current bound (256 by default).
        ``fault_plan`` (mapping or ``None``, default ``None``)
            Deterministic fault-injection schedule for the chunk executors
            (:class:`~repro.simulators.gate.faults.FaultPlan` dict spec:
            an ``events`` list or a seeded chaos spec).  Injected
            ``"kill"`` faults exercise the process pool's worker-crash
            recovery — recovered seeded counts stay bit-identical to an
            uncrashed run; ``"raise"`` faults surface as the transient
            :class:`~repro.core.errors.TransientExecutionError` for the
            serving layer's retry policy.  Test/chaos tooling only: leave
            unset in production (the disabled path costs one attribute
            check per chunk).
        ``verify_compiled`` (bool, default ``False``)
            Run every compiled artifact of the run — the bound trajectory
            program, its structural template and the result metadata —
            through the static IR verifier
            (:mod:`~repro.simulators.gate.analysis`); a contract violation
            raises instead of returning a result.  Off by default: the
            disabled path adds no hot-path work.
        ``variational_evaluation`` (``"sampled"`` | ``"expectation"``,
            default ``"sampled"``)
            Consumed by :mod:`repro.workflows.qaoa_optimizer`, not by this
            backend: ``"expectation"`` replaces per-evaluation histogram
            sampling with exact observable expectations (and batched
            parameter-grid sweeps) in the variational outer loop.  Listed
            here because it rides in the same exec-policy options mapping.
        """
        context, exec_policy, circuit, allocation, transpiled = self._prepare(
            bundle, lowered
        )
        try:
            simulator = self._make_simulator(exec_policy, transpiled.circuit)
            simulation = simulator.run(
                transpiled.circuit,
                shots=exec_policy.samples,
                seed=exec_policy.seed,
            )
        except UnsupportedGateError:
            # Typed engine-selection signal (non-Clifford gate under the
            # stabilizer engine): callers and the registry's auto-selection
            # branch on this type, so it must surface unwrapped.
            raise
        except Exception as exc:  # noqa: BLE001 - surface as backend failure
            raise BackendError(f"gate backend simulation failed: {exc}") from exc
        return self._make_result(
            bundle, context, exec_policy, circuit, allocation, transpiled, simulation
        )

    #: Exec-policy options that never change executed counts — serving-layer
    #: scheduling knobs — excluded from :meth:`merge_key` so jobs differing
    #: only in deadline or merge opt-out still share one merged run.
    MERGE_NEUTRAL_OPTIONS = frozenset({"deadline_s", "coalesce_merge"})

    def merge_key(self, bundle: JobBundle, lowered: Optional[tuple] = None) -> tuple:
        """Hashable merge-eligibility key for batch-axis merged execution.

        Two bundles may execute as one merged run iff their keys are equal:
        identical bound circuit (structure **and** parameter values),
        identical frozen exec options (minus the serving-only
        :attr:`MERGE_NEUTRAL_OPTIONS`), identical target constraints, and
        the same engine.  ``samples`` and ``seed`` are per-job
        :class:`~repro.core.context.ExecPolicy` fields — not options — and
        are deliberately free to differ: they become the merged run's
        per-job ``(shots, seed)`` specs, each with its own RNG streams.
        """
        from ..simulators.gate.fusion import params_key, structure_key  # local: cycle

        circuit, _ = lowered if lowered is not None else self.build_circuit(bundle)
        context = bundle.context or ContextDescriptor(exec=ExecPolicy(engine=self.engines[0]))
        exec_policy = context.exec
        options = {
            k: v
            for k, v in exec_policy.options.items()
            if k not in self.MERGE_NEUTRAL_OPTIONS
        }
        target = exec_policy.target
        target_key = (
            None
            if target is None
            else (
                tuple(target.basis_gates) if target.basis_gates else None,
                tuple(target.coupling_map) if target.coupling_map else None,
                target.num_qubits,
            )
        )
        return (
            exec_policy.engine,
            structure_key(circuit),
            params_key(circuit),
            target_key,
            _freeze(options),
        )

    def run_merged(
        self,
        bundles: Sequence[JobBundle],
        lowered: Optional[Sequence[Optional[tuple]]] = None,
    ) -> List[ExecutionResult]:
        """Execute several merge-eligible bundles as one merged simulator run.

        Callers group by :meth:`merge_key`; this method transpiles the
        shared circuit once (cache hits for the rest of the group) and hands
        the per-bundle ``(samples, seed)`` specs to
        :meth:`~repro.simulators.gate.statevector.StatevectorSimulator.run_merged`,
        which guarantees each job's seeded counts are bit-identical to a
        solo run.  Each returned :class:`ExecutionResult` carries its own
        bundle's schemas and digest, the usual metadata, and
        ``metadata["merged"]`` describing the group (``None`` for jobs the
        simulator fell back to solo execution for).
        """
        if not bundles:
            return []
        lowered_list = list(lowered) if lowered is not None else [None] * len(bundles)
        prepared = [
            self._prepare(bundle, low) for bundle, low in zip(bundles, lowered_list)
        ]
        _, exec_first, _, _, transpiled_first = prepared[0]
        specs = [
            (exec_policy.samples, exec_policy.seed)
            for _, exec_policy, _, _, _ in prepared
        ]
        try:
            simulator = self._make_simulator(exec_first, transpiled_first.circuit)
            simulations = simulator.run_merged(transpiled_first.circuit, specs)
        except UnsupportedGateError:
            raise
        except Exception as exc:  # noqa: BLE001 - surface as backend failure
            raise BackendError(f"gate backend merged simulation failed: {exc}") from exc
        return [
            self._make_result(
                bundle, context, exec_policy, circuit, allocation, transpiled, simulation
            )
            for bundle, (context, exec_policy, circuit, allocation, transpiled), simulation
            in zip(bundles, prepared, simulations)
        ]

    def _prepare(self, bundle: JobBundle, lowered: Optional[tuple]):
        """Shared front half of :meth:`run` / :meth:`run_merged`.

        Capability check, context default, lowering (reusing a caller-built
        ``(circuit, allocation)`` pair when supplied) and cached
        transpilation.
        """
        self.check_capabilities(bundle)
        context = bundle.context or ContextDescriptor(exec=ExecPolicy(engine=self.engines[0]))
        exec_policy = context.exec

        circuit, allocation = (
            lowered if lowered is not None else self.build_circuit(bundle)
        )

        target = exec_policy.target
        transpiled = transpile_cached(
            circuit,
            basis_gates=list(target.basis_gates) if target and target.basis_gates else None,
            coupling_map=list(target.coupling_map) if target and target.coupling_map else None,
            optimization_level=int(exec_policy.options.get("optimization_level", 1)),
        )
        return context, exec_policy, circuit, allocation, transpiled

    def _make_simulator(self, exec_policy: ExecPolicy, transpiled_circuit: Circuit) -> StatevectorSimulator:
        """Build the configured simulator for one run (knobs documented on :meth:`run`)."""
        noise_model = NoiseModel.from_dict(exec_policy.options.get("noise"))
        max_batch_memory = exec_policy.options.get("max_batch_memory", DEFAULT_MAX_BATCH_MEMORY)
        trajectory_engine = str(exec_policy.options.get("trajectory_engine", "batched"))
        if trajectory_engine == "auto":
            from .registry import resolve_trajectory_engine  # local: import cycle

            trajectory_engine = resolve_trajectory_engine(transpiled_circuit)
        trajectory_executor = str(
            exec_policy.options.get("trajectory_executor", "thread")
        )
        if trajectory_executor == "auto":
            from .registry import resolve_trajectory_executor  # local: import cycle

            trajectory_executor = resolve_trajectory_executor()
        return StatevectorSimulator(
            noise_model=noise_model,
            max_batch_memory=None if max_batch_memory is None else int(max_batch_memory),
            trajectory_engine=trajectory_engine,
            trajectory_executor=trajectory_executor,
            trajectory_dtype=str(exec_policy.options.get("trajectory_dtype", "complex64")),
            # Passed through unconverted: the simulator enforces the
            # int-or-"auto" contract and coercing here would mask it.
            trajectory_workers=exec_policy.options.get("trajectory_workers", 1),
            density_sampling=str(
                exec_policy.options.get("density_sampling", "multinomial")
            ),
            pin_blas_threads=bool(
                exec_policy.options.get("pin_blas_threads", True)
            ),
            # Passed through unconverted: the simulator enforces the
            # number-or-None / positive-int contracts.
            noise_gemm_threshold=exec_policy.options.get(
                "noise_gemm_threshold", DEFAULT_NOISE_GEMM_THRESHOLD
            ),
            compile_cache_size=exec_policy.options.get("compile_cache_size"),
            # Passed through unconverted: the simulator coerces dict
            # specs through FaultPlan.coerce and enforces the contract.
            fault_plan=exec_policy.options.get("fault_plan"),
            # Passed through unconverted: the simulator enforces the
            # bool contract.
            verify_compiled=exec_policy.options.get("verify_compiled", False),
        )

    def _make_result(
        self,
        bundle: JobBundle,
        context: ContextDescriptor,
        exec_policy: ExecPolicy,
        circuit: Circuit,
        allocation: QubitAllocation,
        transpiled,
        simulation,
    ) -> ExecutionResult:
        """Assemble one bundle's :class:`ExecutionResult` from its simulation."""
        schemas = [
            (op.result_schema, allocation.clbit_offsets.get(op.name, 0))
            for op in bundle.operators
            if op.result_schema is not None and op.name in allocation.clbit_offsets
        ]
        counts: Counts = simulation.counts
        return ExecutionResult(
            backend_name=self.name,
            engine=exec_policy.engine,
            counts=counts,
            result_schemas=schemas,
            bundle_digest=bundle.digest(),
            metadata={
                "shots": exec_policy.samples,
                "seed": exec_policy.seed,
                "num_qubits": circuit.num_qubits,
                "lowered_depth": circuit.depth(),
                "lowered_twoq": circuit.num_twoq_gates(),
                "transpiled_depth": transpiled.circuit.depth(),
                "transpiled_twoq": transpiled.circuit.num_twoq_gates(),
                "transpile_metrics": dict(transpiled.metrics),
                "simulation_method": simulation.metadata.get("method"),
                "trajectory_engine": simulation.metadata.get("trajectory_engine"),
                "trajectory_executor": simulation.metadata.get("trajectory_executor"),
                "trajectory_workers": simulation.metadata.get("trajectory_workers"),
                "executor_recovery": simulation.metadata.get("executor_recovery"),
                "num_batches": simulation.metadata.get("num_batches"),
                "merged": simulation.metadata.get("merged"),
                "uses_qec": context.uses_qec,
            },
            _bundle=bundle,
        )
