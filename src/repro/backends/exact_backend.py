"""Exact brute-force backend for optimisation problem descriptors.

The middle layer's portability argument is easiest to check against ground
truth.  This backend enumerates every configuration of an Ising/QUBO problem
descriptor and reports the exact spectrum, serving as the optimal baseline in
benchmarks and tests (it is also a tiny example of how little code a new
backend needs: consume the bundle, return an :class:`ExecutionResult`).
"""

from __future__ import annotations

from ..core.bundle import JobBundle
from ..core.context import ContextDescriptor, ExecPolicy
from ..core.errors import CapabilityError
from ..simulators.anneal.exact import ExactSolver
from .anneal_backend import bqm_from_operator
from .base import Backend, ExecutionResult

__all__ = ["ExactBackend"]


class ExactBackend(Backend):
    """Backend solving problem descriptors by exhaustive enumeration."""

    name = "exact.reference"
    engines = ("exact.brute_force", "exact.reference")
    supported_rep_kinds = ("ISING_PROBLEM", "QUBO_PROBLEM", "MEASUREMENT", "BARRIER", "IDENTITY")

    def __init__(self) -> None:
        self.solver = ExactSolver()

    def run(self, bundle: JobBundle) -> ExecutionResult:
        """Solve the bundle's single problem by exhaustive enumeration."""
        self.check_capabilities(bundle)
        context = bundle.context or ContextDescriptor(exec=ExecPolicy(engine=self.engines[0]))
        problems = [op for op in bundle.operators if op.rep_kind in ("ISING_PROBLEM", "QUBO_PROBLEM")]
        if len(problems) != 1:
            raise CapabilityError("the exact backend expects exactly one problem descriptor")
        problem = problems[0]
        bqm = bqm_from_operator(problem)
        ground = self.solver.ground_states(bqm)
        spectrum = self.solver.sample(bqm)

        schema = problem.result_schema
        schemas = [(schema, 0)] if schema is not None else []
        return ExecutionResult(
            backend_name=self.name,
            engine=context.exec.engine,
            counts=ground.to_counts(),
            sampleset=ground,
            result_schemas=schemas,
            bundle_digest=bundle.digest(),
            metadata={
                "ground_energy": float(ground.first.energy),
                "num_ground_states": len(ground),
                "num_variables": bqm.num_variables,
                "full_spectrum_size": len(spectrum),
            },
            _bundle=bundle,
        )
