"""Backend interface and the execution-result container.

A backend consumes a :class:`~repro.core.bundle.JobBundle` — registers,
operator descriptors and a context — and returns an :class:`ExecutionResult`.
Nothing else crosses the middle-layer boundary, which is what makes the intent
artifacts portable: the same bundle re-targeted with a different context goes
to a different backend unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.bundle import JobBundle
from ..core.errors import CapabilityError, DecodingError
from ..core.qod import QuantumOperatorDescriptor
from ..core.result_schema import ResultSchema
from ..results.counts import Counts
from ..results.decoding import DecodedResult, decode_counts
from ..results.sampleset import SampleSet

__all__ = ["ExecutionResult", "Backend"]


@dataclass
class ExecutionResult:
    """Everything a backend reports back for one submitted bundle."""

    backend_name: str
    engine: str
    counts: Optional[Counts] = None
    sampleset: Optional[SampleSet] = None
    result_schemas: List[Tuple[ResultSchema, int]] = field(default_factory=list)
    bundle_digest: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)
    _bundle: Optional[JobBundle] = None

    # -- decoding -----------------------------------------------------------------
    def decoded(self, schema_index: int = 0) -> DecodedResult:
        """Decode the counts under the bundle's *schema_index*-th result schema.

        Each result schema was assigned a contiguous block of classical bits
        by the backend; the block is marginalised out of the joint counts
        before decoding.
        """
        if self._bundle is None:
            raise DecodingError("execution result carries no bundle for decoding")
        if self.counts is None:
            raise DecodingError("execution result has no counts to decode")
        if not self.result_schemas:
            raise DecodingError("no result schema was attached to the submitted operators")
        try:
            schema, offset = self.result_schemas[schema_index]
        except IndexError:
            raise DecodingError(
                f"result schema index {schema_index} out of range "
                f"({len(self.result_schemas)} available)"
            ) from None
        counts = self.counts
        if counts.num_clbits != schema.num_clbits:
            counts = counts.marginal(list(range(offset, offset + schema.num_clbits)))
        return decode_counts(counts, schema, self._bundle.qdts)

    def expectation(self, value_fn=None, *, register: Optional[str] = None) -> float:
        """Probability-weighted expectation of the decoded values."""
        decoded = self.decoded()
        reg = decoded[register] if register is not None else decoded.single()
        return reg.expectation(value_fn)

    def most_likely(self, *, register: Optional[str] = None):
        """The most frequently observed decoded value."""
        decoded = self.decoded()
        reg = decoded[register] if register is not None else decoded.single()
        return reg.most_likely().value


class Backend(abc.ABC):
    """Abstract base class of every execution backend."""

    #: Human-readable backend name.
    name: str = "backend"
    #: Engine identifiers (context ``exec.engine`` values) this backend serves.
    engines: Tuple[str, ...] = ()
    #: Operator rep_kinds this backend can realise.
    supported_rep_kinds: Tuple[str, ...] = ()

    # -- capability negotiation ----------------------------------------------------
    def supports(self, rep_kind: str) -> bool:
        """Whether the backend can realise *rep_kind*."""
        return rep_kind in self.supported_rep_kinds

    def check_capabilities(self, bundle: JobBundle) -> None:
        """Raise :class:`CapabilityError` when any operator is unsupported."""
        unsupported = sorted(
            {op.rep_kind for op in bundle.operators if not self.supports(op.rep_kind)}
        )
        if unsupported:
            raise CapabilityError(
                f"backend {self.name!r} cannot realise rep_kinds {unsupported}; "
                f"supported: {sorted(self.supported_rep_kinds)}"
            )

    # -- execution --------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, bundle: JobBundle) -> ExecutionResult:
        """Execute a validated bundle and return its results."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} engines={self.engines}>"
