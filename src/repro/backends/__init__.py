"""Backends: the only layer that knows how descriptors become executions."""

from .anneal_backend import AnnealBackend, bqm_from_operator
from .base import Backend, ExecutionResult
from .exact_backend import ExactBackend
from .gate_backend import GateBackend
from .lowering import GATE_LOWERING_RULES, QubitAllocation, lower_operator, register_gate_lowering
from .registry import (
    get_backend,
    list_engines,
    register_backend,
    resolve_trajectory_engine,
)
from .runtime import submit

__all__ = [
    "Backend",
    "ExecutionResult",
    "GateBackend",
    "AnnealBackend",
    "ExactBackend",
    "bqm_from_operator",
    "get_backend",
    "list_engines",
    "register_backend",
    "resolve_trajectory_engine",
    "submit",
    "GATE_LOWERING_RULES",
    "QubitAllocation",
    "lower_operator",
    "register_gate_lowering",
]
