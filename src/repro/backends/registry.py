"""Engine registry: mapping context engine names to backend instances.

The execution context selects an engine by name (``"gate.aer_simulator"``,
``"anneal.simulated_annealer"``, ...).  The registry resolves those names to
backend factories, so new backends plug in with a single
:func:`register_backend` call and nothing upstream changes — the late-binding
property the blueprint requires.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.errors import BackendError
from ..simulators.gate.circuit import Circuit
from .anneal_backend import AnnealBackend
from .base import Backend
from .exact_backend import ExactBackend
from .gate_backend import GateBackend

__all__ = [
    "register_backend",
    "get_backend",
    "list_engines",
    "resolve_engine_family",
    "resolve_trajectory_engine",
    "resolve_trajectory_executor",
]

BackendFactory = Callable[[], Backend]

_FACTORIES: Dict[str, BackendFactory] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(factory: BackendFactory, *, engines: Optional[List[str]] = None, replace: bool = False) -> None:
    """Register *factory* for the given engine names (default: the backend's own)."""
    probe = factory()
    names = list(engines) if engines is not None else list(probe.engines)
    for engine in names:
        if engine in _FACTORIES and not replace:
            raise BackendError(f"engine {engine!r} already registered")
        _FACTORIES[engine] = factory
        _INSTANCES.pop(engine, None)


def get_backend(engine: str) -> Backend:
    """Resolve an engine name to a (cached) backend instance."""
    if engine not in _FACTORIES:
        raise BackendError(
            f"no backend registered for engine {engine!r}; known engines: {list_engines()}"
        )
    if engine not in _INSTANCES:
        _INSTANCES[engine] = _FACTORIES[engine]()
    return _INSTANCES[engine]


def list_engines() -> List[str]:
    """Sorted names of every registered engine."""
    return sorted(_FACTORIES)


def resolve_engine_family(engine: str) -> str:
    """Engine family prefix (``gate``, ``anneal``, ``exact``, ...)."""
    return engine.split(".", 1)[0]


def resolve_trajectory_engine(circuit: Circuit, requested: str = "auto") -> str:
    """Resolve the ``trajectory_engine`` knob against a concrete circuit.

    ``"auto"`` selects the wide-register stabilizer tableau engine when every
    gate of *circuit* is Clifford (so the circuit is guaranteed to compile —
    no :class:`~repro.core.errors.UnsupportedGateError` can fire) and falls
    back to the batched amplitude engine otherwise.  Any other value is
    passed through unchanged: an *explicit* ``"stabilizer"`` request on a
    non-Clifford circuit is a caller error and surfaces as the typed
    :class:`~repro.core.errors.UnsupportedGateError` at compile time rather
    than being silently rerouted.
    """
    if requested != "auto":
        return requested
    from ..simulators.gate.fusion import is_clifford_circuit

    return "stabilizer" if is_clifford_circuit(circuit) else "batched"


def resolve_trajectory_executor(requested: str = "auto") -> str:
    """Resolve the ``trajectory_executor`` knob against the host.

    ``"auto"`` picks the process-pool executor on multi-core hosts — where
    process-level parallelism is what actually scales past the GIL — and the
    zero-startup-cost thread executor on a single core, where a worker pool
    can only add overhead.  Any other value passes through unchanged (the
    simulator validates it).
    """
    if requested != "auto":
        return requested
    import os

    return "process" if (os.cpu_count() or 1) > 1 else "thread"


# Reference backends shipped with the library.
register_backend(GateBackend)
register_backend(AnnealBackend)
register_backend(ExactBackend)
