"""Realization hooks: lowering operator descriptors to gate circuits.

This module is the gate backend's half of the paper's "realization hooks ...
rules that lower a quantum operator descriptor to a target-specific form"
(Section 4.4).  Each rule maps one ``rep_kind`` to gates appended onto a
:class:`~repro.simulators.gate.circuit.Circuit`, given the register-to-qubit
allocation chosen by the backend.

Rules are registered in :data:`GATE_LOWERING_RULES`; a backend advertises
exactly the kinds it has rules for, so capability mismatches surface at
validation time instead of producing wrong circuits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import LoweringError
from ..core.qdt import BitOrder, QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from ..core.result_schema import ClbitRef
from ..simulators.gate.circuit import Circuit

__all__ = ["QubitAllocation", "GATE_LOWERING_RULES", "register_gate_lowering", "lower_operator"]


@dataclass
class QubitAllocation:
    """Assignment of register carriers to circuit qubits and clbits.

    ``qubit_of(register, carrier)`` is the only lookup the rules need; the
    backend builds the allocation once per bundle (contiguous blocks in
    declaration order).
    """

    qubit_map: Dict[str, List[int]]
    clbit_offsets: Dict[str, int]
    num_qubits: int
    num_clbits: int

    def qubit_of(self, register_id: str, carrier: int) -> int:
        """Physical qubit index of one carrier of a register."""
        try:
            carriers = self.qubit_map[register_id]
        except KeyError:
            raise LoweringError(f"register {register_id!r} has no qubit allocation") from None
        if not 0 <= carrier < len(carriers):
            raise LoweringError(
                f"carrier index {carrier} out of range for register {register_id!r}"
            )
        return carriers[carrier]

    def qubits_of(self, register_id: str) -> List[int]:
        """All physical qubit indices of a register, in carrier order."""
        return list(self.qubit_map[register_id])


LoweringRule = Callable[
    [QuantumOperatorDescriptor, Mapping[str, QuantumDataType], QubitAllocation, Circuit, int],
    None,
]

GATE_LOWERING_RULES: Dict[str, LoweringRule] = {}


def register_gate_lowering(rep_kind: str, rule: LoweringRule, *, replace: bool = False) -> None:
    """Register a lowering rule for *rep_kind* on the gate path."""
    if rep_kind in GATE_LOWERING_RULES and not replace:
        raise LoweringError(f"gate lowering for {rep_kind!r} already registered")
    GATE_LOWERING_RULES[rep_kind] = rule


def lower_operator(
    op: QuantumOperatorDescriptor,
    qdts: Mapping[str, QuantumDataType],
    allocation: QubitAllocation,
    circuit: Circuit,
    clbit_offset: int = 0,
) -> None:
    """Append the realization of *op* to *circuit*."""
    rule = GATE_LOWERING_RULES.get(op.rep_kind)
    if rule is None:
        raise LoweringError(
            f"the gate path has no realization rule for rep_kind {op.rep_kind!r}"
        )
    rule(op, qdts, allocation, circuit, clbit_offset)


# -- helpers -----------------------------------------------------------------------

def _register_qubits_msb_first(qdt: QuantumDataType, allocation: QubitAllocation) -> List[int]:
    """Circuit qubits of *qdt* ordered from most- to least-significant carrier."""
    carriers = list(range(qdt.width))
    if qdt.bit_order is BitOrder.LSB_0:
        carriers = carriers[::-1]
    return [allocation.qubit_of(qdt.id, c) for c in carriers]


def _primary(op, qdts) -> QuantumDataType:
    return qdts[op.primary_register]


# -- state preparation ------------------------------------------------------------------

def _lower_prep_uniform(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    for carrier in range(qdt.width):
        circuit.h(allocation.qubit_of(qdt.id, carrier))


def _lower_prep_basis_state(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    bits = op.params.get("bits")
    if bits is None:
        bits = qdt.encode_value(op.params["value"])
    for carrier, bit in enumerate(bits):
        if bit == "1":
            circuit.x(allocation.qubit_of(qdt.id, carrier))


def _lower_prep_angle(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    angles = op.params["angles"]
    for carrier, angle in enumerate(angles):
        circuit.ry(float(angle), allocation.qubit_of(qdt.id, carrier))


def _lower_prep_amplitude(op, qdts, allocation, circuit, clbit_offset):
    """Amplitude encoding via pattern-controlled RY rotations.

    The reference gate path supports real, non-negative amplitude vectors on
    registers of width <= 3 (at most two controls, realisable with the gate
    library's ``cry``/``ccx``).  Wider or complex vectors raise a
    :class:`LoweringError`; the descriptor itself remains valid and other
    backends may support it.
    """
    qdt = _primary(op, qdts)
    raw = op.params["amplitudes"]
    vector = np.array([complex(re, im) for re, im in raw])
    if np.any(np.abs(vector.imag) > 1e-12) or np.any(vector.real < -1e-12):
        raise LoweringError(
            "the reference gate path only lowers real, non-negative amplitude vectors"
        )
    if qdt.width > 3:
        raise LoweringError(
            "the reference gate path lowers PREP_AMPLITUDE only for width <= 3 registers"
        )
    values = np.clip(vector.real, 0.0, None)
    # Tensor indexed by carrier bits (carrier 0 first).
    tensor = np.zeros((2,) * qdt.width)
    for index, amplitude in enumerate(values):
        bits = qdt.index_to_bits(index)
        tensor[tuple(int(c) for c in bits)] = amplitude

    def branch_norms(prefix: Tuple[int, ...], carrier: int) -> Tuple[float, float]:
        sub = tensor[prefix]
        zero = float(np.sqrt(np.sum(np.square(sub[0]))))
        one = float(np.sqrt(np.sum(np.square(sub[1]))))
        return zero, one

    def controlled_ry(theta: float, controls: List[Tuple[int, int]], target: int) -> None:
        if abs(theta) < 1e-12:
            return
        flip = [q for q, v in controls if v == 0]
        for q in flip:
            circuit.x(q)
        control_qubits = [q for q, _ in controls]
        if not control_qubits:
            circuit.ry(theta, target)
        elif len(control_qubits) == 1:
            circuit.cry(theta, control_qubits[0], target)
        else:  # two controls: standard doubly-controlled rotation decomposition
            a, b = control_qubits
            circuit.cry(theta / 2, b, target)
            circuit.cx(a, b)
            circuit.cry(-theta / 2, b, target)
            circuit.cx(a, b)
            circuit.cry(theta / 2, a, target)
        for q in flip:
            circuit.x(q)

    for carrier in range(qdt.width):
        qubit = allocation.qubit_of(qdt.id, carrier)
        control_carriers = list(range(carrier))
        for pattern in range(1 << carrier):
            prefix = tuple((pattern >> c) & 1 for c in control_carriers)
            zero, one = branch_norms(prefix, carrier)
            if zero == 0.0 and one == 0.0:
                continue
            theta = 2.0 * math.atan2(one, zero)
            controls = [
                (allocation.qubit_of(qdt.id, c), prefix[idx])
                for idx, c in enumerate(control_carriers)
            ]
            controlled_ry(theta, controls, qubit)


# -- transforms -----------------------------------------------------------------------------

def _qft_gates(circuit: Circuit, qubits_msb_first: List[int], approx_degree: int, do_swaps: bool):
    """Textbook QFT on qubits given most-significant first."""
    n = len(qubits_msb_first)
    for i in range(n):
        target = qubits_msb_first[i]
        circuit.h(target)
        for j in range(i + 1, n):
            distance = j - i
            if approx_degree and distance > n - 1 - approx_degree:
                continue
            angle = math.pi / (2 ** distance)
            circuit.cp(angle, qubits_msb_first[j], target)
    if do_swaps:
        for i in range(n // 2):
            circuit.swap(qubits_msb_first[i], qubits_msb_first[n - 1 - i])


def _lower_qft(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    qubits = _register_qubits_msb_first(qdt, allocation)
    approx = int(op.params.get("approx_degree", 0))
    do_swaps = bool(op.params.get("do_swaps", True))
    inverse = bool(op.params.get("inverse", False))
    if not inverse:
        _qft_gates(circuit, qubits, approx, do_swaps)
        return
    # Build the forward transform on a scratch circuit and append its inverse.
    scratch = Circuit(circuit.num_qubits)
    _qft_gates(scratch, qubits, approx, do_swaps)
    circuit.compose(scratch.inverse())


def _lower_ising_cost_phase(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    gamma = op.params.get("gamma")
    if gamma is None:
        raise LoweringError(
            f"operator {op.name!r}: QAOA angle gamma is unbound; bind parameters before execution"
        )
    sign = -1.0 if op.params.get("inverse", False) else 1.0
    gamma = float(gamma) * sign
    edges = op.params.get("edges") or []
    weights = op.params.get("weights") or [1.0] * len(edges)
    h = op.params.get("h") or [0.0] * qdt.width
    for (i, j), w in zip(edges, weights):
        circuit.rzz(
            2.0 * gamma * float(w),
            allocation.qubit_of(qdt.id, int(i)),
            allocation.qubit_of(qdt.id, int(j)),
        )
    for carrier, bias in enumerate(h):
        if abs(float(bias)) > 0:
            circuit.rz(2.0 * gamma * float(bias), allocation.qubit_of(qdt.id, carrier))


def _lower_mixer_rx(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    beta = op.params.get("beta")
    if beta is None:
        raise LoweringError(
            f"operator {op.name!r}: QAOA angle beta is unbound; bind parameters before execution"
        )
    sign = -1.0 if op.params.get("inverse", False) else 1.0
    for carrier in range(qdt.width):
        circuit.rx(2.0 * float(beta) * sign, allocation.qubit_of(qdt.id, carrier))


def _lower_ising_evolution(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    time = float(op.params["time"])
    steps = max(1, int(op.params.get("trotter_steps", 1)))
    step_op = op.with_params(gamma=time / steps)
    for _ in range(steps):
        _lower_ising_cost_phase(step_op, qdts, allocation, circuit, clbit_offset)


def _lower_controlled_phase(op, qdts, allocation, circuit, clbit_offset):
    control = ClbitRef.parse(op.params["control"])
    target = ClbitRef.parse(op.params["target"])
    circuit.cp(
        float(op.params["angle"]),
        allocation.qubit_of(control.register, control.index),
        allocation.qubit_of(target.register, target.index),
    )


# -- arithmetic --------------------------------------------------------------------------------

def _lower_adder(op, qdts, allocation, circuit, clbit_offset):
    """Draper (QFT-based) adder for a classical constant or a second register."""
    kind = op.params.get("kind", "classical_constant")
    if kind == "classical_constant":
        qdt = _primary(op, qdts)
        qubits_msb = _register_qubits_msb_first(qdt, allocation)
        n = qdt.width
        addend = int(op.params["addend"]) % (1 << n)
        _qft_gates(circuit, qubits_msb, 0, do_swaps=False)
        # After the swap-less QFT, the qubit at MSB-first position p carries the
        # phase e^{2*pi*i*x/2^(n-p)}; adding the constant a multiplies it by
        # e^{2*pi*i*a/2^(n-p)} = e^{2*pi*i*a*2^p/2^n}.
        for position, qubit in enumerate(qubits_msb):
            weight = 1 << position
            angle = 2.0 * math.pi * addend * weight / (1 << n)
            circuit.p(angle, qubit)
        scratch = Circuit(circuit.num_qubits)
        _qft_gates(scratch, qubits_msb, 0, do_swaps=False)
        circuit.compose(scratch.inverse())
        return
    if kind == "register":
        source = qdts[op.params["source"]]
        target = qdts[op.params["target"]]
        if source.width != target.width:
            raise LoweringError("register adder requires equal-width registers")
        n = target.width
        target_msb = _register_qubits_msb_first(target, allocation)
        _qft_gates(circuit, target_msb, 0, do_swaps=False)
        for t_pos, t_qubit in enumerate(target_msb):
            t_weight = 1 << t_pos
            for s_carrier in range(source.width):
                s_weight = (
                    1 << s_carrier
                    if source.bit_order is BitOrder.LSB_0
                    else 1 << (source.width - 1 - s_carrier)
                )
                angle = 2.0 * math.pi * t_weight * s_weight / (1 << n)
                # Angles that are multiples of 2*pi are identities.
                if abs((angle / (2 * math.pi)) % 1.0) < 1e-12:
                    continue
                circuit.cp(angle, allocation.qubit_of(source.id, s_carrier), t_qubit)
        scratch = Circuit(circuit.num_qubits)
        _qft_gates(scratch, target_msb, 0, do_swaps=False)
        circuit.compose(scratch.inverse())
        return
    raise LoweringError(f"unknown adder kind {kind!r}")


# -- boolean / gadgets ----------------------------------------------------------------------------

def _lower_cswap(op, qdts, allocation, circuit, clbit_offset):
    control = qdts[op.params["control"]]
    reg_a = qdts[op.params["a"]]
    reg_b = qdts[op.params["b"]]
    control_qubit = allocation.qubit_of(control.id, 0)
    for carrier in range(reg_a.width):
        circuit.cswap(
            control_qubit,
            allocation.qubit_of(reg_a.id, carrier),
            allocation.qubit_of(reg_b.id, carrier),
        )


def _lower_swap_test(op, qdts, allocation, circuit, clbit_offset):
    ancilla = qdts[op.params["ancilla"]]
    reg_a = qdts[op.params["a"]]
    reg_b = qdts[op.params["b"]]
    ancilla_qubit = allocation.qubit_of(ancilla.id, 0)
    circuit.h(ancilla_qubit)
    for carrier in range(reg_a.width):
        circuit.cswap(
            ancilla_qubit,
            allocation.qubit_of(reg_a.id, carrier),
            allocation.qubit_of(reg_b.id, carrier),
        )
    circuit.h(ancilla_qubit)
    _measure_schema(op, qdts, allocation, circuit, clbit_offset)


def _lower_qpe(op, qdts, allocation, circuit, clbit_offset):
    """Phase estimation when the nested unitary is a single-carrier phase gate."""
    nested = op.params.get("unitary", {})
    if nested.get("rep_kind") != "CONTROLLED_PHASE":
        raise LoweringError(
            "the reference gate path lowers QPE_TEMPLATE only for CONTROLLED_PHASE targets"
        )
    phase_qdt = qdts[op.params["phase_register"]]
    target_qdt = qdts[op.params["target_register"]]
    angle = float(nested["params"]["angle"])
    target_ref = ClbitRef.parse(nested["params"]["target"])
    target_qubit = allocation.qubit_of(target_qdt.id, target_ref.index)

    # Eigenstate |1> of the phase gate on the target carrier.
    circuit.x(target_qubit)
    for carrier in range(phase_qdt.width):
        circuit.h(allocation.qubit_of(phase_qdt.id, carrier))
    # The swap-less inverse QFT applied below expects carrier k (LSB_0 weight
    # 2^k) to hold the phase e^{2*pi*i*y/2^(k+1)}; controlled-U^(2^(n-1-k))
    # produces exactly that pattern for eigenphase y/2^n.
    for carrier in range(phase_qdt.width):
        if phase_qdt.bit_order is BitOrder.LSB_0:
            weight = 1 << (phase_qdt.width - 1 - carrier)
        else:
            weight = 1 << carrier
        circuit.cp(angle * weight, allocation.qubit_of(phase_qdt.id, carrier), target_qubit)
    # Inverse QFT (no swaps) on the phase register.
    qubits_msb = _register_qubits_msb_first(phase_qdt, allocation)
    scratch = Circuit(circuit.num_qubits)
    _qft_gates(scratch, qubits_msb, 0, do_swaps=False)
    circuit.compose(scratch.inverse())


# -- measurement / structural ---------------------------------------------------------------------

def _measure_schema(op, qdts, allocation, circuit, clbit_offset):
    schema = op.result_schema
    if schema is None:
        raise LoweringError(f"measuring operator {op.name!r} has no result schema")
    for clbit, ref in enumerate(schema.references()):
        qubit = allocation.qubit_of(ref.register, ref.index)
        if schema.basis == "X":
            circuit.h(qubit)
        elif schema.basis == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)
        circuit.measure(qubit, clbit_offset + clbit)


def _lower_measurement(op, qdts, allocation, circuit, clbit_offset):
    _measure_schema(op, qdts, allocation, circuit, clbit_offset)


def _lower_repetition_memory(op, qdts, allocation, circuit, clbit_offset):
    """Repetition-code memory cycles on one patch register.

    Mirrors :func:`repro.services.qec.repetition_code_circuit` on the
    operator's allocated qubits: carriers ``0..d-1`` are data, ``d..2d-2``
    syndrome ancillas; each round extracts every neighbouring-pair ZZ parity
    with two CX into a fresh ancilla (measure + reset), then the data qubits
    are read out.  Clbits follow the operator's result schema: round-major
    syndrome bits, then data bits.  All gates are Clifford.
    """
    qdt = _primary(op, qdts)
    distance = int(op.params["distance"])
    rounds = int(op.params.get("rounds", 1))
    if distance < 3 or distance % 2 == 0:
        raise LoweringError("repetition-code distance must be an odd integer >= 3")
    if rounds < 1:
        raise LoweringError("repetition memory needs rounds >= 1")
    if qdt.width != 2 * distance - 1:
        raise LoweringError(
            f"register {qdt.id!r} has width {qdt.width}; a distance-{distance} "
            f"patch needs {2 * distance - 1} carriers"
        )
    data = [allocation.qubit_of(qdt.id, j) for j in range(distance)]
    ancilla = [allocation.qubit_of(qdt.id, distance + j) for j in range(distance - 1)]
    for rnd in range(rounds):
        for j in range(distance - 1):
            circuit.cx(data[j], ancilla[j])
            circuit.cx(data[j + 1], ancilla[j])
            circuit.measure(ancilla[j], clbit_offset + rnd * (distance - 1) + j)
            circuit.reset(ancilla[j])
    for j in range(distance):
        circuit.measure(data[j], clbit_offset + rounds * (distance - 1) + j)


def _lower_barrier(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    circuit.barrier(*allocation.qubits_of(qdt.id))


def _lower_identity(op, qdts, allocation, circuit, clbit_offset):
    return None


def _lower_reset(op, qdts, allocation, circuit, clbit_offset):
    qdt = _primary(op, qdts)
    for carrier in range(qdt.width):
        circuit.reset(allocation.qubit_of(qdt.id, carrier))


register_gate_lowering("PREP_UNIFORM", _lower_prep_uniform)
register_gate_lowering("PREP_BASIS_STATE", _lower_prep_basis_state)
register_gate_lowering("PREP_ANGLE", _lower_prep_angle)
register_gate_lowering("PREP_AMPLITUDE", _lower_prep_amplitude)
register_gate_lowering("QFT_TEMPLATE", _lower_qft)
register_gate_lowering("ISING_COST_PHASE", _lower_ising_cost_phase)
register_gate_lowering("MIXER_RX", _lower_mixer_rx)
register_gate_lowering("ISING_EVOLUTION", _lower_ising_evolution)
register_gate_lowering("CONTROLLED_PHASE", _lower_controlled_phase)
register_gate_lowering("ADDER_TEMPLATE", _lower_adder)
register_gate_lowering("CSWAP_TEMPLATE", _lower_cswap)
register_gate_lowering("SWAP_TEST", _lower_swap_test)
register_gate_lowering("QPE_TEMPLATE", _lower_qpe)
register_gate_lowering("MEASUREMENT", _lower_measurement)
register_gate_lowering("REPETITION_MEMORY", _lower_repetition_memory)
register_gate_lowering("BARRIER", _lower_barrier)
register_gate_lowering("IDENTITY", _lower_identity)
register_gate_lowering("RESET", _lower_reset)
