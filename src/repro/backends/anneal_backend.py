"""The annealing reference backend (D-Wave Ocean ``neal`` stand-in).

Consumes bundles whose operator sequence contains a single ``ISING_PROBLEM``
or ``QUBO_PROBLEM`` descriptor (plus optional MEASUREMENT/BARRIER no-ops),
builds the corresponding binary quadratic model, and samples it with the
simulated annealer configured by the context's ``anneal`` policy.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.bundle import JobBundle
from ..core.context import AnnealPolicy, ContextDescriptor, ExecPolicy
from ..core.errors import BackendError, CapabilityError
from ..core.qod import QuantumOperatorDescriptor
from ..simulators.anneal.bqm import BinaryQuadraticModel
from ..simulators.anneal.sampler import SimulatedAnnealingSampler
from .base import Backend, ExecutionResult

__all__ = ["AnnealBackend", "bqm_from_operator"]

_PROBLEM_KINDS = ("ISING_PROBLEM", "QUBO_PROBLEM")
_PASSTHROUGH_KINDS = ("MEASUREMENT", "BARRIER", "IDENTITY")


def bqm_from_operator(op: QuantumOperatorDescriptor) -> BinaryQuadraticModel:
    """Build a binary quadratic model from a problem descriptor."""
    if op.rep_kind == "ISING_PROBLEM":
        h = [float(x) for x in op.params.get("h", [])]
        edges = op.params.get("edges") or []
        weights = op.params.get("weights") or [1.0] * len(edges)
        constant = float(op.params.get("constant", 0.0))
        bqm = BinaryQuadraticModel.from_ising(h, {}, offset=constant)
        for (i, j), w in zip(edges, weights):
            bqm.add_interaction(int(i), int(j), float(w))
        return bqm
    if op.rep_kind == "QUBO_PROBLEM":
        Q = op.params["Q"]
        constant = float(op.params.get("constant", 0.0))
        mapping = {}
        for i, row in enumerate(Q):
            for j, value in enumerate(row):
                if value and j >= i:
                    mapping[(i, j)] = float(value)
        return BinaryQuadraticModel.from_qubo(mapping, offset=constant)
    raise CapabilityError(f"operator {op.name!r} ({op.rep_kind}) is not an annealing problem")


class AnnealBackend(Backend):
    """Backend realising Ising/QUBO problem descriptors on the simulated annealer."""

    name = "anneal.reference"
    engines = (
        "anneal.simulated_annealer",
        "anneal.neal",
        "anneal.reference",
    )
    supported_rep_kinds = _PROBLEM_KINDS + _PASSTHROUGH_KINDS

    def __init__(self, sampler: Optional[SimulatedAnnealingSampler] = None) -> None:
        self.sampler = sampler or SimulatedAnnealingSampler()

    def _problem(self, bundle: JobBundle) -> QuantumOperatorDescriptor:
        problems = [op for op in bundle.operators if op.rep_kind in _PROBLEM_KINDS]
        if len(problems) != 1:
            raise CapabilityError(
                f"the annealing backend expects exactly one problem descriptor, "
                f"found {len(problems)}"
            )
        return problems[0]

    def run(self, bundle: JobBundle) -> ExecutionResult:
        """Anneal the bundle's single Ising/QUBO problem and return samples."""
        self.check_capabilities(bundle)
        context = bundle.context or ContextDescriptor(exec=ExecPolicy(engine=self.engines[0]))
        policy = context.anneal or AnnealPolicy(num_reads=context.exec.samples)

        problem = self._problem(bundle)
        bqm = bqm_from_operator(problem)
        try:
            sampleset = self.sampler.sample(
                bqm,
                num_reads=policy.num_reads,
                num_sweeps=policy.num_sweeps,
                beta_range=policy.beta_range,
                schedule=policy.schedule,
                seed=policy.seed if policy.seed is not None else context.exec.seed,
            )
        except Exception as exc:  # noqa: BLE001 - surface as backend failure
            raise BackendError(f"annealing backend sampling failed: {exc}") from exc

        counts = sampleset.to_counts()
        schema = problem.result_schema
        schemas = [(schema, 0)] if schema is not None else []
        # A separate MEASUREMENT descriptor may carry the decoding schema instead.
        if not schemas:
            for op in bundle.operators:
                if op.is_measurement and op.result_schema is not None:
                    schemas.append((op.result_schema, 0))
                    break

        return ExecutionResult(
            backend_name=self.name,
            engine=context.exec.engine,
            counts=counts,
            sampleset=sampleset,
            result_schemas=schemas,
            bundle_digest=bundle.digest(),
            metadata={
                "num_reads": policy.num_reads,
                "num_sweeps": policy.num_sweeps,
                "schedule": policy.schedule,
                "num_variables": bqm.num_variables,
                "num_interactions": bqm.num_interactions,
                "best_energy": float(sampleset.first.energy),
                "mean_energy": float(sampleset.mean_energy()),
                "ground_state_probability": float(sampleset.ground_state_probability()),
            },
            _bundle=bundle,
        )
