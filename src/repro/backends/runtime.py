"""Submission runtime: validate a bundle, pick the backend, execute, record.

:func:`submit` is the single call applications use once a bundle exists — it
re-validates, resolves the engine named by the context, checks backend
capabilities, runs, and annotates the result with wall-clock timing and the
bundle digest so results remain traceable to their submission artifact.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.bundle import JobBundle
from ..core.context import ContextDescriptor
from ..core.errors import ContextError
from .base import Backend, ExecutionResult
from .registry import get_backend

__all__ = ["submit"]


def submit(
    bundle: JobBundle,
    *,
    backend: Optional[Backend] = None,
    validate: bool = True,
) -> ExecutionResult:
    """Execute *bundle* on the backend selected by its context.

    Parameters
    ----------
    backend:
        Explicit backend override (useful in tests); by default the engine
        named by ``bundle.context.exec.engine`` is resolved from the registry.
    validate:
        Re-run full bundle validation before execution (cheap, on by default).
    """
    if bundle.context is None:
        raise ContextError(
            "bundle has no execution context; attach a ContextDescriptor before submitting"
        )
    if validate:
        bundle.validate()
    selected = backend or get_backend(bundle.context.exec.engine)
    selected.check_capabilities(bundle)

    # Submission-level wall time is user-facing runtime telemetry, not a
    # kernel: the one sanctioned clock read outside benchmarks.
    started = time.perf_counter()  # lint: allow(TIME001)
    result = selected.run(bundle)
    elapsed = time.perf_counter() - started  # lint: allow(TIME001)
    result.metadata.setdefault("wall_time_s", elapsed)
    result.metadata.setdefault("engine_requested", bundle.context.exec.engine)
    return result
