"""Submission runtime: validate a bundle, pick the backend, execute, record.

:func:`submit` is the single call applications use once a bundle exists — it
re-validates, resolves the engine named by the context, checks backend
capabilities, runs, and annotates the result with wall-clock timing and the
bundle digest so results remain traceable to their submission artifact.

:func:`submit_merged` is the group analogue for the serving layer's merged
execution fast path: a whole coalesced group of merge-eligible bundles runs
as one backend invocation (one compile, one dispatch, one batched
evolution), with each returned result stamped the same way ``submit`` would
— the shared wall time is the group's, since the jobs genuinely executed
together.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.bundle import JobBundle
from ..core.context import ContextDescriptor
from ..core.errors import ContextError
from .base import Backend, ExecutionResult
from .registry import get_backend

__all__ = ["submit", "submit_merged"]


def submit(
    bundle: JobBundle,
    *,
    backend: Optional[Backend] = None,
    validate: bool = True,
    lowered: Optional[tuple] = None,
) -> ExecutionResult:
    """Execute *bundle* on the backend selected by its context.

    Parameters
    ----------
    backend:
        Explicit backend override (useful in tests); by default the engine
        named by ``bundle.context.exec.engine`` is resolved from the registry.
    validate:
        Re-run full bundle validation before execution (cheap, on by default).
    lowered:
        Optional pre-built ``(circuit, allocation)`` lowering artifact for
        this bundle, forwarded to backends that accept it (the serving layer
        lowers once for its coalescing key and reuses the artifact here).
        Ignored for backends whose ``run`` takes only the bundle.
    """
    if bundle.context is None:
        raise ContextError(
            "bundle has no execution context; attach a ContextDescriptor before submitting"
        )
    if validate:
        bundle.validate()
    selected = backend or get_backend(bundle.context.exec.engine)
    selected.check_capabilities(bundle)

    # Submission-level wall time is user-facing runtime telemetry, not a
    # kernel: the one sanctioned clock read outside benchmarks.
    started = time.perf_counter()  # lint: allow(TIME001)
    if lowered is not None and hasattr(selected, "merge_key"):
        result = selected.run(bundle, lowered)
    else:
        result = selected.run(bundle)
    elapsed = time.perf_counter() - started  # lint: allow(TIME001)
    result.metadata.setdefault("wall_time_s", elapsed)
    result.metadata.setdefault("engine_requested", bundle.context.exec.engine)
    return result


def submit_merged(
    bundles: Sequence[JobBundle],
    *,
    backend: Optional[Backend] = None,
    validate: bool = True,
    lowered: Optional[Sequence[Optional[tuple]]] = None,
) -> List[ExecutionResult]:
    """Execute a group of merge-eligible bundles as one merged backend run.

    The caller (the serving layer) is responsible for grouping bundles whose
    ``Backend.merge_key`` values match; every bundle must carry a context and
    they must all resolve to the same backend.  Returns one
    :class:`ExecutionResult` per bundle, in order, each annotated with the
    group's shared wall time and its own requested engine.
    """
    if not bundles:
        return []
    for bundle in bundles:
        if bundle.context is None:
            raise ContextError(
                "bundle has no execution context; attach a ContextDescriptor "
                "before submitting"
            )
        if validate:
            bundle.validate()
    selected = backend or get_backend(bundles[0].context.exec.engine)
    for bundle in bundles:
        selected.check_capabilities(bundle)

    # The merged group's wall time is genuinely shared: one compile, one
    # dispatch, one batched evolution — stamped on every member's result.
    started = time.perf_counter()  # lint: allow(TIME001)
    results = selected.run_merged(bundles, lowered)
    elapsed = time.perf_counter() - started  # lint: allow(TIME001)
    for bundle, result in zip(bundles, results):
        result.metadata.setdefault("wall_time_s", elapsed)
        result.metadata.setdefault("engine_requested", bundle.context.exec.engine)
    return results
