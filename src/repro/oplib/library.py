"""Shared helpers for the algorithmic libraries.

Every concrete library module (QFT, QAOA, arithmetic, ...) goes through
:func:`build_operator`, which is the paper's "pure constructor with JSON
schema and semantic checks, optional cost-hint estimators, and helpers to
attach result schemas" in one place.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Union

from ..core.cost import CostHint
from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from ..core.result_schema import ResultSchema
from .costmodel import estimate_cost

__all__ = ["build_operator", "measurement"]


def build_operator(
    name: str,
    rep_kind: str,
    qdt: Union[QuantumDataType, Sequence[QuantumDataType]],
    *,
    params: Optional[Mapping[str, Any]] = None,
    codomain: Union[QuantumDataType, Sequence[QuantumDataType], None] = None,
    cost_hint: Optional[CostHint] = None,
    result_schema: Optional[ResultSchema] = None,
    estimate: bool = True,
    metadata: Optional[Mapping[str, Any]] = None,
) -> QuantumOperatorDescriptor:
    """Construct, validate and (optionally) cost-estimate an operator.

    Parameters
    ----------
    qdt:
        The domain register descriptor(s).  Descriptors (not ids) are taken so
        the constructor can run width/encoding checks and cost estimation.
    estimate:
        When no explicit *cost_hint* is given, ask the cost model for one.
    """
    domain = [qdt] if isinstance(qdt, QuantumDataType) else list(qdt)
    codomain_list = (
        domain
        if codomain is None
        else ([codomain] if isinstance(codomain, QuantumDataType) else list(codomain))
    )
    op = QuantumOperatorDescriptor(
        name=name,
        rep_kind=rep_kind,
        domain_qdt=[d.id for d in domain],
        codomain_qdt=[c.id for c in codomain_list],
        params=dict(params or {}),
        cost_hint=cost_hint,
        result_schema=result_schema,
        metadata=dict(metadata or {}),
    )
    qdt_map: Dict[str, QuantumDataType] = {d.id: d for d in domain + codomain_list}
    if op.cost_hint is None and estimate:
        hint = estimate_cost(op, qdt_map)
        if hint is not None:
            op.cost_hint = hint
    op.validate(qdt_map)
    return op


def measurement(
    qdt: QuantumDataType,
    *,
    name: Optional[str] = None,
    basis: str = "Z",
    result_schema: Optional[ResultSchema] = None,
) -> QuantumOperatorDescriptor:
    """An explicit MEASUREMENT operator with a fully specified result schema.

    The middle layer forbids implicit measurement; this helper is how every
    library terminates a gate-path sequence.
    """
    schema = result_schema or ResultSchema.for_register(qdt, basis=basis)
    return build_operator(
        name or f"measure_{qdt.id}",
        "MEASUREMENT",
        qdt,
        result_schema=schema,
    )
