"""Quantum state preparation descriptors.

Covers the preparation primitives Section 4.4 lists: uniform superposition
(Hadamard on every carrier), basis-state preparation of a typed classical
value, amplitude encoding of a normalised vector, and angle encoding (one RY
rotation per carrier).
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

import numpy as np

from ..core.errors import DescriptorError
from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from ..simulators.gate.dtypes import CANONICAL_COMPLEX
from .library import build_operator

__all__ = ["prep_uniform", "prep_basis_state", "prep_amplitude", "prep_angle"]


def prep_uniform(qdt: QuantumDataType, *, name: Optional[str] = None) -> QuantumOperatorDescriptor:
    """Uniform superposition over every basis state of *qdt*."""
    return build_operator(name or f"prep_uniform_{qdt.id}", "PREP_UNIFORM", qdt)


def prep_basis_state(
    qdt: QuantumDataType, value: Any, *, name: Optional[str] = None
) -> QuantumOperatorDescriptor:
    """Prepare the basis state encoding the typed classical *value*.

    The value is validated against the register's encoding at construction
    time (e.g. an out-of-range integer or a non-representable phase fails
    here, not at the backend).
    """
    bits = qdt.encode_value(value)  # raises DescriptorError when not encodable
    return build_operator(
        name or f"prep_basis_{qdt.id}",
        "PREP_BASIS_STATE",
        qdt,
        params={"value": value if not isinstance(value, tuple) else list(value), "bits": bits},
    )


def prep_amplitude(
    qdt: QuantumDataType,
    amplitudes: Sequence[complex] | Sequence[float],
    *,
    normalize: bool = True,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Amplitude-encode a classical vector of length ``2**width``.

    Complex amplitudes are carried as ``[re, im]`` pairs so the descriptor
    stays valid JSON.
    """
    vector = np.asarray(amplitudes, dtype=CANONICAL_COMPLEX)
    if vector.shape != (qdt.num_states,):
        raise DescriptorError(
            f"amplitude vector must have length {qdt.num_states}, got {vector.shape}"
        )
    norm = float(np.linalg.norm(vector))
    if norm == 0:
        raise DescriptorError("cannot amplitude-encode the zero vector")
    if normalize:
        vector = vector / norm
    elif abs(norm - 1.0) > 1e-9:
        raise DescriptorError("amplitudes must be normalised (or pass normalize=True)")
    return build_operator(
        name or f"prep_amplitude_{qdt.id}",
        "PREP_AMPLITUDE",
        qdt,
        params={"amplitudes": [[float(a.real), float(a.imag)] for a in vector]},
    )


def prep_angle(
    qdt: QuantumDataType,
    angles: Sequence[float],
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Angle-encode one real feature per carrier: ``RY(angle_i)`` on carrier i."""
    if len(angles) != qdt.width:
        raise DescriptorError(
            f"angle encoding needs {qdt.width} angles, got {len(angles)}"
        )
    return build_operator(
        name or f"prep_angle_{qdt.id}",
        "PREP_ANGLE",
        qdt,
        params={"angles": [float(a) for a in angles]},
    )
