"""Device-independent cost-hint estimators for the standard operator kinds.

The estimators answer "roughly how expensive is this logical transformation?"
without knowing the backend — two-qubit counts and depths assume a generic
all-to-all gate model (the paper's Listing 3 quotes ~45 two-qubit gates and
depth ~100 for a width-10 exact QFT, which is exactly what these formulas
give).  Annealing problems report variables/couplers instead.

Backends and the scheduler treat these numbers the way HPC schedulers treat
FLOP counts: good enough for planning, never authoritative.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from ..core.cost import CostHint
from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor

__all__ = ["estimate_cost", "register_cost_estimator", "attach_cost_hints"]

Estimator = Callable[[QuantumOperatorDescriptor, QuantumDataType], CostHint]

_ESTIMATORS: Dict[str, Estimator] = {}


def register_cost_estimator(rep_kind: str, estimator: Estimator) -> None:
    """Register (or replace) the estimator for *rep_kind*."""
    _ESTIMATORS[rep_kind] = estimator


def estimate_cost(
    op: QuantumOperatorDescriptor, qdts: Mapping[str, QuantumDataType]
) -> Optional[CostHint]:
    """Cost hint for *op*, or ``None`` when no estimator is registered."""
    estimator = _ESTIMATORS.get(op.rep_kind)
    if estimator is None:
        return None
    return estimator(op, qdts[op.primary_register])


def attach_cost_hints(operators, qdts: Mapping[str, QuantumDataType]):
    """Return copies of *operators* with estimated cost hints filled in.

    Operators that already carry a hint, or whose kind has no estimator, pass
    through unchanged.
    """
    out = []
    for op in operators:
        if op.cost_hint is None:
            hint = estimate_cost(op, qdts)
            out.append(op.with_cost_hint(hint) if hint is not None else op)
        else:
            out.append(op)
    return out


# -- estimators ------------------------------------------------------------------

def _qft_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    n = qdt.width
    approx = int(op.params.get("approx_degree", 0))
    # Number of controlled-phase gates in an (optionally approximated) QFT.
    pairs = sum(max(0, (n - 1 - i) - approx) for i in range(n)) if approx else n * (n - 1) // 2
    swaps = (n // 2) if op.params.get("do_swaps", True) else 0
    twoq = pairs + 3 * swaps
    depth = 2 * pairs + n
    return CostHint(oneq=n, twoq=twoq, depth=depth)


def _prep_uniform_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(oneq=qdt.width, twoq=0, depth=1)


def _prep_basis_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(oneq=qdt.width, twoq=0, depth=1)


def _prep_angle_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(oneq=qdt.width, twoq=0, depth=1)


def _prep_amplitude_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    n = qdt.width
    # Generic state preparation needs O(2^n) gates (Mottonen-style).
    return CostHint(oneq=float(2**n), twoq=float(max(0, 2**n - n - 1)), depth=float(2**n))


def _ising_cost_phase_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    edges = op.params.get("edges") or []
    h = op.params.get("h") or []
    nonzero_h = sum(1 for x in h if abs(float(x)) > 0)
    return CostHint(
        oneq=nonzero_h,
        twoq=2 * len(edges),
        depth=2 * len(edges) + (1 if nonzero_h else 0),
    )


def _mixer_rx_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(oneq=qdt.width, twoq=0, depth=1)


def _measurement_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(depth=1, extras={"measured_carriers": qdt.width})


def _ising_problem_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    edges = op.params.get("edges")
    if edges is None:
        J = op.params.get("J") or []
        edges = [
            (i, j)
            for i in range(len(J))
            for j in range(i + 1, len(J))
            if abs(float(J[i][j])) > 0
        ]
    return CostHint(variables=qdt.width, couplers=len(edges))


def _ising_evolution_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    edges = op.params.get("edges") or []
    steps = int(op.params.get("trotter_steps", 1))
    return CostHint(
        oneq=qdt.width * steps, twoq=2 * len(edges) * steps, depth=(2 * len(edges) + 1) * steps
    )


def _adder_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    n = qdt.width
    # Draper (QFT-based) adder with a classical addend: QFT + n phase rotations + IQFT.
    qft_twoq = n * (n - 1) // 2
    return CostHint(oneq=3 * n, twoq=2 * qft_twoq, depth=4 * n + 2 * qft_twoq)


def _modular_adder_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    base = _adder_cost(op, qdt)
    return base.scaled(5.0)  # standard Beauregard construction uses ~5 adders


def _modular_mult_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    base = _modular_adder_cost(op, qdt)
    return base.scaled(qdt.width)


def _comparator_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    n = qdt.width
    return CostHint(oneq=2 * n, twoq=4 * n, depth=6 * n, ancilla=1)


def _controlled_phase_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(twoq=1, depth=1)


def _swap_test_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(oneq=2, twoq=qdt.width, depth=qdt.width + 2, ancilla=1)


def _qpe_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    n = qdt.width
    qft_twoq = n * (n - 1) // 2
    return CostHint(oneq=2 * n, twoq=qft_twoq + n, depth=2 * n + 2 * qft_twoq)


def _cswap_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(oneq=9 * qdt.width, twoq=8 * qdt.width, depth=10)


def _structural_cost(op: QuantumOperatorDescriptor, qdt: QuantumDataType) -> CostHint:
    return CostHint(depth=0)


register_cost_estimator("QFT_TEMPLATE", _qft_cost)
register_cost_estimator("PREP_UNIFORM", _prep_uniform_cost)
register_cost_estimator("PREP_BASIS_STATE", _prep_basis_cost)
register_cost_estimator("PREP_ANGLE", _prep_angle_cost)
register_cost_estimator("PREP_AMPLITUDE", _prep_amplitude_cost)
register_cost_estimator("ISING_COST_PHASE", _ising_cost_phase_cost)
register_cost_estimator("MIXER_RX", _mixer_rx_cost)
register_cost_estimator("MEASUREMENT", _measurement_cost)
register_cost_estimator("ISING_PROBLEM", _ising_problem_cost)
register_cost_estimator("QUBO_PROBLEM", _ising_problem_cost)
register_cost_estimator("ISING_EVOLUTION", _ising_evolution_cost)
register_cost_estimator("ADDER_TEMPLATE", _adder_cost)
register_cost_estimator("MODULAR_ADDER_TEMPLATE", _modular_adder_cost)
register_cost_estimator("MODULAR_MULT_TEMPLATE", _modular_mult_cost)
register_cost_estimator("COMPARATOR_TEMPLATE", _comparator_cost)
register_cost_estimator("CONTROLLED_PHASE", _controlled_phase_cost)
register_cost_estimator("SWAP_TEST", _swap_test_cost)
register_cost_estimator("QPE_TEMPLATE", _qpe_cost)
register_cost_estimator("CSWAP_TEMPLATE", _cswap_cost)
register_cost_estimator("BARRIER", _structural_cost)
register_cost_estimator("IDENTITY", _structural_cost)
register_cost_estimator("RESET", _structural_cost)
