"""Phase / measurement gadget descriptors: controlled phase, SWAP test, QPE.

The "phase/measurement" family of Section 4.4: controlled-phase and kickback
gadgets, the SWAP test, and quantum phase estimation scaffolding that combines
a phase register with a unitary described by another operator descriptor.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.errors import DescriptorError
from ..core.qdt import EncodingKind, QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from ..core.result_schema import ResultSchema
from .library import build_operator

__all__ = ["controlled_phase_operator", "swap_test_operator", "qpe_operator"]


def controlled_phase_operator(
    control: QuantumDataType,
    target: QuantumDataType,
    angle: float,
    *,
    control_index: int = 0,
    target_index: int = 0,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """A single controlled-phase (kickback) gadget between two carriers."""
    if not 0 <= control_index < control.width:
        raise DescriptorError("control_index out of range")
    if not 0 <= target_index < target.width:
        raise DescriptorError("target_index out of range")
    registers = [control] if control.id == target.id else [control, target]
    return build_operator(
        name or "controlled_phase",
        "CONTROLLED_PHASE",
        registers,
        params={
            "angle": float(angle),
            "control": f"{control.id}[{control_index}]",
            "target": f"{target.id}[{target_index}]",
        },
    )


def swap_test_operator(
    register_a: QuantumDataType,
    register_b: QuantumDataType,
    ancilla: QuantumDataType,
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """SWAP test estimating ``|<a|b>|^2`` onto a one-carrier ancilla.

    The ancilla's result schema is attached so that the overlap estimate
    ``P(ancilla=0) = (1 + |<a|b>|^2) / 2`` can be decoded explicitly.
    """
    if ancilla.width != 1:
        raise DescriptorError("swap test ancilla must have width 1")
    if register_a.width != register_b.width:
        raise DescriptorError("swap test registers must have equal width")
    return build_operator(
        name or "swap_test",
        "SWAP_TEST",
        [ancilla, register_a, register_b],
        params={"ancilla": ancilla.id, "a": register_a.id, "b": register_b.id},
        result_schema=ResultSchema.for_register(ancilla),
    )


def qpe_operator(
    phase_register: QuantumDataType,
    target_register: QuantumDataType,
    unitary: QuantumOperatorDescriptor,
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Quantum phase estimation scaffolding.

    The estimated eigenphase lands in *phase_register* (which should be a
    ``PHASE_REGISTER``); the unitary whose eigenphase is estimated is carried
    as a nested operator descriptor.
    """
    if phase_register.encoding_kind is not EncodingKind.PHASE_REGISTER:
        raise DescriptorError("QPE output register should be a PHASE_REGISTER")
    if not unitary.is_unitary:
        raise DescriptorError("QPE requires a unitary target operator")
    return build_operator(
        name or "qpe",
        "QPE_TEMPLATE",
        [phase_register, target_register],
        params={
            "unitary": unitary.to_dict(),
            "phase_register": phase_register.id,
            "target_register": target_register.id,
        },
        result_schema=ResultSchema.for_register(phase_register),
    )
