"""Boolean / conditional operator descriptors.

The "controls, predicates, multiplexers, controlled-Swap" family of
Section 4.4.  A controlled operator wraps another descriptor; the wrapped
descriptor travels inside ``params`` so it survives JSON round-trips.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..core.errors import DescriptorError
from ..core.qdt import QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from .library import build_operator

__all__ = ["controlled_operator", "cswap_operator", "multiplexer_operator"]


def controlled_operator(
    control: QuantumDataType,
    target_op: QuantumOperatorDescriptor,
    target_qdts: Sequence[QuantumDataType],
    *,
    control_state: int = 1,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Apply *target_op* conditioned on a one-carrier control register."""
    if control.width != 1:
        raise DescriptorError("controlled_operator currently supports width-1 controls")
    if not target_op.is_unitary:
        raise DescriptorError("only unitary operators can be controlled")
    return build_operator(
        name or f"controlled_{target_op.name}",
        "CONTROLLED_TEMPLATE",
        [control, *target_qdts],
        params={
            "target_rep_kind": target_op.rep_kind,
            "target": target_op.to_dict(),
            "control": control.id,
            "control_state": int(control_state),
        },
    )


def cswap_operator(
    control: QuantumDataType,
    register_a: QuantumDataType,
    register_b: QuantumDataType,
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Controlled-SWAP of two equal-width registers."""
    if control.width != 1:
        raise DescriptorError("cswap control register must have width 1")
    if register_a.width != register_b.width:
        raise DescriptorError("cswap registers must have equal width")
    return build_operator(
        name or f"cswap_{register_a.id}_{register_b.id}",
        "CSWAP_TEMPLATE",
        [control, register_a, register_b],
        params={"control": control.id, "a": register_a.id, "b": register_b.id},
    )


def multiplexer_operator(
    selector: QuantumDataType,
    cases: Mapping[int, QuantumOperatorDescriptor],
    target_qdts: Sequence[QuantumDataType],
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Select one of several operators according to a selector register value."""
    if not cases:
        raise DescriptorError("multiplexer needs at least one case")
    for value, op in cases.items():
        if not 0 <= int(value) < selector.num_states:
            raise DescriptorError(
                f"case selector {value} out of range for width-{selector.width} register"
            )
        if not op.is_unitary:
            raise DescriptorError("multiplexer cases must be unitary operators")
    return build_operator(
        name or f"multiplexer_{selector.id}",
        "MULTIPLEXER_TEMPLATE",
        [selector, *target_qdts],
        params={
            "selector": selector.id,
            "cases": {str(int(v)): op.to_dict() for v, op in cases.items()},
        },
    )
