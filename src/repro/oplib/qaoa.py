"""QAOA descriptor sequences for the gate path of the proof of concept.

For the gate backend, the algorithmic library emits "a QAOA stack of operator
descriptors ... an operator for the quantum state preparation, a cost layer
parameterized, a mixer layer, and a final measurement" (Section 5, Fig. 2).
:func:`qaoa_sequence` builds exactly that stack:

``PREP_UNIFORM -> (ISING_COST_PHASE(gamma_k) -> MIXER_RX(beta_k)) * p -> MEASUREMENT``

Angles may be left unbound (``None``) and bound later with
:func:`bind_qaoa_parameters`, which is the middle layer's late-binding hook.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.errors import DescriptorError
from ..core.qdt import QuantumDataType
from ..core.qod import OperatorSequence, QuantumOperatorDescriptor
from ..core.result_schema import ResultSchema
from .library import build_operator, measurement
from .stateprep import prep_uniform

__all__ = [
    "cost_layer",
    "mixer_layer",
    "qaoa_sequence",
    "bind_qaoa_parameters",
    "qaoa_parameter_names",
]

Edge = Tuple[int, int]


def cost_layer(
    qdt: QuantumDataType,
    edges: Sequence[Edge],
    *,
    weights: Optional[Sequence[float]] = None,
    h: Optional[Sequence[float]] = None,
    gamma: Optional[float] = None,
    layer: int = 0,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """One ``ISING_COST_PHASE`` layer: ``exp(-i * gamma * H_C)``.

    ``gamma=None`` leaves the angle unbound for late binding.
    """
    width = qdt.width
    edge_list = [[int(i), int(j)] for i, j in edges]
    weight_list = [1.0] * len(edge_list) if weights is None else [float(w) for w in weights]
    if len(weight_list) != len(edge_list):
        raise DescriptorError("weights must match edges one-to-one")
    h_list = [0.0] * width if h is None else [float(x) for x in h]
    if len(h_list) != width:
        raise DescriptorError(f"|h| = {len(h_list)} does not match register width {width}")
    params = {
        "edges": edge_list,
        "weights": weight_list,
        "h": h_list,
        "layer": int(layer),
    }
    # Unbound angles are simply omitted; validation requires the key, so only
    # bound layers validate cleanly (bind_qaoa_parameters fills the rest).
    if gamma is not None:
        params["gamma"] = float(gamma)
    op = QuantumOperatorDescriptor(
        name=name or f"cost_layer_{layer}",
        rep_kind="ISING_COST_PHASE",
        domain_qdt=qdt.id,
        params=params,
    )
    if gamma is not None:
        return build_operator(
            op.name, op.rep_kind, qdt, params=params
        )
    return op


def mixer_layer(
    qdt: QuantumDataType,
    *,
    beta: Optional[float] = None,
    layer: int = 0,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """One ``MIXER_RX`` layer: ``RX(2*beta)`` on every carrier."""
    params = {"layer": int(layer)}
    if beta is not None:
        params["beta"] = float(beta)
        return build_operator(
            name or f"mixer_layer_{layer}", "MIXER_RX", qdt, params=params
        )
    return QuantumOperatorDescriptor(
        name=name or f"mixer_layer_{layer}",
        rep_kind="MIXER_RX",
        domain_qdt=qdt.id,
        params=params,
    )


def qaoa_sequence(
    qdt: QuantumDataType,
    edges: Sequence[Edge],
    *,
    weights: Optional[Sequence[float]] = None,
    h: Optional[Sequence[float]] = None,
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    reps: Optional[int] = None,
    include_measurement: bool = True,
    result_schema: Optional[ResultSchema] = None,
) -> OperatorSequence:
    """The full QAOA operator-descriptor stack for a problem graph.

    Parameters
    ----------
    gammas / betas:
        Per-layer angles.  ``None`` leaves every layer unbound (late binding);
        otherwise both must have length *reps*.
    reps:
        Number of QAOA layers ``p``; inferred from the angle lists when given.
    """
    if reps is None:
        if gammas is not None:
            reps = len(gammas)
        elif betas is not None:
            reps = len(betas)
        else:
            reps = 1
    if reps < 1:
        raise DescriptorError("QAOA needs at least one layer")
    if gammas is not None and len(gammas) != reps:
        raise DescriptorError(f"expected {reps} gammas, got {len(gammas)}")
    if betas is not None and len(betas) != reps:
        raise DescriptorError(f"expected {reps} betas, got {len(betas)}")

    sequence = OperatorSequence()
    sequence.append(prep_uniform(qdt))
    for layer in range(reps):
        gamma = None if gammas is None else float(gammas[layer])
        beta = None if betas is None else float(betas[layer])
        sequence.append(
            cost_layer(qdt, edges, weights=weights, h=h, gamma=gamma, layer=layer)
        )
        sequence.append(mixer_layer(qdt, beta=beta, layer=layer))
    if include_measurement:
        sequence.append(
            measurement(qdt, result_schema=result_schema)
        )
    return sequence


def qaoa_parameter_names(sequence: OperatorSequence) -> List[str]:
    """Names of the unbound QAOA angles, in execution order (for optimisers)."""
    names: List[str] = []
    for op in sequence:
        if op.rep_kind == "ISING_COST_PHASE" and "gamma" not in op.params:
            names.append(f"gamma_{op.params.get('layer', 0)}")
        if op.rep_kind == "MIXER_RX" and "beta" not in op.params:
            names.append(f"beta_{op.params.get('layer', 0)}")
    return names


def bind_qaoa_parameters(
    sequence: OperatorSequence,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> OperatorSequence:
    """Return a copy of *sequence* with per-layer angles bound.

    This is the late-binding step: the intent artifacts (problem graph,
    register typing, measurement schema) are untouched; only the numeric
    angles are filled in, typically inside a classical optimisation loop.
    """
    bound: List[QuantumOperatorDescriptor] = []
    for op in sequence:
        if op.rep_kind == "ISING_COST_PHASE":
            layer = int(op.params.get("layer", 0))
            if layer >= len(gammas):
                raise DescriptorError(f"no gamma provided for layer {layer}")
            bound.append(op.with_params(gamma=float(gammas[layer])))
        elif op.rep_kind == "MIXER_RX":
            layer = int(op.params.get("layer", 0))
            if layer >= len(betas):
                raise DescriptorError(f"no beta provided for layer {layer}")
            bound.append(op.with_params(beta=float(betas[layer])))
        else:
            bound.append(op)
    return OperatorSequence(bound)
