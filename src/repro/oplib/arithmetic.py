"""Arithmetic operator descriptors (adders, modular arithmetic, comparison).

These are the "commonly used transformations for arithmetic" of Section 4.4.
Descriptors stay purely logical — e.g. an ``ADDER_TEMPLATE`` says "add the
classical constant 13 to this integer register modulo 2^n" — and the gate
backend realises constant adders with the Draper (QFT-based) construction.
Operators without a registered lowering (modular multiplication, comparison)
are still first-class descriptors: they validate, carry cost hints, and can
be packaged; a backend that cannot realise them fails loudly with a
capability error rather than silently guessing.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import DescriptorError
from ..core.qdt import EncodingKind, QuantumDataType
from ..core.qod import QuantumOperatorDescriptor
from .library import build_operator

__all__ = [
    "adder_operator",
    "register_adder_operator",
    "modular_adder_operator",
    "modular_multiplier_operator",
    "comparator_operator",
]


def _require_integer_like(qdt: QuantumDataType, what: str) -> None:
    if qdt.encoding_kind not in (
        EncodingKind.INT_REGISTER,
        EncodingKind.UINT_REGISTER,
        EncodingKind.PHASE_REGISTER,
        EncodingKind.FIXED_POINT_REGISTER,
    ):
        raise DescriptorError(
            f"{what} requires an integer-like register, got {qdt.encoding_kind.value}"
        )


def adder_operator(
    qdt: QuantumDataType,
    addend: int,
    *,
    name: Optional[str] = None,
    modulo_power_of_two: bool = True,
) -> QuantumOperatorDescriptor:
    """In-place addition of a classical constant: ``|x> -> |x + a mod 2^n>``."""
    _require_integer_like(qdt, "adder_operator")
    return build_operator(
        name or f"add_{addend}",
        "ADDER_TEMPLATE",
        qdt,
        params={
            "addend": int(addend),
            "kind": "classical_constant",
            "modulo_power_of_two": bool(modulo_power_of_two),
        },
    )


def register_adder_operator(
    target: QuantumDataType,
    source: QuantumDataType,
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Register-register addition: ``|x>|y> -> |x>|y + x mod 2^n>``."""
    _require_integer_like(target, "register_adder_operator")
    _require_integer_like(source, "register_adder_operator")
    return build_operator(
        name or f"add_{source.id}_to_{target.id}",
        "ADDER_TEMPLATE",
        [source, target],
        params={"kind": "register", "source": source.id, "target": target.id},
    )


def modular_adder_operator(
    qdt: QuantumDataType,
    addend: int,
    modulus: int,
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Addition modulo a classical modulus (the Shor-algorithm primitive)."""
    _require_integer_like(qdt, "modular_adder_operator")
    if modulus < 2:
        raise DescriptorError("modulus must be >= 2")
    if modulus > qdt.num_states:
        raise DescriptorError(
            f"modulus {modulus} does not fit a width-{qdt.width} register"
        )
    return build_operator(
        name or f"add_{addend}_mod_{modulus}",
        "MODULAR_ADDER_TEMPLATE",
        qdt,
        params={"addend": int(addend) % int(modulus), "modulus": int(modulus)},
    )


def modular_multiplier_operator(
    qdt: QuantumDataType,
    multiplier: int,
    modulus: int,
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Multiplication by a classical constant modulo *modulus*.

    Requires ``gcd(multiplier, modulus) == 1`` so the operation is unitary.
    """
    import math

    _require_integer_like(qdt, "modular_multiplier_operator")
    if modulus < 2:
        raise DescriptorError("modulus must be >= 2")
    if math.gcd(int(multiplier), int(modulus)) != 1:
        raise DescriptorError(
            "multiplier and modulus must be coprime for the operation to be invertible"
        )
    return build_operator(
        name or f"mul_{multiplier}_mod_{modulus}",
        "MODULAR_MULT_TEMPLATE",
        qdt,
        params={"multiplier": int(multiplier) % int(modulus), "modulus": int(modulus)},
    )


def comparator_operator(
    qdt: QuantumDataType,
    flag: QuantumDataType,
    threshold: int,
    *,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """Set a one-carrier flag register when the integer register is >= threshold."""
    _require_integer_like(qdt, "comparator_operator")
    if flag.width != 1:
        raise DescriptorError("comparator flag register must have width 1")
    return build_operator(
        name or f"compare_ge_{threshold}",
        "COMPARATOR_TEMPLATE",
        [qdt, flag],
        params={"threshold": int(threshold), "flag": flag.id, "predicate": "ge"},
    )
