"""QEC operator library: error-correction cycles as packaged operators.

The QEC service (:mod:`~repro.services.qec`) builds its cycle circuits
directly; this module packages the same semantics as an operator descriptor
so a repetition-code memory experiment travels through the ordinary
middle-layer flow — ``package`` → scheduler → backend lowering — next to
QAOA and QFT jobs.  That is what lets the serving queue treat QEC work as
just another bundle (and what the mixed-workload serving benchmark runs).

The lowered circuit is all-Clifford, so with
``trajectory_engine="auto"`` the gate backend routes it to the stabilizer
tableau engine and the register width is not capped by the amplitude
simulator.
"""

from __future__ import annotations

from typing import Optional

from ..core.cost import CostHint
from ..core.errors import DescriptorError
from ..core.qdt import BitOrder, MeasurementSemantics, QuantumDataType, boolean_register
from ..core.qod import QuantumOperatorDescriptor
from ..core.result_schema import ResultSchema
from .library import build_operator

__all__ = ["repetition_register", "repetition_memory_operator"]


def repetition_register(id: str, distance: int, *, name: Optional[str] = None) -> QuantumDataType:
    """The physical register of one repetition-code patch.

    Carriers ``0 .. d-1`` are the data qubits and ``d .. 2d-2`` the syndrome
    ancillas — the layout :func:`repetition_memory_operator`'s result schema
    and the backend lowering rule both assume.
    """
    _check_distance(distance)
    return boolean_register(
        id, 2 * distance - 1, name=name or f"repetition d={distance} patch"
    )


def repetition_memory_operator(
    qdt: QuantumDataType,
    distance: int,
    *,
    rounds: int = 1,
    name: Optional[str] = None,
) -> QuantumOperatorDescriptor:
    """A ``REPETITION_MEMORY`` descriptor over one patch register.

    Every round extracts the ``d - 1`` neighbouring-pair ZZ parities into
    fresh ancillas (measure + reset), and the final data qubits are read out
    after the last round.  Result-schema clbit layout: ``rounds * (d - 1)``
    syndrome bits (round major, ancilla minor — the ancilla carriers repeat
    per round) followed by the ``d`` data bits, decoded ``AS_RAW``.
    """
    _check_distance(distance)
    if rounds < 1:
        raise DescriptorError("repetition memory needs rounds >= 1")
    if qdt.width != 2 * distance - 1:
        raise DescriptorError(
            f"register {qdt.id!r} has width {qdt.width}; a distance-{distance} "
            f"patch needs {2 * distance - 1} carriers (d data + d-1 ancilla)"
        )
    syndrome = [
        f"{qdt.id}[{distance + j}]" for _ in range(rounds) for j in range(distance - 1)
    ]
    data = [f"{qdt.id}[{j}]" for j in range(distance)]
    schema = ResultSchema(
        basis="Z",
        datatype=MeasurementSemantics.AS_RAW,
        bit_significance=BitOrder.LSB_0,
        clbit_order=syndrome + data,
    )
    # 4 CX + measure + reset per stabilizer per round, one final data
    # readout; depth grows with rounds, not with distance (rounds are
    # sequential, stabilizers within a round are parallel).
    cost = CostHint(
        twoq=2.0 * (distance - 1) * rounds,
        depth=4.0 * rounds + 1.0,
        ancilla=float(distance - 1),
    )
    return build_operator(
        name or f"repetition_memory_{qdt.id}",
        "REPETITION_MEMORY",
        qdt,
        params={"distance": int(distance), "rounds": int(rounds)},
        cost_hint=cost,
        result_schema=schema,
        estimate=False,
    )


def _check_distance(distance: int) -> None:
    if not isinstance(distance, int) or distance < 3 or distance % 2 == 0:
        raise DescriptorError(
            f"repetition-code distance must be an odd integer >= 3, got {distance!r}"
        )
